//! # clam — Cheap and Large CAMs (umbrella crate)
//!
//! Reproduction of *"Cheap and Large CAMs for High Performance
//! Data-Intensive Networked Systems"* (NSDI 2010). This umbrella crate
//! re-exports the workspace members so applications can depend on a single
//! crate:
//!
//! * [`flashsim`] — simulated flash chips, SSDs, disks and DRAM;
//! * [`bufferhash`] — the BufferHash data structure and the CLAM facade;
//! * [`baseline`] — BerkeleyDB-style and DRAM-only comparators;
//! * [`wanopt`] — the WAN-optimizer application;
//! * [`dedup`] — deduplication, backup and index-merge applications.
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use baseline;
pub use bufferhash;
pub use dedup;
pub use flashsim;
pub use wanopt;

/// Builds the paper's "candidate configuration" scaled by `scale` (1.0 means
/// 32 GB flash + 4 GB DRAM; 1/512 of that runs comfortably in tests), on an
/// Intel-class simulated SSD.
pub fn paper_clam(scale: f64) -> bufferhash::Clam<flashsim::Ssd> {
    let scale = scale.clamp(1.0 / 4096.0, 1.0);
    let flash = ((32u64 << 30) as f64 * scale) as u64;
    let dram = ((4u64 << 30) as f64 * scale) as u64;
    let config = bufferhash::ClamConfig::small_test(flash, dram).expect("valid scaled config");
    let device = flashsim::Ssd::intel(flash).expect("valid capacity");
    bufferhash::Clam::new(device, config).expect("valid CLAM")
}

#[cfg(test)]
mod tests {
    #[test]
    fn paper_clam_scales_down_and_works() {
        let mut clam = super::paper_clam(1.0 / 512.0);
        clam.insert(1, 2).unwrap();
        assert_eq!(clam.lookup(1).unwrap().value, Some(2));
    }
}
