//! Crash injection: a [`Device`] wrapper that simulates a power cut.
//!
//! [`CrashDevice`] wraps any inner backend and counts *data-effect
//! operations* — the per-op reads, writes, erases and trims that every
//! submission path (blocking [`Device::submit`], the completion ring's
//! [`Device::submit_nowait`] / [`Device::reap`]) funnels through in
//! admission order. When an armed budget runs out the device "loses
//! power": the fatal operation fails, optionally after applying a **torn
//! prefix** of a fatal write (a page program interrupted mid-flight), and
//! every subsequent operation fails too. Because the wrapper deliberately
//! does **not** override the ring entry points, the trait-default engines
//! drive its per-op methods in admission order — so a budget of `N` cuts
//! the schedule exactly after the `N`-th applied request, wherever that
//! lands inside a ring admission, mirroring how a real power cut slices an
//! NVMe submission stream.
//!
//! After the cut, [`CrashDevice::into_inner`] surrenders the inner device —
//! the flash image as the next boot would find it — for a recovery scan.

use crate::device::Device;
use crate::error::{DeviceError, Result};
use crate::geometry::Geometry;
use crate::profiles::DeviceProfile;
use crate::queue::QueueCapabilities;
use crate::stats::IoStats;
use crate::time::SimDuration;

/// Counters describing what the injected crash did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashStats {
    /// Data-effect operations applied since the device was armed (or
    /// created, if never armed).
    pub ops_applied: u64,
    /// Whether the power cut has happened.
    pub cut: bool,
    /// Operations refused after the cut.
    pub denied_after_cut: u64,
    /// The fatal write's `(offset, bytes_applied)` torn prefix, when the
    /// cut landed mid-write with a non-zero torn length.
    pub torn_write: Option<(u64, u64)>,
}

/// A [`Device`] wrapper that cuts the power after a configured number of
/// applied operations — see the module docs above for the schedule
/// semantics.
#[derive(Debug)]
pub struct CrashDevice<D: Device> {
    inner: D,
    /// Remaining operations before the cut; `None` means unarmed
    /// (transparent pass-through).
    budget: Option<u64>,
    /// Bytes of a fatal write to apply before failing it (0 = the fatal
    /// write has no effect at all).
    torn_write_bytes: usize,
    dead: bool,
    stats: CrashStats,
    /// `(offset, len)` of every write fully applied since arming, so crash
    /// tests can tell which incarnation writes beat the cut.
    applied_writes: Vec<(u64, u64)>,
}

impl<D: Device> CrashDevice<D> {
    /// Wraps `inner` unarmed: every operation passes through until
    /// [`arm`](Self::arm) is called.
    pub fn new(inner: D) -> Self {
        CrashDevice {
            inner,
            budget: None,
            torn_write_bytes: 0,
            dead: false,
            stats: CrashStats::default(),
            applied_writes: Vec::new(),
        }
    }

    /// Wraps `inner` armed to cut after `ops` further applied operations.
    pub fn cut_after(inner: D, ops: u64) -> Self {
        let mut device = CrashDevice::new(inner);
        device.arm(ops);
        device
    }

    /// Arms (or re-arms) the cut: the next `ops` data-effect operations
    /// apply normally, the one after that hits the power cut. Resets the
    /// crash ledger.
    pub fn arm(&mut self, ops: u64) {
        self.budget = Some(ops);
        self.dead = false;
        self.stats = CrashStats::default();
        self.applied_writes.clear();
    }

    /// Sets how many bytes of the fatal write are applied before the cut
    /// (a torn page program). Zero — the default — drops the fatal write
    /// entirely.
    pub fn set_torn_write_bytes(&mut self, bytes: usize) {
        self.torn_write_bytes = bytes;
    }

    /// Whether the power cut has happened.
    pub fn has_crashed(&self) -> bool {
        self.dead
    }

    /// Snapshot of the crash ledger.
    pub fn crash_stats(&self) -> CrashStats {
        self.stats
    }

    /// `(offset, len)` of every write fully applied since arming, in
    /// admission order.
    pub fn applied_writes(&self) -> &[(u64, u64)] {
        &self.applied_writes
    }

    /// Surrenders the inner device — the flash image exactly as the next
    /// boot would find it — for a recovery scan.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// The error every operation returns once the power is gone.
    fn power_cut() -> DeviceError {
        DeviceError::Io("simulated power cut".into())
    }

    /// Charges one operation against the budget. Returns `Err` when this
    /// operation is the one the cut lands on (or the power is already
    /// gone); `Ok(())` means the operation may apply.
    fn charge(&mut self) -> Result<()> {
        if self.dead {
            self.stats.denied_after_cut += 1;
            return Err(Self::power_cut());
        }
        match self.budget {
            Some(0) => {
                self.dead = true;
                self.stats.cut = true;
                Err(Self::power_cut())
            }
            Some(ref mut remaining) => {
                *remaining -= 1;
                self.stats.ops_applied += 1;
                Ok(())
            }
            None => {
                self.stats.ops_applied += 1;
                Ok(())
            }
        }
    }
}

impl<D: Device> Device for CrashDevice<D> {
    fn profile(&self) -> &DeviceProfile {
        self.inner.profile()
    }

    fn geometry(&self) -> Geometry {
        self.inner.geometry()
    }

    fn queue(&self) -> QueueCapabilities {
        self.inner.queue()
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration> {
        self.charge()?;
        self.inner.read_at(offset, buf)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration> {
        let was_dead = self.dead;
        match self.charge() {
            Ok(()) => {
                let latency = self.inner.write_at(offset, data)?;
                self.applied_writes.push((offset, data.len() as u64));
                Ok(latency)
            }
            Err(e) => {
                // The cut landed on *this* write (the device was alive when
                // the call started): apply the torn prefix the medium
                // managed to program before the power vanished.
                if !was_dead && self.torn_write_bytes > 0 {
                    let torn = self.torn_write_bytes.min(data.len());
                    if torn > 0 && self.inner.write_at(offset, &data[..torn]).is_ok() {
                        self.stats.torn_write = Some((offset, torn as u64));
                    }
                }
                Err(e)
            }
        }
    }

    fn erase_block(&mut self, block: u64) -> Result<SimDuration> {
        self.charge()?;
        self.inner.erase_block(block)
    }

    fn trim(&mut self, offset: u64, len: u64) -> Result<SimDuration> {
        self.charge()?;
        self.inner.trim(offset, len)
    }

    // `submit`, `submit_nowait` and `reap` are deliberately left at their
    // trait defaults: the shared engines drive the per-op methods above in
    // admission order, so the budget slices the ring schedule exactly at
    // the N-th applied request.

    fn on_idle(&mut self, idle: SimDuration) {
        if !self.dead {
            self.inner.on_idle(idle);
        }
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramDevice;
    use crate::queue::{CompletionRing, IoRequest, RingRequest};

    fn dram() -> DramDevice {
        DramDevice::new(1 << 16).unwrap()
    }

    #[test]
    fn unarmed_device_is_transparent() {
        let mut dev = CrashDevice::new(dram());
        dev.write_at(0, &[7u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
        assert!(!dev.has_crashed());
        assert_eq!(dev.crash_stats().ops_applied, 2);
        assert_eq!(dev.stats().writes, 1);
        assert_eq!(dev.name(), "DRAM");
    }

    #[test]
    fn cut_lands_exactly_after_the_budget() {
        let mut dev = CrashDevice::cut_after(dram(), 2);
        dev.write_at(0, &[1u8; 16]).unwrap();
        dev.write_at(16, &[2u8; 16]).unwrap();
        let err = dev.write_at(32, &[3u8; 16]).unwrap_err();
        assert!(matches!(err, DeviceError::Io(_)));
        assert!(dev.has_crashed());
        // Everything after the cut fails too, reads included.
        let mut buf = [0u8; 4];
        assert!(dev.read_at(0, &mut buf).is_err());
        assert!(dev.trim(0, 16).is_err());
        let stats = dev.crash_stats();
        assert!(stats.cut);
        assert_eq!(stats.ops_applied, 2);
        assert_eq!(stats.denied_after_cut, 2);
        assert_eq!(dev.applied_writes(), &[(0, 16), (16, 16)]);
        // The surviving image holds the pre-cut writes and nothing else.
        let mut inner = dev.into_inner();
        let mut bytes = [0u8; 48];
        inner.read_at(0, &mut bytes).unwrap();
        assert_eq!(&bytes[..16], &[1u8; 16]);
        assert_eq!(&bytes[16..32], &[2u8; 16]);
        assert_eq!(&bytes[32..], &[0u8; 16]);
    }

    #[test]
    fn torn_prefix_of_the_fatal_write_is_applied() {
        let mut dev = CrashDevice::cut_after(dram(), 0);
        dev.set_torn_write_bytes(8);
        assert!(dev.write_at(0, &[9u8; 32]).is_err());
        assert_eq!(dev.crash_stats().torn_write, Some((0, 8)));
        let mut inner = dev.into_inner();
        let mut bytes = [0u8; 32];
        inner.read_at(0, &mut bytes).unwrap();
        assert_eq!(&bytes[..8], &[9u8; 8]);
        assert_eq!(&bytes[8..], &[0u8; 24]);
    }

    #[test]
    fn ring_schedule_is_cut_in_admission_order() {
        let mut dev = CrashDevice::cut_after(dram(), 2);
        let mut ring = CompletionRing::for_queue(dev.queue());
        let requests = vec![
            RingRequest::new(IoRequest::write(0, vec![1u8; 16])),
            RingRequest::new(IoRequest::write(16, vec![2u8; 16])),
            RingRequest::new(IoRequest::write(32, vec![3u8; 16])),
            RingRequest::new(IoRequest::read(0, 16)),
        ];
        dev.submit_nowait(requests, &mut ring).unwrap();
        let done = dev.reap(&mut ring, 1).unwrap();
        assert_eq!(done.len(), 4);
        let by_ticket = |id: u64| done.iter().find(|c| c.ticket.id() == id).unwrap();
        assert!(by_ticket(0).result.is_ok());
        assert!(by_ticket(1).result.is_ok());
        assert!(by_ticket(2).result.is_err(), "third admitted request hits the cut");
        assert!(by_ticket(3).result.is_err(), "post-cut requests fail too");
        assert!(dev.has_crashed());
    }
}
