//! Device geometry: capacity, page size and erase-block size.

use serde::{Deserialize, Serialize};

use crate::error::{DeviceError, Result};

/// Physical layout of a storage device.
///
/// * `page_size` is the smallest unit that can be read or programmed
///   (a flash page / SSD sector / disk sector).
/// * `block_size` is the erase granularity for flash media. For devices
///   without an erase concept (disk, DRAM) it is equal to `page_size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Read/program granularity in bytes.
    pub page_size: u32,
    /// Erase granularity in bytes (a multiple of `page_size`).
    pub block_size: u32,
}

impl Geometry {
    /// Creates a new geometry, validating the invariants.
    pub fn new(capacity: u64, page_size: u32, block_size: u32) -> Result<Self> {
        if page_size == 0 {
            return Err(DeviceError::InvalidConfig("page_size must be non-zero".into()));
        }
        if block_size == 0 || !block_size.is_multiple_of(page_size) {
            return Err(DeviceError::InvalidConfig(
                "block_size must be a non-zero multiple of page_size".into(),
            ));
        }
        if capacity == 0 || !capacity.is_multiple_of(block_size as u64) {
            return Err(DeviceError::InvalidConfig(
                "capacity must be a non-zero multiple of block_size".into(),
            ));
        }
        Ok(Geometry { capacity, page_size, block_size })
    }

    /// Number of pages on the device.
    pub fn pages(&self) -> u64 {
        self.capacity / self.page_size as u64
    }

    /// Number of erase blocks on the device.
    pub fn blocks(&self) -> u64 {
        self.capacity / self.block_size as u64
    }

    /// Number of pages per erase block.
    pub fn pages_per_block(&self) -> u32 {
        self.block_size / self.page_size
    }

    /// Page index containing byte `offset`.
    pub fn page_of(&self, offset: u64) -> u64 {
        offset / self.page_size as u64
    }

    /// Erase-block index containing byte `offset`.
    pub fn block_of(&self, offset: u64) -> u64 {
        offset / self.block_size as u64
    }

    /// Byte offset of the start of `page`.
    pub fn page_offset(&self, page: u64) -> u64 {
        page * self.page_size as u64
    }

    /// Byte offset of the start of erase block `block`.
    pub fn block_offset(&self, block: u64) -> u64 {
        block * self.block_size as u64
    }

    /// Number of pages touched by a byte range `[offset, offset + len)`.
    ///
    /// Per the paper's design principle P2, any I/O smaller than a page costs
    /// a full page, so this is the unit in which costs are charged.
    pub fn pages_spanned(&self, offset: u64, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = self.page_of(offset);
        let last = self.page_of(offset + len as u64 - 1);
        last - first + 1
    }

    /// Validates that `[offset, offset + len)` lies within the device.
    pub fn check_bounds(&self, offset: u64, len: usize) -> Result<()> {
        let end = offset.checked_add(len as u64).ok_or(DeviceError::OutOfBounds {
            offset,
            len,
            capacity: self.capacity,
        })?;
        if end > self.capacity {
            return Err(DeviceError::OutOfBounds { offset, len, capacity: self.capacity });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry::new(1 << 20, 2048, 128 * 1024).unwrap()
    }

    #[test]
    fn construction_validates_invariants() {
        assert!(Geometry::new(1 << 20, 0, 4096).is_err());
        assert!(Geometry::new(1 << 20, 4096, 4096 * 3 + 1).is_err());
        assert!(Geometry::new(0, 2048, 4096).is_err());
        assert!(Geometry::new(1 << 20 | 1, 2048, 4096).is_err());
        assert!(Geometry::new(1 << 20, 2048, 128 * 1024).is_ok());
    }

    #[test]
    fn derived_counts() {
        let g = geo();
        assert_eq!(g.pages(), 512);
        assert_eq!(g.blocks(), 8);
        assert_eq!(g.pages_per_block(), 64);
    }

    #[test]
    fn addressing_helpers() {
        let g = geo();
        assert_eq!(g.page_of(0), 0);
        assert_eq!(g.page_of(2047), 0);
        assert_eq!(g.page_of(2048), 1);
        assert_eq!(g.block_of(128 * 1024), 1);
        assert_eq!(g.page_offset(3), 6144);
        assert_eq!(g.block_offset(2), 256 * 1024);
    }

    #[test]
    fn pages_spanned_counts_partial_pages() {
        let g = geo();
        assert_eq!(g.pages_spanned(0, 0), 0);
        assert_eq!(g.pages_spanned(0, 1), 1);
        assert_eq!(g.pages_spanned(0, 2048), 1);
        assert_eq!(g.pages_spanned(0, 2049), 2);
        assert_eq!(g.pages_spanned(2047, 2), 2);
        assert_eq!(g.pages_spanned(4096, 128 * 1024), 64);
    }

    #[test]
    fn bounds_checking() {
        let g = geo();
        assert!(g.check_bounds(0, 1 << 20).is_ok());
        assert!(g.check_bounds(1 << 20, 0).is_ok());
        assert!(g.check_bounds((1 << 20) - 1, 2).is_err());
        assert!(g.check_bounds(u64::MAX, 2).is_err());
    }
}
