//! Raw NAND flash chip model (no FTL).
//!
//! The chip exposes the medium's true constraints to the caller:
//!
//! * reads and programs happen at page granularity;
//! * a page must be erased before it can be programmed again;
//! * erasure happens at erase-block granularity and is expensive.
//!
//! BufferHash's "one partition per super table, written circularly" layout
//! (§5.2) is designed directly against this interface.

use crate::device::{execute_requests, ring_execute, Device};
use crate::error::{DeviceError, Result};
use crate::geometry::Geometry;
use crate::profiles::DeviceProfile;
use crate::queue::{
    CompletionRing, IoCompletion, IoRequest, IoTicket, LaneScheduler, RingCompletion, RingRequest,
};
use crate::stats::IoStats;
use crate::store::SparseStore;
use crate::time::SimDuration;

/// A raw NAND flash chip.
#[derive(Debug)]
pub struct FlashChip {
    profile: DeviceProfile,
    geometry: Geometry,
    store: SparseStore,
    stats: IoStats,
    /// Bitmap of programmed pages (1 = programmed, 0 = erased).
    programmed: Vec<u64>,
}

impl FlashChip {
    /// Creates a flash chip of `capacity` bytes using the default NAND
    /// profile. Capacity is rounded up to a whole number of erase blocks.
    pub fn new(capacity: u64) -> Result<Self> {
        Self::with_profile(capacity, DeviceProfile::flash_chip())
    }

    /// Creates a flash chip with a custom profile.
    pub fn with_profile(capacity: u64, profile: DeviceProfile) -> Result<Self> {
        if capacity == 0 {
            return Err(DeviceError::InvalidConfig("capacity must be non-zero".into()));
        }
        let block = profile.block_size as u64;
        let capacity = capacity.div_ceil(block) * block;
        let geometry = Geometry::new(capacity, profile.page_size, profile.block_size)?;
        let words = (geometry.pages() as usize).div_ceil(64);
        Ok(FlashChip {
            geometry,
            store: SparseStore::new(profile.page_size as usize),
            stats: IoStats::default(),
            programmed: vec![0u64; words],
            profile,
        })
    }

    fn is_programmed(&self, page: u64) -> bool {
        let (w, b) = (page as usize / 64, page as usize % 64);
        self.programmed[w] >> b & 1 == 1
    }

    fn set_programmed(&mut self, page: u64, value: bool) {
        let (w, b) = (page as usize / 64, page as usize % 64);
        if value {
            self.programmed[w] |= 1 << b;
        } else {
            self.programmed[w] &= !(1 << b);
        }
    }

    /// Number of pages currently programmed (useful in tests and for wear
    /// accounting).
    pub fn programmed_pages(&self) -> u64 {
        self.programmed.iter().map(|w| w.count_ones() as u64).sum()
    }
}

impl Device for FlashChip {
    fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, buf.len())?;
        if buf.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        self.store.read(offset, buf);
        // A read transfers whole pages; sub-page reads cost a full page (P2).
        let pages = self.geometry.pages_spanned(offset, buf.len());
        let bytes = pages as usize * self.profile.page_size as usize;
        let lat = self.profile.read_cost.cost(bytes);
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        self.stats.read_time += lat;
        Ok(lat)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, data.len())?;
        if data.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        let first = self.geometry.page_of(offset);
        let last = self.geometry.page_of(offset + data.len() as u64 - 1);
        for page in first..=last {
            if self.is_programmed(page) {
                return Err(DeviceError::WriteToDirtyPage {
                    page_offset: self.geometry.page_offset(page),
                });
            }
        }
        for page in first..=last {
            self.set_programmed(page, true);
        }
        self.store.write(offset, data);
        let pages = last - first + 1;
        let bytes = pages as usize * self.profile.page_size as usize;
        let lat = self.profile.write_cost.cost(bytes);
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.write_time += lat;
        Ok(lat)
    }

    fn erase_block(&mut self, block: u64) -> Result<SimDuration> {
        if block >= self.geometry.blocks() {
            return Err(DeviceError::InvalidBlock { block, blocks: self.geometry.blocks() });
        }
        let start_page = block * self.geometry.pages_per_block() as u64;
        for page in start_page..start_page + self.geometry.pages_per_block() as u64 {
            self.set_programmed(page, false);
        }
        self.store.erase(self.geometry.block_offset(block), self.geometry.block_size as u64);
        let lat = self.profile.erase_cost.cost(self.geometry.block_size as usize);
        self.stats.erases += 1;
        self.stats.erase_time += lat;
        Ok(lat)
    }

    fn trim(&mut self, offset: u64, len: u64) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, len as usize)?;
        // A raw chip has no FTL to exploit the hint; count it and move on.
        // (Erasure remains explicit via `erase_block`.)
        self.stats.trims += 1;
        Ok(SimDuration::ZERO)
    }

    /// Native submission: a single chip has one plane in this model, so the
    /// batch executes strictly in order on one lane — which is exactly what
    /// preserves the erase-before-program protocol inside a batch (an erase
    /// queued ahead of a program to the same block lands first).
    fn submit(&mut self, requests: &mut [IoRequest]) -> Result<Vec<IoCompletion>> {
        self.stats.batches_submitted += 1;
        self.stats.requests_submitted += requests.len() as u64;
        let mut lanes = LaneScheduler::new(self.profile.queue.effective_lanes(requests.len()));
        Ok(execute_requests(self, requests, &mut lanes))
    }

    /// Ring admission on the single plane: a serial chip gives the ring one
    /// lane, so admissions never overlap in time and erase-before-program
    /// is preserved by admission order; the override keeps the chip's ring
    /// ledger recorded like on every other backend.
    fn submit_nowait(
        &mut self,
        requests: Vec<RingRequest>,
        ring: &mut CompletionRing,
    ) -> Result<Vec<IoTicket>> {
        self.stats.requests_submitted += requests.len() as u64;
        let stalls_before = ring.admission_stalls();
        let tickets = ring_execute(self, requests, ring)?;
        self.stats.ring_depth_high_water =
            self.stats.ring_depth_high_water.max(ring.depth_high_water() as u64);
        self.stats.ring_admission_stalls += ring.admission_stalls() - stalls_before;
        Ok(tickets)
    }

    fn reap(&mut self, ring: &mut CompletionRing, _min: usize) -> Result<Vec<RingCompletion>> {
        let out = ring.reap(usize::MAX);
        self.stats.requests_reaped += out.len() as u64;
        self.stats.requests_overlapped += out.iter().filter(|c| c.lane != 0).count() as u64;
        Ok(out)
    }

    fn stats(&self) -> IoStats {
        self.stats.clone()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> FlashChip {
        FlashChip::new(4 << 20).unwrap() // 4 MiB, 2 KiB pages, 128 KiB blocks
    }

    #[test]
    fn write_read_round_trip() {
        let mut c = chip();
        let data: Vec<u8> = (0..4096).map(|i| (i % 255) as u8).collect();
        c.write_at(0, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        c.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, data);
        assert_eq!(c.programmed_pages(), 2);
    }

    #[test]
    fn rewriting_a_programmed_page_fails() {
        let mut c = chip();
        c.write_at(0, &[1u8; 2048]).unwrap();
        let err = c.write_at(0, &[2u8; 2048]).unwrap_err();
        assert!(matches!(err, DeviceError::WriteToDirtyPage { page_offset: 0 }));
    }

    #[test]
    fn erase_allows_rewriting() {
        let mut c = chip();
        c.write_at(0, &[1u8; 2048]).unwrap();
        c.erase_block(0).unwrap();
        assert_eq!(c.programmed_pages(), 0);
        c.write_at(0, &[2u8; 2048]).unwrap();
        let mut buf = [0u8; 2048];
        c.read_at(0, &mut buf).unwrap();
        assert_eq!(buf[0], 2);
    }

    #[test]
    fn erase_zeroes_data() {
        let mut c = chip();
        c.write_at(0, &[7u8; 2048]).unwrap();
        c.erase_block(0).unwrap();
        let mut buf = [1u8; 2048];
        c.read_at(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn sub_page_read_costs_a_full_page() {
        let mut c = chip();
        c.write_at(0, &[1u8; 2048]).unwrap();
        let small = c.read_at(0, &mut [0u8; 16]).unwrap();
        let full = c.read_at(0, &mut [0u8; 2048]).unwrap();
        assert_eq!(small, full);
    }

    #[test]
    fn sequential_block_write_is_cheaper_than_page_writes() {
        let mut c = chip();
        // One 128 KiB write...
        let batched = c.write_at(0, &vec![1u8; 128 * 1024]).unwrap();
        // ...versus 64 individual page writes.
        let mut unbatched = SimDuration::ZERO;
        for i in 0..64u64 {
            unbatched += c.write_at(128 * 1024 + i * 2048, &[1u8; 2048]).unwrap();
        }
        assert!(batched < unbatched, "batched {batched} vs unbatched {unbatched}");
    }

    #[test]
    fn erase_cost_is_much_higher_than_read_cost() {
        let mut c = chip();
        c.write_at(0, &[1u8; 2048]).unwrap();
        let read = c.read_at(0, &mut [0u8; 2048]).unwrap();
        let erase = c.erase_block(0).unwrap();
        assert!(erase > read * 3);
    }

    #[test]
    fn invalid_block_erase_is_rejected() {
        let mut c = chip();
        let blocks = c.geometry().blocks();
        assert!(matches!(c.erase_block(blocks), Err(DeviceError::InvalidBlock { .. })));
    }

    #[test]
    fn out_of_bounds_io_is_rejected() {
        let mut c = chip();
        let cap = c.geometry().capacity;
        assert!(c.write_at(cap - 1024, &[0u8; 2048]).is_err());
        assert!(c.read_at(cap, &mut [0u8; 1]).is_err());
    }

    #[test]
    fn capacity_rounds_to_block_multiple() {
        let c = FlashChip::new(1000).unwrap();
        assert_eq!(c.geometry().capacity, 128 * 1024);
    }

    #[test]
    fn submit_preserves_the_erase_before_program_protocol() {
        let mut c = chip();
        c.write_at(0, &[1u8; 2048]).unwrap();
        // One batch: erase block 0, rewrite its first page, read it back,
        // and a dirty-page program that must fail without killing the batch.
        let mut reqs = vec![
            IoRequest::Erase { block: 0 },
            IoRequest::write(0, vec![9u8; 2048]),
            IoRequest::read(0, 2048),
            IoRequest::write(0, vec![3u8; 2048]),
        ];
        let completions = c.submit(&mut reqs).unwrap();
        assert!(completions[0].result.is_ok());
        assert!(completions[1].result.is_ok());
        assert_eq!(completions[2].result.as_ref().unwrap()[0], 9);
        assert!(matches!(completions[3].result, Err(DeviceError::WriteToDirtyPage { .. })));
        assert!(completions.iter().all(|c| c.lane == 0), "a raw chip is serial");
        let s = c.stats();
        assert_eq!(s.batches_submitted, 1);
        assert_eq!(s.requests_submitted, 4);
        assert_eq!(s.requests_overlapped, 0);
        assert_eq!(s.erases, 1);
    }

    #[test]
    fn trim_is_counted_on_the_chip() {
        let mut c = chip();
        c.trim(0, 2048).unwrap();
        assert_eq!(c.stats().trims, 1);
    }

    #[test]
    fn stats_track_all_operation_kinds() {
        let mut c = chip();
        c.write_at(0, &[1u8; 2048]).unwrap();
        c.read_at(0, &mut [0u8; 2048]).unwrap();
        c.erase_block(0).unwrap();
        let s = c.stats();
        assert_eq!((s.reads, s.writes, s.erases), (1, 1, 1));
        assert!(s.busy_time() > SimDuration::ZERO);
    }
}
