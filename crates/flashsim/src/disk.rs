//! Magnetic disk model.
//!
//! The dominant cost of a random disk access is mechanical: a seek whose
//! duration grows with the distance travelled plus half a rotation of
//! rotational delay. Sequential accesses (continuing exactly where the last
//! access ended) skip both and run at the media transfer rate. This is the
//! behaviour that makes on-disk hash indexes (Berkeley-DB) slow for random
//! key workloads and BufferHash-on-disk competitive only for inserts.

use crate::device::{ring_execute, Device};
use crate::error::{DeviceError, Result};
use crate::geometry::Geometry;
use crate::profiles::DeviceProfile;
use crate::queue::{
    CompletionRing, IoCompletion, IoRequest, IoTicket, RingCompletion, RingRequest,
};
use crate::stats::IoStats;
use crate::store::SparseStore;
use crate::time::SimDuration;

/// A rotating magnetic disk.
#[derive(Debug)]
pub struct MagneticDisk {
    profile: DeviceProfile,
    geometry: Geometry,
    store: SparseStore,
    stats: IoStats,
    /// Byte offset one past the end of the last access (for sequential
    /// detection), or `None` before the first access.
    head: Option<u64>,
}

impl MagneticDisk {
    /// Creates a disk of `capacity` bytes with the default Hitachi 7K80
    /// profile. Capacity is rounded up to a whole number of sectors.
    pub fn new(capacity: u64) -> Result<Self> {
        Self::with_profile(capacity, DeviceProfile::hitachi_7k80())
    }

    /// Creates a disk with a custom profile.
    pub fn with_profile(capacity: u64, profile: DeviceProfile) -> Result<Self> {
        if capacity == 0 {
            return Err(DeviceError::InvalidConfig("capacity must be non-zero".into()));
        }
        let unit = profile.block_size as u64;
        let capacity = capacity.div_ceil(unit) * unit;
        let geometry = Geometry::new(capacity, profile.page_size, profile.block_size)?;
        Ok(MagneticDisk {
            geometry,
            store: SparseStore::new(64 * 1024),
            stats: IoStats::default(),
            head: None,
            profile,
        })
    }

    /// Mechanical positioning cost for an access starting at `offset`.
    fn positioning_cost(&self, offset: u64) -> SimDuration {
        match self.head {
            Some(h) if h == offset => SimDuration::ZERO,
            Some(h) => {
                // Seek time grows sub-linearly with distance; model as a
                // fixed settle component plus a distance-dependent part.
                let dist = h.abs_diff(offset) as f64 / self.geometry.capacity.max(1) as f64;
                let seek = self.profile.seek_ns as f64 * (0.35 + 0.65 * dist.sqrt());
                SimDuration::from_nanos(seek as u64 + self.profile.rotation_ns)
            }
            None => SimDuration::from_nanos(self.profile.seek_ns + self.profile.rotation_ns),
        }
    }
}

impl Device for MagneticDisk {
    fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, buf.len())?;
        if buf.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        self.store.read(offset, buf);
        let pages = self.geometry.pages_spanned(offset, buf.len());
        let bytes = pages as usize * self.profile.page_size as usize;
        let lat = self.positioning_cost(offset) + self.profile.read_cost.cost(bytes);
        self.head = Some(offset + buf.len() as u64);
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        self.stats.read_time += lat;
        Ok(lat)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, data.len())?;
        if data.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        self.store.write(offset, data);
        let pages = self.geometry.pages_spanned(offset, data.len());
        let bytes = pages as usize * self.profile.page_size as usize;
        let lat = self.positioning_cost(offset) + self.profile.write_cost.cost(bytes);
        self.head = Some(offset + data.len() as u64);
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.write_time += lat;
        Ok(lat)
    }

    fn erase_block(&mut self, _block: u64) -> Result<SimDuration> {
        Err(DeviceError::Unsupported("erase_block on a magnetic disk"))
    }

    fn trim(&mut self, offset: u64, len: u64) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, len as usize)?;
        // Disks have no mapping layer to exploit the hint.
        self.stats.trims += 1;
        Ok(SimDuration::ZERO)
    }

    /// Native submission with NCQ-style elevator scheduling: data effects
    /// and per-request results are produced in submission order (so a batch
    /// is observationally equivalent to sequential issue), but the head
    /// services the queued transfers within each reorder window in
    /// ascending seek position, which collapses most of the positioning
    /// cost of a scattered batch.
    fn submit(&mut self, requests: &mut [IoRequest]) -> Result<Vec<IoCompletion>> {
        self.stats.batches_submitted += 1;
        self.stats.requests_submitted += requests.len() as u64;

        // Phase 1 (submission order): bounds checks and data effects.
        let mut completions = Vec::with_capacity(requests.len());
        // Transfers awaiting latency assignment: (completion idx, offset, len).
        let mut transfers: Vec<(usize, u64, usize, bool)> = Vec::new();
        for (index, request) in requests.iter_mut().enumerate() {
            let (latency, result) = match request {
                IoRequest::Read { offset, len } => {
                    match self.geometry.check_bounds(*offset, *len) {
                        Err(e) => (SimDuration::ZERO, Err(e)),
                        Ok(()) => {
                            let mut buf = vec![0u8; *len];
                            self.store.read(*offset, &mut buf);
                            if *len > 0 {
                                transfers.push((index, *offset, *len, true));
                            }
                            (SimDuration::ZERO, Ok(buf))
                        }
                    }
                }
                IoRequest::Write { offset, data } => {
                    match self.geometry.check_bounds(*offset, data.len()) {
                        Err(e) => (SimDuration::ZERO, Err(e)),
                        Ok(()) => {
                            self.store.write(*offset, data);
                            if !data.is_empty() {
                                transfers.push((index, *offset, data.len(), false));
                            }
                            (SimDuration::ZERO, Ok(Vec::new()))
                        }
                    }
                }
                IoRequest::Erase { .. } => (
                    SimDuration::ZERO,
                    Err(DeviceError::Unsupported("erase_block on a magnetic disk")),
                ),
                IoRequest::Trim { offset, len } => match self.trim(*offset, *len) {
                    Ok(lat) => (lat, Ok(Vec::new())),
                    Err(e) => (SimDuration::ZERO, Err(e)),
                },
            };
            completions.push(IoCompletion { index, lane: 0, latency, result });
        }

        // Phase 2: service the transfers window by window, each window
        // sorted by seek position.
        let window = self.profile.queue.max_queue_depth.max(1);
        for chunk in transfers.chunks_mut(window) {
            chunk.sort_by_key(|&(_, offset, _, _)| offset);
            for &(index, offset, len, is_read) in chunk.iter() {
                let pages = self.geometry.pages_spanned(offset, len);
                let bytes = pages as usize * self.profile.page_size as usize;
                let transfer_cost = if is_read {
                    self.profile.read_cost.cost(bytes)
                } else {
                    self.profile.write_cost.cost(bytes)
                };
                let lat = self.positioning_cost(offset) + transfer_cost;
                self.head = Some(offset + len as u64);
                if is_read {
                    self.stats.reads += 1;
                    self.stats.bytes_read += len as u64;
                    self.stats.read_time += lat;
                } else {
                    self.stats.writes += 1;
                    self.stats.bytes_written += len as u64;
                    self.stats.write_time += lat;
                }
                completions[index].latency = lat;
            }
        }
        Ok(completions)
    }

    /// Ring admission through the per-op path: the elevator only reorders
    /// within a blocking submission window, so a ring stream is serviced in
    /// admission order; the override exists to keep the device's ring
    /// ledger (submissions, reaps, depth high-water, admission stalls)
    /// recorded like on every other backend.
    fn submit_nowait(
        &mut self,
        requests: Vec<RingRequest>,
        ring: &mut CompletionRing,
    ) -> Result<Vec<IoTicket>> {
        self.stats.requests_submitted += requests.len() as u64;
        let stalls_before = ring.admission_stalls();
        let tickets = ring_execute(self, requests, ring)?;
        self.stats.ring_depth_high_water =
            self.stats.ring_depth_high_water.max(ring.depth_high_water() as u64);
        self.stats.ring_admission_stalls += ring.admission_stalls() - stalls_before;
        Ok(tickets)
    }

    fn reap(&mut self, ring: &mut CompletionRing, _min: usize) -> Result<Vec<RingCompletion>> {
        let out = ring.reap(usize::MAX);
        self.stats.requests_reaped += out.len() as u64;
        self.stats.requests_overlapped += out.iter().filter(|c| c.lane != 0).count() as u64;
        Ok(out)
    }

    fn stats(&self) -> IoStats {
        self.stats.clone()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> MagneticDisk {
        MagneticDisk::new(64 << 20).unwrap()
    }

    #[test]
    fn round_trips_data() {
        let mut d = disk();
        d.write_at(1 << 20, b"spinning rust").unwrap();
        let mut buf = [0u8; 13];
        d.read_at(1 << 20, &mut buf).unwrap();
        assert_eq!(&buf, b"spinning rust");
    }

    #[test]
    fn random_access_costs_milliseconds() {
        let mut d = disk();
        let lat = d.read_at(32 << 20, &mut [0u8; 4096]).unwrap();
        assert!(lat > SimDuration::from_millis(4), "random read too fast: {lat}");
        assert!(lat < SimDuration::from_millis(20), "random read too slow: {lat}");
    }

    #[test]
    fn sequential_access_skips_the_seek() {
        let mut d = disk();
        let first = d.write_at(0, &[1u8; 4096]).unwrap();
        let second = d.write_at(4096, &[1u8; 4096]).unwrap();
        assert!(second < first, "sequential write {second} should be cheaper than first {first}");
        assert!(second < SimDuration::from_millis(1));
    }

    #[test]
    fn longer_seeks_cost_more() {
        let mut d = disk();
        d.read_at(0, &mut [0u8; 512]).unwrap();
        let near = d.read_at(1 << 20, &mut [0u8; 512]).unwrap();
        d.read_at(0, &mut [0u8; 512]).unwrap();
        let far = d.read_at(60 << 20, &mut [0u8; 512]).unwrap();
        assert!(far > near, "far seek {far} should cost more than near seek {near}");
    }

    #[test]
    fn random_disk_read_is_slower_than_ssd_read() {
        use crate::ssd::Ssd;
        let mut d = disk();
        let mut s = Ssd::intel(64 << 20).unwrap();
        d.write_at(10 << 20, &[1u8; 4096]).unwrap();
        s.write_at(10 << 20, &[1u8; 4096]).unwrap();
        // Move the disk head away so the read is random.
        d.read_at(0, &mut [0u8; 512]).unwrap();
        let dl = d.read_at(10 << 20, &mut [0u8; 4096]).unwrap();
        let sl = s.read_at(10 << 20, &mut [0u8; 4096]).unwrap();
        assert!(dl > sl * 5, "disk {dl} should be much slower than SSD {sl}");
    }

    #[test]
    fn submit_services_a_scattered_batch_in_seek_order() {
        use crate::queue::batch_latency;
        // The same scattered read pattern, issued per-op vs. as one batch.
        let offsets = [48u64 << 20, 2 << 20, 32 << 20, 10 << 20, 60 << 20, 1 << 20, 20 << 20];
        let mut per_op = disk();
        let mut seq_total = SimDuration::ZERO;
        for &o in &offsets {
            seq_total += per_op.read_at(o, &mut [0u8; 4096]).unwrap();
        }
        let mut queued = disk();
        let mut reqs: Vec<IoRequest> = offsets.iter().map(|&o| IoRequest::read(o, 4096)).collect();
        let completions = queued.submit(&mut reqs).unwrap();
        assert!(completions.iter().all(|c| c.result.is_ok() && c.lane == 0));
        let batched = batch_latency(&completions);
        // Rotation and the fixed settle component put a floor under every
        // random access, so the elevator win is bounded; require > 10%.
        assert!(
            batched * 10 < seq_total * 9,
            "elevator scheduling ({batched}) should beat random-order seeks ({seq_total})"
        );
        assert_eq!(queued.stats().reads, offsets.len() as u64);
    }

    #[test]
    fn submit_applies_conflicting_writes_in_submission_order() {
        let mut d = disk();
        let mut reqs = vec![
            IoRequest::write(8 << 20, vec![1u8; 512]),
            IoRequest::write(8 << 20, vec![2u8; 512]),
            IoRequest::read(8 << 20, 512),
            IoRequest::Erase { block: 0 },
        ];
        let completions = d.submit(&mut reqs).unwrap();
        assert_eq!(completions[2].result.as_ref().unwrap()[0], 2, "later write wins");
        assert!(matches!(completions[3].result, Err(DeviceError::Unsupported(_))));
    }

    #[test]
    fn trim_is_a_counted_noop_on_disk() {
        let mut d = disk();
        assert_eq!(d.trim(0, 4096).unwrap(), SimDuration::ZERO);
        assert_eq!(d.stats().trims, 1);
    }

    #[test]
    fn erase_is_unsupported() {
        let mut d = disk();
        assert!(matches!(d.erase_block(0), Err(DeviceError::Unsupported(_))));
    }

    #[test]
    fn bounds_are_enforced() {
        let mut d = disk();
        let cap = d.geometry().capacity;
        assert!(d.read_at(cap, &mut [0u8; 1]).is_err());
    }
}
