//! Real-file storage backend.
//!
//! [`FileDevice`] stores bytes in an actual file on the host filesystem and
//! reports *measured wall-clock* latencies instead of simulated ones. It
//! exists so the data-structure layers can also be exercised against real
//! storage (the paper's prototype ran on ext3 files over real SSDs); the
//! simulated devices remain the default for reproducible experiments.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Instant;

use crate::device::Device;
use crate::error::{DeviceError, Result};
use crate::geometry::Geometry;
use crate::profiles::{DeviceProfile, MediumKind};
use crate::stats::IoStats;
use crate::time::SimDuration;

/// A device backed by a real file, reporting wall-clock latencies.
#[derive(Debug)]
pub struct FileDevice {
    profile: DeviceProfile,
    geometry: Geometry,
    file: File,
    stats: IoStats,
}

impl FileDevice {
    /// Creates (or truncates) a backing file of `capacity` bytes.
    pub fn create<P: AsRef<Path>>(path: P, capacity: u64) -> Result<Self> {
        if capacity == 0 {
            return Err(DeviceError::InvalidConfig("capacity must be non-zero".into()));
        }
        let page = 4096u32;
        let capacity = capacity.div_ceil(page as u64) * page as u64;
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        file.set_len(capacity)?;
        let profile = DeviceProfile {
            name: "File-backed device",
            kind: MediumKind::Ssd,
            page_size: page,
            block_size: page,
            ..DeviceProfile::intel_x18m()
        };
        let geometry = Geometry::new(capacity, page, page)?;
        Ok(FileDevice { profile, geometry, file, stats: IoStats::default() })
    }
}

impl Device for FileDevice {
    fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, buf.len())?;
        let start = Instant::now();
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)?;
        let lat = SimDuration::from_nanos(start.elapsed().as_nanos() as u64);
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        self.stats.read_time += lat;
        Ok(lat)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, data.len())?;
        let start = Instant::now();
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)?;
        let lat = SimDuration::from_nanos(start.elapsed().as_nanos() as u64);
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.write_time += lat;
        Ok(lat)
    }

    fn erase_block(&mut self, _block: u64) -> Result<SimDuration> {
        Err(DeviceError::Unsupported("erase_block on a file-backed device"))
    }

    fn stats(&self) -> IoStats {
        self.stats.clone()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("flashsim-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn file_round_trip() {
        let path = temp_path("roundtrip");
        {
            let mut dev = FileDevice::create(&path, 1 << 20).unwrap();
            dev.write_at(4096, b"persisted bytes").unwrap();
            let mut buf = [0u8; 15];
            dev.read_at(4096, &mut buf).unwrap();
            assert_eq!(&buf, b"persisted bytes");
            assert_eq!(dev.stats().writes, 1);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_device_respects_bounds() {
        let path = temp_path("bounds");
        {
            let mut dev = FileDevice::create(&path, 8192).unwrap();
            assert!(dev.write_at(8192, &[1]).is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let path = temp_path("zerocap");
        assert!(FileDevice::create(&path, 0).is_err());
        std::fs::remove_file(&path).ok();
    }
}
