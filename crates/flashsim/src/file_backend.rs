//! Real-file storage backend.
//!
//! [`FileDevice`] stores bytes in an actual file on the host filesystem and
//! reports *measured wall-clock* latencies instead of simulated ones. It
//! exists so the data-structure layers can also be exercised against real
//! storage (the paper's prototype ran on ext3 files over real SSDs); the
//! simulated devices remain the default for reproducible experiments.
//!
//! I/O parallelism comes from a **persistent worker pool**: a fixed set of
//! worker threads (at most one per host core, capped by the queue depth) is
//! spawned once at construction, fed by a shared injector queue, and shut
//! down when the device drops. Nothing on the hot path spawns threads.
//!
//! Two execution modes share that pool:
//!
//! * **Blocking submissions** ([`Device::submit`]) are executed in
//!   conflict-free *waves*: a request that conflicts with an earlier
//!   request of the same batch starts a new wave, and waves run one after
//!   another. Accounting lanes are assigned per wave from the *measured*
//!   latencies (LPT schedule, busiest lane relabelled to lane 0), which
//!   makes [`queue::batch_latency`](crate::queue::batch_latency) equal the
//!   modelled elapsed time of the whole batch — the sum of the per-wave
//!   makespans.
//! * **Ring submissions** ([`Device::submit_nowait`] / [`Device::reap`])
//!   skip the barrier entirely: independent requests go straight to the
//!   pool, a request whose byte range conflicts with an in-flight request
//!   is held back (and dispatched the moment its dependencies retire, so
//!   admission order = data-effect order), and completions stream back
//!   through the caller's [`CompletionRing`], whose lane free-at clocks
//!   turn the measured per-request latencies into a single continuous
//!   queue schedule — no per-wave straggler tax.
//!
//! Lanes model the **device queue**, exactly as the simulated backends do:
//! on a host with fewer cores than the queue depth, physical overlap is
//! smaller than the lane count, but the completion accounting still
//! reflects what a device with that queue depth would retire — that is the
//! metric the `io_queue_depth` harness sweeps (it reports host wall time
//! alongside for transparency).
//!
//! Mixing blocking submissions with in-flight ring requests is supported
//! only for non-conflicting ranges: blocking waves bypass the ring's
//! dependency tracking, so callers must drain the ring before submitting
//! conflicting work (the CLAM pipelines do — reads stream through the
//! ring, flush writes go through blocking submissions after the ring is
//! empty).

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
// Positioned I/O (pread/pwrite-style) lets the worker pool share one file
// handle without seat-of-the-pants seek locking; it pins flashsim to Unix
// hosts, which is what CI and the experiment environment run.
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::device::Device;
use crate::error::{DeviceError, Result};
use crate::geometry::Geometry;
use crate::profiles::{DeviceProfile, MediumKind};
use crate::queue::{
    ranges_conflict, CompletionRing, IoCompletion, IoRequest, IoTicket, QueueCapabilities,
    RingCompletion, RingRequest,
};
use crate::stats::IoStats;
use crate::time::SimDuration;

/// Default worker-pool size (queue depth) for [`FileDevice::create`].
pub const DEFAULT_FILE_QUEUE_DEPTH: usize = 8;

/// One unit of work for the pool: a positioned read or write.
#[derive(Debug)]
struct PoolJob {
    /// Device-wide job id (shared namespace for waves and ring requests).
    id: u64,
    offset: u64,
    /// `Some(data)` for writes, `None` for reads.
    write: Option<Vec<u8>>,
    /// Read length (0 for writes).
    read_len: usize,
}

/// A finished pool job.
#[derive(Debug)]
struct DoneJob {
    id: u64,
    latency: SimDuration,
    /// `(was_write, bytes_transferred)` for stats accounting (`None` when
    /// the I/O failed).
    write_bytes: Option<(bool, usize)>,
    result: Result<Vec<u8>>,
}

/// State shared between the device and its worker threads.
#[derive(Debug)]
struct PoolShared {
    file: Arc<File>,
    jobs: Mutex<VecDeque<PoolJob>>,
    jobs_cv: Condvar,
    done: Mutex<Vec<DoneJob>>,
    done_cv: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    fn execute(&self, job: PoolJob) {
        let start = Instant::now();
        let result = match &job.write {
            Some(data) => self.file.write_all_at(data, job.offset).map(|()| Vec::new()),
            None => {
                let mut buf = vec![0u8; job.read_len];
                self.file.read_exact_at(&mut buf, job.offset).map(|()| buf)
            }
        };
        let bytes = job.write.as_deref().map_or(job.read_len, <[u8]>::len);
        let done = DoneJob {
            id: job.id,
            latency: SimDuration::from_nanos(start.elapsed().as_nanos() as u64),
            write_bytes: result.is_ok().then_some((job.write.is_some(), bytes)),
            result: result.map_err(DeviceError::from),
        };
        self.done.lock().expect("pool done lock").push(done);
        self.done_cv.notify_all();
    }
}

/// The persistent worker pool: spawned once at device construction, fed by
/// a shared injector queue, joined on drop.
#[derive(Debug)]
struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(file: Arc<File>, workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            file,
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            done: Mutex::new(Vec::new()),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut jobs = shared.jobs.lock().expect("pool job lock");
                        loop {
                            if shared.shutdown.load(Ordering::Relaxed) {
                                return;
                            }
                            if let Some(job) = jobs.pop_front() {
                                break job;
                            }
                            jobs = shared.jobs_cv.wait(jobs).expect("pool job lock");
                        }
                    };
                    shared.execute(job);
                })
            })
            .collect();
        WorkerPool { shared, workers }
    }

    fn len(&self) -> usize {
        self.workers.len()
    }

    fn push(&self, job: PoolJob) {
        self.shared.jobs.lock().expect("pool job lock").push_back(job);
        self.shared.jobs_cv.notify_one();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.jobs_cv.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("file worker panicked");
        }
    }
}

/// Bookkeeping for one ring request handed to the pool.
#[derive(Debug)]
struct RingMeta {
    ticket: IoTicket,
    /// Epoch of the ring the request was admitted to, so results can be
    /// parked for the right ring when several rings share this device.
    epoch: u64,
    range: Option<(u64, u64)>,
    is_read: bool,
}

/// A completion that arrived while a different ring was being reaped:
/// `(ticket, latency, result)`, delivered at its own ring's next reap.
type ParkedCompletion = (IoTicket, SimDuration, Result<Vec<u8>>);

/// A ring request held back because its byte range conflicts with work
/// still in flight; dispatched the moment the last blocker retires.
#[derive(Debug)]
struct BlockedRingJob {
    job: PoolJob,
    meta: RingMeta,
    /// Job ids this request must wait for.
    blockers: Vec<u64>,
}

/// A device backed by a real file, reporting wall-clock latencies.
#[derive(Debug)]
pub struct FileDevice {
    profile: DeviceProfile,
    geometry: Geometry,
    file: Arc<File>,
    stats: IoStats,
    pool: WorkerPool,
    /// Next id in the device-wide job namespace.
    next_job_id: u64,
    /// Ring requests currently executing on (or queued for) the pool.
    ring_dispatched: HashMap<u64, RingMeta>,
    /// Ring requests held back by range conflicts.
    ring_blocked: Vec<BlockedRingJob>,
    /// Finished ring completions awaiting a reap of their own ring, keyed
    /// by ring epoch.
    parked: HashMap<u64, Vec<ParkedCompletion>>,
}

/// One executable request of a blocking submission, planned for the pool.
#[derive(Debug)]
struct PlannedOp {
    /// Index in the submitted batch.
    index: usize,
    offset: u64,
    /// `Some(data)` for writes (taken out of the request), `None` for
    /// reads.
    write: Option<Vec<u8>>,
    /// Read length (0 for writes).
    read_len: usize,
}

impl PlannedOp {
    fn range(&self) -> (u64, u64, bool) {
        let end = self.offset + self.write.as_deref().map_or(self.read_len, <[u8]>::len) as u64;
        (self.offset, end, self.write.is_none())
    }
}

/// Assigns accounting lanes to one executed wave from its *measured*
/// latencies: requests are LPT-scheduled onto the queue's lanes and lane
/// ids are relabelled busiest-first. Mapping every wave's busiest lane to
/// lane 0 makes the global per-lane sums honest: lane 0 accumulates
/// exactly the sum of the per-wave makespans (the elapsed time of the
/// sequentially executed waves) and no other lane can exceed it.
fn assign_wave_lanes(results: &mut [WorkerResult], lanes: usize) {
    let lanes = lanes.min(results.len()).max(1);
    let mut order: Vec<usize> = (0..results.len()).collect();
    order.sort_by(|&a, &b| results[b].latency.cmp(&results[a].latency));
    let mut busy = vec![SimDuration::ZERO; lanes];
    let mut lane_of = vec![0usize; results.len()];
    for &i in &order {
        let lane = busy.iter().enumerate().min_by_key(|(_, b)| **b).map(|(l, _)| l).unwrap_or(0);
        lane_of[i] = lane;
        busy[lane] += results[i].latency;
    }
    let mut by_busy: Vec<usize> = (0..lanes).collect();
    by_busy.sort_by(|&a, &b| busy[b].cmp(&busy[a]));
    let mut rank = vec![0usize; lanes];
    for (r, &l) in by_busy.iter().enumerate() {
        rank[l] = r;
    }
    for (i, result) in results.iter_mut().enumerate() {
        result.lane = rank[lane_of[i]];
    }
}

/// Per-request outcome of one wave request.
struct WorkerResult {
    index: usize,
    lane: usize,
    latency: SimDuration,
    /// `(was_write, bytes_transferred)` for stats accounting.
    write_bytes: Option<(bool, usize)>,
    result: Result<Vec<u8>>,
}

impl FileDevice {
    /// Creates (or truncates) a backing file of `capacity` bytes with the
    /// default queue depth of [`DEFAULT_FILE_QUEUE_DEPTH`].
    pub fn create<P: AsRef<Path>>(path: P, capacity: u64) -> Result<Self> {
        Self::with_queue_depth(path, capacity, DEFAULT_FILE_QUEUE_DEPTH)
    }

    /// Creates (or truncates) a backing file of `capacity` bytes with a
    /// submission queue `queue_depth` deep (1 = strictly serial, like the
    /// per-op methods).
    ///
    /// The persistent worker pool is spawned here — sized
    /// `min(queue_depth, host cores)`, since oversubscribing the host's
    /// cores would only add scheduler noise to the measured per-request
    /// latencies — and shut down when the device drops.
    pub fn with_queue_depth<P: AsRef<Path>>(
        path: P,
        capacity: u64,
        queue_depth: usize,
    ) -> Result<Self> {
        Self::build(path, capacity, queue_depth, true)
    }

    /// Opens an **existing** backing file without truncating it, with a
    /// submission queue `queue_depth` deep. The file's current length is
    /// the device capacity (it must be non-empty), so a device written by
    /// an earlier process — e.g. a `clamd` flash image — comes back with
    /// its contents intact, ready for `Clam::recover` to scan.
    pub fn open_existing<P: AsRef<Path>>(path: P, queue_depth: usize) -> Result<Self> {
        let capacity = std::fs::metadata(path.as_ref())?.len();
        Self::build(path, capacity, queue_depth, false)
    }

    fn build<P: AsRef<Path>>(
        path: P,
        capacity: u64,
        queue_depth: usize,
        truncate: bool,
    ) -> Result<Self> {
        if capacity == 0 {
            return Err(DeviceError::InvalidConfig("capacity must be non-zero".into()));
        }
        if queue_depth == 0 {
            return Err(DeviceError::InvalidConfig("queue_depth must be non-zero".into()));
        }
        let page = 4096u32;
        let capacity = capacity.div_ceil(page as u64) * page as u64;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(truncate)
            .truncate(truncate)
            .open(path)?;
        file.set_len(capacity)?;
        let file = Arc::new(file);
        let profile = DeviceProfile {
            name: "File-backed device",
            kind: MediumKind::Ssd,
            page_size: page,
            block_size: page,
            queue: QueueCapabilities::overlapped(queue_depth),
            ..DeviceProfile::intel_x18m()
        };
        let geometry = Geometry::new(capacity, page, page)?;
        let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
        let pool = WorkerPool::new(Arc::clone(&file), queue_depth.min(host_parallelism));
        Ok(FileDevice {
            profile,
            geometry,
            file,
            stats: IoStats::default(),
            pool,
            next_job_id: 0,
            ring_dispatched: HashMap::new(),
            ring_blocked: Vec::new(),
            parked: HashMap::new(),
        })
    }

    /// Number of threads in the persistent worker pool (visible for tests
    /// and diagnostics).
    pub fn pool_workers(&self) -> usize {
        self.pool.len()
    }

    fn next_job_id(&mut self) -> u64 {
        let id = self.next_job_id;
        self.next_job_id += 1;
        id
    }

    /// Runs one conflict-free wave of planned operations on the worker
    /// pool and waits for all of them.
    ///
    /// A one-request wave executes inline — a single positioned I/O gains
    /// nothing from a pool handoff, and keeping it on the calling thread
    /// keeps depth-1 measurements free of queueing noise.
    fn run_wave(&mut self, wave: Vec<PlannedOp>) -> Vec<WorkerResult> {
        if wave.len() == 1 || self.pool.len() == 1 {
            return wave
                .into_iter()
                .map(|op| {
                    let start = Instant::now();
                    let result = match &op.write {
                        Some(data) => self.file.write_all_at(data, op.offset).map(|()| Vec::new()),
                        None => {
                            let mut buf = vec![0u8; op.read_len];
                            self.file.read_exact_at(&mut buf, op.offset).map(|()| buf)
                        }
                    };
                    let bytes = op.write.as_deref().map_or(op.read_len, <[u8]>::len);
                    WorkerResult {
                        index: op.index,
                        lane: 0,
                        latency: SimDuration::from_nanos(start.elapsed().as_nanos() as u64),
                        write_bytes: result.is_ok().then_some((op.write.is_some(), bytes)),
                        result: result.map_err(DeviceError::from),
                    }
                })
                .collect();
        }
        let first_id = self.next_job_id;
        let mut indexes = Vec::with_capacity(wave.len());
        for op in wave {
            let id = self.next_job_id();
            indexes.push(op.index);
            self.pool.push(PoolJob {
                id,
                offset: op.offset,
                write: op.write,
                read_len: op.read_len,
            });
        }
        let count = indexes.len();
        let shared = &self.pool.shared;
        let mut collected: Vec<WorkerResult> = Vec::with_capacity(count);
        let mut done = shared.done.lock().expect("pool done lock");
        while collected.len() < count {
            // Pull this wave's results; anything else in the queue (ring
            // completions) stays for its own reap.
            let mut i = 0;
            while i < done.len() {
                let id = done[i].id;
                if id >= first_id && id < first_id + count as u64 {
                    let d = done.swap_remove(i);
                    collected.push(WorkerResult {
                        index: indexes[(d.id - first_id) as usize],
                        lane: 0, // accounting lanes assigned per wave afterwards
                        latency: d.latency,
                        write_bytes: d.write_bytes,
                        result: d.result,
                    });
                } else {
                    i += 1;
                }
            }
            if collected.len() < count {
                done = shared.done_cv.wait(done).expect("pool done lock");
            }
        }
        collected
    }

    /// Accounts one finished request in the device counters.
    fn account(&mut self, write_bytes: Option<(bool, usize)>, latency: SimDuration) {
        match write_bytes {
            Some((true, bytes)) => {
                self.stats.writes += 1;
                self.stats.bytes_written += bytes as u64;
                self.stats.write_time += latency;
            }
            Some((false, bytes)) => {
                self.stats.reads += 1;
                self.stats.bytes_read += bytes as u64;
                self.stats.read_time += latency;
            }
            None => {}
        }
    }

    /// Handles one finished pool job of the ring path: accounts it,
    /// releases its dependents, and delivers its completion — into `ring`
    /// if it belongs to it, parked for its own ring otherwise.
    fn process_done(&mut self, done: DoneJob, ring: &mut CompletionRing) {
        let meta = self
            .ring_dispatched
            .remove(&done.id)
            .expect("pool result for a request this device dispatched");
        self.account(done.write_bytes, done.latency);
        // Release dependents and dispatch the newly unblocked ones in
        // admission order.
        let mut unblocked = Vec::new();
        let mut i = 0;
        while i < self.ring_blocked.len() {
            let blocked = &mut self.ring_blocked[i];
            blocked.blockers.retain(|&b| b != done.id);
            if blocked.blockers.is_empty() {
                unblocked.push(self.ring_blocked.remove(i));
            } else {
                i += 1;
            }
        }
        for blocked in unblocked {
            self.ring_dispatched.insert(blocked.job.id, blocked.meta);
            self.pool.push(blocked.job);
        }
        if meta.epoch == ring.epoch() {
            ring.finish(meta.ticket, done.latency, done.result);
        } else {
            self.parked.entry(meta.epoch).or_default().push((
                meta.ticket,
                done.latency,
                done.result,
            ));
        }
    }
}

impl Device for FileDevice {
    fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, buf.len())?;
        let start = Instant::now();
        self.file.read_exact_at(buf, offset)?;
        let lat = SimDuration::from_nanos(start.elapsed().as_nanos() as u64);
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        self.stats.read_time += lat;
        Ok(lat)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, data.len())?;
        let start = Instant::now();
        self.file.write_all_at(data, offset)?;
        let lat = SimDuration::from_nanos(start.elapsed().as_nanos() as u64);
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.write_time += lat;
        Ok(lat)
    }

    fn erase_block(&mut self, _block: u64) -> Result<SimDuration> {
        Err(DeviceError::Unsupported("erase_block on a file-backed device"))
    }

    fn trim(&mut self, offset: u64, len: u64) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, len as usize)?;
        // No hole punching: the hint is counted and dropped.
        self.stats.trims += 1;
        Ok(SimDuration::ZERO)
    }

    /// Native blocking submission over the persistent worker pool.
    ///
    /// Requests are validated in submission order; reads and writes whose
    /// ranges are independent run concurrently on the pool (positioned I/O
    /// on the shared file), while conflicting requests are separated into
    /// ordered waves, preserving sequential semantics. Completion lanes
    /// are assigned per wave from the measured latencies, so
    /// [`queue::batch_latency`](crate::queue::batch_latency) yields the
    /// sum of the per-wave makespans.
    ///
    /// Write payloads are *moved* to the worker pool (the caller's
    /// `IoRequest::Write` data is left empty) — requests are treated as
    /// consumed by submission.
    fn submit(&mut self, requests: &mut [IoRequest]) -> Result<Vec<IoCompletion>> {
        self.stats.batches_submitted += 1;
        self.stats.requests_submitted += requests.len() as u64;
        let lanes = self.profile.queue.effective_lanes(requests.len());

        // Phase 1 (submission order): validate, resolve trims/erases, and
        // plan the real I/O.
        let mut completions: Vec<Option<IoCompletion>> = Vec::with_capacity(requests.len());
        let mut planned: Vec<PlannedOp> = Vec::new();
        let mut trims = 0u64;
        for (index, request) in requests.iter_mut().enumerate() {
            let done = |latency, result| Some(IoCompletion { index, lane: 0, latency, result });
            let planned_op = match request {
                IoRequest::Read { offset, len } => {
                    match self.geometry.check_bounds(*offset, *len) {
                        Err(e) => {
                            completions.push(done(SimDuration::ZERO, Err(e)));
                            continue;
                        }
                        Ok(()) => PlannedOp { index, offset: *offset, write: None, read_len: *len },
                    }
                }
                IoRequest::Write { offset, data } => {
                    match self.geometry.check_bounds(*offset, data.len()) {
                        Err(e) => {
                            completions.push(done(SimDuration::ZERO, Err(e)));
                            continue;
                        }
                        Ok(()) => PlannedOp {
                            index,
                            offset: *offset,
                            write: Some(std::mem::take(data)),
                            read_len: 0,
                        },
                    }
                }
                IoRequest::Erase { .. } => {
                    completions.push(done(
                        SimDuration::ZERO,
                        Err(DeviceError::Unsupported("erase_block on a file-backed device")),
                    ));
                    continue;
                }
                IoRequest::Trim { offset, len } => {
                    match self.geometry.check_bounds(*offset, *len as usize) {
                        Err(e) => completions.push(done(SimDuration::ZERO, Err(e))),
                        Ok(()) => {
                            trims += 1;
                            completions.push(done(SimDuration::ZERO, Ok(Vec::new())));
                        }
                    }
                    continue;
                }
            };
            completions.push(None);
            planned.push(planned_op);
        }
        self.stats.trims += trims;

        // Phase 2: split the plan into conflict-free waves and run each
        // wave on the pool, assigning accounting lanes per wave from the
        // measured latencies.
        let mut results: Vec<WorkerResult> = Vec::with_capacity(planned.len());
        let mut wave: Vec<PlannedOp> = Vec::new();
        let mut wave_ranges: Vec<(u64, u64, bool)> = Vec::new();
        let flush =
            |device: &mut Self, wave: &mut Vec<PlannedOp>, results: &mut Vec<WorkerResult>| {
                if wave.is_empty() {
                    return;
                }
                let mut executed = device.run_wave(std::mem::take(wave));
                assign_wave_lanes(&mut executed, lanes);
                results.extend(executed);
            };
        for op in planned {
            let range = op.range();
            if wave_ranges.iter().any(|&prior| ranges_conflict(range, prior)) {
                flush(self, &mut wave, &mut results);
                wave_ranges.clear();
            }
            wave_ranges.push(range);
            wave.push(op);
        }
        flush(self, &mut wave, &mut results);

        // Phase 3: account and scatter the results back to batch order.
        for r in results {
            if r.lane != 0 {
                self.stats.requests_overlapped += 1;
            }
            self.account(r.write_bytes, r.latency);
            completions[r.index] = Some(IoCompletion {
                index: r.index,
                lane: r.lane,
                latency: r.latency,
                result: r.result,
            });
        }
        Ok(completions.into_iter().map(|c| c.expect("every request completed")).collect())
    }

    /// Native ring submission: independent requests go straight to the
    /// persistent pool; a request whose byte range conflicts with an
    /// in-flight request (of any ring on this device) is held back and
    /// dispatched the moment its last blocker retires, so overlapping
    /// ranges apply in admission order without a batch-wide barrier.
    ///
    /// On a single-worker pool (depth 1, or a one-core host) requests
    /// execute inline on the calling thread instead: a lone worker cannot
    /// overlap anything physically, and keeping the I/O on this thread
    /// keeps the measured latencies free of cross-thread handoff noise —
    /// the same carve-out the blocking wave path makes, so ring and
    /// barrier measurements stay comparable.
    fn submit_nowait(
        &mut self,
        requests: Vec<RingRequest>,
        ring: &mut CompletionRing,
    ) -> Result<Vec<IoTicket>> {
        self.stats.requests_submitted += requests.len() as u64;
        let stalls_before = ring.admission_stalls();
        // Inline execution is only safe while nothing is in flight on the
        // pool (results would otherwise race admission order on
        // conflicting ranges).
        let inline =
            self.pool.len() == 1 && self.ring_dispatched.is_empty() && self.ring_blocked.is_empty();
        if inline {
            let mut tickets = Vec::with_capacity(requests.len());
            for RingRequest { request, not_before } in requests {
                let ticket = ring.admit(&request, not_before);
                tickets.push(ticket);
                let (latency, write_bytes, result) = match &request {
                    IoRequest::Read { offset, len } => {
                        match self.geometry.check_bounds(*offset, *len) {
                            Err(e) => (SimDuration::ZERO, None, Err(e)),
                            Ok(()) => {
                                let start = Instant::now();
                                let mut buf = vec![0u8; *len];
                                let result =
                                    self.file.read_exact_at(&mut buf, *offset).map(|()| buf);
                                let lat =
                                    SimDuration::from_nanos(start.elapsed().as_nanos() as u64);
                                let ok = result.is_ok().then_some((false, *len));
                                (lat, ok, result.map_err(DeviceError::from))
                            }
                        }
                    }
                    IoRequest::Write { offset, data } => {
                        match self.geometry.check_bounds(*offset, data.len()) {
                            Err(e) => (SimDuration::ZERO, None, Err(e)),
                            Ok(()) => {
                                let start = Instant::now();
                                let result =
                                    self.file.write_all_at(data, *offset).map(|()| Vec::new());
                                let lat =
                                    SimDuration::from_nanos(start.elapsed().as_nanos() as u64);
                                let ok = result.is_ok().then_some((true, data.len()));
                                (lat, ok, result.map_err(DeviceError::from))
                            }
                        }
                    }
                    IoRequest::Erase { .. } => (
                        SimDuration::ZERO,
                        None,
                        Err(DeviceError::Unsupported("erase_block on a file-backed device")),
                    ),
                    IoRequest::Trim { offset, len } => {
                        match self.geometry.check_bounds(*offset, *len as usize) {
                            Err(e) => (SimDuration::ZERO, None, Err(e)),
                            Ok(()) => {
                                self.stats.trims += 1;
                                (SimDuration::ZERO, None, Ok(Vec::new()))
                            }
                        }
                    }
                };
                self.account(write_bytes, latency);
                ring.finish(ticket, latency, result);
            }
            self.stats.ring_depth_high_water =
                self.stats.ring_depth_high_water.max(ring.depth_high_water() as u64);
            self.stats.ring_admission_stalls += ring.admission_stalls() - stalls_before;
            return Ok(tickets);
        }
        let mut tickets = Vec::with_capacity(requests.len());
        for RingRequest { request, not_before } in requests {
            let ticket = ring.admit(&request, not_before);
            tickets.push(ticket);
            let (offset, write, read_len) = match request {
                IoRequest::Read { offset, len } => {
                    if let Err(e) = self.geometry.check_bounds(offset, len) {
                        ring.finish(ticket, SimDuration::ZERO, Err(e));
                        continue;
                    }
                    (offset, None, len)
                }
                IoRequest::Write { offset, data } => {
                    if let Err(e) = self.geometry.check_bounds(offset, data.len()) {
                        ring.finish(ticket, SimDuration::ZERO, Err(e));
                        continue;
                    }
                    (offset, Some(data), 0)
                }
                IoRequest::Erase { .. } => {
                    ring.finish(
                        ticket,
                        SimDuration::ZERO,
                        Err(DeviceError::Unsupported("erase_block on a file-backed device")),
                    );
                    continue;
                }
                IoRequest::Trim { offset, len } => {
                    match self.geometry.check_bounds(offset, len as usize) {
                        Err(e) => ring.finish(ticket, SimDuration::ZERO, Err(e)),
                        Ok(()) => {
                            self.stats.trims += 1;
                            ring.finish(ticket, SimDuration::ZERO, Ok(Vec::new()));
                        }
                    }
                    continue;
                }
            };
            let is_read = write.is_none();
            let end = offset + write.as_deref().map_or(read_len, <[u8]>::len) as u64;
            let range = (offset, end, is_read);
            // Dependencies: every in-flight request (dispatched or still
            // blocked) whose range conflicts. Blocked blockers make the
            // ordering transitive.
            let mut blockers: Vec<u64> = self
                .ring_dispatched
                .iter()
                .filter(|(_, m)| {
                    m.range.is_some_and(|(s, e)| ranges_conflict(range, (s, e, m.is_read)))
                })
                .map(|(&id, _)| id)
                .collect();
            blockers.extend(
                self.ring_blocked
                    .iter()
                    .filter(|b| {
                        b.meta
                            .range
                            .is_some_and(|(s, e)| ranges_conflict(range, (s, e, b.meta.is_read)))
                    })
                    .map(|b| b.job.id),
            );
            let id = self.next_job_id();
            let job = PoolJob { id, offset, write, read_len };
            let meta =
                RingMeta { ticket, epoch: ring.epoch(), range: Some((offset, end)), is_read };
            if blockers.is_empty() {
                self.ring_dispatched.insert(id, meta);
                self.pool.push(job);
            } else {
                self.ring_blocked.push(BlockedRingJob { job, meta, blockers });
            }
        }
        self.stats.ring_depth_high_water =
            self.stats.ring_depth_high_water.max(ring.depth_high_water() as u64);
        self.stats.ring_admission_stalls += ring.admission_stalls() - stalls_before;
        Ok(tickets)
    }

    /// Waits until at least `min` completions of `ring` are ready (fewer
    /// only if fewer are in flight), processing pool results — including
    /// results belonging to other rings sharing this device, which are
    /// parked for their own reap — as they arrive.
    fn reap(&mut self, ring: &mut CompletionRing, min: usize) -> Result<Vec<RingCompletion>> {
        let min = min.max(1);
        let stalls_before = ring.admission_stalls();
        loop {
            // Results of this ring processed during another ring's reap.
            if let Some(parked) = self.parked.remove(&ring.epoch()) {
                for (ticket, latency, result) in parked {
                    ring.finish(ticket, latency, result);
                }
            }
            let arrived: Vec<DoneJob> = {
                let mut done = self.pool.shared.done.lock().expect("pool done lock");
                let ring_ids: Vec<usize> = (0..done.len())
                    .rev()
                    .filter(|&i| self.ring_dispatched.contains_key(&done[i].id))
                    .collect();
                ring_ids.into_iter().map(|i| done.swap_remove(i)).collect()
            };
            for done in arrived {
                self.process_done(done, ring);
            }
            if ring.ready_len() >= min.min(ring.in_flight()) || ring.in_flight() == 0 {
                break;
            }
            // Nothing ready yet: wait for the pool to finish something.
            let shared = &self.pool.shared;
            let done = shared.done.lock().expect("pool done lock");
            if done.iter().any(|d| self.ring_dispatched.contains_key(&d.id)) {
                continue;
            }
            drop(shared.done_cv.wait(done).expect("pool done lock"));
        }
        let out = ring.reap(usize::MAX);
        self.stats.requests_reaped += out.len() as u64;
        self.stats.requests_overlapped += out.iter().filter(|c| c.lane != 0).count() as u64;
        // Stalls surface at finish time, which for pooled execution happens
        // here (and in `process_done` during another ring's reap, whose
        // results are parked and finished above), so the delta is taken
        // across the whole reap.
        self.stats.ring_admission_stalls += ring.admission_stalls() - stalls_before;
        Ok(out)
    }

    fn stats(&self) -> IoStats {
        self.stats.clone()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::batch_latency;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("flashsim-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn open_existing_preserves_contents() {
        let path = temp_path("reopen");
        {
            let mut dev = FileDevice::create(&path, 1 << 20).unwrap();
            dev.write_at(8192, b"survives reopen").unwrap();
        }
        {
            let mut dev = FileDevice::open_existing(&path, 4).unwrap();
            assert_eq!(dev.geometry().capacity, 1 << 20, "capacity comes from the file");
            let mut buf = [0u8; 15];
            dev.read_at(8192, &mut buf).unwrap();
            assert_eq!(&buf, b"survives reopen");
        }
        // `create` on the same path truncates — the opposite contract.
        let mut dev = FileDevice::create(&path, 1 << 20).unwrap();
        let mut buf = [0u8; 15];
        dev.read_at(8192, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 15]);
        drop(dev);
        std::fs::remove_file(&path).ok();
        assert!(FileDevice::open_existing(&path, 4).is_err(), "missing image must not be created");
    }

    #[test]
    fn file_round_trip() {
        let path = temp_path("roundtrip");
        {
            let mut dev = FileDevice::create(&path, 1 << 20).unwrap();
            dev.write_at(4096, b"persisted bytes").unwrap();
            let mut buf = [0u8; 15];
            dev.read_at(4096, &mut buf).unwrap();
            assert_eq!(&buf, b"persisted bytes");
            assert_eq!(dev.stats().writes, 1);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_device_respects_bounds() {
        let path = temp_path("bounds");
        {
            let mut dev = FileDevice::create(&path, 8192).unwrap();
            assert!(dev.write_at(8192, &[1]).is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let path = temp_path("zerocap");
        assert!(FileDevice::create(&path, 0).is_err());
        assert!(FileDevice::with_queue_depth(&path, 4096, 0).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pool_is_persistent_and_sized_by_depth_and_cores() {
        let path = temp_path("pool-size");
        {
            let dev = FileDevice::with_queue_depth(&path, 1 << 20, 4).unwrap();
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            assert_eq!(dev.pool_workers(), 4.min(cores));
            let serial = FileDevice::with_queue_depth(&path, 1 << 20, 1).unwrap();
            assert_eq!(serial.pool_workers(), 1);
        } // drop shuts both pools down without hanging
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn submit_runs_disjoint_requests_on_the_pool() {
        let path = temp_path("submit-pool");
        {
            let mut dev = FileDevice::with_queue_depth(&path, 1 << 20, 4).unwrap();
            let mut reqs: Vec<IoRequest> =
                (0..16u64).map(|i| IoRequest::write(i * 4096, vec![i as u8; 4096])).collect();
            let completions = dev.submit(&mut reqs).unwrap();
            assert!(completions.iter().all(|c| c.result.is_ok()));
            assert!(completions.iter().any(|c| c.lane != 0), "pool must be used");
            assert!(batch_latency(&completions) > SimDuration::ZERO);
            // Every slot really landed.
            for i in 0..16u64 {
                let mut buf = [0u8; 4096];
                dev.read_at(i * 4096, &mut buf).unwrap();
                assert!(buf.iter().all(|&b| b == i as u8), "slot {i}");
            }
            let s = dev.stats();
            assert_eq!(s.batches_submitted, 1);
            assert_eq!(s.requests_submitted, 16);
            assert!(s.requests_overlapped > 0);
            assert_eq!(s.writes, 16);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn submit_keeps_conflicting_writes_in_order() {
        let path = temp_path("submit-conflict");
        {
            let mut dev = FileDevice::with_queue_depth(&path, 1 << 20, 8).unwrap();
            // 32 conflicting writes to the same page: last one must win.
            let mut reqs: Vec<IoRequest> =
                (0..32u64).map(|i| IoRequest::write(0, vec![i as u8; 4096])).collect();
            reqs.push(IoRequest::read(0, 4096));
            let completions = dev.submit(&mut reqs).unwrap();
            assert!(completions.iter().all(|c| c.result.is_ok()));
            assert_eq!(completions[32].result.as_ref().unwrap()[0], 31);
            // A fully conflicting batch degenerates to one-request waves:
            // everything on lane 0, elapsed time = the serial sum.
            assert!(completions.iter().all(|c| c.lane == 0));
            assert_eq!(batch_latency(&completions), crate::queue::total_busy_time(&completions));
            assert_eq!(dev.stats().requests_overlapped, 0);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_wave_batches_sum_their_wave_makespans() {
        let path = temp_path("submit-waves");
        {
            let mut dev = FileDevice::with_queue_depth(&path, 1 << 20, 2).unwrap();
            // Two waves of two disjoint writes each (requests 2 and 3
            // conflict with 0 and 1 respectively).
            let mut reqs = vec![
                IoRequest::write(0, vec![1u8; 64 * 1024]),
                IoRequest::write(128 * 1024, vec![2u8; 4096]),
                IoRequest::write(0, vec![3u8; 4096]),
                IoRequest::write(128 * 1024, vec![4u8; 64 * 1024]),
            ];
            let completions = dev.submit(&mut reqs).unwrap();
            assert!(completions.iter().all(|c| c.result.is_ok()));
            // Elapsed must be the sum of the per-wave makespans — never
            // less (lane sums must not interleave across waves).
            let expected = completions[0].latency.max(completions[1].latency)
                + completions[2].latency.max(completions[3].latency);
            assert_eq!(batch_latency(&completions), expected);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn submit_reports_per_request_errors() {
        let path = temp_path("submit-errors");
        {
            let mut dev = FileDevice::with_queue_depth(&path, 8192, 2).unwrap();
            let mut reqs = vec![
                IoRequest::write(0, vec![5u8; 100]),
                IoRequest::Erase { block: 0 },
                IoRequest::read(8192, 1),
                IoRequest::Trim { offset: 0, len: 100 },
                IoRequest::read(0, 100),
            ];
            let completions = dev.submit(&mut reqs).unwrap();
            assert!(completions[0].result.is_ok());
            assert!(matches!(completions[1].result, Err(DeviceError::Unsupported(_))));
            assert!(matches!(completions[2].result, Err(DeviceError::OutOfBounds { .. })));
            assert!(completions[3].result.is_ok());
            assert_eq!(completions[4].result.as_ref().unwrap(), &vec![5u8; 100]);
            assert_eq!(dev.stats().trims, 1);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ring_streams_disjoint_requests_without_waiting() {
        let path = temp_path("ring-stream");
        {
            let mut dev = FileDevice::with_queue_depth(&path, 1 << 20, 4).unwrap();
            let mut ring = CompletionRing::for_queue(dev.queue());
            let writes: Vec<RingRequest> = (0..8u64)
                .map(|i| RingRequest::new(IoRequest::write(i * 4096, vec![i as u8; 4096])))
                .collect();
            let tickets = dev.submit_nowait(writes, &mut ring).unwrap();
            assert_eq!(tickets.len(), 8);
            assert_eq!(ring.in_flight(), 8);
            let mut reaped = 0;
            while ring.in_flight() > 0 {
                let done = dev.reap(&mut ring, 1).unwrap();
                assert!(!done.is_empty());
                for c in &done {
                    assert!(c.result.is_ok(), "{:?}", c.result);
                }
                reaped += done.len();
            }
            assert_eq!(reaped, 8);
            assert!(ring.makespan() > SimDuration::ZERO);
            // Every write really landed.
            for i in 0..8u64 {
                let mut buf = [0u8; 4096];
                dev.read_at(i * 4096, &mut buf).unwrap();
                assert!(buf.iter().all(|&b| b == i as u8), "slot {i}");
            }
            let s = dev.stats();
            assert_eq!(s.requests_reaped, 8);
            assert!(s.ring_depth_high_water >= 8);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ring_keeps_conflicting_requests_in_admission_order() {
        let path = temp_path("ring-conflict");
        {
            let mut dev = FileDevice::with_queue_depth(&path, 1 << 20, 8).unwrap();
            let mut ring = CompletionRing::for_queue(dev.queue());
            // 16 writes to one page followed by a read: the read must see
            // the last write even though everything was submitted without
            // waiting.
            let mut reqs: Vec<RingRequest> = (0..16u64)
                .map(|i| RingRequest::new(IoRequest::write(0, vec![i as u8; 4096])))
                .collect();
            reqs.push(RingRequest::new(IoRequest::read(0, 4096)));
            let tickets = dev.submit_nowait(reqs, &mut ring).unwrap();
            let read_ticket = *tickets.last().unwrap();
            let mut read_data = None;
            while ring.in_flight() > 0 {
                for c in dev.reap(&mut ring, 1).unwrap() {
                    let data = c.result.unwrap();
                    if c.ticket == read_ticket {
                        read_data = Some(data);
                    }
                }
            }
            assert_eq!(read_data.unwrap()[0], 15, "read sees the last admitted write");
            assert!(ring.admission_stalls() > 0, "conflict chain must stall admissions");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ring_reports_per_request_errors_without_aborting() {
        let path = temp_path("ring-errors");
        {
            let mut dev = FileDevice::with_queue_depth(&path, 8192, 2).unwrap();
            let mut ring = CompletionRing::for_queue(dev.queue());
            let reqs = vec![
                RingRequest::new(IoRequest::write(0, vec![7u8; 64])),
                RingRequest::new(IoRequest::Erase { block: 0 }),
                RingRequest::new(IoRequest::read(8192, 1)),
                RingRequest::new(IoRequest::Trim { offset: 0, len: 64 }),
                RingRequest::new(IoRequest::read(0, 64)),
            ];
            let tickets = dev.submit_nowait(reqs, &mut ring).unwrap();
            let mut results: HashMap<u64, Result<Vec<u8>>> = HashMap::new();
            while ring.in_flight() > 0 {
                for c in dev.reap(&mut ring, 1).unwrap() {
                    results.insert(c.ticket.id(), c.result);
                }
            }
            assert!(results[&tickets[0].id()].is_ok());
            assert!(matches!(results[&tickets[1].id()], Err(DeviceError::Unsupported(_))));
            assert!(matches!(results[&tickets[2].id()], Err(DeviceError::OutOfBounds { .. })));
            assert!(results[&tickets[3].id()].is_ok());
            assert_eq!(results[&tickets[4].id()].as_ref().unwrap(), &vec![7u8; 64]);
            assert_eq!(dev.stats().trims, 1);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn two_rings_share_the_device_without_crosstalk() {
        let path = temp_path("ring-epochs");
        {
            let mut dev = FileDevice::with_queue_depth(&path, 1 << 20, 4).unwrap();
            dev.write_at(0, &[1u8; 4096]).unwrap();
            dev.write_at(4096, &[2u8; 4096]).unwrap();
            let mut ring_a = CompletionRing::for_queue(dev.queue());
            let mut ring_b = CompletionRing::for_queue(dev.queue());
            dev.submit_nowait(vec![RingRequest::new(IoRequest::read(0, 4096))], &mut ring_a)
                .unwrap();
            dev.submit_nowait(vec![RingRequest::new(IoRequest::read(4096, 4096))], &mut ring_b)
                .unwrap();
            // Reaping B first may park A's result; A still gets it later.
            let b = dev.reap(&mut ring_b, 1).unwrap();
            assert_eq!(b.len(), 1);
            assert_eq!(b[0].result.as_ref().unwrap()[0], 2);
            let a = dev.reap(&mut ring_a, 1).unwrap();
            assert_eq!(a.len(), 1);
            assert_eq!(a[0].result.as_ref().unwrap()[0], 1);
        }
        std::fs::remove_file(&path).ok();
    }
}
