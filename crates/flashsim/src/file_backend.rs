//! Real-file storage backend.
//!
//! [`FileDevice`] stores bytes in an actual file on the host filesystem and
//! reports *measured wall-clock* latencies instead of simulated ones. It
//! exists so the data-structure layers can also be exercised against real
//! storage (the paper's prototype ran on ext3 files over real SSDs); the
//! simulated devices remain the default for reproducible experiments.
//!
//! Submissions are executed with **real overlapped I/O**: a batch is spread
//! over a small worker pool (`pread`/`pwrite` style positioned I/O on the
//! shared file, at most one worker per host core), and the batch completes
//! in max-over-lanes time instead of the sum of the per-request times.
//! Requests whose byte ranges conflict are kept in submission order by
//! executing the batch in *waves*: a request that conflicts with an earlier
//! request of the same batch starts a new wave, and waves run one after
//! another. Accounting lanes are assigned per wave from the *measured*
//! latencies (LPT schedule, busiest lane relabelled to lane 0), which makes
//! [`queue::batch_latency`](crate::queue::batch_latency) equal the modelled
//! elapsed time of the whole batch — the sum of the per-wave makespans.
//!
//! Lanes model the **device queue**, exactly as the simulated backends do:
//! on a host with fewer cores than the queue depth, physical overlap is
//! smaller than the lane count, but the completion accounting still
//! reflects what a device with that queue depth would retire — that is the
//! metric the `io_queue_depth` harness sweeps (it reports host wall time
//! alongside for transparency).

use std::fs::{File, OpenOptions};
// Positioned I/O (pread/pwrite-style) lets the worker pool share one file
// handle without seat-of-the-pants seek locking; it pins flashsim to Unix
// hosts, which is what CI and the experiment environment run.
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::time::Instant;

use crate::device::Device;
use crate::error::{DeviceError, Result};
use crate::geometry::Geometry;
use crate::profiles::{DeviceProfile, MediumKind};
use crate::queue::{ranges_conflict, IoCompletion, IoRequest, QueueCapabilities};
use crate::stats::IoStats;
use crate::time::SimDuration;

/// Default worker-pool size (queue depth) for [`FileDevice::create`].
pub const DEFAULT_FILE_QUEUE_DEPTH: usize = 8;

/// A device backed by a real file, reporting wall-clock latencies.
#[derive(Debug)]
pub struct FileDevice {
    profile: DeviceProfile,
    geometry: Geometry,
    file: File,
    stats: IoStats,
    /// Host core count, cached at construction: the worker pool never
    /// exceeds it (oversubscription would only add scheduler noise to the
    /// measured per-request latencies).
    host_parallelism: usize,
}

/// One executable request of a submission, planned for the worker pool.
struct PlannedOp<'a> {
    /// Index in the submitted batch.
    index: usize,
    offset: u64,
    /// `Some(data)` for writes, `None` for reads.
    write: Option<&'a [u8]>,
    /// Read length (0 for writes).
    read_len: usize,
}

/// Assigns accounting lanes to one executed wave from its *measured*
/// latencies: requests are LPT-scheduled onto the queue's lanes and lane
/// ids are relabelled busiest-first. Mapping every wave's busiest lane to
/// lane 0 makes the global per-lane sums honest: lane 0 accumulates
/// exactly the sum of the per-wave makespans (the elapsed time of the
/// sequentially executed waves) and no other lane can exceed it.
fn assign_wave_lanes(results: &mut [WorkerResult], lanes: usize) {
    let lanes = lanes.min(results.len()).max(1);
    let mut order: Vec<usize> = (0..results.len()).collect();
    order.sort_by(|&a, &b| results[b].latency.cmp(&results[a].latency));
    let mut busy = vec![SimDuration::ZERO; lanes];
    let mut lane_of = vec![0usize; results.len()];
    for &i in &order {
        let lane = busy.iter().enumerate().min_by_key(|(_, b)| **b).map(|(l, _)| l).unwrap_or(0);
        lane_of[i] = lane;
        busy[lane] += results[i].latency;
    }
    let mut by_busy: Vec<usize> = (0..lanes).collect();
    by_busy.sort_by(|&a, &b| busy[b].cmp(&busy[a]));
    let mut rank = vec![0usize; lanes];
    for (r, &l) in by_busy.iter().enumerate() {
        rank[l] = r;
    }
    for (i, result) in results.iter_mut().enumerate() {
        result.lane = rank[lane_of[i]];
    }
}

/// Per-request outcome produced by a worker.
struct WorkerResult {
    index: usize,
    lane: usize,
    latency: SimDuration,
    /// `(was_write, bytes_transferred)` for stats accounting.
    write_bytes: Option<(bool, usize)>,
    result: Result<Vec<u8>>,
}

impl FileDevice {
    /// Creates (or truncates) a backing file of `capacity` bytes with the
    /// default queue depth of [`DEFAULT_FILE_QUEUE_DEPTH`] workers.
    pub fn create<P: AsRef<Path>>(path: P, capacity: u64) -> Result<Self> {
        Self::with_queue_depth(path, capacity, DEFAULT_FILE_QUEUE_DEPTH)
    }

    /// Creates (or truncates) a backing file of `capacity` bytes whose
    /// submissions run on a pool of `queue_depth` workers (1 = strictly
    /// serial, like the per-op methods).
    pub fn with_queue_depth<P: AsRef<Path>>(
        path: P,
        capacity: u64,
        queue_depth: usize,
    ) -> Result<Self> {
        if capacity == 0 {
            return Err(DeviceError::InvalidConfig("capacity must be non-zero".into()));
        }
        if queue_depth == 0 {
            return Err(DeviceError::InvalidConfig("queue_depth must be non-zero".into()));
        }
        let page = 4096u32;
        let capacity = capacity.div_ceil(page as u64) * page as u64;
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        file.set_len(capacity)?;
        let profile = DeviceProfile {
            name: "File-backed device",
            kind: MediumKind::Ssd,
            page_size: page,
            block_size: page,
            queue: QueueCapabilities::overlapped(queue_depth),
            ..DeviceProfile::intel_x18m()
        };
        let geometry = Geometry::new(capacity, page, page)?;
        let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
        Ok(FileDevice { profile, geometry, file, stats: IoStats::default(), host_parallelism })
    }

    /// Runs one conflict-free wave of planned operations on the worker
    /// pool.
    ///
    /// The pool is sized `min(queue lanes, host parallelism, wave size)`:
    /// lanes model what is *in flight at the device* (and drive the
    /// max-over-lanes completion accounting), while worker threads are an
    /// execution vehicle, so oversubscribing the host's cores would only
    /// add scheduler noise to the measured per-request latencies without
    /// any real overlap.
    fn run_wave(&self, wave: &[PlannedOp<'_>], lanes: usize) -> Vec<WorkerResult> {
        let file = &self.file;
        let workers = lanes.min(self.host_parallelism).min(wave.len()).max(1);
        let execute = |op: &PlannedOp<'_>| -> WorkerResult {
            let start = Instant::now();
            let result = match op.write {
                Some(data) => file.write_all_at(data, op.offset).map(|()| Vec::new()),
                None => {
                    let mut buf = vec![0u8; op.read_len];
                    file.read_exact_at(&mut buf, op.offset).map(|()| buf)
                }
            };
            let bytes = op.write.map_or(op.read_len, <[u8]>::len);
            WorkerResult {
                index: op.index,
                lane: 0, // accounting lanes assigned per wave afterwards
                latency: SimDuration::from_nanos(start.elapsed().as_nanos() as u64),
                write_bytes: result.is_ok().then_some((op.write.is_some(), bytes)),
                result: result.map_err(DeviceError::from),
            }
        };
        if workers == 1 {
            return wave.iter().map(execute).collect();
        }
        let mut results: Vec<WorkerResult> = Vec::with_capacity(wave.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let execute = &execute;
                    scope.spawn(move || {
                        // Round-robin assignment keeps the workers balanced.
                        wave.iter().skip(worker).step_by(workers).map(execute).collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                results.extend(handle.join().expect("file worker panicked"));
            }
        });
        results
    }
}

impl Device for FileDevice {
    fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, buf.len())?;
        let start = Instant::now();
        self.file.read_exact_at(buf, offset)?;
        let lat = SimDuration::from_nanos(start.elapsed().as_nanos() as u64);
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        self.stats.read_time += lat;
        Ok(lat)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, data.len())?;
        let start = Instant::now();
        self.file.write_all_at(data, offset)?;
        let lat = SimDuration::from_nanos(start.elapsed().as_nanos() as u64);
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.write_time += lat;
        Ok(lat)
    }

    fn erase_block(&mut self, _block: u64) -> Result<SimDuration> {
        Err(DeviceError::Unsupported("erase_block on a file-backed device"))
    }

    fn trim(&mut self, offset: u64, len: u64) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, len as usize)?;
        // No hole punching: the hint is counted and dropped.
        self.stats.trims += 1;
        Ok(SimDuration::ZERO)
    }

    /// Native submission over the worker pool.
    ///
    /// Requests are validated in submission order; reads and writes whose
    /// ranges are independent run concurrently on the pool (positioned I/O
    /// on the shared file), while conflicting requests are separated into
    /// ordered waves, preserving sequential semantics. Completion lanes
    /// report which worker ran each request, so
    /// [`queue::batch_latency`](crate::queue::batch_latency) yields the
    /// max-over-lanes elapsed time of the overlapped batch.
    fn submit(&mut self, requests: &mut [IoRequest]) -> Result<Vec<IoCompletion>> {
        self.stats.batches_submitted += 1;
        self.stats.requests_submitted += requests.len() as u64;
        let lanes = self.profile.queue.effective_lanes(requests.len());

        // Phase 1 (submission order): validate, resolve trims/erases, and
        // plan the real I/O.
        let mut completions: Vec<Option<IoCompletion>> = Vec::with_capacity(requests.len());
        let mut planned: Vec<PlannedOp<'_>> = Vec::new();
        let mut trims = 0u64;
        for (index, request) in requests.iter().enumerate() {
            let done = |latency, result| Some(IoCompletion { index, lane: 0, latency, result });
            let planned_op = match request {
                IoRequest::Read { offset, len } => {
                    match self.geometry.check_bounds(*offset, *len) {
                        Err(e) => {
                            completions.push(done(SimDuration::ZERO, Err(e)));
                            continue;
                        }
                        Ok(()) => PlannedOp { index, offset: *offset, write: None, read_len: *len },
                    }
                }
                IoRequest::Write { offset, data } => {
                    match self.geometry.check_bounds(*offset, data.len()) {
                        Err(e) => {
                            completions.push(done(SimDuration::ZERO, Err(e)));
                            continue;
                        }
                        Ok(()) => {
                            PlannedOp { index, offset: *offset, write: Some(data), read_len: 0 }
                        }
                    }
                }
                IoRequest::Erase { .. } => {
                    completions.push(done(
                        SimDuration::ZERO,
                        Err(DeviceError::Unsupported("erase_block on a file-backed device")),
                    ));
                    continue;
                }
                IoRequest::Trim { offset, len } => {
                    match self.geometry.check_bounds(*offset, *len as usize) {
                        Err(e) => completions.push(done(SimDuration::ZERO, Err(e))),
                        Ok(()) => {
                            trims += 1;
                            completions.push(done(SimDuration::ZERO, Ok(Vec::new())));
                        }
                    }
                    continue;
                }
            };
            completions.push(None);
            planned.push(planned_op);
        }
        self.stats.trims += trims;

        // Phase 2: split the plan into conflict-free waves and run each
        // wave on the pool, assigning accounting lanes per wave from the
        // measured latencies.
        let plan_range = |op: &PlannedOp<'_>| {
            let end = op.offset + op.write.map_or(op.read_len, <[u8]>::len) as u64;
            (op.offset, end, op.write.is_none())
        };
        let mut results: Vec<WorkerResult> = Vec::with_capacity(planned.len());
        let mut wave_start = 0usize;
        let mut wave_ranges: Vec<(u64, u64, bool)> = Vec::new();
        for i in 0..=planned.len() {
            let conflict = match planned.get(i) {
                None => true, // flush the final wave
                Some(op) => {
                    let range = plan_range(op);
                    wave_ranges.iter().any(|&prior| ranges_conflict(range, prior))
                }
            };
            if conflict && i > wave_start {
                let mut wave = self.run_wave(&planned[wave_start..i], lanes);
                assign_wave_lanes(&mut wave, lanes);
                results.extend(wave);
                wave_start = i;
                wave_ranges.clear();
            }
            if let Some(op) = planned.get(i) {
                wave_ranges.push(plan_range(op));
            }
        }

        // Phase 3: account and scatter the results back to batch order.
        for r in results {
            if r.lane != 0 {
                self.stats.requests_overlapped += 1;
            }
            match r.write_bytes {
                Some((true, bytes)) => {
                    self.stats.writes += 1;
                    self.stats.bytes_written += bytes as u64;
                    self.stats.write_time += r.latency;
                }
                Some((false, bytes)) => {
                    self.stats.reads += 1;
                    self.stats.bytes_read += bytes as u64;
                    self.stats.read_time += r.latency;
                }
                None => {}
            }
            completions[r.index] = Some(IoCompletion {
                index: r.index,
                lane: r.lane,
                latency: r.latency,
                result: r.result,
            });
        }
        Ok(completions.into_iter().map(|c| c.expect("every request completed")).collect())
    }

    fn stats(&self) -> IoStats {
        self.stats.clone()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::batch_latency;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("flashsim-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn file_round_trip() {
        let path = temp_path("roundtrip");
        {
            let mut dev = FileDevice::create(&path, 1 << 20).unwrap();
            dev.write_at(4096, b"persisted bytes").unwrap();
            let mut buf = [0u8; 15];
            dev.read_at(4096, &mut buf).unwrap();
            assert_eq!(&buf, b"persisted bytes");
            assert_eq!(dev.stats().writes, 1);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_device_respects_bounds() {
        let path = temp_path("bounds");
        {
            let mut dev = FileDevice::create(&path, 8192).unwrap();
            assert!(dev.write_at(8192, &[1]).is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let path = temp_path("zerocap");
        assert!(FileDevice::create(&path, 0).is_err());
        assert!(FileDevice::with_queue_depth(&path, 4096, 0).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn submit_runs_disjoint_requests_on_the_pool() {
        let path = temp_path("submit-pool");
        {
            let mut dev = FileDevice::with_queue_depth(&path, 1 << 20, 4).unwrap();
            let mut reqs: Vec<IoRequest> =
                (0..16u64).map(|i| IoRequest::write(i * 4096, vec![i as u8; 4096])).collect();
            let completions = dev.submit(&mut reqs).unwrap();
            assert!(completions.iter().all(|c| c.result.is_ok()));
            assert!(completions.iter().any(|c| c.lane != 0), "pool must be used");
            assert!(batch_latency(&completions) > SimDuration::ZERO);
            // Every slot really landed.
            for i in 0..16u64 {
                let mut buf = [0u8; 4096];
                dev.read_at(i * 4096, &mut buf).unwrap();
                assert!(buf.iter().all(|&b| b == i as u8), "slot {i}");
            }
            let s = dev.stats();
            assert_eq!(s.batches_submitted, 1);
            assert_eq!(s.requests_submitted, 16);
            assert!(s.requests_overlapped > 0);
            assert_eq!(s.writes, 16);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn submit_keeps_conflicting_writes_in_order() {
        let path = temp_path("submit-conflict");
        {
            let mut dev = FileDevice::with_queue_depth(&path, 1 << 20, 8).unwrap();
            // 32 conflicting writes to the same page: last one must win.
            let mut reqs: Vec<IoRequest> =
                (0..32u64).map(|i| IoRequest::write(0, vec![i as u8; 4096])).collect();
            reqs.push(IoRequest::read(0, 4096));
            let completions = dev.submit(&mut reqs).unwrap();
            assert!(completions.iter().all(|c| c.result.is_ok()));
            assert_eq!(completions[32].result.as_ref().unwrap()[0], 31);
            // A fully conflicting batch degenerates to one-request waves:
            // everything on lane 0, elapsed time = the serial sum.
            assert!(completions.iter().all(|c| c.lane == 0));
            assert_eq!(batch_latency(&completions), crate::queue::total_busy_time(&completions));
            assert_eq!(dev.stats().requests_overlapped, 0);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_wave_batches_sum_their_wave_makespans() {
        let path = temp_path("submit-waves");
        {
            let mut dev = FileDevice::with_queue_depth(&path, 1 << 20, 2).unwrap();
            // Two waves of two disjoint writes each (requests 2 and 3
            // conflict with 0 and 1 respectively).
            let mut reqs = vec![
                IoRequest::write(0, vec![1u8; 64 * 1024]),
                IoRequest::write(128 * 1024, vec![2u8; 4096]),
                IoRequest::write(0, vec![3u8; 4096]),
                IoRequest::write(128 * 1024, vec![4u8; 64 * 1024]),
            ];
            let completions = dev.submit(&mut reqs).unwrap();
            assert!(completions.iter().all(|c| c.result.is_ok()));
            // Elapsed must be the sum of the per-wave makespans — never
            // less (lane sums must not interleave across waves).
            let expected = completions[0].latency.max(completions[1].latency)
                + completions[2].latency.max(completions[3].latency);
            assert_eq!(batch_latency(&completions), expected);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn submit_reports_per_request_errors() {
        let path = temp_path("submit-errors");
        {
            let mut dev = FileDevice::with_queue_depth(&path, 8192, 2).unwrap();
            let mut reqs = vec![
                IoRequest::write(0, vec![5u8; 100]),
                IoRequest::Erase { block: 0 },
                IoRequest::read(8192, 1),
                IoRequest::Trim { offset: 0, len: 100 },
                IoRequest::read(0, 100),
            ];
            let completions = dev.submit(&mut reqs).unwrap();
            assert!(completions[0].result.is_ok());
            assert!(matches!(completions[1].result, Err(DeviceError::Unsupported(_))));
            assert!(matches!(completions[2].result, Err(DeviceError::OutOfBounds { .. })));
            assert!(completions[3].result.is_ok());
            assert_eq!(completions[4].result.as_ref().unwrap(), &vec![5u8; 100]);
            assert_eq!(dev.stats().trims, 1);
        }
        std::fs::remove_file(&path).ok();
    }
}
