//! io_uring-style submission/completion queues for the [`Device`](crate::Device) boundary.
//!
//! The paper's media reward batched, sequential, page-granular I/O, and real
//! deployments drive them through explicit device queues (NCQ on SATA,
//! submission rings on NVMe/io_uring) rather than one blocking call at a
//! time. This module defines the request/completion vocabulary for that
//! style of access:
//!
//! * [`IoRequest`] — one read/write/erase/trim command;
//! * [`IoCompletion`] — per-request latency, execution *lane* and result;
//! * [`QueueCapabilities`] / [`OverlapModel`] — how many requests a device
//!   keeps in flight and whether they overlap in time;
//! * [`LaneScheduler`] — the greedy earliest-free-lane model shared by the
//!   simulated backends;
//! * [`batch_latency`] / [`total_busy_time`] — turn a completion set into
//!   the elapsed (makespan) or device-busy view of a submission;
//! * [`CompletionRing`] / [`IoTicket`] / [`RingRequest`] /
//!   [`RingCompletion`] — the submit-without-wait side of the queue:
//!   requests are admitted to a ring, tracked in flight with per-request
//!   completion timestamps, and reaped as they retire
//!   ([`Device::submit_nowait`](crate::Device::submit_nowait) /
//!   [`Device::reap`](crate::Device::reap)).
//!
//! ## Ordering and overlap guarantees
//!
//! Every [`Device::submit`](crate::Device::submit) implementation applies
//! the *data effects* of a batch in submission order, so a submission is
//! observationally equivalent (final device bytes, per-request results) to
//! issuing the same operations sequentially through the per-op methods.
//! What devices are free to do is overlap or reorder the *timing*: an SSD
//! runs independent requests on parallel lanes, a disk services the batch
//! in seek order, a file backend spreads requests over a worker pool. The
//! per-request [`IoCompletion::latency`] values are unchanged by
//! overlapping; the batch-level win shows up in [`batch_latency`], which is
//! the maximum over lanes instead of the sum over requests.

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::time::SimDuration;

/// One command in a submission batch.
///
/// Requests are self-contained (reads carry a length, not a caller buffer)
/// so a batch can be queued, reordered and completed out of band; read data
/// comes back in the matching [`IoCompletion`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoRequest {
    /// Read `len` bytes starting at byte `offset`.
    Read {
        /// Byte offset of the first byte to read.
        offset: u64,
        /// Number of bytes to read.
        len: usize,
    },
    /// Write `data` starting at byte `offset`.
    Write {
        /// Byte offset of the first byte to write.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Erase the erase block with index `block` (raw flash chips).
    Erase {
        /// Erase-block index.
        block: u64,
    },
    /// Declare `[offset, offset + len)` no longer live (a TRIM hint).
    Trim {
        /// Byte offset of the start of the trimmed range.
        offset: u64,
        /// Length of the trimmed range in bytes.
        len: u64,
    },
}

impl IoRequest {
    /// Convenience constructor for a read request.
    pub fn read(offset: u64, len: usize) -> Self {
        IoRequest::Read { offset, len }
    }

    /// Convenience constructor for a write request.
    pub fn write(offset: u64, data: Vec<u8>) -> Self {
        IoRequest::Write { offset, data }
    }

    /// The byte range this request touches, if it addresses bytes directly
    /// (`None` for erases, whose extent is block-size dependent). Used by
    /// backends that overlap requests to keep conflicting ones ordered.
    pub fn byte_range(&self) -> Option<(u64, u64)> {
        match self {
            IoRequest::Read { offset, len } => Some((*offset, *offset + *len as u64)),
            IoRequest::Write { offset, data } => Some((*offset, *offset + data.len() as u64)),
            IoRequest::Trim { offset, len } => Some((*offset, *offset + *len)),
            IoRequest::Erase { .. } => None,
        }
    }
}

/// Completion record for one submitted [`IoRequest`].
#[derive(Debug, Clone)]
pub struct IoCompletion {
    /// Index of the request within the submitted slice.
    pub index: usize,
    /// Queue lane the request executed on. Requests on different lanes
    /// overlapped in time; lane 0 is the only lane on serial devices.
    pub lane: usize,
    /// Simulated (or measured, for [`FileDevice`](crate::FileDevice))
    /// device-busy latency of this request alone.
    pub latency: SimDuration,
    /// Outcome: the bytes read (empty for non-reads), or the per-request
    /// error. A failed request never affects the other requests of the
    /// batch.
    pub result: Result<Vec<u8>>,
}

/// How concurrent requests in a submission share the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlapModel {
    /// One request at a time. Queueing can still help by letting the device
    /// *reorder* within its window (e.g. disk elevator scheduling), but the
    /// batch latency is the sum of the per-request latencies.
    Serial,
    /// Up to [`QueueCapabilities::max_queue_depth`] requests proceed
    /// concurrently on independent lanes; the batch latency is the makespan
    /// of the lane schedule.
    Overlapped,
}

/// A device's submission-queue shape: how deep its queue is and whether
/// queued requests overlap in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueCapabilities {
    /// Queue depth: how many requests the device considers at once (lanes
    /// for [`OverlapModel::Overlapped`], reorder window for
    /// [`OverlapModel::Serial`]).
    pub max_queue_depth: usize,
    /// Whether queued requests overlap in time.
    pub overlap: OverlapModel,
}

impl QueueCapabilities {
    /// A strictly serial device with no useful queue (depth 1).
    pub const fn serial() -> Self {
        QueueCapabilities { max_queue_depth: 1, overlap: OverlapModel::Serial }
    }

    /// A serial device that reorders requests within a window of `depth`
    /// (e.g. NCQ elevator scheduling on a disk).
    pub const fn serial_reordering(depth: usize) -> Self {
        QueueCapabilities { max_queue_depth: depth, overlap: OverlapModel::Serial }
    }

    /// A device that overlaps up to `depth` requests.
    pub const fn overlapped(depth: usize) -> Self {
        QueueCapabilities { max_queue_depth: depth, overlap: OverlapModel::Overlapped }
    }

    /// Number of concurrent lanes a batch of `requests` requests runs on:
    /// 1 for serial devices, otherwise the queue depth capped by the batch
    /// size (and never zero).
    pub fn effective_lanes(&self, requests: usize) -> usize {
        match self.overlap {
            OverlapModel::Serial => 1,
            OverlapModel::Overlapped => self.max_queue_depth.min(requests.max(1)).max(1),
        }
    }

    /// Number of lanes a [`CompletionRing`] on this queue accounts overlap
    /// with: 1 for serial devices, otherwise the full queue depth (the ring
    /// serves a stream of admissions, so there is no batch size to cap by).
    /// Never zero — a degenerate zero-depth profile degrades to serial.
    pub fn ring_lanes(&self) -> usize {
        match self.overlap {
            OverlapModel::Serial => 1,
            OverlapModel::Overlapped => self.max_queue_depth.max(1),
        }
    }
}

/// Greedy earliest-free-lane scheduler used by the simulated backends to
/// assign completions to queue lanes.
///
/// Each request goes to the lane with the least accumulated busy time, which
/// for equal-cost requests degenerates to round-robin and in general is the
/// classic LPT-style list schedule (within a factor of the optimum makespan).
#[derive(Debug, Clone)]
pub struct LaneScheduler {
    busy: Vec<SimDuration>,
}

impl LaneScheduler {
    /// Creates a scheduler with `lanes` lanes (at least one).
    pub fn new(lanes: usize) -> Self {
        LaneScheduler { busy: vec![SimDuration::ZERO; lanes.max(1)] }
    }

    /// Assigns a request of the given latency to the least-busy lane and
    /// returns that lane's index.
    pub fn assign(&mut self, latency: SimDuration) -> usize {
        let lane =
            self.busy.iter().enumerate().min_by_key(|(_, b)| **b).map(|(i, _)| i).unwrap_or(0);
        self.busy[lane] += latency;
        lane
    }

    /// Forces a request onto a specific lane (clamped to the lane count)
    /// and returns the lane used. Backends use this to serialize requests
    /// whose byte ranges conflict: queuing a dependent request behind the
    /// request it depends on keeps the makespan honest.
    pub fn assign_to(&mut self, lane: usize, latency: SimDuration) -> usize {
        let lane = lane.min(self.busy.len() - 1);
        self.busy[lane] += latency;
        lane
    }

    /// Accumulated busy time of one lane (zero for out-of-range lanes).
    pub fn lane_busy(&self, lane: usize) -> SimDuration {
        self.busy.get(lane).copied().unwrap_or(SimDuration::ZERO)
    }

    /// Elapsed time of the schedule so far: the busiest lane's total.
    pub fn makespan(&self) -> SimDuration {
        self.busy.iter().copied().fold(SimDuration::ZERO, SimDuration::max)
    }
}

/// Handle to one request admitted to a [`CompletionRing`].
///
/// Tickets are sequential per ring (the first admission is ticket 0), so
/// callers can use [`id`](Self::id) as an index into per-request state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IoTicket(u64);

impl IoTicket {
    /// The ticket's sequence number within its ring (0-based).
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// One request for submit-without-wait admission
/// ([`Device::submit_nowait`](crate::Device::submit_nowait)), carrying its
/// causal floor: the earliest device-clock time it may start.
#[derive(Debug, Clone)]
pub struct RingRequest {
    /// The command to execute.
    pub request: IoRequest,
    /// Earliest device-clock time the request may start. A probe pipeline
    /// sets this to the [`RingCompletion::completed_at`] of the read whose
    /// data produced this request, so chained reads never overlap their own
    /// causes — only *independent* requests do.
    pub not_before: SimDuration,
}

impl RingRequest {
    /// A request with no causal floor (may start immediately).
    pub fn new(request: IoRequest) -> Self {
        RingRequest { request, not_before: SimDuration::ZERO }
    }

    /// A request that may not start before `not_before` on the device
    /// clock (typically the completion time of the read it depends on).
    pub fn after(request: IoRequest, not_before: SimDuration) -> Self {
        RingRequest { request, not_before }
    }
}

/// Completion record for one ring request, delivered by
/// [`Device::reap`](crate::Device::reap).
#[derive(Debug, Clone)]
pub struct RingCompletion {
    /// Ticket returned by the admission.
    pub ticket: IoTicket,
    /// Queue lane the request was accounted on (lane 0 is the busiest
    /// timeline; requests on other lanes overlapped lane-0 work).
    pub lane: usize,
    /// Device-busy latency of this request alone (simulated, or measured
    /// for [`FileDevice`](crate::FileDevice)).
    pub latency: SimDuration,
    /// Device-clock time at which the request started executing.
    pub started_at: SimDuration,
    /// Device-clock time at which the request finished. Feed this into
    /// [`RingRequest::after`] for work that depends on this completion.
    pub completed_at: SimDuration,
    /// The bytes read (empty for non-reads) or the per-request error.
    pub result: Result<Vec<u8>>,
}

/// Monotone source of ring epochs, so devices that track in-flight work
/// across calls (the file backend's worker pool) can tell concurrent or
/// successive rings apart.
static RING_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// One admitted-but-unfinished ring request: `(ticket, byte range,
/// is_read, causal floor)`.
type PendingAdmission = (IoTicket, Option<(u64, u64)>, bool, SimDuration);

/// In-flight bookkeeping for submit-without-wait I/O: an io_uring-style
/// completion ring owned by the *caller* and registered with a device call
/// by call ([`Device::submit_nowait`](crate::Device::submit_nowait) admits
/// into it, [`Device::reap`](crate::Device::reap) drains it).
///
/// The ring does the timing model shared by every backend: each finished
/// request is placed on the earliest-free queue lane (free-at clocks, one
/// lane per queue slot), subject to two floors — its
/// [`RingRequest::not_before`] causal floor, and a **conflict floor** that
/// keeps overlapping ranges in admission order (a request that conflicts
/// with an earlier in-flight range starts no earlier than that range
/// retires; read-read overlap is exempt, mirroring
/// [`ranges_conflict`]). Data effects are applied by the device in
/// admission order regardless, so the invariant *admission order =
/// data-effect order* holds on every backend; the conflict floor makes the
/// reported timing honest about it.
///
/// The ring also keeps the ledger the stats layers surface: in-flight
/// depth high-water mark, reap count, and admission stalls (requests whose
/// start was delayed by a conflict floor beyond lane availability).
#[derive(Debug)]
pub struct CompletionRing {
    /// Free-at clock per queue lane.
    lanes: Vec<SimDuration>,
    /// Retired ranges that can still delay later conflicting admissions:
    /// `(start, end, is_read, completes_at)`.
    ranges: Vec<(u64, u64, bool, SimDuration)>,
    /// Admitted but not yet finished.
    pending: Vec<PendingAdmission>,
    /// Finished but not yet reaped, sorted by `(completed_at, ticket)`.
    ready: Vec<RingCompletion>,
    next_ticket: u64,
    reaped: u64,
    in_flight: usize,
    depth_high_water: usize,
    admission_stalls: u64,
    makespan: SimDuration,
    epoch: u64,
}

impl CompletionRing {
    /// Creates a ring that accounts overlap on `lanes` queue lanes (at
    /// least one; a zero or serial queue degrades to a single lane rather
    /// than panicking).
    pub fn new(lanes: usize) -> Self {
        CompletionRing {
            lanes: vec![SimDuration::ZERO; lanes.max(1)],
            ranges: Vec::new(),
            pending: Vec::new(),
            ready: Vec::new(),
            next_ticket: 0,
            reaped: 0,
            in_flight: 0,
            depth_high_water: 0,
            admission_stalls: 0,
            makespan: SimDuration::ZERO,
            epoch: RING_EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Creates a ring sized for a device's queue shape
    /// ([`QueueCapabilities::ring_lanes`]).
    pub fn for_queue(queue: QueueCapabilities) -> Self {
        CompletionRing::new(queue.ring_lanes())
    }

    /// Process-unique identity of this ring, letting devices that hold
    /// in-flight work across calls (the file backend) attribute results to
    /// the right ring.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Admits one request, registering its byte range and causal floor.
    /// The request is *in flight* until the completion produced by
    /// [`finish`](Self::finish) is reaped.
    pub fn admit(&mut self, request: &IoRequest, not_before: SimDuration) -> IoTicket {
        let ticket = IoTicket(self.next_ticket);
        self.next_ticket += 1;
        let is_read = matches!(request, IoRequest::Read { .. });
        self.pending.push((ticket, request.byte_range(), is_read, not_before));
        self.in_flight += 1;
        self.depth_high_water = self.depth_high_water.max(self.in_flight);
        ticket
    }

    /// Finishes an admitted request: schedules it on the earliest-free
    /// lane no earlier than its causal and conflict floors, stamps its
    /// completion time, and queues the completion for
    /// [`reap`](Self::reap). Panics if the ticket was not admitted to this
    /// ring (or already finished).
    pub fn finish(&mut self, ticket: IoTicket, latency: SimDuration, result: Result<Vec<u8>>) {
        let slot = self
            .pending
            .iter()
            .position(|(t, ..)| *t == ticket)
            .expect("finish of a ticket this ring admitted");
        let (_, range, is_read, not_before) = self.pending.swap_remove(slot);
        let conflict_floor = range
            .filter(|(start, end)| end > start)
            .map(|(start, end)| {
                self.ranges
                    .iter()
                    .filter(|&&(s, e, prior_read, _)| {
                        ranges_conflict((start, end, is_read), (s, e, prior_read))
                    })
                    .map(|&(_, _, _, completes)| completes)
                    .fold(SimDuration::ZERO, SimDuration::max)
            })
            .unwrap_or(SimDuration::ZERO);
        let lane = self
            .lanes
            .iter()
            .enumerate()
            .min_by_key(|(_, free)| **free)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let lane_free = self.lanes[lane];
        if conflict_floor > lane_free.max(not_before) {
            self.admission_stalls += 1;
        }
        let started_at = lane_free.max(not_before).max(conflict_floor);
        let completed_at = started_at + latency;
        self.lanes[lane] = completed_at;
        self.makespan = self.makespan.max(completed_at);
        if let Some((start, end)) = range {
            if end > start && result.is_ok() {
                self.ranges.push((start, end, is_read, completed_at));
            }
        }
        // Ranges that retire before every lane's free-at clock can no
        // longer delay any future admission (a future start is at least
        // the minimum free-at), so they are safe to prune.
        let horizon =
            self.lanes.iter().copied().fold(SimDuration::from_nanos(u64::MAX), SimDuration::min);
        self.ranges.retain(|&(_, _, _, completes)| completes > horizon);
        let completion = RingCompletion { ticket, lane, latency, started_at, completed_at, result };
        let at =
            self.ready.partition_point(|c| (c.completed_at, c.ticket) <= (completed_at, ticket));
        self.ready.insert(at, completion);
    }

    /// Number of completions finished and waiting to be reaped.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Pops up to `max` completions in completion-time order.
    pub fn reap(&mut self, max: usize) -> Vec<RingCompletion> {
        let n = max.min(self.ready.len());
        let out: Vec<RingCompletion> = self.ready.drain(..n).collect();
        self.reaped += out.len() as u64;
        self.in_flight -= out.len();
        out
    }

    /// Requests admitted but not yet reaped.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Highest in-flight depth (admitted minus reaped) observed so far.
    pub fn depth_high_water(&self) -> usize {
        self.depth_high_water
    }

    /// Completions delivered through [`reap`](Self::reap) so far.
    pub fn reaps(&self) -> u64 {
        self.reaped
    }

    /// Admissions whose start was delayed by a conflicting in-flight range
    /// beyond lane availability.
    pub fn admission_stalls(&self) -> u64 {
        self.admission_stalls
    }

    /// Elapsed device-clock time of everything finished so far: the latest
    /// completion timestamp. This is the ring-aware makespan that replaces
    /// the sum of per-wave maxima in barrier pipelines.
    pub fn makespan(&self) -> SimDuration {
        self.makespan
    }
}

/// Returns `true` when two byte ranges conflict: they overlap and at least
/// one side mutates state (`is_read == false`). Read-read overlap is
/// harmless and may overlap in time. Ranges are `(start, end, is_read)`
/// half-open intervals; shared by the backends so their ordering semantics
/// cannot drift.
pub fn ranges_conflict(a: (u64, u64, bool), b: (u64, u64, bool)) -> bool {
    let ((a_start, a_end, a_read), (b_start, b_end, b_read)) = (a, b);
    a_start < b_end && b_start < a_end && !(a_read && b_read)
}

/// Builds one fixed-size read request per offset — the shape of one *probe
/// wave* in a queued lookup pipeline, where every unresolved key
/// contributes the next page hop of its probe chain. Offsets may repeat
/// (two keys probing the same page): read-read overlap is harmless, so
/// duplicate reads still run on independent lanes.
pub fn page_read_batch(offsets: &[u64], page_size: usize) -> Vec<IoRequest> {
    offsets.iter().map(|&offset| IoRequest::read(offset, page_size)).collect()
}

/// Number of completions that shared their submission's elapsed time with
/// lane-0 work (i.e. executed on a lane other than 0) — the same
/// definition the backends use for `IoStats::requests_overlapped`. Always
/// zero for submissions executed serially.
pub fn overlapped_requests(completions: &[IoCompletion]) -> usize {
    completions.iter().filter(|c| c.lane != 0).count()
}

/// Elapsed (wall-clock) latency of a completed submission: the maximum over
/// lanes of each lane's summed per-request latency. Equals
/// [`total_busy_time`] on serial devices, and shrinks toward
/// `total / lanes` when the device overlaps requests.
pub fn batch_latency(completions: &[IoCompletion]) -> SimDuration {
    let lanes = completions.iter().map(|c| c.lane + 1).max().unwrap_or(1);
    let mut busy = vec![SimDuration::ZERO; lanes];
    for c in completions {
        busy[c.lane] += c.latency;
    }
    busy.into_iter().fold(SimDuration::ZERO, SimDuration::max)
}

/// Total device-busy time of a completed submission: the sum of every
/// per-request latency, regardless of overlap.
pub fn total_busy_time(completions: &[IoCompletion]) -> SimDuration {
    completions.iter().map(|c| c.latency).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(lane: usize, us: u64) -> IoCompletion {
        IoCompletion {
            index: 0,
            lane,
            latency: SimDuration::from_micros(us),
            result: Ok(Vec::new()),
        }
    }

    #[test]
    fn range_conflicts_respect_the_read_read_exemption() {
        assert!(ranges_conflict((0, 10, false), (5, 15, false)), "write-write overlap");
        assert!(ranges_conflict((0, 10, true), (5, 15, false)), "read-write overlap");
        assert!(!ranges_conflict((0, 10, true), (5, 15, true)), "read-read is harmless");
        assert!(!ranges_conflict((0, 10, false), (10, 20, false)), "touching is disjoint");
    }

    #[test]
    fn byte_ranges_cover_addressed_requests() {
        assert_eq!(IoRequest::read(10, 5).byte_range(), Some((10, 15)));
        assert_eq!(IoRequest::write(0, vec![1, 2]).byte_range(), Some((0, 2)));
        assert_eq!(IoRequest::Trim { offset: 4, len: 4 }.byte_range(), Some((4, 8)));
        assert_eq!(IoRequest::Erase { block: 0 }.byte_range(), None);
    }

    #[test]
    fn effective_lanes_respect_overlap_model() {
        let serial = QueueCapabilities::serial_reordering(8);
        assert_eq!(serial.effective_lanes(32), 1);
        let q = QueueCapabilities::overlapped(8);
        assert_eq!(q.effective_lanes(32), 8);
        assert_eq!(q.effective_lanes(3), 3);
        assert_eq!(q.effective_lanes(0), 1);
    }

    #[test]
    fn scheduler_balances_equal_costs_round_robin() {
        let mut lanes = LaneScheduler::new(4);
        let assigned: Vec<usize> =
            (0..8).map(|_| lanes.assign(SimDuration::from_micros(10))).collect();
        assert_eq!(assigned, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(lanes.makespan(), SimDuration::from_micros(20));
    }

    #[test]
    fn scheduler_prefers_the_least_busy_lane() {
        let mut lanes = LaneScheduler::new(2);
        lanes.assign(SimDuration::from_micros(100)); // lane 0
        assert_eq!(lanes.assign(SimDuration::from_micros(10)), 1);
        assert_eq!(lanes.assign(SimDuration::from_micros(10)), 1);
        assert_eq!(lanes.makespan(), SimDuration::from_micros(100));
    }

    #[test]
    fn batch_latency_is_max_over_lanes() {
        let comps = vec![comp(0, 10), comp(1, 30), comp(0, 15), comp(2, 5)];
        assert_eq!(batch_latency(&comps), SimDuration::from_micros(30));
        assert_eq!(total_busy_time(&comps), SimDuration::from_micros(60));
        assert_eq!(batch_latency(&[]), SimDuration::ZERO);
    }

    #[test]
    fn serial_batches_sum() {
        let comps = vec![comp(0, 10), comp(0, 20)];
        assert_eq!(batch_latency(&comps), total_busy_time(&comps));
    }

    #[test]
    fn page_read_batches_are_one_read_per_offset() {
        let reqs = page_read_batch(&[0, 8192, 8192], 4096);
        assert_eq!(
            reqs,
            vec![
                IoRequest::read(0, 4096),
                IoRequest::read(8192, 4096),
                IoRequest::read(8192, 4096)
            ]
        );
        assert!(page_read_batch(&[], 4096).is_empty());
    }

    #[test]
    fn ring_lanes_degrade_to_serial_without_panicking() {
        assert_eq!(QueueCapabilities::overlapped(8).ring_lanes(), 8);
        assert_eq!(QueueCapabilities::overlapped(0).ring_lanes(), 1);
        assert_eq!(QueueCapabilities::serial_reordering(8).ring_lanes(), 1);
        // A zero-lane ring also degrades instead of panicking.
        let mut ring = CompletionRing::new(0);
        let t = ring.admit(&IoRequest::read(0, 16), SimDuration::ZERO);
        ring.finish(t, SimDuration::from_micros(5), Ok(Vec::new()));
        assert_eq!(ring.reap(8).len(), 1);
        assert_eq!(ring.makespan(), SimDuration::from_micros(5));
    }

    #[test]
    fn ring_overlaps_independent_requests_on_lanes() {
        let mut ring = CompletionRing::new(2);
        let c = SimDuration::from_micros(10);
        let tickets: Vec<IoTicket> = (0..4u64)
            .map(|i| ring.admit(&IoRequest::read(i * 4096, 4096), SimDuration::ZERO))
            .collect();
        for &t in &tickets {
            ring.finish(t, c, Ok(Vec::new()));
        }
        assert_eq!(ring.depth_high_water(), 4);
        assert_eq!(ring.makespan(), c * 2, "4 equal reads on 2 lanes take 2 slots");
        let done = ring.reap(usize::MAX);
        assert_eq!(done.len(), 4);
        // Completion-time order, FIFO within ties.
        assert!(done
            .windows(2)
            .all(|w| { (w[0].completed_at, w[0].ticket) <= (w[1].completed_at, w[1].ticket) }));
        assert_eq!(ring.in_flight(), 0);
        assert_eq!(ring.reaps(), 4);
    }

    #[test]
    fn ring_respects_causal_floors() {
        // A chain of 3 reads on an 8-lane ring cannot finish before 3
        // latencies have elapsed, idle lanes notwithstanding.
        let mut ring = CompletionRing::new(8);
        let c = SimDuration::from_micros(10);
        let mut floor = SimDuration::ZERO;
        for _ in 0..3 {
            let t = ring.admit(&IoRequest::read(0, 4096), floor);
            ring.finish(t, c, Ok(Vec::new()));
            floor = ring.reap(1).pop().unwrap().completed_at;
        }
        assert_eq!(ring.makespan(), c * 3);
        assert_eq!(ring.admission_stalls(), 0, "reads never conflict with reads");
    }

    #[test]
    fn ring_conflict_floor_keeps_overlapping_ranges_in_order() {
        let mut ring = CompletionRing::new(4);
        let c = SimDuration::from_micros(10);
        let w1 = ring.admit(&IoRequest::write(0, vec![1u8; 4096]), SimDuration::ZERO);
        ring.finish(w1, c, Ok(Vec::new()));
        // A read of the same range must start after the write retires,
        // even though three lanes are free.
        let r = ring.admit(&IoRequest::read(0, 4096), SimDuration::ZERO);
        ring.finish(r, c, Ok(Vec::new()));
        let done = ring.reap(2);
        assert_eq!(done[1].started_at, done[0].completed_at);
        assert_eq!(ring.makespan(), c * 2);
        assert_eq!(ring.admission_stalls(), 1);
    }

    #[test]
    fn ring_epochs_are_unique() {
        assert_ne!(CompletionRing::new(1).epoch(), CompletionRing::new(1).epoch());
    }

    #[test]
    fn overlapped_requests_counts_non_zero_lanes() {
        let comps = vec![comp(0, 10), comp(1, 30), comp(0, 15), comp(2, 5)];
        assert_eq!(overlapped_requests(&comps), 2);
        assert_eq!(overlapped_requests(&[comp(0, 10)]), 0);
        assert_eq!(overlapped_requests(&[]), 0);
    }
}
