//! # flashsim — simulated storage substrate for CLAM experiments
//!
//! This crate provides the storage media that the BufferHash/CLAM stack and
//! its baselines run on:
//!
//! * [`FlashChip`] — a raw NAND flash chip (page program, block erase, no FTL);
//! * [`Ssd`] — an SSD with a page-mapped FTL, greedy garbage collection and
//!   an over-provisioned block pool (profiles for Intel X18-M and Transcend
//!   TS32GSSD25 class drives);
//! * [`MagneticDisk`] — a rotating disk with seek/rotation costs;
//! * [`DramDevice`] — DRAM;
//! * [`FileDevice`] — a real-file backend reporting wall-clock latencies;
//! * [`CrashDevice`] — a crash-injection wrapper that cuts the power on any
//!   inner backend at an arbitrary point in the request schedule.
//!
//! All media implement the [`Device`] trait and return simulated
//! [`SimDuration`] latencies, so higher layers are *sans-I/O*: the same
//! BufferHash code runs on any medium, and experiments are deterministic.
//!
//! I/O is organised around an io_uring-style submission queue
//! ([`Device::submit`] over [`IoRequest`] batches, see [`queue`]): each
//! backend executes a batch natively — overlapping independent requests on
//! queue lanes (SSD, DRAM), servicing it in seek order (disk) or spreading
//! it over a real worker pool ([`FileDevice`]) — while the per-op methods
//! remain available as the depth-1 view of the same machinery. On top of
//! the blocking batches sits the **completion ring**
//! ([`Device::submit_nowait`] / [`Device::reap`] over a caller-owned
//! [`CompletionRing`]): requests are admitted without waiting, tracked in
//! flight with per-request completion timestamps, and reaped as they
//! retire, so pipelines can keep the queue full instead of draining it at
//! every barrier. [`SharedDevice`] lets several owners (e.g. index
//! stripes) drive partitions of one device — and thus one ring timeline —
//! concurrently.
//!
//! ## Example
//!
//! ```
//! use flashsim::{Device, Ssd};
//!
//! let mut ssd = Ssd::intel(8 << 20).unwrap();
//! let write_latency = ssd.write_at(0, b"hello flash").unwrap();
//! let mut buf = [0u8; 11];
//! let read_latency = ssd.read_at(0, &mut buf).unwrap();
//! assert_eq!(&buf, b"hello flash");
//! assert!(read_latency.as_millis_f64() < 1.0);
//! assert!(write_latency.as_millis_f64() < 5.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cost;
mod crash;
mod device;
mod disk;
mod dram;
mod error;
mod file_backend;
mod flash_chip;
mod geometry;
mod profiles;
pub mod queue;
mod shared;
mod ssd;
mod stats;
mod store;
mod time;

pub use cost::LinearCost;
pub use crash::{CrashDevice, CrashStats};
pub use device::{execute_requests, ring_execute, Device};
pub use disk::MagneticDisk;
pub use dram::DramDevice;
pub use error::{DeviceError, Result};
pub use file_backend::{FileDevice, DEFAULT_FILE_QUEUE_DEPTH};
pub use flash_chip::FlashChip;
pub use geometry::Geometry;
pub use profiles::{DeviceProfile, MediumKind};
pub use queue::{
    CompletionRing, IoCompletion, IoRequest, IoTicket, LaneScheduler, OverlapModel,
    QueueCapabilities, RingCompletion, RingRequest,
};
pub use shared::SharedDevice;
pub use ssd::Ssd;
pub use stats::{IoStats, LatencyRecorder};
pub use store::SparseStore;
pub use time::{SimClock, SimDuration};

/// Convenience constructors for the media evaluated in the paper.
pub mod media {
    use super::*;

    /// Intel X18-M class SSD of `capacity` bytes.
    pub fn intel_ssd(capacity: u64) -> Ssd {
        Ssd::intel(capacity).expect("valid capacity")
    }

    /// Transcend TS32GSSD25 class SSD of `capacity` bytes.
    pub fn transcend_ssd(capacity: u64) -> Ssd {
        Ssd::transcend(capacity).expect("valid capacity")
    }

    /// Raw NAND flash chip of `capacity` bytes.
    pub fn flash_chip(capacity: u64) -> FlashChip {
        FlashChip::new(capacity).expect("valid capacity")
    }

    /// Hitachi 7K80 class magnetic disk of `capacity` bytes.
    pub fn disk(capacity: u64) -> MagneticDisk {
        MagneticDisk::new(capacity).expect("valid capacity")
    }

    /// DRAM region of `capacity` bytes.
    pub fn dram(capacity: u64) -> DramDevice {
        DramDevice::new(capacity).expect("valid capacity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_constructors_produce_expected_kinds() {
        assert_eq!(media::intel_ssd(1 << 20).profile().kind, MediumKind::Ssd);
        assert_eq!(media::transcend_ssd(1 << 20).profile().kind, MediumKind::Ssd);
        assert_eq!(media::flash_chip(1 << 20).profile().kind, MediumKind::FlashChip);
        assert_eq!(media::disk(1 << 20).profile().kind, MediumKind::Disk);
        assert_eq!(media::dram(1 << 20).profile().kind, MediumKind::Dram);
    }

    #[test]
    fn relative_speed_ordering_matches_the_paper() {
        // Random 4 KiB reads: DRAM << SSD << disk.
        let mut dram = media::dram(8 << 20);
        let mut ssd = media::intel_ssd(8 << 20);
        let mut disk = media::disk(8 << 20);
        dram.write_at(4 << 20, &[1u8; 4096]).unwrap();
        ssd.write_at(4 << 20, &[1u8; 4096]).unwrap();
        disk.write_at(4 << 20, &[1u8; 4096]).unwrap();
        disk.read_at(0, &mut [0u8; 512]).unwrap(); // move the head away
        let l_dram = dram.read_at(4 << 20, &mut [0u8; 4096]).unwrap();
        let l_ssd = ssd.read_at(4 << 20, &mut [0u8; 4096]).unwrap();
        let l_disk = disk.read_at(4 << 20, &mut [0u8; 4096]).unwrap();
        assert!(l_dram < l_ssd);
        assert!(l_ssd < l_disk);
    }
}
