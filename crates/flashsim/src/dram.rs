//! DRAM device model.
//!
//! DRAM accesses are charged a small fixed latency plus a bandwidth term.
//! The model exists so that in-memory work (buffers, Bloom filters) can be
//! charged consistently with flash/disk work in end-to-end latency accounts.

use crate::cost::LinearCost;
use crate::device::{execute_requests, ring_execute, Device};
use crate::error::{DeviceError, Result};
use crate::geometry::Geometry;
use crate::profiles::DeviceProfile;
use crate::queue::{
    CompletionRing, IoCompletion, IoRequest, IoTicket, LaneScheduler, RingCompletion, RingRequest,
};
use crate::stats::IoStats;
use crate::store::SparseStore;
use crate::time::SimDuration;

/// A byte-addressable DRAM region.
#[derive(Debug)]
pub struct DramDevice {
    profile: DeviceProfile,
    geometry: Geometry,
    store: SparseStore,
    stats: IoStats,
}

impl DramDevice {
    /// Creates a DRAM device of `capacity` bytes using the default DRAM
    /// profile. Capacity is rounded up to a multiple of 64 bytes.
    pub fn new(capacity: u64) -> Result<Self> {
        Self::with_profile(capacity, DeviceProfile::dram())
    }

    /// Creates a DRAM device with a custom profile (e.g. the RamSan
    /// DRAM-SSD appliance profile).
    pub fn with_profile(capacity: u64, profile: DeviceProfile) -> Result<Self> {
        if capacity == 0 {
            return Err(DeviceError::InvalidConfig("capacity must be non-zero".into()));
        }
        let unit = profile.block_size.max(profile.page_size) as u64;
        let capacity = capacity.div_ceil(unit) * unit;
        let geometry = Geometry::new(capacity, profile.page_size, profile.block_size)?;
        Ok(DramDevice {
            geometry,
            store: SparseStore::new(64 * 1024),
            stats: IoStats::default(),
            profile,
        })
    }

    fn access_cost(&self, cost: &LinearCost, bytes: usize) -> SimDuration {
        cost.cost(bytes)
    }
}

impl Device for DramDevice {
    fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, buf.len())?;
        self.store.read(offset, buf);
        let lat = self.access_cost(&self.profile.read_cost.clone(), buf.len());
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        self.stats.read_time += lat;
        Ok(lat)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, data.len())?;
        self.store.write(offset, data);
        let lat = self.access_cost(&self.profile.write_cost.clone(), data.len());
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.write_time += lat;
        Ok(lat)
    }

    fn erase_block(&mut self, _block: u64) -> Result<SimDuration> {
        Err(DeviceError::Unsupported("erase_block on DRAM"))
    }

    fn trim(&mut self, offset: u64, len: u64) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, len as usize)?;
        // DRAM has no liveness tracking; the hint is counted and dropped.
        self.stats.trims += 1;
        Ok(SimDuration::ZERO)
    }

    /// Native submission: requests execute in order (so state and results
    /// match sequential issue exactly) but are spread over the profile's
    /// queue lanes, modelling channel/bank parallelism.
    fn submit(&mut self, requests: &mut [IoRequest]) -> Result<Vec<IoCompletion>> {
        self.stats.batches_submitted += 1;
        self.stats.requests_submitted += requests.len() as u64;
        let mut lanes = LaneScheduler::new(self.profile.queue.effective_lanes(requests.len()));
        let completions = execute_requests(self, requests, &mut lanes);
        self.stats.requests_overlapped += completions.iter().filter(|c| c.lane != 0).count() as u64;
        Ok(completions)
    }

    /// Ring admission over the channel lanes (simulated time, like
    /// [`submit`](Self::submit), but submit-without-wait).
    fn submit_nowait(
        &mut self,
        requests: Vec<RingRequest>,
        ring: &mut CompletionRing,
    ) -> Result<Vec<IoTicket>> {
        self.stats.requests_submitted += requests.len() as u64;
        let stalls_before = ring.admission_stalls();
        let tickets = ring_execute(self, requests, ring)?;
        self.stats.ring_depth_high_water =
            self.stats.ring_depth_high_water.max(ring.depth_high_water() as u64);
        self.stats.ring_admission_stalls += ring.admission_stalls() - stalls_before;
        Ok(tickets)
    }

    fn reap(&mut self, ring: &mut CompletionRing, _min: usize) -> Result<Vec<RingCompletion>> {
        let out = ring.reap(usize::MAX);
        self.stats.requests_reaped += out.len() as u64;
        self.stats.requests_overlapped += out.iter().filter(|c| c.lane != 0).count() as u64;
        Ok(out)
    }

    fn stats(&self) -> IoStats {
        self.stats.clone()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_data() {
        let mut d = DramDevice::new(1 << 20).unwrap();
        d.write_at(123, b"hello dram").unwrap();
        let mut buf = [0u8; 10];
        d.read_at(123, &mut buf).unwrap();
        assert_eq!(&buf, b"hello dram");
    }

    #[test]
    fn latency_is_sub_microsecond_for_small_access() {
        let mut d = DramDevice::new(1 << 20).unwrap();
        let lat = d.write_at(0, &[0u8; 64]).unwrap();
        assert!(lat < SimDuration::from_micros(2), "DRAM write too slow: {lat}");
    }

    #[test]
    fn bounds_are_enforced() {
        let mut d = DramDevice::new(1 << 16).unwrap();
        let err = d.write_at(1 << 16, &[1]).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfBounds { .. }));
    }

    #[test]
    fn erase_is_unsupported() {
        let mut d = DramDevice::new(1 << 16).unwrap();
        assert!(matches!(d.erase_block(0), Err(DeviceError::Unsupported(_))));
    }

    #[test]
    fn capacity_rounds_up_to_unit() {
        let d = DramDevice::new(100).unwrap();
        assert_eq!(d.geometry().capacity % 64, 0);
        assert!(d.geometry().capacity >= 100);
    }

    #[test]
    fn submit_overlaps_requests_on_dram_lanes() {
        use crate::queue::{batch_latency, total_busy_time};
        let mut d = DramDevice::new(1 << 20).unwrap();
        let mut reqs: Vec<IoRequest> =
            (0..8).map(|i| IoRequest::write(i * 4096, vec![i as u8; 4096])).collect();
        let completions = d.submit(&mut reqs).unwrap();
        assert_eq!(completions.len(), 8);
        assert!(completions.iter().all(|c| c.result.is_ok()));
        // DRAM overlaps on 4 lanes: elapsed is ~1/4 of the busy sum.
        let elapsed = batch_latency(&completions);
        let busy = total_busy_time(&completions);
        assert_eq!(elapsed, busy / 4);
        let s = d.stats();
        assert_eq!(s.batches_submitted, 1);
        assert_eq!(s.requests_submitted, 8);
        assert_eq!(s.requests_overlapped, 6, "two requests per lane, lanes 1-3 overlap");
        assert_eq!(s.writes, 8, "per-command counters still advance");
    }

    #[test]
    fn trim_is_a_counted_noop() {
        let mut d = DramDevice::new(1 << 16).unwrap();
        assert_eq!(d.trim(0, 4096).unwrap(), SimDuration::ZERO);
        assert_eq!(d.stats().trims, 1);
        assert_eq!(d.stats().total_ops(), 1);
        assert!(d.trim(1 << 16, 1).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut d = DramDevice::new(1 << 16).unwrap();
        d.write_at(0, &[1; 128]).unwrap();
        d.read_at(0, &mut [0; 128]).unwrap();
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 128);
        assert_eq!(s.bytes_read, 128);
        assert!(s.busy_time() > SimDuration::ZERO);
    }
}
