//! I/O statistics and latency recording.
//!
//! [`IoStats`] counts device-level operations; [`LatencyRecorder`] collects
//! per-operation latency samples and can report means, percentiles, CDFs and
//! CCDFs — the building blocks for regenerating the paper's figures.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Counters describing the I/O a device has performed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IoStats {
    /// Number of read commands.
    pub reads: u64,
    /// Number of write/program commands.
    pub writes: u64,
    /// Number of block erase commands (flash/SSD only).
    pub erases: u64,
    /// Number of TRIM commands.
    pub trims: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Garbage-collection runs triggered (SSD only).
    pub gc_runs: u64,
    /// Valid pages relocated by garbage collection (SSD only).
    pub gc_pages_copied: u64,
    /// Submission batches handed to [`Device::submit`](crate::Device::submit)
    /// (native implementations only; the sequential trait fallback does not
    /// track queue statistics).
    pub batches_submitted: u64,
    /// Requests received through the submission queue.
    pub requests_submitted: u64,
    /// Submitted requests that shared their submission's overlapped time
    /// on the device queue (assigned to a lane other than lane 0). This
    /// counts *modeled* queue overlap — for
    /// [`FileDevice`](crate::FileDevice) the physical worker pool is
    /// additionally capped by host parallelism, like the simulated SSD's
    /// lanes exist regardless of host cores. Always zero on serial
    /// devices.
    pub requests_overlapped: u64,
    /// Completions delivered through [`Device::reap`](crate::Device::reap)
    /// (native ring implementations only, like the queue counters above).
    pub requests_reaped: u64,
    /// Highest in-flight depth (admitted minus reaped) any completion ring
    /// registered with this device has reached. Merged with `max`, not
    /// summed: it is a high-water mark, not a count.
    pub ring_depth_high_water: u64,
    /// Ring admissions whose start was delayed by a conflicting in-flight
    /// range beyond lane availability (write-write and read-after-write
    /// floors; read-read overlap never stalls). Native ring
    /// implementations only, like the other ring counters.
    pub ring_admission_stalls: u64,
    /// Simulated time spent in reads.
    pub read_time: SimDuration,
    /// Simulated time spent in writes (including any GC charged to them).
    pub write_time: SimDuration,
    /// Simulated time spent erasing blocks.
    pub erase_time: SimDuration,
    /// Simulated time spent in TRIM commands.
    pub trim_time: SimDuration,
}

impl IoStats {
    /// Total simulated device-busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.read_time + self.write_time + self.erase_time + self.trim_time
    }

    /// Total number of I/O commands.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes + self.erases + self.trims
    }

    /// Fraction of submitted requests that overlapped another request.
    pub fn overlap_fraction(&self) -> f64 {
        if self.requests_submitted == 0 {
            return 0.0;
        }
        self.requests_overlapped as f64 / self.requests_submitted as f64
    }

    /// Merges counters from another stats block into this one.
    pub fn merge(&mut self, other: &IoStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.erases += other.erases;
        self.trims += other.trims;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.gc_runs += other.gc_runs;
        self.gc_pages_copied += other.gc_pages_copied;
        self.batches_submitted += other.batches_submitted;
        self.requests_submitted += other.requests_submitted;
        self.requests_overlapped += other.requests_overlapped;
        self.requests_reaped += other.requests_reaped;
        self.ring_depth_high_water = self.ring_depth_high_water.max(other.ring_depth_high_water);
        self.ring_admission_stalls += other.ring_admission_stalls;
        self.read_time += other.read_time;
        self.write_time += other.write_time;
        self.erase_time += other.erase_time;
        self.trim_time += other.trim_time;
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = IoStats::default();
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads: {} ({} B, {}) | writes: {} ({} B, {}) | erases: {} ({}) | trims: {} ({})",
            self.reads,
            self.bytes_read,
            self.read_time,
            self.writes,
            self.bytes_written,
            self.write_time,
            self.erases,
            self.erase_time,
            self.trims,
            self.trim_time,
        )?;
        if self.gc_runs > 0 || self.gc_pages_copied > 0 {
            write!(f, " | gc: {} runs, {} pages copied", self.gc_runs, self.gc_pages_copied)?;
        }
        if self.batches_submitted > 0 {
            write!(
                f,
                " | queue: {} batches, {} reqs ({} overlapped)",
                self.batches_submitted, self.requests_submitted, self.requests_overlapped
            )?;
        }
        if self.requests_reaped > 0 || self.ring_depth_high_water > 0 {
            write!(
                f,
                " | ring: {} reaped, depth hwm {}, {} stalls",
                self.requests_reaped, self.ring_depth_high_water, self.ring_admission_stalls
            )?;
        }
        Ok(())
    }
}

/// Collects latency samples for one class of operation.
///
/// Samples are stored exactly (nanoseconds), so percentiles and CDFs are
/// exact rather than bucketed. The expected sample counts in this project
/// (≤ a few million per experiment) make this affordable.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyRecorder {
    samples_ns: Vec<u64>,
    total_ns: u64,
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty recorder with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        LatencyRecorder { samples_ns: Vec::with_capacity(n), total_ns: 0, sorted: true }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_ns.push(d.as_nanos());
        self.total_ns = self.total_ns.saturating_add(d.as_nanos());
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// Sum of all samples.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_nanos(self.total_ns)
    }

    /// Arithmetic mean of the samples (zero if empty).
    pub fn mean(&self) -> SimDuration {
        if self.samples_ns.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.total_ns / self.samples_ns.len() as u64)
        }
    }

    /// Maximum sample (zero if empty).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples_ns.iter().copied().max().unwrap_or(0))
    }

    /// Minimum sample (zero if empty).
    pub fn min(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples_ns.iter().copied().min().unwrap_or(0))
    }

    fn sorted_samples(&mut self) -> &[u64] {
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
        &self.samples_ns
    }

    /// The `q`-th quantile (`q` in `[0, 1]`), using nearest-rank.
    pub fn quantile(&mut self, q: f64) -> SimDuration {
        if self.samples_ns.is_empty() {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let samples = self.sorted_samples();
        let rank = ((samples.len() as f64 - 1.0) * q).round() as usize;
        SimDuration::from_nanos(samples[rank])
    }

    /// Median latency.
    pub fn median(&mut self) -> SimDuration {
        self.quantile(0.5)
    }

    /// Fraction of samples that are `<= threshold`.
    pub fn fraction_at_most(&self, threshold: SimDuration) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let n = self.samples_ns.iter().filter(|&&s| s <= threshold.as_nanos()).count();
        n as f64 / self.samples_ns.len() as f64
    }

    /// Empirical CDF evaluated at `points.len()` thresholds; returns
    /// `(threshold, fraction <= threshold)` pairs.
    pub fn cdf(&mut self, points: &[SimDuration]) -> Vec<(SimDuration, f64)> {
        let n = self.samples_ns.len();
        if n == 0 {
            return points.iter().map(|&p| (p, 0.0)).collect();
        }
        let samples = self.sorted_samples();
        points
            .iter()
            .map(|&p| {
                let count = samples.partition_point(|&s| s <= p.as_nanos());
                (p, count as f64 / n as f64)
            })
            .collect()
    }

    /// Complementary CDF (fraction of samples strictly greater than each
    /// threshold), used for Figure 8(a).
    pub fn ccdf(&mut self, points: &[SimDuration]) -> Vec<(SimDuration, f64)> {
        self.cdf(points).into_iter().map(|(p, f)| (p, 1.0 - f)).collect()
    }

    /// Logarithmically spaced thresholds between `lo` and `hi`, convenient
    /// for CDF plots that span several orders of magnitude.
    pub fn log_spaced_points(lo: SimDuration, hi: SimDuration, n: usize) -> Vec<SimDuration> {
        if n == 0 || lo.is_zero() || hi <= lo {
            return Vec::new();
        }
        let lo_f = lo.as_nanos() as f64;
        let hi_f = hi.as_nanos() as f64;
        (0..n)
            .map(|i| {
                let t = i as f64 / (n - 1).max(1) as f64;
                SimDuration::from_nanos((lo_f * (hi_f / lo_f).powf(t)).round() as u64)
            })
            .collect()
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.sorted = false;
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        self.samples_ns.clear();
        self.total_ns = 0;
        self.sorted = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iostats_counts_trims_and_queue_submissions() {
        let mut s = IoStats {
            trims: 2,
            trim_time: SimDuration::from_micros(10),
            batches_submitted: 3,
            requests_submitted: 12,
            requests_overlapped: 8,
            ..Default::default()
        };
        assert_eq!(s.total_ops(), 2);
        assert_eq!(s.busy_time(), SimDuration::from_micros(10));
        assert!((s.overlap_fraction() - 8.0 / 12.0).abs() < 1e-9);
        let other = IoStats { trims: 1, requests_submitted: 4, ..Default::default() };
        s.merge(&other);
        assert_eq!(s.trims, 3);
        assert_eq!(s.requests_submitted, 16);
        assert_eq!(IoStats::default().overlap_fraction(), 0.0);
    }

    #[test]
    fn ring_counters_merge_and_display() {
        let mut a = IoStats {
            requests_reaped: 5,
            ring_depth_high_water: 12,
            ring_admission_stalls: 2,
            ..Default::default()
        };
        let b = IoStats {
            requests_reaped: 3,
            ring_depth_high_water: 7,
            ring_admission_stalls: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.requests_reaped, 8, "reaps sum");
        assert_eq!(a.ring_depth_high_water, 12, "high-water merges with max");
        assert_eq!(a.ring_admission_stalls, 3, "stalls sum");
        let text = a.to_string();
        assert!(text.contains("ring: 8 reaped, depth hwm 12, 3 stalls"), "{text}");
        // The ring segment is elided for devices that never served a ring.
        assert!(!IoStats::default().to_string().contains("ring:"));
    }

    #[test]
    fn iostats_display_mentions_every_command_class() {
        let s = IoStats {
            reads: 1,
            writes: 2,
            erases: 3,
            trims: 4,
            gc_runs: 5,
            batches_submitted: 6,
            requests_submitted: 7,
            requests_overlapped: 2,
            ..Default::default()
        };
        let text = s.to_string();
        for needle in ["reads: 1", "writes: 2", "erases: 3", "trims: 4", "gc: 5", "queue: 6"] {
            assert!(text.contains(needle), "missing {needle:?} in {text:?}");
        }
        // GC and queue segments are elided when untouched.
        let quiet = IoStats { reads: 1, ..Default::default() }.to_string();
        assert!(!quiet.contains("gc:") && !quiet.contains("queue:"));
    }

    #[test]
    fn iostats_merge_and_busy_time() {
        let mut a =
            IoStats { reads: 1, read_time: SimDuration::from_millis(1), ..Default::default() };
        let b = IoStats {
            writes: 2,
            write_time: SimDuration::from_millis(2),
            erases: 1,
            erase_time: SimDuration::from_millis(3),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total_ops(), 4);
        assert_eq!(a.busy_time(), SimDuration::from_millis(6));
        a.reset();
        assert_eq!(a, IoStats::default());
    }

    #[test]
    fn recorder_mean_min_max() {
        let mut r = LatencyRecorder::new();
        for ms in [1u64, 2, 3, 4] {
            r.record(SimDuration::from_millis(ms));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.mean(), SimDuration::from_micros(2500));
        assert_eq!(r.min(), SimDuration::from_millis(1));
        assert_eq!(r.max(), SimDuration::from_millis(4));
        assert_eq!(r.total(), SimDuration::from_millis(10));
    }

    #[test]
    fn recorder_quantiles() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100u64 {
            r.record(SimDuration::from_micros(i));
        }
        let median = r.median();
        assert!(
            median == SimDuration::from_micros(50) || median == SimDuration::from_micros(51),
            "median of 1..=100us should be 50 or 51us, got {median}"
        );
        assert_eq!(r.quantile(0.0), SimDuration::from_micros(1));
        assert_eq!(r.quantile(1.0), SimDuration::from_micros(100));
        assert_eq!(r.quantile(0.99), SimDuration::from_micros(99));
    }

    #[test]
    fn recorder_cdf_and_ccdf() {
        let mut r = LatencyRecorder::new();
        for i in 1..=10u64 {
            r.record(SimDuration::from_millis(i));
        }
        let pts = vec![SimDuration::from_millis(5), SimDuration::from_millis(10)];
        let cdf = r.cdf(&pts);
        assert!((cdf[0].1 - 0.5).abs() < 1e-9);
        assert!((cdf[1].1 - 1.0).abs() < 1e-9);
        let ccdf = r.ccdf(&pts);
        assert!((ccdf[0].1 - 0.5).abs() < 1e-9);
        assert!((ccdf[1].1 - 0.0).abs() < 1e-9);
        assert!((r.fraction_at_most(SimDuration::from_millis(3)) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn recorder_empty_behaviour() {
        let mut r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.mean(), SimDuration::ZERO);
        assert_eq!(r.median(), SimDuration::ZERO);
        assert_eq!(r.fraction_at_most(SimDuration::from_millis(1)), 0.0);
        assert_eq!(r.cdf(&[SimDuration::from_millis(1)])[0].1, 0.0);
    }

    #[test]
    fn log_spaced_points_are_monotone() {
        let pts = LatencyRecorder::log_spaced_points(
            SimDuration::from_micros(1),
            SimDuration::from_millis(10),
            50,
        );
        assert_eq!(pts.len(), 50);
        assert!(pts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(pts[0], SimDuration::from_micros(1));
        assert_eq!(*pts.last().unwrap(), SimDuration::from_millis(10));
    }

    #[test]
    fn recorder_merge_and_clear() {
        let mut a = LatencyRecorder::new();
        a.record(SimDuration::from_millis(1));
        let mut b = LatencyRecorder::new();
        b.record(SimDuration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), SimDuration::from_millis(2));
        a.clear();
        assert!(a.is_empty());
    }
}
