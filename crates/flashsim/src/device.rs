//! The [`Device`] trait: the sans-I/O boundary between data structures
//! (BufferHash, baseline indexes) and the storage media they run on.
//!
//! Every operation returns the simulated latency it would have taken on the
//! modelled hardware. Callers decide how to account for that latency (e.g.
//! charge it to the triggering hash-table operation, or overlap it with
//! other work).
//!
//! The primary entry point for I/O is the submission queue:
//! [`Device::submit`] takes a batch of [`IoRequest`]s and returns one
//! [`IoCompletion`] per request, letting the device overlap or reorder
//! independent requests according to its [`QueueCapabilities`]. The per-op
//! methods ([`read_at`](Device::read_at), [`write_at`](Device::write_at),
//! [`erase_block`](Device::erase_block), [`trim`](Device::trim)) are the
//! depth-1 view of the same machinery — semantically one-element
//! submissions — kept because single blocking commands remain the natural
//! unit for point lookups.

use crate::error::Result;
use crate::geometry::Geometry;
use crate::profiles::DeviceProfile;
use crate::queue::{
    CompletionRing, IoCompletion, IoRequest, IoTicket, LaneScheduler, QueueCapabilities,
    RingCompletion, RingRequest,
};
use crate::stats::IoStats;
use crate::time::SimDuration;

/// A byte-addressed storage device with simulated latencies.
///
/// Implementations model the medium's cost structure: page-granular I/O,
/// sequential-vs-random asymmetry, erase-before-write for raw flash, FTL
/// garbage collection for SSDs, and seek/rotation for disks.
///
/// Implementors must provide the per-op methods; [`submit`](Device::submit)
/// has a sequential provided fallback (every request on lane 0, in order),
/// so the trait stays implementable with per-op logic alone. All built-in
/// backends override `submit` natively to model queue overlap (SSD/DRAM
/// lanes), seek-order scheduling (disk) or real overlapped file I/O.
///
/// `Send + Sync` is required so higher layers can share devices across
/// threads behind reader-writer locks (the `bufferhash` read fast path
/// probes DRAM state under a shared borrow). All mutation goes through
/// `&mut self`, so `Sync` costs implementors nothing.
pub trait Device: Send + Sync {
    /// The parameter set this device was built from.
    fn profile(&self) -> &DeviceProfile;

    /// Capacity and page/block layout.
    fn geometry(&self) -> Geometry;

    /// The device's submission-queue shape (depth and overlap model).
    fn queue(&self) -> QueueCapabilities {
        self.profile().queue
    }

    /// Reads `buf.len()` bytes starting at byte `offset`.
    ///
    /// Returns the simulated time the read took. Reads smaller than a page
    /// are charged a full page (paper design principle P2). Semantically a
    /// one-element [`submit`](Device::submit) of an
    /// [`IoRequest::Read`] that borrows the caller's buffer.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration>;

    /// Writes `data` starting at byte `offset`.
    ///
    /// Returns the simulated time the write took, including any FTL
    /// garbage-collection work it triggered (SSDs) or erase-block management
    /// the model charges to the writer. Semantically a one-element
    /// [`submit`](Device::submit) of an [`IoRequest::Write`].
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration>;

    /// Erases the erase block with index `block` (raw flash chips).
    ///
    /// Devices without caller-visible erasure (SSD, disk, DRAM) return
    /// [`DeviceError::Unsupported`](crate::DeviceError::Unsupported) or treat
    /// it as a hint, as documented by the implementation.
    fn erase_block(&mut self, block: u64) -> Result<SimDuration>;

    /// Declares the byte range `[offset, offset + len)` as no longer live
    /// (a TRIM hint). SSD models use it to cheapen future garbage
    /// collection; other media count and ignore it.
    fn trim(&mut self, _offset: u64, _len: u64) -> Result<SimDuration> {
        Ok(SimDuration::ZERO)
    }

    /// Submits a batch of requests to the device's queue and waits for all
    /// of them to complete.
    ///
    /// Returns one [`IoCompletion`] per request, in submission order. The
    /// *data effects* of the batch are applied in submission order on every
    /// backend, so a submission is observationally equivalent (final bytes,
    /// per-request results) to issuing the same operations sequentially;
    /// devices only overlap or reorder the **timing** of independent
    /// requests, which shows up in the completions' lane assignments.
    /// Per-request failures (out-of-bounds, dirty-page programs, unsupported
    /// erases) are reported in [`IoCompletion::result`] and do not abort the
    /// rest of the batch; `Err` from `submit` itself means the device could
    /// not process the submission at all.
    ///
    /// Submitted requests are **consumed**: implementations may move
    /// write payloads out of the slice (the file backend hands them to
    /// its worker pool), so callers must not reuse `requests` after the
    /// call — rebuild the batch to retry. The simulated backends happen
    /// to leave payloads intact, but that is not part of the contract.
    ///
    /// Use [`queue::batch_latency`](crate::queue::batch_latency) for the
    /// elapsed time of the batch under the device's overlap model, and
    /// [`queue::total_busy_time`](crate::queue::total_busy_time) for the
    /// device-busy sum.
    ///
    /// The provided fallback executes the batch strictly sequentially via
    /// the per-op methods (every completion on lane 0) and records no
    /// queue-level statistics.
    fn submit(&mut self, requests: &mut [IoRequest]) -> Result<Vec<IoCompletion>> {
        let mut lanes = LaneScheduler::new(1);
        Ok(execute_requests(self, requests, &mut lanes))
    }

    /// Submits requests to the device queue **without waiting** for them,
    /// admitting them into the caller-owned `ring` and returning one
    /// [`IoTicket`] per request (in submission order). Completions are
    /// collected later with [`reap`](Device::reap).
    ///
    /// The ordering invariant is the same as [`submit`](Device::submit):
    /// **admission order is data-effect order**. Overlapping ranges apply
    /// in the order they were admitted on every backend, and the ring's
    /// conflict-aware admission reflects that in the reported timing, so a
    /// submit-without-wait stream is observationally equivalent to issuing
    /// the same operations sequentially. Each request additionally carries
    /// a causal floor ([`RingRequest::not_before`]) so chained work (a
    /// probe read issued from an earlier read's data) never overlaps its
    /// own cause.
    ///
    /// The provided default degenerates to blocking execution: each
    /// request runs synchronously through the per-op methods and its
    /// completion — timestamped by the ring's lane free-at clocks — merely
    /// waits in the ring to be reaped. Backends with real asynchrony (the
    /// file backend's persistent worker pool) override this to genuinely
    /// overlap execution; the simulated backends override it to record
    /// queue statistics.
    fn submit_nowait(
        &mut self,
        requests: Vec<RingRequest>,
        ring: &mut CompletionRing,
    ) -> Result<Vec<IoTicket>> {
        ring_execute(self, requests, ring)
    }

    /// Waits until at least `min` completions of `ring` are ready (fewer
    /// only if fewer are in flight) and returns **all** ready completions
    /// in completion-time order. `min` is clamped to at least 1; calling
    /// with nothing in flight returns an empty vector.
    ///
    /// The provided default pairs with the blocking
    /// [`submit_nowait`](Device::submit_nowait) default, where every
    /// admitted request has already finished: it simply drains the ring.
    fn reap(&mut self, ring: &mut CompletionRing, min: usize) -> Result<Vec<RingCompletion>> {
        let _ = min;
        Ok(ring.reap(usize::MAX))
    }

    /// Informs the device that the workload was idle for `idle` simulated
    /// time. SSD models use this to run background garbage collection for
    /// free, mirroring how real SSDs recover their clean-block pool during
    /// quiet periods.
    fn on_idle(&mut self, _idle: SimDuration) {}

    /// Snapshot of the I/O counters.
    fn stats(&self) -> IoStats;

    /// Resets the I/O counters.
    fn reset_stats(&mut self);

    /// Human-readable device name.
    fn name(&self) -> &'static str {
        self.profile().name
    }
}

/// Executes `requests` in submission order through `device`'s per-op
/// methods, assigning each completion a lane from `lanes`.
///
/// This is the shared engine behind [`Device::submit`]: the provided
/// fallback runs it with a single lane, and the simulated backends run it
/// with as many lanes as their [`QueueCapabilities`] allow (their per-op
/// state updates — FTL mappings, GC, program/erase bitmaps — still happen
/// in submission order, which is what keeps submissions observationally
/// equivalent to sequential execution). Only *independent* requests
/// overlap: a request whose byte range conflicts with an earlier request
/// of the same batch is queued on that request's lane, behind it.
pub fn execute_requests<D: Device + ?Sized>(
    device: &mut D,
    requests: &mut [IoRequest],
    lanes: &mut LaneScheduler,
) -> Vec<IoCompletion> {
    let mut completions = Vec::with_capacity(requests.len());
    // Byte ranges already scheduled, with their lane and whether they were
    // reads, for dependency detection.
    let mut ranges: Vec<(u64, u64, usize, bool)> = Vec::new();
    for (index, request) in requests.iter_mut().enumerate() {
        let range = request.byte_range();
        let is_read = matches!(request, IoRequest::Read { .. });
        let (latency, result) = match request {
            IoRequest::Read { offset, len } => {
                let mut buf = vec![0u8; *len];
                match device.read_at(*offset, &mut buf) {
                    Ok(lat) => (lat, Ok(buf)),
                    Err(e) => (SimDuration::ZERO, Err(e)),
                }
            }
            IoRequest::Write { offset, data } => match device.write_at(*offset, data) {
                Ok(lat) => (lat, Ok(Vec::new())),
                Err(e) => (SimDuration::ZERO, Err(e)),
            },
            IoRequest::Erase { block } => match device.erase_block(*block) {
                Ok(lat) => (lat, Ok(Vec::new())),
                Err(e) => (SimDuration::ZERO, Err(e)),
            },
            IoRequest::Trim { offset, len } => match device.trim(*offset, *len) {
                Ok(lat) => (lat, Ok(Vec::new())),
                Err(e) => (SimDuration::ZERO, Err(e)),
            },
        };
        let lane = match range {
            Some((start, end)) if end > start => {
                // Conflicting = overlapping ranges where at least one side
                // mutates state (read-read overlap is harmless and may
                // overlap in time). Queue a dependent request behind the
                // *busiest* conflicting lane: every conflicting request
                // ends at or before its lane's accumulated busy time, so
                // this serializes after all of them.
                let dependency = ranges
                    .iter()
                    .filter(|&&(s, e, _, prior_read)| {
                        crate::queue::ranges_conflict((start, end, is_read), (s, e, prior_read))
                    })
                    .map(|&(_, _, lane, _)| lane)
                    .max_by_key(|&lane| lanes.lane_busy(lane));
                let lane = match dependency {
                    Some(dependency) => lanes.assign_to(dependency, latency),
                    None => lanes.assign(latency),
                };
                ranges.push((start, end, lane, is_read));
                lane
            }
            _ => lanes.assign(latency),
        };
        completions.push(IoCompletion { index, lane, latency, result });
    }
    completions
}

/// Executes `requests` synchronously through `device`'s per-op methods,
/// admitting each into `ring` with its causal floor and finishing it with
/// the measured (simulated) latency.
///
/// This is the shared engine behind [`Device::submit_nowait`]: data
/// effects apply in admission order (each request runs to completion
/// before the next is admitted), while the ring's lane free-at clocks and
/// conflict floors model how much of the stream a device with that queue
/// depth would have kept in flight concurrently. The simulated backends
/// run on this engine directly — their "asynchrony" is entirely in the
/// ring's timing model, which is exact for them.
pub fn ring_execute<D: Device + ?Sized>(
    device: &mut D,
    requests: Vec<RingRequest>,
    ring: &mut CompletionRing,
) -> Result<Vec<IoTicket>> {
    let mut tickets = Vec::with_capacity(requests.len());
    for RingRequest { request, not_before } in requests {
        let ticket = ring.admit(&request, not_before);
        let (latency, result) = match &request {
            IoRequest::Read { offset, len } => {
                let mut buf = vec![0u8; *len];
                match device.read_at(*offset, &mut buf) {
                    Ok(lat) => (lat, Ok(buf)),
                    Err(e) => (SimDuration::ZERO, Err(e)),
                }
            }
            IoRequest::Write { offset, data } => match device.write_at(*offset, data) {
                Ok(lat) => (lat, Ok(Vec::new())),
                Err(e) => (SimDuration::ZERO, Err(e)),
            },
            IoRequest::Erase { block } => match device.erase_block(*block) {
                Ok(lat) => (lat, Ok(Vec::new())),
                Err(e) => (SimDuration::ZERO, Err(e)),
            },
            IoRequest::Trim { offset, len } => match device.trim(*offset, *len) {
                Ok(lat) => (lat, Ok(Vec::new())),
                Err(e) => (SimDuration::ZERO, Err(e)),
            },
        };
        ring.finish(ticket, latency, result);
        tickets.push(ticket);
    }
    Ok(tickets)
}

/// Blanket implementation so `Box<dyn Device>` is itself a `Device`, which
/// lets higher layers be generic over `D: Device` while still supporting
/// dynamic dispatch where convenient.
impl<D: Device + ?Sized> Device for Box<D> {
    fn profile(&self) -> &DeviceProfile {
        (**self).profile()
    }
    fn geometry(&self) -> Geometry {
        (**self).geometry()
    }
    fn queue(&self) -> QueueCapabilities {
        (**self).queue()
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration> {
        (**self).read_at(offset, buf)
    }
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration> {
        (**self).write_at(offset, data)
    }
    fn erase_block(&mut self, block: u64) -> Result<SimDuration> {
        (**self).erase_block(block)
    }
    fn trim(&mut self, offset: u64, len: u64) -> Result<SimDuration> {
        (**self).trim(offset, len)
    }
    fn submit(&mut self, requests: &mut [IoRequest]) -> Result<Vec<IoCompletion>> {
        (**self).submit(requests)
    }
    fn submit_nowait(
        &mut self,
        requests: Vec<RingRequest>,
        ring: &mut CompletionRing,
    ) -> Result<Vec<IoTicket>> {
        (**self).submit_nowait(requests, ring)
    }
    fn reap(&mut self, ring: &mut CompletionRing, min: usize) -> Result<Vec<RingCompletion>> {
        (**self).reap(ring, min)
    }
    fn on_idle(&mut self, idle: SimDuration) {
        (**self).on_idle(idle)
    }
    fn stats(&self) -> IoStats {
        (**self).stats()
    }
    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramDevice;
    use crate::error::DeviceError;
    use crate::queue::batch_latency;

    #[test]
    fn boxed_device_dispatches() {
        let mut dev: Box<dyn Device> = Box::new(DramDevice::new(1 << 20).unwrap());
        let lat = dev.write_at(0, &[1, 2, 3]).unwrap();
        assert!(lat > SimDuration::ZERO);
        let mut buf = [0u8; 3];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(dev.stats().writes, 1);
        dev.reset_stats();
        assert_eq!(dev.stats().writes, 0);
        assert_eq!(dev.name(), "DRAM");
    }

    #[test]
    fn boxed_device_forwards_submit() {
        let mut dev: Box<dyn Device> = Box::new(DramDevice::new(1 << 20).unwrap());
        let mut reqs =
            vec![IoRequest::write(0, vec![7u8; 64]), IoRequest::read(0, 64), IoRequest::read(0, 0)];
        let completions = dev.submit(&mut reqs).unwrap();
        assert_eq!(completions.len(), 3);
        assert_eq!(completions[1].result.as_ref().unwrap(), &vec![7u8; 64]);
        // Native DRAM submit records queue stats through the Box.
        assert_eq!(dev.stats().batches_submitted, 1);
        assert_eq!(dev.stats().requests_submitted, 3);
    }

    #[test]
    fn dependent_requests_serialize_and_read_read_overlaps() {
        use crate::queue::total_busy_time;
        let mut dev = DramDevice::new(1 << 20).unwrap();
        // W1 is large (busiest lane), W2 small and disjoint, R3 spans both:
        // R3 must queue behind W1 (fan-in picks the busiest conflict).
        let mut reqs = vec![
            IoRequest::write(0, vec![1u8; 8192]),
            IoRequest::write(16_384, vec![2u8; 64]),
            IoRequest::read(0, 32_768),
        ];
        let completions = dev.submit(&mut reqs).unwrap();
        assert_eq!(completions[2].lane, completions[0].lane, "fan-in serializes behind W1");
        let elapsed = batch_latency(&completions);
        assert!(elapsed >= completions[0].latency + completions[2].latency);

        // Read-read overlap is harmless: two reads of one range overlap.
        let mut reqs = vec![IoRequest::read(0, 4096), IoRequest::read(0, 4096)];
        let completions = dev.submit(&mut reqs).unwrap();
        assert_ne!(completions[0].lane, completions[1].lane);
        assert!(batch_latency(&completions) < total_busy_time(&completions));
    }

    /// A minimal third-party device that only implements the per-op
    /// methods; `submit` must work through the provided fallback.
    struct PerOpOnly {
        inner: DramDevice,
    }

    impl Device for PerOpOnly {
        fn profile(&self) -> &DeviceProfile {
            self.inner.profile()
        }
        fn geometry(&self) -> Geometry {
            self.inner.geometry()
        }
        fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration> {
            self.inner.read_at(offset, buf)
        }
        fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration> {
            self.inner.write_at(offset, data)
        }
        fn erase_block(&mut self, block: u64) -> Result<SimDuration> {
            self.inner.erase_block(block)
        }
        fn stats(&self) -> IoStats {
            self.inner.stats()
        }
        fn reset_stats(&mut self) {
            self.inner.reset_stats()
        }
    }

    #[test]
    fn default_ring_path_degenerates_to_blocking_execution() {
        let mut dev = PerOpOnly { inner: DramDevice::new(1 << 16).unwrap() };
        let mut ring = CompletionRing::for_queue(dev.queue());
        let reqs = vec![
            RingRequest::new(IoRequest::write(0, vec![9u8; 64])),
            RingRequest::new(IoRequest::read(0, 64)),
            RingRequest::new(IoRequest::read(1 << 16, 1)), // out of bounds
        ];
        let tickets = dev.submit_nowait(reqs, &mut ring).unwrap();
        assert_eq!(tickets.iter().map(|t| t.id()).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(ring.in_flight(), 3);
        let done = dev.reap(&mut ring, 1).unwrap();
        assert_eq!(done.len(), 3, "default reap drains everything ready");
        let by_ticket = |id: u64| done.iter().find(|c| c.ticket.id() == id).unwrap();
        assert_eq!(by_ticket(1).result.as_ref().unwrap(), &vec![9u8; 64]);
        assert!(matches!(by_ticket(2).result, Err(DeviceError::OutOfBounds { .. })));
        // The read of the just-written range is conflict-floored behind
        // the write: its start is the write's completion time.
        assert_eq!(by_ticket(1).started_at, by_ticket(0).completed_at);
        assert!(ring.makespan() >= by_ticket(1).completed_at);
        assert_eq!(ring.in_flight(), 0);
    }

    #[test]
    fn default_submit_is_a_sequential_fallback() {
        let mut dev = PerOpOnly { inner: DramDevice::new(1 << 16).unwrap() };
        let mut reqs = vec![
            IoRequest::write(0, vec![1u8; 32]),
            IoRequest::read(0, 32),
            IoRequest::Erase { block: 0 },
            IoRequest::read(1 << 16, 1), // out of bounds
        ];
        let completions = dev.submit(&mut reqs).unwrap();
        assert!(completions.iter().all(|c| c.lane == 0), "fallback is serial");
        assert_eq!(completions[1].result.as_ref().unwrap(), &vec![1u8; 32]);
        assert!(matches!(completions[2].result, Err(DeviceError::Unsupported(_))));
        assert!(matches!(completions[3].result, Err(DeviceError::OutOfBounds { .. })));
        // Serial fallback: elapsed equals the busy sum.
        assert_eq!(batch_latency(&completions), crate::queue::total_busy_time(&completions));
    }
}
