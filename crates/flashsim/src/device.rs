//! The [`Device`] trait: the sans-I/O boundary between data structures
//! (BufferHash, baseline indexes) and the storage media they run on.
//!
//! Every operation returns the simulated latency it would have taken on the
//! modelled hardware. Callers decide how to account for that latency (e.g.
//! charge it to the triggering hash-table operation, or overlap it with
//! other work).

use crate::error::Result;
use crate::geometry::Geometry;
use crate::profiles::DeviceProfile;
use crate::stats::IoStats;
use crate::time::SimDuration;

/// A byte-addressed storage device with simulated latencies.
///
/// Implementations model the medium's cost structure: page-granular I/O,
/// sequential-vs-random asymmetry, erase-before-write for raw flash, FTL
/// garbage collection for SSDs, and seek/rotation for disks.
pub trait Device: Send {
    /// The parameter set this device was built from.
    fn profile(&self) -> &DeviceProfile;

    /// Capacity and page/block layout.
    fn geometry(&self) -> Geometry;

    /// Reads `buf.len()` bytes starting at byte `offset`.
    ///
    /// Returns the simulated time the read took. Reads smaller than a page
    /// are charged a full page (paper design principle P2).
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration>;

    /// Writes `data` starting at byte `offset`.
    ///
    /// Returns the simulated time the write took, including any FTL
    /// garbage-collection work it triggered (SSDs) or erase-block management
    /// the model charges to the writer.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration>;

    /// Erases the erase block with index `block` (raw flash chips).
    ///
    /// Devices without caller-visible erasure (SSD, disk, DRAM) return
    /// [`DeviceError::Unsupported`](crate::DeviceError::Unsupported) or treat
    /// it as a hint, as documented by the implementation.
    fn erase_block(&mut self, block: u64) -> Result<SimDuration>;

    /// Declares the byte range `[offset, offset + len)` as no longer live
    /// (a TRIM hint). SSD models use it to cheapen future garbage
    /// collection; other media ignore it.
    fn trim(&mut self, _offset: u64, _len: u64) -> Result<SimDuration> {
        Ok(SimDuration::ZERO)
    }

    /// Informs the device that the workload was idle for `idle` simulated
    /// time. SSD models use this to run background garbage collection for
    /// free, mirroring how real SSDs recover their clean-block pool during
    /// quiet periods.
    fn on_idle(&mut self, _idle: SimDuration) {}

    /// Snapshot of the I/O counters.
    fn stats(&self) -> IoStats;

    /// Resets the I/O counters.
    fn reset_stats(&mut self);

    /// Human-readable device name.
    fn name(&self) -> &'static str {
        self.profile().name
    }
}

/// Blanket implementation so `Box<dyn Device>` is itself a `Device`, which
/// lets higher layers be generic over `D: Device` while still supporting
/// dynamic dispatch where convenient.
impl<D: Device + ?Sized> Device for Box<D> {
    fn profile(&self) -> &DeviceProfile {
        (**self).profile()
    }
    fn geometry(&self) -> Geometry {
        (**self).geometry()
    }
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration> {
        (**self).read_at(offset, buf)
    }
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration> {
        (**self).write_at(offset, data)
    }
    fn erase_block(&mut self, block: u64) -> Result<SimDuration> {
        (**self).erase_block(block)
    }
    fn trim(&mut self, offset: u64, len: u64) -> Result<SimDuration> {
        (**self).trim(offset, len)
    }
    fn on_idle(&mut self, idle: SimDuration) {
        (**self).on_idle(idle)
    }
    fn stats(&self) -> IoStats {
        (**self).stats()
    }
    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramDevice;

    #[test]
    fn boxed_device_dispatches() {
        let mut dev: Box<dyn Device> = Box::new(DramDevice::new(1 << 20).unwrap());
        let lat = dev.write_at(0, &[1, 2, 3]).unwrap();
        assert!(lat > SimDuration::ZERO);
        let mut buf = [0u8; 3];
        dev.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(dev.stats().writes, 1);
        dev.reset_stats();
        assert_eq!(dev.stats().writes, 0);
        assert_eq!(dev.name(), "DRAM");
    }
}
