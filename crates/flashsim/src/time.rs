//! Simulated time primitives.
//!
//! All latencies produced by the device models are expressed as
//! [`SimDuration`] values (nanosecond resolution). Experiments accumulate
//! them on a [`SimClock`] instead of using the wall clock, which makes every
//! run deterministic and independent of the host machine.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A span of simulated time with nanosecond resolution.
///
/// `SimDuration` is deliberately separate from [`std::time::Duration`] so
/// that simulated latencies cannot be accidentally mixed with wall-clock
/// measurements.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from a floating point number of milliseconds.
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ms * 1e6).round() as u64)
    }

    /// Creates a duration from a floating point number of microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        if !us.is_finite() || us <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((us * 1e3).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of the two durations.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Returns the smaller of the two durations.
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        if !rhs.is_finite() || rhs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_div(rhs).unwrap_or(0))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.as_micros_f64())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// A shared, monotonically increasing simulated clock.
///
/// The clock is cheap to clone (internally an [`Arc`]) and safe to advance
/// from multiple threads. Device models do not advance the clock themselves;
/// the caller decides which returned latencies represent elapsed simulated
/// time (e.g. blocking flash I/O) and advances the clock accordingly.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time since the start of the experiment.
    pub fn now(&self) -> SimDuration {
        SimDuration(self.now_ns.load(Ordering::Relaxed))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimDuration {
        let prev = self.now_ns.fetch_add(d.as_nanos(), Ordering::Relaxed);
        SimDuration(prev + d.as_nanos())
    }

    /// Moves the clock forward to `t` if `t` is later than the current time.
    ///
    /// Returns the (possibly unchanged) current time.
    pub fn advance_to(&self, t: SimDuration) -> SimDuration {
        let mut cur = self.now_ns.load(Ordering::Relaxed);
        loop {
            if t.as_nanos() <= cur {
                return SimDuration(cur);
            }
            match self.now_ns.compare_exchange_weak(
                cur,
                t.as_nanos(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Resets the clock back to zero (useful between experiment phases).
    pub fn reset(&self) {
        self.now_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_are_consistent() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis_f64(0.5).as_nanos(), 500_000);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn duration_float_views_round_trip() {
        let d = SimDuration::from_nanos(2_500_000);
        assert!((d.as_millis_f64() - 2.5).abs() < 1e-9);
        assert!((d.as_micros_f64() - 2500.0).abs() < 1e-9);
        assert!((d.as_secs_f64() - 0.0025).abs() < 1e-12);
    }

    #[test]
    fn negative_or_nan_float_inputs_saturate_to_zero() {
        assert_eq!(SimDuration::from_millis_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(f64::NEG_INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        let big = SimDuration::from_nanos(u64::MAX - 1);
        assert_eq!((big + big).as_nanos(), u64::MAX);
        assert_eq!(SimDuration::ZERO - SimDuration::from_nanos(5), SimDuration::ZERO);
        assert_eq!(SimDuration::from_nanos(10) / 0, SimDuration::ZERO);
    }

    #[test]
    fn scaling_by_floats() {
        let d = SimDuration::from_micros(100);
        assert_eq!((d * 2.5).as_nanos(), 250_000);
        assert_eq!((d * -3.0), SimDuration::ZERO);
        assert_eq!((d * f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.00us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn clock_advances_monotonically() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimDuration::ZERO);
        clock.advance(SimDuration::from_millis(3));
        assert_eq!(clock.now(), SimDuration::from_millis(3));
        // advance_to earlier time is a no-op
        clock.advance_to(SimDuration::from_millis(1));
        assert_eq!(clock.now(), SimDuration::from_millis(3));
        clock.advance_to(SimDuration::from_millis(10));
        assert_eq!(clock.now(), SimDuration::from_millis(10));
        clock.reset();
        assert_eq!(clock.now(), SimDuration::ZERO);
    }

    #[test]
    fn clock_clones_share_state() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_secs(1));
        assert_eq!(b.now(), SimDuration::from_secs(1));
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
