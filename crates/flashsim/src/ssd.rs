//! Solid-state drive model with a page-mapped FTL.
//!
//! The model reproduces the SSD behaviour the paper's results depend on:
//!
//! * random reads are fast and roughly uniform;
//! * sequential writes are cheap; small random writes gradually fragment the
//!   physical blocks, so garbage collection must relocate many valid pages
//!   and write latency degrades sharply under sustained random-write load
//!   (the reason Berkeley-DB performs poorly even on an Intel SSD, §7.2.2);
//! * idle time lets background garbage collection replenish the clean-block
//!   pool, so bursty/light write loads stay fast.
//!
//! The FTL is page-mapped with greedy victim selection (fewest valid pages
//! first). Garbage-collection work triggered by a write is charged to that
//! write; in a serial workload later reads also queue behind unfinished
//! background work via the `pending_busy` mechanism.

use std::collections::VecDeque;

use crate::device::{execute_requests, ring_execute, Device};
use crate::error::{DeviceError, Result};
use crate::geometry::Geometry;
use crate::profiles::DeviceProfile;
use crate::queue::{
    CompletionRing, IoCompletion, IoRequest, IoTicket, LaneScheduler, RingCompletion, RingRequest,
};
use crate::stats::IoStats;
use crate::store::SparseStore;
use crate::time::SimDuration;

const INVALID: u64 = u64::MAX;

/// A solid-state drive with a simulated flash translation layer.
#[derive(Debug)]
pub struct Ssd {
    profile: DeviceProfile,
    geometry: Geometry,
    store: SparseStore,
    stats: IoStats,

    /// Logical page -> physical page.
    l2p: Vec<u64>,
    /// Physical page -> logical page (INVALID if the physical page is free
    /// or holds stale data).
    p2l: Vec<u64>,
    /// Number of valid pages per physical block.
    block_valid: Vec<u32>,
    /// Physical blocks that are fully erased and ready for writing.
    free_blocks: VecDeque<u64>,
    /// Fast membership test mirroring `free_blocks`.
    block_is_free: Vec<bool>,
    /// Block currently being filled and the next page index within it.
    open_block: Option<(u64, u32)>,
    /// GC work (latency) that has been incurred but not yet attributed to a
    /// foreground operation; the next I/O pays it down.
    pending_busy: SimDuration,

    phys_blocks: u64,
    pages_per_block: u32,
    gc_low_watermark: u64,
    gc_high_watermark: u64,
}

impl Ssd {
    /// Creates an SSD of `capacity` logical bytes with the given profile.
    ///
    /// Physical capacity is `capacity * (1 + over_provisioning)` rounded up
    /// to whole erase blocks.
    pub fn with_profile(capacity: u64, profile: DeviceProfile) -> Result<Self> {
        if capacity == 0 {
            return Err(DeviceError::InvalidConfig("capacity must be non-zero".into()));
        }
        let block = profile.block_size as u64;
        let capacity = capacity.div_ceil(block) * block;
        let geometry = Geometry::new(capacity, profile.page_size, profile.block_size)?;

        let logical_pages = geometry.pages();
        let min_extra = 4; // always keep a handful of spare blocks
        let extra_blocks =
            ((geometry.blocks() as f64 * profile.over_provisioning).ceil() as u64).max(min_extra);
        let phys_blocks = geometry.blocks() + extra_blocks;
        let pages_per_block = geometry.pages_per_block();
        let phys_pages = phys_blocks * pages_per_block as u64;

        let gc_low_watermark = (phys_blocks / 50).max(2);
        let gc_high_watermark = gc_low_watermark + (phys_blocks / 100).max(2);

        Ok(Ssd {
            geometry,
            store: SparseStore::new(profile.page_size as usize),
            stats: IoStats::default(),
            l2p: vec![INVALID; logical_pages as usize],
            p2l: vec![INVALID; phys_pages as usize],
            block_valid: vec![0u32; phys_blocks as usize],
            free_blocks: (0..phys_blocks).collect(),
            block_is_free: vec![true; phys_blocks as usize],
            open_block: None,
            pending_busy: SimDuration::ZERO,
            phys_blocks,
            pages_per_block,
            gc_low_watermark,
            gc_high_watermark,
            profile,
        })
    }

    /// Creates an Intel X18-M class SSD.
    pub fn intel(capacity: u64) -> Result<Self> {
        Self::with_profile(capacity, DeviceProfile::intel_x18m())
    }

    /// Creates a Transcend TS32GSSD25 class SSD.
    pub fn transcend(capacity: u64) -> Result<Self> {
        Self::with_profile(capacity, DeviceProfile::transcend_ts32g())
    }

    /// Preconditions the drive as if every logical page had already been
    /// written once in random order — the standard steady-state starting
    /// point for SSD benchmarking. No simulated time is charged.
    ///
    /// `fill_fraction` in `[0, 1]` controls how much of the logical space is
    /// mapped.
    pub fn precondition(&mut self, fill_fraction: f64) {
        let fill = fill_fraction.clamp(0.0, 1.0);
        let logical_pages = self.geometry.pages();
        let to_map = (logical_pages as f64 * fill) as u64;
        // Deterministic "random-ish" order: stride by a large odd constant.
        let stride = (2_654_435_761u64 % logical_pages.max(1)) | 1;
        let mut lpn = 0u64;
        for _ in 0..to_map {
            lpn = (lpn + stride) % logical_pages;
            let _ = self.map_write(lpn, true);
        }
        // Preconditioning is free: discard any timing effects.
        self.pending_busy = SimDuration::ZERO;
        self.stats.reset();
    }

    /// Number of blocks currently in the free pool (visible for tests and
    /// diagnostics).
    pub fn free_block_count(&self) -> usize {
        self.free_blocks.len() + usize::from(self.open_block.is_some())
    }

    fn phys_page_offset(&self, phys_page: u64) -> (u64, u32) {
        (phys_page / self.pages_per_block as u64, (phys_page % self.pages_per_block as u64) as u32)
    }

    fn pop_free_block(&mut self) -> Option<u64> {
        let block = self.free_blocks.pop_front()?;
        self.block_is_free[block as usize] = false;
        Some(block)
    }

    fn push_free_block(&mut self, block: u64) {
        if !self.block_is_free[block as usize] {
            self.block_is_free[block as usize] = true;
            self.free_blocks.push_back(block);
        }
    }

    /// Allocates the next physical page, running garbage collection if the
    /// free pool is low. `during_gc` suppresses nested collection when the
    /// allocation is itself part of a relocation.
    ///
    /// Returns the physical page and any GC latency incurred.
    fn allocate_page(&mut self, during_gc: bool) -> Result<(u64, SimDuration)> {
        let mut gc_cost = SimDuration::ZERO;
        if self.open_block.is_none() {
            if !during_gc && (self.free_blocks.len() as u64) <= self.gc_low_watermark {
                gc_cost += self.run_gc()?;
            }
            let block = self.pop_free_block().ok_or(DeviceError::DeviceFull)?;
            self.open_block = Some((block, 0));
        }
        let (block, next) = self.open_block.take().ok_or(DeviceError::DeviceFull)?;
        let phys_page = block * self.pages_per_block as u64 + next as u64;
        if next + 1 < self.pages_per_block {
            self.open_block = Some((block, next + 1));
        }
        Ok((phys_page, gc_cost))
    }

    /// Picks the best GC victim: the non-free, non-open block with the
    /// fewest valid pages. Returns `None` when no block can yield space.
    fn pick_victim(&self) -> Option<u64> {
        let open = self.open_block.map(|(b, _)| b);
        let victim = (0..self.phys_blocks)
            .filter(|b| Some(*b) != open && !self.block_is_free[*b as usize])
            .min_by_key(|&b| self.block_valid[b as usize])?;
        if self.block_valid[victim as usize] as u64 >= self.pages_per_block as u64 {
            // Nothing reclaimable anywhere.
            return None;
        }
        Some(victim)
    }

    /// Runs garbage collection until the free pool reaches the high
    /// watermark or no victim can yield free space.
    fn run_gc(&mut self) -> Result<SimDuration> {
        let mut total = SimDuration::ZERO;
        while (self.free_blocks.len() as u64) < self.gc_high_watermark {
            let Some(victim) = self.pick_victim() else { break };
            total += self.collect_block(victim)?;
            self.stats.gc_runs += 1;
        }
        Ok(total)
    }

    /// Relocates the valid pages of `victim`, erases it and returns the cost.
    fn collect_block(&mut self, victim: u64) -> Result<SimDuration> {
        let mut cost = SimDuration::ZERO;
        let base = victim * self.pages_per_block as u64;
        let page_size = self.profile.page_size as usize;
        let mut moved = 0u64;
        for i in 0..self.pages_per_block as u64 {
            let phys = base + i;
            let lpn = self.p2l[phys as usize];
            if lpn == INVALID {
                continue;
            }
            // Relocate: read + program on a fresh page. Data lives in the
            // logical store, so only mappings and costs change.
            cost += self.profile.read_cost.cost(page_size);
            let (new_phys, gc_inner) = self.allocate_page(true)?;
            cost += gc_inner;
            cost += self.profile.write_cost.cost(page_size);
            self.p2l[phys as usize] = INVALID;
            self.p2l[new_phys as usize] = lpn;
            self.l2p[lpn as usize] = new_phys;
            let (new_block, _) = self.phys_page_offset(new_phys);
            self.block_valid[new_block as usize] += 1;
            moved += 1;
        }
        self.block_valid[victim as usize] = 0;
        cost += self.profile.erase_cost.cost(self.profile.block_size as usize);
        self.stats.erases += 1;
        self.stats.erase_time += cost;
        self.stats.gc_pages_copied += moved;
        self.push_free_block(victim);
        Ok(cost)
    }

    /// Updates FTL mappings for a write to logical page `lpn`; returns GC
    /// latency incurred.
    fn map_write(&mut self, lpn: u64, free_gc: bool) -> Result<SimDuration> {
        // Invalidate the previous mapping, if any.
        let old = self.l2p[lpn as usize];
        if old != INVALID {
            self.p2l[old as usize] = INVALID;
            let (old_block, _) = self.phys_page_offset(old);
            self.block_valid[old_block as usize] =
                self.block_valid[old_block as usize].saturating_sub(1);
        }
        let (phys, gc_cost) = self.allocate_page(free_gc)?;
        self.l2p[lpn as usize] = phys;
        self.p2l[phys as usize] = lpn;
        let (block, _) = self.phys_page_offset(phys);
        self.block_valid[block as usize] += 1;
        Ok(gc_cost)
    }

    /// Takes and clears any pending background-work latency; the caller adds
    /// it to the current operation.
    fn drain_pending(&mut self) -> SimDuration {
        std::mem::take(&mut self.pending_busy)
    }
}

impl Device for Ssd {
    fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, buf.len())?;
        if buf.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        self.store.read(offset, buf);
        let pages = self.geometry.pages_spanned(offset, buf.len());
        let bytes = pages as usize * self.profile.page_size as usize;
        let mut lat = self.profile.read_cost.cost(bytes);
        lat += self.drain_pending();
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        self.stats.read_time += lat;
        Ok(lat)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, data.len())?;
        if data.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        self.store.write(offset, data);
        let first = self.geometry.page_of(offset);
        let last = self.geometry.page_of(offset + data.len() as u64 - 1);
        let mut gc_cost = SimDuration::ZERO;
        for lpn in first..=last {
            gc_cost += self.map_write(lpn, false)?;
        }
        let pages = last - first + 1;
        let bytes = pages as usize * self.profile.page_size as usize;
        // The whole range is issued as one command: fixed cost once, then a
        // bandwidth term (this is what makes batched sequential writes cheap).
        let mut lat = self.profile.write_cost.cost(bytes);
        lat += gc_cost;
        lat += self.drain_pending();
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.write_time += lat;
        Ok(lat)
    }

    fn erase_block(&mut self, _block: u64) -> Result<SimDuration> {
        // The FTL hides physical erasure from the host.
        Err(DeviceError::Unsupported("erase_block on an FTL-managed SSD"))
    }

    fn trim(&mut self, offset: u64, len: u64) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, len as usize)?;
        if len == 0 {
            return Ok(SimDuration::ZERO);
        }
        let first = self.geometry.page_of(offset);
        let last = self.geometry.page_of(offset + len - 1);
        for lpn in first..=last {
            let phys = self.l2p[lpn as usize];
            if phys != INVALID {
                self.p2l[phys as usize] = INVALID;
                let (block, _) = self.phys_page_offset(phys);
                self.block_valid[block as usize] =
                    self.block_valid[block as usize].saturating_sub(1);
                self.l2p[lpn as usize] = INVALID;
            }
        }
        // TRIM itself is nearly free.
        let lat = SimDuration::from_micros(5);
        self.stats.trims += 1;
        self.stats.trim_time += lat;
        Ok(lat)
    }

    /// Native submission: FTL state (mappings, GC, the pending-busy debt)
    /// advances in submission order, so results match sequential issue, but
    /// completions are spread over the controller's queue lanes — batched
    /// flush writes overlap the way NCQ overlaps them on real drives.
    fn submit(&mut self, requests: &mut [IoRequest]) -> Result<Vec<IoCompletion>> {
        self.stats.batches_submitted += 1;
        self.stats.requests_submitted += requests.len() as u64;
        let mut lanes = LaneScheduler::new(self.profile.queue.effective_lanes(requests.len()));
        let completions = execute_requests(self, requests, &mut lanes);
        self.stats.requests_overlapped += completions.iter().filter(|c| c.lane != 0).count() as u64;
        Ok(completions)
    }

    /// Ring admission: FTL state still advances in admission order (the
    /// shared engine executes synchronously), while the ring's lane clocks
    /// model the controller keeping up to its queue depth in flight.
    fn submit_nowait(
        &mut self,
        requests: Vec<RingRequest>,
        ring: &mut CompletionRing,
    ) -> Result<Vec<IoTicket>> {
        self.stats.requests_submitted += requests.len() as u64;
        let stalls_before = ring.admission_stalls();
        let tickets = ring_execute(self, requests, ring)?;
        self.stats.ring_depth_high_water =
            self.stats.ring_depth_high_water.max(ring.depth_high_water() as u64);
        self.stats.ring_admission_stalls += ring.admission_stalls() - stalls_before;
        Ok(tickets)
    }

    fn reap(&mut self, ring: &mut CompletionRing, _min: usize) -> Result<Vec<RingCompletion>> {
        let out = ring.reap(usize::MAX);
        self.stats.requests_reaped += out.len() as u64;
        self.stats.requests_overlapped += out.iter().filter(|c| c.lane != 0).count() as u64;
        Ok(out)
    }

    fn on_idle(&mut self, idle: SimDuration) {
        // Idle time first absorbs any pending busy work...
        let absorbed = self.pending_busy.min(idle);
        self.pending_busy = self.pending_busy - absorbed;
        let mut budget = idle - absorbed;
        // ...then funds background garbage collection.
        while budget > SimDuration::ZERO && (self.free_blocks.len() as u64) < self.gc_high_watermark
        {
            let Some(victim) = self.pick_victim() else { break };
            match self.collect_block(victim) {
                Ok(cost) => {
                    self.stats.gc_runs += 1;
                    if cost >= budget {
                        break;
                    }
                    budget = budget - cost;
                }
                Err(_) => break,
            }
        }
    }

    fn stats(&self) -> IoStats {
        self.stats.clone()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ssd() -> Ssd {
        // 8 MiB logical, 4 KiB pages, 256 KiB blocks -> 32 logical blocks.
        Ssd::intel(8 << 20).unwrap()
    }

    #[test]
    fn write_read_round_trip() {
        let mut ssd = small_ssd();
        let data: Vec<u8> = (0..9000).map(|i| (i % 251) as u8).collect();
        ssd.write_at(12_288, &data).unwrap();
        let mut buf = vec![0u8; data.len()];
        ssd.read_at(12_288, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn random_reads_are_sub_millisecond() {
        let mut ssd = small_ssd();
        ssd.write_at(0, &vec![1u8; 1 << 20]).unwrap();
        let lat = ssd.read_at(512 * 1024, &mut [0u8; 4096]).unwrap();
        assert!(lat < SimDuration::from_millis(1), "read too slow: {lat}");
    }

    #[test]
    fn sequential_large_write_is_cheaper_per_byte_than_random_small_writes() {
        let mut ssd = small_ssd();
        let large = ssd.write_at(0, &vec![1u8; 128 * 1024]).unwrap();
        let mut small_total = SimDuration::ZERO;
        for i in 0..32u64 {
            // Scatter writes across the logical space.
            small_total +=
                ssd.write_at((i * 37 % 60) * 64 * 1024 + (1 << 20), &[1u8; 4096]).unwrap();
        }
        // Same number of bytes (128 KiB) written in both cases.
        assert!(large < small_total, "sequential {large} vs random {small_total}");
    }

    #[test]
    fn sustained_random_writes_trigger_gc_and_slow_down() {
        let mut ssd = Ssd::intel(4 << 20).unwrap(); // tiny drive so it wraps quickly
        ssd.precondition(1.0);
        let logical_pages = ssd.geometry().pages();
        let mut total = SimDuration::ZERO;
        let n = logical_pages * 4;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..n {
            let lpn = rng.gen_range(0..logical_pages);
            total += ssd.write_at(lpn * 4096, &[0xABu8; 4096]).unwrap();
        }
        let s = ssd.stats();
        assert!(s.gc_runs > 0, "expected garbage collection to run");
        assert!(s.gc_pages_copied > 0, "random overwrites should relocate valid pages");
        // GC relocation work should inflate the average random-write cost
        // well beyond the raw program cost of a single page.
        let raw = ssd.profile().write_cost.cost(4096);
        let avg = total / n;
        assert!(
            avg > raw * 2,
            "steady-state random writes ({avg}) should cost much more than a raw program ({raw})"
        );
    }

    #[test]
    fn circular_sequential_overwrites_keep_gc_cheap() {
        // Write the whole drive sequentially several times over (like the
        // BufferHash circular incarnation log). GC victims should be almost
        // entirely invalid, so few pages get copied.
        let mut ssd = Ssd::intel(4 << 20).unwrap();
        let cap = ssd.geometry().capacity;
        let chunk = 128 * 1024u64;
        for round in 0..6u64 {
            let _ = round;
            let mut off = 0;
            while off < cap {
                ssd.write_at(off, &vec![round as u8; chunk as usize]).unwrap();
                off += chunk;
            }
        }
        let s = ssd.stats();
        let copied_per_gc =
            if s.gc_runs == 0 { 0.0 } else { s.gc_pages_copied as f64 / s.gc_runs as f64 };
        assert!(
            copied_per_gc < 8.0,
            "sequential overwrite should leave mostly-invalid victims, got {copied_per_gc} copied/GC"
        );
    }

    #[test]
    fn trim_invalidates_mappings() {
        let mut ssd = small_ssd();
        ssd.write_at(0, &vec![1u8; 256 * 1024]).unwrap();
        ssd.trim(0, 256 * 1024).unwrap();
        // After trim, the block holding those pages has no valid pages, so a
        // full-device rewrite should not need to copy them.
        let cap = ssd.geometry().capacity;
        let mut off = 0;
        while off < cap {
            ssd.write_at(off, &vec![2u8; 128 * 1024]).unwrap();
            off += 128 * 1024;
        }
        assert!(ssd.stats().gc_pages_copied < ssd.geometry().pages_per_block() as u64 * 2);
    }

    #[test]
    fn erase_block_is_not_exposed() {
        let mut ssd = small_ssd();
        assert!(matches!(ssd.erase_block(0), Err(DeviceError::Unsupported(_))));
    }

    #[test]
    fn idle_time_absorbs_pending_work() {
        let mut ssd = Ssd::intel(4 << 20).unwrap();
        ssd.precondition(1.0);
        // Generate some fragmentation.
        let pages = ssd.geometry().pages();
        let mut lpn = 3u64;
        for _ in 0..pages * 2 {
            lpn = (lpn * 2_654_435_761) % pages;
            ssd.write_at(lpn * 4096, &[1u8; 4096]).unwrap();
        }
        // A long idle period lets background GC refill the free pool.
        ssd.on_idle(SimDuration::from_secs(5));
        assert!(ssd.free_block_count() >= 2);
    }

    #[test]
    fn submit_overlaps_on_intel_but_not_on_transcend() {
        use crate::queue::{batch_latency, total_busy_time};
        let build = || -> Vec<IoRequest> {
            (0..16u64).map(|i| IoRequest::write(i * 128 * 1024, vec![1u8; 128 * 1024])).collect()
        };
        let mut intel = Ssd::intel(8 << 20).unwrap();
        let done = intel.submit(&mut build()).unwrap();
        assert!(done.iter().all(|c| c.result.is_ok()));
        let elapsed = batch_latency(&done);
        let busy = total_busy_time(&done);
        assert_eq!(elapsed, busy / 8, "16 equal writes over 8 lanes take 2 slots");
        assert_eq!(intel.stats().requests_overlapped, 14);

        let mut transcend = Ssd::transcend(8 << 20).unwrap();
        let done = transcend.submit(&mut build()).unwrap();
        assert_eq!(batch_latency(&done), total_busy_time(&done), "serial controller");
        assert_eq!(transcend.stats().requests_overlapped, 0);
    }

    #[test]
    fn submit_mutates_ftl_state_in_submission_order() {
        use crate::queue::{batch_latency, total_busy_time};
        let mut ssd = small_ssd();
        let mut reqs = vec![
            IoRequest::write(0, vec![1u8; 4096]),
            IoRequest::write(0, vec![2u8; 4096]),
            IoRequest::read(0, 4096),
        ];
        let completions = ssd.submit(&mut reqs).unwrap();
        assert_eq!(completions[2].result.as_ref().unwrap()[0], 2, "later write wins");
        // All three requests touch the same page: they are dependent, so
        // the queue must serialize them (one lane, elapsed == busy sum).
        assert!(completions.iter().all(|c| c.lane == completions[0].lane));
        assert_eq!(batch_latency(&completions), total_busy_time(&completions));
        assert_eq!(ssd.stats().requests_overlapped, 0);
    }

    #[test]
    fn trim_is_counted() {
        let mut ssd = small_ssd();
        ssd.write_at(0, &[1u8; 4096]).unwrap();
        ssd.trim(0, 4096).unwrap();
        let s = ssd.stats();
        assert_eq!(s.trims, 1);
        assert!(s.trim_time > SimDuration::ZERO);
        assert!(s.busy_time() >= s.trim_time);
    }

    #[test]
    fn intel_is_faster_than_transcend_for_reads() {
        let mut intel = Ssd::intel(4 << 20).unwrap();
        let mut transcend = Ssd::transcend(4 << 20).unwrap();
        intel.write_at(0, &[1u8; 4096]).unwrap();
        transcend.write_at(0, &[1u8; 4096]).unwrap();
        let li = intel.read_at(0, &mut [0u8; 4096]).unwrap();
        let lt = transcend.read_at(0, &mut [0u8; 4096]).unwrap();
        assert!(li < lt);
    }

    #[test]
    fn preconditioning_is_free_and_resets_stats() {
        let mut ssd = small_ssd();
        ssd.precondition(1.0);
        let s = ssd.stats();
        assert_eq!(s.total_ops(), 0);
        assert_eq!(s.busy_time(), SimDuration::ZERO);
    }

    #[test]
    fn device_never_reports_full_under_normal_use() {
        let mut ssd = Ssd::intel(2 << 20).unwrap();
        ssd.precondition(1.0);
        let pages = ssd.geometry().pages();
        let mut lpn = 1u64;
        for _ in 0..pages * 6 {
            lpn = (lpn * 1_103_515_245 + 12_345) % pages;
            ssd.write_at(lpn * 4096, &[9u8; 4096]).expect("write should always succeed");
        }
    }
}
