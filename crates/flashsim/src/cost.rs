//! Linear I/O cost functions.
//!
//! Following the paper (§6.1), the cost of reading, writing or erasing `x`
//! bytes of a flash medium is modelled as a linear function `a + b·x`: a
//! fixed per-command initialization cost plus a per-byte transfer cost. The
//! same form also describes DRAM accesses and the transfer component of disk
//! I/O, so it is shared by all device models.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A linear cost function `fixed + per_byte · size`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearCost {
    /// Fixed per-operation cost (command setup, controller overhead), in
    /// nanoseconds.
    pub fixed_ns: u64,
    /// Incremental cost per byte transferred, in nanoseconds.
    pub per_byte_ns: f64,
}

impl LinearCost {
    /// A cost function that is always zero.
    pub const FREE: LinearCost = LinearCost { fixed_ns: 0, per_byte_ns: 0.0 };

    /// Creates a new linear cost function.
    pub const fn new(fixed_ns: u64, per_byte_ns: f64) -> Self {
        LinearCost { fixed_ns, per_byte_ns }
    }

    /// Convenience constructor taking the fixed part in microseconds and a
    /// sustained bandwidth in MB/s for the variable part.
    pub fn from_latency_bandwidth(fixed_us: f64, bandwidth_mb_s: f64) -> Self {
        let per_byte_ns =
            if bandwidth_mb_s > 0.0 { 1e9 / (bandwidth_mb_s * 1024.0 * 1024.0) } else { 0.0 };
        LinearCost { fixed_ns: (fixed_us * 1e3).round() as u64, per_byte_ns }
    }

    /// Cost of an operation touching `bytes` bytes.
    pub fn cost(&self, bytes: usize) -> SimDuration {
        let variable = (self.per_byte_ns * bytes as f64).round() as u64;
        SimDuration::from_nanos(self.fixed_ns.saturating_add(variable))
    }

    /// Cost of an operation touching `bytes` bytes, paying the fixed cost
    /// only once for `ops` back-to-back operations (models command batching,
    /// design principle P3 in the paper).
    pub fn batched_cost(&self, bytes: usize, ops: usize) -> SimDuration {
        if ops == 0 {
            return SimDuration::ZERO;
        }
        let variable = (self.per_byte_ns * bytes as f64).round() as u64;
        SimDuration::from_nanos(self.fixed_ns.saturating_add(variable))
            .max(SimDuration::from_nanos(self.fixed_ns))
    }
}

impl Default for LinearCost {
    fn default() -> Self {
        LinearCost::FREE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_plus_variable() {
        let c = LinearCost::new(1_000, 2.0);
        assert_eq!(c.cost(0), SimDuration::from_nanos(1_000));
        assert_eq!(c.cost(500), SimDuration::from_nanos(2_000));
    }

    #[test]
    fn free_cost_is_zero() {
        assert_eq!(LinearCost::FREE.cost(4096), SimDuration::ZERO);
    }

    #[test]
    fn from_latency_bandwidth_matches_manual_computation() {
        // 100us fixed, 100 MB/s -> ~9.54ns per byte.
        let c = LinearCost::from_latency_bandwidth(100.0, 100.0);
        assert_eq!(c.fixed_ns, 100_000);
        let one_mb = c.cost(1024 * 1024);
        // 1 MiB at 100 MB/s is ~10ms plus fixed cost.
        assert!(one_mb.as_millis_f64() > 9.9 && one_mb.as_millis_f64() < 10.2);
    }

    #[test]
    fn zero_bandwidth_means_no_variable_cost() {
        let c = LinearCost::from_latency_bandwidth(50.0, 0.0);
        assert_eq!(c.cost(1 << 20), SimDuration::from_micros(50));
    }

    #[test]
    fn batched_cost_pays_fixed_once() {
        let c = LinearCost::new(10_000, 1.0);
        let unbatched: SimDuration = (0..8).map(|_| c.cost(2048)).sum();
        let batched = c.batched_cost(8 * 2048, 8);
        assert!(batched < unbatched);
        assert_eq!(batched, SimDuration::from_nanos(10_000 + 8 * 2048));
    }

    #[test]
    fn batched_cost_of_zero_ops_is_zero() {
        let c = LinearCost::new(10_000, 1.0);
        assert_eq!(c.batched_cost(0, 0), SimDuration::ZERO);
    }
}
