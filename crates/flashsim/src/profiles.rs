//! Device profiles: named parameter sets for the storage media evaluated in
//! the paper.
//!
//! The absolute numbers are calibrated to the anchors reported in the paper
//! (§4, §6.3, §7) — e.g. sub-millisecond random reads on SSDs, ~0.15 ms
//! random reads on the Intel X18-M, multi-millisecond seeks on the Hitachi
//! disk, and the strong random-write penalty of the Transcend SSD. They are
//! a model, not a datasheet: the goal is to preserve the *relative* cost
//! structure that drives the paper's results.

use serde::{Deserialize, Serialize};

use crate::cost::LinearCost;
use crate::queue::QueueCapabilities;

/// The kind of medium a profile describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MediumKind {
    /// Raw NAND flash chip (no FTL; caller manages erasure).
    FlashChip,
    /// Solid-state drive with an FTL.
    Ssd,
    /// Rotating magnetic disk.
    Disk,
    /// DRAM.
    Dram,
}

/// A named set of device parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable name, e.g. `"Intel X18-M SSD"`.
    pub name: &'static str,
    /// Medium kind.
    pub kind: MediumKind,
    /// Read/program granularity in bytes (flash page / SSD sector / disk sector).
    pub page_size: u32,
    /// Erase-block size in bytes (flash media; equals `page_size` otherwise).
    pub block_size: u32,
    /// Cost of a page/sector read.
    pub read_cost: LinearCost,
    /// Cost of a page program / sector write (excluding FTL effects).
    pub write_cost: LinearCost,
    /// Cost of an erase-block erase.
    pub erase_cost: LinearCost,
    /// Average seek time for disks (ns); zero for solid-state media.
    pub seek_ns: u64,
    /// Average rotational delay for disks (ns); zero for solid-state media.
    pub rotation_ns: u64,
    /// Fraction of physical capacity reserved as over-provisioning (SSD).
    pub over_provisioning: f64,
    /// Submission-queue shape: how many requests the device keeps in
    /// flight and whether they overlap in time (see
    /// [`Device::submit`](crate::Device::submit)).
    pub queue: QueueCapabilities,
    /// Purchase cost of the device in US dollars (for ops/sec/$ analyses).
    pub dollar_cost: f64,
    /// Typical power draw in watts (for energy discussions).
    pub power_watts: f64,
}

impl DeviceProfile {
    /// Intel X18-M class SSD: fast random reads, efficient sequential writes,
    /// modest random-write penalty thanks to a better FTL.
    pub fn intel_x18m() -> Self {
        DeviceProfile {
            name: "Intel X18-M SSD",
            kind: MediumKind::Ssd,
            page_size: 4096,
            block_size: 256 * 1024,
            // ~0.15 ms random sector read, ~70 MB/s streaming reads beyond that.
            read_cost: LinearCost::from_latency_bandwidth(145.0, 220.0),
            // ~0.18 ms per program command, ~70 MB/s sequential write bandwidth.
            write_cost: LinearCost::from_latency_bandwidth(60.0, 75.0),
            erase_cost: LinearCost::from_latency_bandwidth(1_200.0, 800.0),
            seek_ns: 0,
            rotation_ns: 0,
            over_provisioning: 0.08,
            // NCQ-class queueing: the controller overlaps several commands.
            queue: QueueCapabilities::overlapped(8),
            dollar_cost: 390.0,
            power_watts: 0.9,
        }
    }

    /// Transcend TS32GSSD25 class SSD: an older, cheaper SSD with slower
    /// reads and a severe random-write / erase penalty.
    pub fn transcend_ts32g() -> Self {
        DeviceProfile {
            name: "Transcend TS32GSSD25 SSD",
            kind: MediumKind::Ssd,
            page_size: 4096,
            block_size: 256 * 1024,
            read_cost: LinearCost::from_latency_bandwidth(480.0, 40.0),
            write_cost: LinearCost::from_latency_bandwidth(250.0, 28.0),
            erase_cost: LinearCost::from_latency_bandwidth(14_000.0, 100.0),
            seek_ns: 0,
            rotation_ns: 0,
            over_provisioning: 0.04,
            // Early JMicron-class controller: one command at a time.
            queue: QueueCapabilities::serial(),
            dollar_cost: 85.0,
            power_watts: 0.7,
        }
    }

    /// Raw NAND flash chip (the §6.4 "flash chip" medium): page reads ~0.24 ms
    /// including transfer, programs a few hundred microseconds, erases ~1.5 ms.
    pub fn flash_chip() -> Self {
        DeviceProfile {
            name: "NAND flash chip",
            kind: MediumKind::FlashChip,
            page_size: 2048,
            block_size: 128 * 1024,
            read_cost: LinearCost::from_latency_bandwidth(110.0, 15.0),
            write_cost: LinearCost::from_latency_bandwidth(250.0, 12.0),
            erase_cost: LinearCost::from_latency_bandwidth(1_500.0, 0.0),
            seek_ns: 0,
            rotation_ns: 0,
            over_provisioning: 0.0,
            // A single chip has one plane in this model: strictly serial.
            queue: QueueCapabilities::serial(),
            dollar_cost: 60.0,
            power_watts: 0.3,
        }
    }

    /// Hitachi Deskstar 7K80 class magnetic disk (7200 rpm): ~8 ms average
    /// seek, ~4.2 ms average rotational delay, ~60 MB/s media rate.
    pub fn hitachi_7k80() -> Self {
        DeviceProfile {
            name: "Hitachi Deskstar 7K80 disk",
            kind: MediumKind::Disk,
            page_size: 4096,
            block_size: 4096,
            read_cost: LinearCost::from_latency_bandwidth(50.0, 60.0),
            write_cost: LinearCost::from_latency_bandwidth(50.0, 55.0),
            erase_cost: LinearCost::FREE,
            seek_ns: 8_000_000,
            rotation_ns: 4_170_000,
            over_provisioning: 0.0,
            // One actuator, but NCQ lets the drive reorder within a window.
            queue: QueueCapabilities::serial_reordering(8),
            dollar_cost: 70.0,
            power_watts: 8.0,
        }
    }

    /// Commodity DRAM: ~0.2 µs per random access plus ~8 GB/s of bandwidth.
    pub fn dram() -> Self {
        DeviceProfile {
            name: "DRAM",
            kind: MediumKind::Dram,
            page_size: 64,
            block_size: 64,
            read_cost: LinearCost::from_latency_bandwidth(0.2, 8_000.0),
            write_cost: LinearCost::from_latency_bandwidth(0.2, 8_000.0),
            erase_cost: LinearCost::FREE,
            seek_ns: 0,
            rotation_ns: 0,
            over_provisioning: 0.0,
            // Channel/bank parallelism absorbs a few concurrent accesses.
            queue: QueueCapabilities::overlapped(4),
            // ~$25/GB-class pricing at the paper's time; per 4 GB module.
            dollar_cost: 100.0,
            power_watts: 4.0,
        }
    }

    /// RamSan-class DRAM SSD appliance (used only for ops/sec/$ comparisons).
    pub fn ramsan_dram_ssd() -> Self {
        DeviceProfile {
            name: "RamSan DRAM-SSD (128GB)",
            kind: MediumKind::Dram,
            page_size: 512,
            block_size: 512,
            read_cost: LinearCost::from_latency_bandwidth(3.0, 3_000.0),
            write_cost: LinearCost::from_latency_bandwidth(3.0, 3_000.0),
            erase_cost: LinearCost::FREE,
            seek_ns: 0,
            rotation_ns: 0,
            over_provisioning: 0.0,
            queue: QueueCapabilities::overlapped(16),
            dollar_cost: 120_000.0,
            power_watts: 650.0,
        }
    }

    /// All built-in profiles, useful for sweeps and documentation tables.
    pub fn all() -> Vec<DeviceProfile> {
        vec![
            DeviceProfile::intel_x18m(),
            DeviceProfile::transcend_ts32g(),
            DeviceProfile::flash_chip(),
            DeviceProfile::hitachi_7k80(),
            DeviceProfile::dram(),
            DeviceProfile::ramsan_dram_ssd(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_distinct_names() {
        let all = DeviceProfile::all();
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn intel_reads_are_faster_than_transcend() {
        let intel = DeviceProfile::intel_x18m();
        let transcend = DeviceProfile::transcend_ts32g();
        assert!(intel.read_cost.cost(4096) < transcend.read_cost.cost(4096));
    }

    #[test]
    fn dram_is_orders_of_magnitude_faster_than_flash() {
        let dram = DeviceProfile::dram();
        let flash = DeviceProfile::flash_chip();
        let ratio = flash.read_cost.cost(2048).as_nanos() as f64
            / dram.read_cost.cost(2048).as_nanos().max(1) as f64;
        assert!(ratio > 50.0, "flash/DRAM read ratio too small: {ratio}");
    }

    #[test]
    fn disk_seek_dominates_transfer_for_small_io() {
        let disk = DeviceProfile::hitachi_7k80();
        let transfer = disk.read_cost.cost(4096);
        assert!(disk.seek_ns > 10 * transfer.as_nanos());
    }

    #[test]
    fn block_sizes_are_multiples_of_page_sizes() {
        for p in DeviceProfile::all() {
            assert_eq!(p.block_size % p.page_size, 0, "{}", p.name);
        }
    }

    #[test]
    fn queue_shapes_match_the_medium() {
        use crate::queue::OverlapModel;
        assert_eq!(DeviceProfile::intel_x18m().queue.overlap, OverlapModel::Overlapped);
        assert_eq!(DeviceProfile::transcend_ts32g().queue.max_queue_depth, 1);
        assert_eq!(DeviceProfile::flash_chip().queue.overlap, OverlapModel::Serial);
        // The disk queues for reordering but never overlaps transfers.
        let disk = DeviceProfile::hitachi_7k80().queue;
        assert_eq!(disk.overlap, OverlapModel::Serial);
        assert!(disk.max_queue_depth > 1);
        assert_eq!(DeviceProfile::dram().queue.overlap, OverlapModel::Overlapped);
    }

    #[test]
    fn ramsan_is_expensive() {
        assert!(DeviceProfile::ramsan_dram_ssd().dollar_cost > 100_000.0);
    }
}
