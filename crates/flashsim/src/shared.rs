//! Sharing one physical device between several owners.
//!
//! [`SharedDevice`] is a cloneable handle to a single underlying
//! [`Device`], optionally restricted to a byte window ("partition") of it.
//! It exists so higher layers that own one device per index — e.g.
//! `StripedClam`, which gives every stripe its own `Clam<D>` — can instead
//! stripe over **one** physical device: each stripe gets a partition, and
//! all of their traffic funnels through the same submission queue and
//! completion-ring timeline (the file backend's single worker pool, one
//! SSD controller's lanes), so cross-batch requests genuinely contend and
//! overlap on shared hardware.
//!
//! Partitions translate offsets (and erase-block indices) into the parent
//! window; bounds are enforced by each partition's own [`Geometry`], so a
//! stripe cannot reach outside its window. The underlying device's
//! statistics are shared by all handles — they describe the *device*, not
//! any one partition.
//!
//! Calls lock the shared device for their duration. Blocking calls on the
//! file backend ([`Device::reap`] waiting for pool results) hold the lock
//! while they wait; concurrent stripes still make progress because the
//! worker pool executes independently of the lock, but submission
//! interleaving is at call granularity.

use std::sync::{Arc, Mutex};

use crate::device::Device;
use crate::error::{DeviceError, Result};
use crate::geometry::Geometry;
use crate::profiles::DeviceProfile;
use crate::queue::{
    CompletionRing, IoCompletion, IoRequest, IoTicket, QueueCapabilities, RingCompletion,
    RingRequest,
};
use crate::stats::IoStats;
use crate::time::SimDuration;

/// A cloneable, optionally windowed handle to one underlying device.
#[derive(Debug)]
pub struct SharedDevice<D: Device> {
    inner: Arc<Mutex<D>>,
    /// Cached at construction (profiles are immutable after construction),
    /// so [`Device::profile`] can return a reference without holding the
    /// lock.
    profile: DeviceProfile,
    /// Geometry of this handle's window.
    geometry: Geometry,
    /// Byte offset of the window within the underlying device.
    base: u64,
}

impl<D: Device> Clone for SharedDevice<D> {
    fn clone(&self) -> Self {
        SharedDevice {
            inner: Arc::clone(&self.inner),
            profile: self.profile.clone(),
            geometry: self.geometry,
            base: self.base,
        }
    }
}

impl<D: Device> SharedDevice<D> {
    /// Wraps `device` for shared use; the handle spans the whole device.
    pub fn new(device: D) -> Self {
        let profile = device.profile().clone();
        let geometry = device.geometry();
        SharedDevice { inner: Arc::new(Mutex::new(device)), profile, geometry, base: 0 }
    }

    /// A handle restricted to the window `[base, base + len)` of this
    /// handle's window. `base` and `len` must be erase-block aligned (so
    /// block indices translate cleanly) and lie within this window.
    pub fn partition(&self, base: u64, len: u64) -> Result<SharedDevice<D>> {
        let block = self.geometry.block_size as u64;
        if !base.is_multiple_of(block) || !len.is_multiple_of(block) {
            return Err(DeviceError::InvalidConfig(format!(
                "partition [{base}, {base}+{len}) is not aligned to the {block}-byte erase block"
            )));
        }
        self.geometry.check_bounds(base, len as usize)?;
        let geometry = Geometry::new(len, self.geometry.page_size, self.geometry.block_size)?;
        Ok(SharedDevice {
            inner: Arc::clone(&self.inner),
            profile: self.profile.clone(),
            geometry,
            base: self.base + base,
        })
    }

    /// Splits this handle's window into `n` equal partitions (in offset
    /// order). The per-partition size is rounded **down** to the erase
    /// block, so every partition is aligned; trailing bytes that do not
    /// divide evenly are left unassigned. This is the striping helper
    /// behind serving layers that run one `Clam` per partition of a
    /// single physical device (e.g. `clamd`'s `StripedClam` backend).
    pub fn split(&self, n: usize) -> Result<Vec<SharedDevice<D>>> {
        if n == 0 {
            return Err(DeviceError::InvalidConfig("cannot split a device into 0 parts".into()));
        }
        let block = self.geometry.block_size as u64;
        let per = self.geometry.capacity / n as u64 / block * block;
        if per == 0 {
            return Err(DeviceError::InvalidConfig(format!(
                "{} bytes cannot host {n} block-aligned partitions (block {block})",
                self.geometry.capacity
            )));
        }
        (0..n as u64).map(|i| self.partition(i * per, per)).collect()
    }

    /// Runs `f` with exclusive access to the underlying device (offsets
    /// un-translated — this is the whole device, not the window).
    pub fn with<R>(&self, f: impl FnOnce(&mut D) -> R) -> R {
        f(&mut self.inner.lock().expect("shared device lock"))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, D> {
        self.inner.lock().expect("shared device lock")
    }

    /// Translates a window-relative request into device coordinates.
    fn translate(&self, request: &mut IoRequest) -> Result<()> {
        match request {
            IoRequest::Read { offset, len } => {
                self.geometry.check_bounds(*offset, *len)?;
                *offset += self.base;
            }
            IoRequest::Write { offset, data } => {
                self.geometry.check_bounds(*offset, data.len())?;
                *offset += self.base;
            }
            IoRequest::Trim { offset, len } => {
                self.geometry.check_bounds(*offset, *len as usize)?;
                *offset += self.base;
            }
            IoRequest::Erase { block } => {
                let blocks = self.geometry.blocks();
                if *block >= blocks {
                    return Err(DeviceError::OutOfBounds {
                        offset: *block * self.geometry.block_size as u64,
                        len: self.geometry.block_size as usize,
                        capacity: self.geometry.capacity,
                    });
                }
                *block += self.base / self.geometry.block_size as u64;
            }
        }
        Ok(())
    }
}

impl<D: Device> Device for SharedDevice<D> {
    fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn queue(&self) -> QueueCapabilities {
        self.profile.queue
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, buf.len())?;
        let base = self.base;
        self.lock().read_at(base + offset, buf)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, data.len())?;
        let base = self.base;
        self.lock().write_at(base + offset, data)
    }

    fn erase_block(&mut self, block: u64) -> Result<SimDuration> {
        if block >= self.geometry.blocks() {
            return Err(DeviceError::OutOfBounds {
                offset: block * self.geometry.block_size as u64,
                len: self.geometry.block_size as usize,
                capacity: self.geometry.capacity,
            });
        }
        let translated = block + self.base / self.geometry.block_size as u64;
        self.lock().erase_block(translated)
    }

    fn trim(&mut self, offset: u64, len: u64) -> Result<SimDuration> {
        self.geometry.check_bounds(offset, len as usize)?;
        let base = self.base;
        self.lock().trim(base + offset, len)
    }

    fn submit(&mut self, requests: &mut [IoRequest]) -> Result<Vec<IoCompletion>> {
        // Window violations surface as per-request errors (matching how
        // every backend reports out-of-bounds requests within a batch),
        // translated requests go to the device as one submission. Write
        // payloads are moved, not cloned — `submit` consumes its requests
        // (see the trait docs), so the caller's slice is left with empty
        // payloads either way.
        let mut failed: Vec<(usize, DeviceError)> = Vec::new();
        let mut forward: Vec<IoRequest> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        for (index, request) in requests.iter_mut().enumerate() {
            match self.translate(request) {
                Ok(()) => {
                    forward.push(match request {
                        IoRequest::Write { offset, data } => {
                            IoRequest::Write { offset: *offset, data: std::mem::take(data) }
                        }
                        other => other.clone(), // payload-free variants
                    });
                    slots.push(index);
                }
                Err(e) => failed.push((index, e)),
            }
        }
        let inner = self.lock().submit(&mut forward)?;
        let mut out: Vec<Option<IoCompletion>> = (0..requests.len()).map(|_| None).collect();
        for (completion, &index) in inner.into_iter().zip(&slots) {
            out[index] = Some(IoCompletion { index, ..completion });
        }
        for (index, e) in failed {
            out[index] =
                Some(IoCompletion { index, lane: 0, latency: SimDuration::ZERO, result: Err(e) });
        }
        Ok(out.into_iter().map(|c| c.expect("every request completed")).collect())
    }

    fn submit_nowait(
        &mut self,
        requests: Vec<RingRequest>,
        ring: &mut CompletionRing,
    ) -> Result<Vec<IoTicket>> {
        // One slot per request: `Err(ticket)` for window violations
        // (completed through the ring immediately), `Ok(())` markers for
        // requests *moved* into `forward` — payloads are never cloned.
        let mut translated: Vec<std::result::Result<(), IoTicket>> =
            Vec::with_capacity(requests.len());
        let mut forward: Vec<RingRequest> = Vec::new();
        for RingRequest { mut request, not_before } in requests {
            if let Err(e) = self.translate(&mut request) {
                let ticket = ring.admit(&request, not_before);
                ring.finish(ticket, SimDuration::ZERO, Err(e));
                translated.push(Err(ticket));
            } else {
                forward.push(RingRequest { request, not_before });
                translated.push(Ok(()));
            }
        }
        let mut inner = self.lock().submit_nowait(forward, ring)?.into_iter();
        Ok(translated
            .into_iter()
            .map(|t| match t {
                Ok(()) => inner.next().expect("one ticket per forwarded request"),
                Err(ticket) => ticket,
            })
            .collect())
    }

    fn reap(&mut self, ring: &mut CompletionRing, min: usize) -> Result<Vec<RingCompletion>> {
        self.lock().reap(ring, min)
    }

    fn on_idle(&mut self, idle: SimDuration) {
        self.lock().on_idle(idle)
    }

    fn stats(&self) -> IoStats {
        self.lock().stats()
    }

    fn reset_stats(&mut self) {
        self.lock().reset_stats()
    }

    fn name(&self) -> &'static str {
        self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramDevice;
    use crate::ssd::Ssd;

    #[test]
    fn partitions_translate_offsets_and_share_state() {
        let shared = SharedDevice::new(DramDevice::new(1 << 20).unwrap());
        let mut a = shared.partition(0, 512 * 1024).unwrap();
        let mut b = shared.partition(512 * 1024, 512 * 1024).unwrap();
        a.write_at(0, b"stripe a").unwrap();
        b.write_at(0, b"stripe b").unwrap();
        // The two partitions landed in disjoint windows of one device.
        let mut buf = [0u8; 8];
        shared.with(|d| d.read_at(0, &mut buf).unwrap());
        assert_eq!(&buf, b"stripe a");
        shared.with(|d| d.read_at(512 * 1024, &mut buf).unwrap());
        assert_eq!(&buf, b"stripe b");
        // Both partitions' traffic shows up in the one device's counters.
        assert_eq!(a.stats().writes, 2);
        // A partition cannot reach outside its window.
        assert!(a.write_at(512 * 1024, &[1]).is_err());
        assert!(shared.partition(0, 1 << 21).is_err(), "window exceeds the device");
        assert!(shared.partition(7, 4096).is_err(), "unaligned base");
    }

    #[test]
    fn split_yields_aligned_disjoint_partitions() {
        let shared = SharedDevice::new(DramDevice::new(1 << 20).unwrap());
        let mut parts = shared.split(3).unwrap();
        assert_eq!(parts.len(), 3);
        let per = parts[0].geometry().capacity;
        assert!(per.is_multiple_of(shared.geometry().block_size as u64));
        for (i, p) in parts.iter_mut().enumerate() {
            assert_eq!(p.geometry().capacity, per);
            p.write_at(0, &[i as u8 + 1]).unwrap();
        }
        for i in 0..3u64 {
            let mut b = [0u8; 1];
            shared.with(|d| d.read_at(i * per, &mut b).unwrap());
            assert_eq!(b[0], i as u8 + 1, "partition {i} start");
        }
        assert!(shared.split(0).is_err());
        assert!(shared.split(1 << 30).is_err(), "partitions would round to zero bytes");
    }

    #[test]
    fn partitioned_submissions_share_one_queue() {
        let shared = SharedDevice::new(Ssd::intel(8 << 20).unwrap());
        let mut a = shared.partition(0, 4 << 20).unwrap();
        let mut reqs = vec![
            IoRequest::write(0, vec![1u8; 4096]),
            IoRequest::read(0, 4096),
            IoRequest::read(4 << 20, 4096), // outside the window
        ];
        let done = a.submit(&mut reqs).unwrap();
        assert_eq!(done[1].result.as_ref().unwrap(), &vec![1u8; 4096]);
        assert!(matches!(done[2].result, Err(DeviceError::OutOfBounds { .. })));
        assert_eq!(a.stats().batches_submitted, 1);
        // Ring traffic from a partition flows through the same device.
        let mut ring = CompletionRing::for_queue(a.queue());
        let tickets = a
            .submit_nowait(
                vec![
                    RingRequest::new(IoRequest::read(0, 4096)),
                    RingRequest::new(IoRequest::read(4 << 20, 4096)),
                ],
                &mut ring,
            )
            .unwrap();
        assert_eq!(tickets.len(), 2);
        let done = a.reap(&mut ring, 1).unwrap();
        assert_eq!(done.len(), 2);
        let ok = done.iter().find(|c| c.ticket == tickets[0]).unwrap();
        assert_eq!(ok.result.as_ref().unwrap(), &vec![1u8; 4096]);
        let bad = done.iter().find(|c| c.ticket == tickets[1]).unwrap();
        assert!(matches!(bad.result, Err(DeviceError::OutOfBounds { .. })));
        assert_eq!(a.stats().requests_reaped, 2);
    }
}
