//! Error types for the storage substrate.

use std::fmt;

/// Errors returned by device models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// An access extended past the end of the device.
    OutOfBounds {
        /// Requested byte offset.
        offset: u64,
        /// Requested length in bytes.
        len: usize,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// A flash page was programmed without being erased first.
    ///
    /// Raw flash chips (no FTL) require the caller to erase a block before
    /// rewriting any of its pages; violating this is a logic error in the
    /// caller (design principle P1 in the paper).
    WriteToDirtyPage {
        /// Byte offset of the offending page.
        page_offset: u64,
    },
    /// An erase was requested for a block index that does not exist.
    InvalidBlock {
        /// Requested erase-block index.
        block: u64,
        /// Number of erase blocks on the device.
        blocks: u64,
    },
    /// The device ran out of physical space (SSD over-provisioning exhausted
    /// and garbage collection could not reclaim any block).
    DeviceFull,
    /// The operation is not supported by this device type (e.g. `erase_block`
    /// on a magnetic disk).
    Unsupported(&'static str),
    /// An I/O error from a real-file backend.
    Io(String),
    /// Invalid configuration (e.g. page size of zero, capacity not a
    /// multiple of the block size).
    InvalidConfig(String),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfBounds { offset, len, capacity } => write!(
                f,
                "access out of bounds: offset {offset} + len {len} exceeds capacity {capacity}"
            ),
            DeviceError::WriteToDirtyPage { page_offset } => {
                write!(f, "programming non-erased flash page at offset {page_offset}")
            }
            DeviceError::InvalidBlock { block, blocks } => {
                write!(f, "invalid erase block {block} (device has {blocks} blocks)")
            }
            DeviceError::DeviceFull => write!(f, "device is full: no clean blocks available"),
            DeviceError::Unsupported(what) => write!(f, "operation not supported: {what}"),
            DeviceError::Io(e) => write!(f, "file backend I/O error: {e}"),
            DeviceError::InvalidConfig(e) => write!(f, "invalid device configuration: {e}"),
        }
    }
}

impl std::error::Error for DeviceError {}

impl From<std::io::Error> for DeviceError {
    fn from(e: std::io::Error) -> Self {
        DeviceError::Io(e.to_string())
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DeviceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_fields() {
        let e = DeviceError::OutOfBounds { offset: 10, len: 20, capacity: 16 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("16"));
        let e = DeviceError::InvalidBlock { block: 7, blocks: 4 };
        assert!(e.to_string().contains('7'));
        assert!(DeviceError::DeviceFull.to_string().contains("full"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: DeviceError = io.into();
        assert!(matches!(e, DeviceError::Io(_)));
    }
}
