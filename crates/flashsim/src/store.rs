//! Sparse in-memory byte store backing the simulated devices.
//!
//! Simulated devices can be tens of gigabytes "large" while only a fraction
//! of that space is ever written during an experiment. [`SparseStore`] keeps
//! only the pages that have actually been written; unwritten regions read
//! back as zeroes.

use std::collections::HashMap;

/// A sparse, page-granular byte store.
#[derive(Debug, Clone)]
pub struct SparseStore {
    page_size: usize,
    pages: HashMap<u64, Box<[u8]>>,
}

impl SparseStore {
    /// Creates a store with the given backing page size (the allocation
    /// granularity; independent of the device's logical page size, though
    /// using the same value avoids straddling).
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be non-zero");
        SparseStore { page_size, pages: HashMap::new() }
    }

    /// Backing page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of backing pages currently materialised.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Approximate resident memory in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * self.page_size
    }

    /// Reads `buf.len()` bytes starting at `offset` into `buf`.
    pub fn read(&self, offset: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_idx = pos / self.page_size as u64;
            let in_page = (pos % self.page_size as u64) as usize;
            let n = (self.page_size - in_page).min(buf.len() - done);
            match self.pages.get(&page_idx) {
                Some(page) => buf[done..done + n].copy_from_slice(&page[in_page..in_page + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Writes `data` starting at `offset`.
    pub fn write(&mut self, offset: u64, data: &[u8]) {
        let page_size = self.page_size;
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset + done as u64;
            let page_idx = pos / page_size as u64;
            let in_page = (pos % page_size as u64) as usize;
            let n = (page_size - in_page).min(data.len() - done);
            let page = self
                .pages
                .entry(page_idx)
                .or_insert_with(|| vec![0u8; page_size].into_boxed_slice());
            page[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
            done += n;
        }
    }

    /// Zeroes (and releases) whole backing pages fully covered by
    /// `[offset, offset+len)`, and zeroes the partial edges.
    pub fn erase(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let page_size = self.page_size as u64;
        let end = offset + len;
        let first_full = offset.div_ceil(page_size);
        // `last_full` is exclusive. Drop fully covered pages.
        let last_full = end / page_size;
        for p in first_full..last_full {
            self.pages.remove(&p);
        }
        // Zero leading partial page.
        if !offset.is_multiple_of(page_size) {
            let lead_len = (page_size - offset % page_size).min(len);
            let zeros = vec![0u8; lead_len as usize];
            self.write(offset, &zeros);
        }
        // Zero trailing partial page.
        if !end.is_multiple_of(page_size) && end / page_size >= first_full {
            let tail_start = end - end % page_size;
            if tail_start >= offset {
                let zeros = vec![0u8; (end - tail_start) as usize];
                self.write(tail_start, &zeros);
            }
        }
    }

    /// Drops all data.
    pub fn clear(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_regions_read_zero() {
        let store = SparseStore::new(4096);
        let mut buf = [1u8; 64];
        store.read(1 << 30, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(store.resident_pages(), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut store = SparseStore::new(4096);
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        store.write(5000, &data);
        let mut buf = vec![0u8; data.len()];
        store.read(5000, &mut buf);
        assert_eq!(buf, data);
        // Straddles three backing pages.
        assert_eq!(store.resident_pages(), 3);
    }

    #[test]
    fn sparse_writes_far_apart_stay_sparse() {
        let mut store = SparseStore::new(4096);
        store.write(0, &[1, 2, 3]);
        store.write(10 << 30, &[4, 5, 6]);
        assert_eq!(store.resident_pages(), 2);
        let mut buf = [0u8; 3];
        store.read(10 << 30, &mut buf);
        assert_eq!(buf, [4, 5, 6]);
    }

    #[test]
    fn erase_releases_full_pages_and_zeroes_partials() {
        let mut store = SparseStore::new(1024);
        store.write(0, &vec![0xAB; 4096]);
        assert_eq!(store.resident_pages(), 4);
        // Erase from the middle of page 0 to the middle of page 3.
        store.erase(512, 1024 * 2 + 512 + 512);
        // Pages 1 and 2 are fully covered and released; 0 and 3 remain.
        assert_eq!(store.resident_pages(), 2);
        let mut buf = vec![0u8; 4096];
        store.read(0, &mut buf);
        assert!(buf[..512].iter().all(|&b| b == 0xAB));
        assert!(buf[512..3584].iter().all(|&b| b == 0));
        assert!(buf[3584..].iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn erase_zero_length_is_noop() {
        let mut store = SparseStore::new(1024);
        store.write(0, &[7; 10]);
        store.erase(0, 0);
        let mut buf = [0u8; 10];
        store.read(0, &mut buf);
        assert_eq!(buf, [7; 10]);
    }

    #[test]
    fn clear_drops_everything() {
        let mut store = SparseStore::new(1024);
        store.write(0, &[1; 2048]);
        store.clear();
        assert_eq!(store.resident_pages(), 0);
    }

    #[test]
    fn overwrite_replaces_data() {
        let mut store = SparseStore::new(256);
        store.write(100, &[1; 300]);
        store.write(150, &[2; 100]);
        let mut buf = [0u8; 300];
        store.read(100, &mut buf);
        assert!(buf[..50].iter().all(|&b| b == 1));
        assert!(buf[50..150].iter().all(|&b| b == 2));
        assert!(buf[150..].iter().all(|&b| b == 1));
    }
}
