//! # bufferhash — BufferHash and CLAMs (cheap and large CAMs)
//!
//! This crate implements the core contribution of *"Cheap and Large CAMs for
//! High Performance Data-Intensive Networked Systems"* (NSDI 2010):
//! **BufferHash**, a flash-friendly hash table, and **CLAM**, the resulting
//! large, cheap content-addressable store built from a little DRAM and a lot
//! of flash.
//!
//! ## How it works
//!
//! * The key space is partitioned across many [super tables](SuperTable).
//! * Each super table buffers inserts in a small in-DRAM cuckoo hash table
//!   ([`CuckooBuffer`]); when the buffer fills it is written to flash
//!   sequentially as an immutable *incarnation*.
//! * One in-DRAM Bloom filter per incarnation (stored [bit-sliced with a
//!   sliding window](BitSlicedBloomSet)) routes lookups to the few
//!   incarnations that may hold the key, so most lookups cost at most one
//!   flash page read.
//! * Updates and deletes are lazy; space is reclaimed when incarnations are
//!   evicted, under FIFO, LRU, update-based or priority-based
//!   [eviction policies](EvictionPolicy).
//! * Callers with many outstanding operations use the batched pipeline
//!   ([`Clam::insert_batch`] / [`Clam::lookup_batch`]): ops are grouped by
//!   super table, the per-call overhead is paid once per batch, and flush
//!   writes to contiguous log slots are coalesced into single sequential
//!   device writes (see DESIGN.md "Batched operations").
//! * The on-flash format is versioned and CRC-checksummed, and
//!   [`Clam::recover`] rebuilds the entire in-DRAM state (filters, log
//!   map, eviction queues) from flash contents alone after a crash,
//!   discarding torn flushes by checksum and reporting what it found in a
//!   [`RecoveryReport`] (see DESIGN.md "Crash consistency").
//! * The read path is **queued** (see DESIGN.md "Queued lookups"): each
//!   lookup key is a probe state machine, and every round of a batch
//!   submits the next pending page read of all unresolved keys as one
//!   wave through the device submission queue, so independent probes
//!   overlap and a batch costs the wave makespans
//!   ([`BatchLookupOutcome`]) instead of the summed per-read time.
//!
//! ## Quick start
//!
//! ```
//! use bufferhash::{Clam, ClamConfig};
//! use flashsim::Ssd;
//!
//! // 8 MiB of simulated flash, 2 MiB of DRAM.
//! let config = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
//! let device = Ssd::intel(8 << 20).unwrap();
//! let mut clam = Clam::new(device, config).unwrap();
//!
//! clam.insert(0xfeed_beef, 42).unwrap();
//! let found = clam.lookup(0xfeed_beef).unwrap();
//! assert_eq!(found.value, Some(42));
//! println!("lookup took {} (simulated)", found.latency);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
mod bitslice;
mod bloom;
mod clam;
mod config;
mod cuckoo;
mod error;
mod eviction;
mod filters;
mod incarnation;
mod log;
mod recovery;
mod shared;
mod stats;
mod supertable;
mod types;

pub use bitslice::BitSlicedBloomSet;
pub use bloom::BloomFilter;
pub use clam::{
    BatchInsertOutcome, BatchLookupOutcome, Clam, InsertOutcome, LookupOutcome, LookupSource,
    MemoryProbe, MemoryUsage, BASE_OP_OVERHEAD, BATCHED_OP_OVERHEAD,
};
pub use config::{tuning, ClamConfig, FlashLayoutMode};
pub use cuckoo::{BufferInsert, CuckooBuffer};
pub use error::{BufferHashError, Result};
pub use eviction::{EvictionPolicy, PriorityFn, RetainDecision};
pub use filters::{FilterBank, FilterMode};
pub use incarnation::{
    crc32, lookup_in_page, parse_incarnation, parse_page_header_checked, scan_incarnation,
    IncarnationIdentity, IncarnationLayout, PageHeader, PageLookup, SlotScan, INCARNATION_VERSION,
    PAGE_HEADER_SIZE,
};
pub use log::{LogAllocator, SlotAllocation, SlotOwner};
pub use recovery::RecoveryReport;
pub use shared::{SharedClam, StripedClam};
pub use stats::ClamStats;
pub use supertable::{IncarnationMeta, SuperTable};
pub use types::{hash_with_seed, mix64, Entry, Key, Value, ENTRY_SIZE};
