//! Standard Bloom filters.
//!
//! Each incarnation of a super table has an in-DRAM Bloom filter summarising
//! the keys it holds (§5.1). At lookup time the filters identify the small
//! set of incarnations that may contain a key, avoiding flash reads of the
//! others. This module provides the plain (one-filter-per-incarnation)
//! implementation; the bit-sliced organisation of §5.1.3 lives in
//! [`crate::bitslice`].

use serde::{Deserialize, Serialize};

use crate::types::{hash_with_seed, Key};

/// A fixed-size Bloom filter over 64-bit keys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: u32,
    items: usize,
}

impl BloomFilter {
    /// Creates a filter with `num_bits` bits and `num_hashes` hash functions.
    ///
    /// `num_bits` is rounded up to at least one 64-bit word; `num_hashes` is
    /// clamped to `1..=16`.
    pub fn new(num_bits: usize, num_hashes: u32) -> Self {
        let num_bits = num_bits.max(64);
        let words = num_bits.div_ceil(64);
        BloomFilter {
            bits: vec![0u64; words],
            num_bits,
            num_hashes: num_hashes.clamp(1, 16),
            items: 0,
        }
    }

    /// Creates a filter sized for `expected_items` with the number of hash
    /// functions that minimises the false-positive rate for the given
    /// per-item bit budget (`h = (m/n)·ln2`, §6.2).
    pub fn with_budget(expected_items: usize, bits_per_item: f64) -> Self {
        let bits_per_item = bits_per_item.max(1.0);
        let num_bits = ((expected_items.max(1) as f64) * bits_per_item).ceil() as usize;
        let h = (bits_per_item * std::f64::consts::LN_2).round().max(1.0) as u32;
        BloomFilter::new(num_bits, h)
    }

    /// Number of bits in the filter.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Number of items inserted so far.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Bit positions probed for `key`.
    #[inline]
    fn positions(&self, key: Key) -> impl Iterator<Item = usize> + '_ {
        // Double hashing: position_i = h1 + i·h2 (Kirsch–Mitzenmacher).
        let h1 = hash_with_seed(key, 0x5bd1_e995);
        let h2 = hash_with_seed(key, 0x27d4_eb2f) | 1;
        let m = self.num_bits as u64;
        (0..self.num_hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Inserts `key` into the filter.
    pub fn insert(&mut self, key: Key) {
        let positions: Vec<usize> = self.positions(key).collect();
        for pos in positions {
            self.bits[pos / 64] |= 1 << (pos % 64);
        }
        self.items += 1;
    }

    /// Returns `true` if `key` *may* have been inserted (false positives are
    /// possible, false negatives are not).
    pub fn contains(&self, key: Key) -> bool {
        self.positions(key).all(|pos| self.bits[pos / 64] >> (pos % 64) & 1 == 1)
    }

    /// Clears the filter.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.items = 0;
    }

    /// Theoretical false-positive rate for the current fill level:
    /// `(1 - e^(-k·n/m))^k`.
    pub fn expected_fpr(&self) -> f64 {
        let k = self.num_hashes as f64;
        let n = self.items as f64;
        let m = self.num_bits as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }

    /// Fraction of bits currently set (diagnostic).
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.num_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(4096, 5);
        for k in 0..500u64 {
            f.insert(k * 7919);
        }
        for k in 0..500u64 {
            assert!(f.contains(k * 7919), "false negative for {k}");
        }
    }

    #[test]
    fn false_positive_rate_is_near_theory() {
        let n = 4096;
        let mut f = BloomFilter::with_budget(n, 16.0);
        for k in 0..n as u64 {
            f.insert(hash_with_seed(k, 99));
        }
        let trials = 100_000;
        let fp = (0..trials).filter(|&i| f.contains(hash_with_seed(i as u64, 12_345))).count();
        let measured = fp as f64 / trials as f64;
        let expected = f.expected_fpr();
        // 16 bits/item with optimal h gives ~0.0005; allow generous slack.
        assert!(measured < expected * 4.0 + 0.002, "measured {measured}, expected {expected}");
    }

    #[test]
    fn with_budget_picks_reasonable_hash_count() {
        let f = BloomFilter::with_budget(1000, 10.0);
        // h = 10·ln2 ≈ 6.9 -> 7.
        assert_eq!(f.num_hashes(), 7);
        assert!(f.num_bits() >= 10_000);
    }

    #[test]
    fn clear_resets_state() {
        let mut f = BloomFilter::new(1024, 3);
        f.insert(42);
        assert!(f.contains(42));
        f.clear();
        assert!(!f.contains(42));
        assert_eq!(f.items(), 0);
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn tiny_filter_is_clamped_to_a_word() {
        let f = BloomFilter::new(1, 0);
        assert_eq!(f.num_bits(), 64);
        assert_eq!(f.num_hashes(), 1);
    }

    #[test]
    fn fill_ratio_grows_with_inserts() {
        let mut f = BloomFilter::new(1024, 4);
        let before = f.fill_ratio();
        for k in 0..100 {
            f.insert(k);
        }
        assert!(f.fill_ratio() > before);
        assert!(f.fill_ratio() < 1.0);
    }

    #[test]
    fn memory_accounting() {
        let f = BloomFilter::new(1 << 20, 4);
        assert_eq!(f.memory_bytes(), (1 << 20) / 8);
    }
}
