//! Flash-space allocation for incarnations (§5.2).
//!
//! Flash is divided into fixed-size *slots*, one per incarnation. The
//! allocator hands out slots in one of two layouts:
//!
//! * **global log** (SSD): a single circular sequence over the whole device,
//!   slots written in flush order regardless of which super table they
//!   belong to — the layout that keeps writes sequential under an FTL;
//! * **partition per table** (raw flash chip): each super table owns a
//!   contiguous region written circularly, with erase blocks recycled just
//!   before they are rewritten.
//!
//! When the log wraps onto a slot whose incarnation is still live, that
//! incarnation must be force-evicted from its owning super table; the
//! allocator reports those owners so the CLAM can do so before the write.

use serde::{Deserialize, Serialize};

use crate::config::FlashLayoutMode;
use crate::error::{BufferHashError, Result};

/// Identifies the incarnation occupying a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotOwner {
    /// Super table that owns the incarnation.
    pub table: usize,
    /// The flush sequence number of the incarnation.
    pub seq: u64,
}

/// The placement decision for one incarnation flush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotAllocation {
    /// Byte offset on flash where the incarnation must be written.
    pub offset: u64,
    /// Erase-block indices that must be erased before writing (raw flash
    /// chips only; empty for SSDs).
    pub blocks_to_erase: Vec<u64>,
    /// Live incarnations displaced by this allocation (the slot being
    /// overwritten, plus — on raw flash — other slots sharing an erase block
    /// that is about to be erased). Their owning super tables must drop them
    /// before the write happens.
    pub displaced: Vec<SlotOwner>,
}

/// Allocator of incarnation slots on flash.
#[derive(Debug, Clone)]
pub struct LogAllocator {
    mode: FlashLayoutMode,
    slot_size: u64,
    num_slots: u64,
    block_size: u64,
    /// Owner of each slot (`None` = free or already evicted).
    owners: Vec<Option<SlotOwner>>,
    /// Next slot in the global log.
    next_slot: u64,
    /// Next slot within each table's partition (partitioned layout).
    per_table_next: Vec<u64>,
    /// Slots per table partition (partitioned layout).
    slots_per_table: u64,
}

impl LogAllocator {
    /// Creates an allocator for a device of `flash_capacity` bytes divided
    /// into slots of `slot_size` bytes, shared by `num_tables` super tables.
    ///
    /// `block_size` is the erase-block size (used only by the partitioned
    /// layout to schedule erasure).
    pub fn new(
        mode: FlashLayoutMode,
        flash_capacity: u64,
        slot_size: u64,
        block_size: u64,
        num_tables: usize,
    ) -> Result<Self> {
        if slot_size == 0 || flash_capacity < slot_size {
            return Err(BufferHashError::InvalidConfig(
                "flash must hold at least one incarnation slot".into(),
            ));
        }
        let num_slots = flash_capacity / slot_size;
        if (num_slots as usize) < num_tables {
            return Err(BufferHashError::InvalidConfig(format!(
                "{num_slots} slots cannot serve {num_tables} super tables"
            )));
        }
        let slots_per_table = num_slots / num_tables.max(1) as u64;
        Ok(LogAllocator {
            mode,
            slot_size,
            num_slots,
            block_size: block_size.max(1),
            owners: vec![None; num_slots as usize],
            next_slot: 0,
            per_table_next: vec![0; num_tables.max(1)],
            slots_per_table,
        })
    }

    /// Slot size in bytes.
    pub fn slot_size(&self) -> u64 {
        self.slot_size
    }

    /// Total number of slots.
    pub fn num_slots(&self) -> u64 {
        self.num_slots
    }

    /// Number of slots currently owned by live incarnations.
    pub fn live_slots(&self) -> usize {
        self.owners.iter().filter(|o| o.is_some()).count()
    }

    /// Allocates the slot for a new incarnation of `table` with flush
    /// sequence `seq`.
    pub fn allocate(&mut self, table: usize, seq: u64) -> Result<SlotAllocation> {
        match self.mode {
            FlashLayoutMode::GlobalLog => self.allocate_global(table, seq),
            FlashLayoutMode::PartitionPerTable => self.allocate_partitioned(table, seq),
        }
    }

    /// Marks a slot's incarnation as no longer live (after its super table
    /// evicted it). The space is reclaimed when the log wraps around.
    pub fn release(&mut self, offset: u64) {
        let slot = offset / self.slot_size;
        if let Some(owner) = self.owners.get_mut(slot as usize) {
            *owner = None;
        }
    }

    fn allocate_global(&mut self, table: usize, seq: u64) -> Result<SlotAllocation> {
        let slot = self.next_slot;
        self.next_slot = (self.next_slot + 1) % self.num_slots;
        let mut displaced = Vec::new();
        if let Some(owner) = self.owners[slot as usize].take() {
            displaced.push(owner);
        }
        self.owners[slot as usize] = Some(SlotOwner { table, seq });
        Ok(SlotAllocation { offset: slot * self.slot_size, blocks_to_erase: Vec::new(), displaced })
    }

    fn allocate_partitioned(&mut self, table: usize, seq: u64) -> Result<SlotAllocation> {
        if table >= self.per_table_next.len() {
            return Err(BufferHashError::InvalidConfig(format!(
                "table index {table} out of range for the allocator"
            )));
        }
        let base_slot = table as u64 * self.slots_per_table;
        let within = self.per_table_next[table];
        self.per_table_next[table] = (within + 1) % self.slots_per_table;
        let slot = base_slot + within;
        let offset = slot * self.slot_size;

        let mut displaced = Vec::new();
        let mut blocks_to_erase = Vec::new();

        if self.slot_size >= self.block_size {
            // Slot spans one or more whole erase blocks: erase exactly those.
            let first_block = offset / self.block_size;
            let blocks = self.slot_size.div_ceil(self.block_size);
            blocks_to_erase.extend(first_block..first_block + blocks);
            if let Some(owner) = self.owners[slot as usize].take() {
                displaced.push(owner);
            }
        } else {
            // Several slots share an erase block. Erase the block lazily:
            // only when the write lands on its first slot. All other live
            // slots in that block necessarily hold older incarnations of the
            // same table (the partition is written circularly), so they are
            // displaced together.
            if offset.is_multiple_of(self.block_size) {
                blocks_to_erase.push(offset / self.block_size);
                let slots_per_block = (self.block_size / self.slot_size).max(1);
                for s in slot..(slot + slots_per_block).min(base_slot + self.slots_per_table) {
                    if let Some(owner) = self.owners[s as usize].take() {
                        displaced.push(owner);
                    }
                }
            } else if let Some(owner) = self.owners[slot as usize].take() {
                // Mid-block slot: it was already erased when the block was.
                displaced.push(owner);
            }
        }
        self.owners[slot as usize] = Some(SlotOwner { table, seq });
        Ok(SlotAllocation { offset, blocks_to_erase, displaced })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_log_appends_sequentially_and_wraps() {
        let mut a = LogAllocator::new(
            FlashLayoutMode::GlobalLog,
            8 * 128 * 1024,
            128 * 1024,
            256 * 1024,
            2,
        )
        .unwrap();
        assert_eq!(a.num_slots(), 8);
        let mut offsets = Vec::new();
        for seq in 0..8u64 {
            let alloc = a.allocate((seq % 2) as usize, seq).unwrap();
            assert!(alloc.displaced.is_empty(), "no displacement before the log wraps");
            assert!(alloc.blocks_to_erase.is_empty());
            offsets.push(alloc.offset);
        }
        assert_eq!(offsets, (0..8).map(|i| i * 128 * 1024).collect::<Vec<_>>());
        // The 9th allocation wraps onto slot 0 and displaces its owner.
        let alloc = a.allocate(0, 8).unwrap();
        assert_eq!(alloc.offset, 0);
        assert_eq!(alloc.displaced, vec![SlotOwner { table: 0, seq: 0 }]);
    }

    #[test]
    fn released_slots_do_not_report_displacement() {
        let mut a =
            LogAllocator::new(FlashLayoutMode::GlobalLog, 4 * 64 * 1024, 64 * 1024, 64 * 1024, 1)
                .unwrap();
        let first = a.allocate(0, 0).unwrap();
        for seq in 1..4u64 {
            a.allocate(0, seq).unwrap();
        }
        a.release(first.offset);
        let wrapped = a.allocate(0, 4).unwrap();
        assert_eq!(wrapped.offset, first.offset);
        assert!(wrapped.displaced.is_empty());
        assert_eq!(a.live_slots(), 4);
    }

    #[test]
    fn partitioned_layout_keeps_tables_in_their_regions() {
        // 16 slots of 64 KiB over 4 tables -> 4 slots per table.
        let mut a = LogAllocator::new(
            FlashLayoutMode::PartitionPerTable,
            16 * 64 * 1024,
            64 * 1024,
            64 * 1024,
            4,
        )
        .unwrap();
        for round in 0..8u64 {
            for table in 0..4usize {
                let alloc = a.allocate(table, round).unwrap();
                let partition = alloc.offset / (4 * 64 * 1024);
                assert_eq!(partition as usize, table, "slot landed outside the partition");
            }
        }
    }

    #[test]
    fn partitioned_layout_erases_blocks_before_rewrite() {
        // Slot size == block size: every allocation erases its block.
        let mut a = LogAllocator::new(
            FlashLayoutMode::PartitionPerTable,
            8 * 128 * 1024,
            128 * 1024,
            128 * 1024,
            2,
        )
        .unwrap();
        let alloc = a.allocate(0, 0).unwrap();
        assert_eq!(alloc.blocks_to_erase, vec![0]);
        let alloc = a.allocate(1, 0).unwrap();
        assert_eq!(alloc.blocks_to_erase, vec![4]);
    }

    #[test]
    fn small_slots_share_an_erase_block_and_displace_together() {
        // 4 slots of 32 KiB per 128 KiB block, one table with 8 slots.
        let mut a = LogAllocator::new(
            FlashLayoutMode::PartitionPerTable,
            8 * 32 * 1024,
            32 * 1024,
            128 * 1024,
            1,
        )
        .unwrap();
        // Fill all 8 slots.
        for seq in 0..8u64 {
            let alloc = a.allocate(0, seq).unwrap();
            if seq % 4 == 0 {
                assert_eq!(alloc.blocks_to_erase.len(), 1, "block-aligned slot erases its block");
            } else {
                assert!(alloc.blocks_to_erase.is_empty());
            }
        }
        // Wrapping onto slot 0 erases block 0 and displaces all four live
        // incarnations that shared it.
        let alloc = a.allocate(0, 8).unwrap();
        assert_eq!(alloc.blocks_to_erase, vec![0]);
        assert_eq!(alloc.displaced.len(), 4);
        assert!(alloc.displaced.iter().all(|o| o.seq < 4));
    }

    #[test]
    fn slot_larger_than_block_erases_all_covered_blocks() {
        let mut a = LogAllocator::new(
            FlashLayoutMode::PartitionPerTable,
            4 * 256 * 1024,
            256 * 1024,
            128 * 1024,
            1,
        )
        .unwrap();
        let alloc = a.allocate(0, 0).unwrap();
        assert_eq!(alloc.blocks_to_erase, vec![0, 1]);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(LogAllocator::new(FlashLayoutMode::GlobalLog, 0, 128, 128, 1).is_err());
        assert!(LogAllocator::new(FlashLayoutMode::GlobalLog, 64, 128, 128, 1).is_err());
        assert!(LogAllocator::new(FlashLayoutMode::GlobalLog, 256, 128, 128, 4).is_err());
        let mut a =
            LogAllocator::new(FlashLayoutMode::PartitionPerTable, 512, 128, 128, 2).unwrap();
        assert!(a.allocate(5, 0).is_err());
    }
}
