//! Flash-space allocation for incarnations (§5.2).
//!
//! Flash is divided into fixed-size *slots*, one per incarnation. The
//! allocator hands out slots in one of two layouts:
//!
//! * **global log** (SSD): a single circular sequence over the whole device,
//!   slots written in flush order regardless of which super table they
//!   belong to — the layout that keeps writes sequential under an FTL;
//! * **partition per table** (raw flash chip): each super table owns a
//!   contiguous region written circularly, with erase blocks recycled just
//!   before they are rewritten.
//!
//! When the log wraps onto a slot whose incarnation is still live, that
//! incarnation must be force-evicted from its owning super table; the
//! allocator reports those owners so the CLAM can do so before the write.
//!
//! The allocator is shared by every super table of a stripe and does not
//! synchronize itself: it lives inside `Clam`'s core mutex, and each flush
//! chain holds that mutex from slot grant through ring admission — grant
//! order *is* admission order, the invariant the fine-grained per-table
//! write path relies on (see DESIGN.md "Per-table write locks").

use serde::{Deserialize, Serialize};

use crate::config::FlashLayoutMode;
use crate::error::{BufferHashError, Result};

/// Identifies the incarnation occupying a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotOwner {
    /// Super table that owns the incarnation.
    pub table: usize,
    /// The flush sequence number of the incarnation.
    pub seq: u64,
}

/// The placement decision for one incarnation flush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotAllocation {
    /// Byte offset on flash where the incarnation must be written.
    pub offset: u64,
    /// Erase-block indices that must be erased before writing (raw flash
    /// chips only; empty for SSDs).
    pub blocks_to_erase: Vec<u64>,
    /// Live incarnations displaced by this allocation (the slot being
    /// overwritten, plus — on raw flash — other slots sharing an erase block
    /// that is about to be erased). Their owning super tables must drop them
    /// before the write happens.
    pub displaced: Vec<SlotOwner>,
}

/// Allocator of incarnation slots on flash.
#[derive(Debug, Clone)]
pub struct LogAllocator {
    mode: FlashLayoutMode,
    slot_size: u64,
    num_slots: u64,
    block_size: u64,
    /// Owner of each slot (`None` = free or already evicted).
    owners: Vec<Option<SlotOwner>>,
    /// Next slot in the global log.
    next_slot: u64,
    /// Next slot within each table's partition (partitioned layout).
    per_table_next: Vec<u64>,
    /// Slots per table partition (partitioned layout).
    slots_per_table: u64,
}

impl LogAllocator {
    /// Creates an allocator for a device of `flash_capacity` bytes divided
    /// into slots of `slot_size` bytes, shared by `num_tables` super tables.
    ///
    /// `block_size` is the erase-block size (used only by the partitioned
    /// layout to schedule erasure).
    pub fn new(
        mode: FlashLayoutMode,
        flash_capacity: u64,
        slot_size: u64,
        block_size: u64,
        num_tables: usize,
    ) -> Result<Self> {
        if slot_size == 0 || flash_capacity < slot_size {
            return Err(BufferHashError::InvalidConfig(
                "flash must hold at least one incarnation slot".into(),
            ));
        }
        let num_slots = flash_capacity / slot_size;
        if (num_slots as usize) < num_tables {
            return Err(BufferHashError::InvalidConfig(format!(
                "{num_slots} slots cannot serve {num_tables} super tables"
            )));
        }
        let slots_per_table = num_slots / num_tables.max(1) as u64;
        Ok(LogAllocator {
            mode,
            slot_size,
            num_slots,
            block_size: block_size.max(1),
            owners: vec![None; num_slots as usize],
            next_slot: 0,
            per_table_next: vec![0; num_tables.max(1)],
            slots_per_table,
        })
    }

    /// Slot size in bytes.
    pub fn slot_size(&self) -> u64 {
        self.slot_size
    }

    /// Total number of slots.
    pub fn num_slots(&self) -> u64 {
        self.num_slots
    }

    /// Number of slots currently owned by live incarnations.
    pub fn live_slots(&self) -> usize {
        self.owners.iter().filter(|o| o.is_some()).count()
    }

    /// Allocates the slot for a new incarnation of `table` with flush
    /// sequence `seq`.
    pub fn allocate(&mut self, table: usize, seq: u64) -> Result<SlotAllocation> {
        match self.mode {
            FlashLayoutMode::GlobalLog => self.allocate_global(table, seq),
            FlashLayoutMode::PartitionPerTable => self.allocate_partitioned(table, seq),
        }
    }

    /// Marks a slot's incarnation as no longer live (after its super table
    /// evicted it). The space is reclaimed when the log wraps around.
    pub fn release(&mut self, offset: u64) {
        let slot = offset / self.slot_size;
        if let Some(owner) = self.owners.get_mut(slot as usize) {
            *owner = None;
        }
    }

    /// Rebuilds the allocator from a recovery scan: `owners` lists every
    /// slot whose incarnation the scan accepted, with its owner. All other
    /// slots become free, and the write position resumes immediately after
    /// the highest-`seq` accepted slot — globally for the global log, per
    /// partition for the partitioned layout — so the next flush lands on
    /// exactly the slot a never-crashed lifetime would have written next
    /// (which is where a torn mid-flush write, if any, sits).
    pub fn restore(&mut self, owners: &[(u64, SlotOwner)]) {
        self.owners.iter_mut().for_each(|o| *o = None);
        self.next_slot = 0;
        self.per_table_next.iter_mut().for_each(|n| *n = 0);
        let mut newest: Option<(u64, u64)> = None;
        let mut per_newest: Vec<Option<(u64, u64)>> = vec![None; self.per_table_next.len()];
        for &(slot, owner) in owners {
            let Some(o) = self.owners.get_mut(slot as usize) else { continue };
            *o = Some(owner);
            if newest.is_none_or(|(seq, _)| owner.seq > seq) {
                newest = Some((owner.seq, slot));
            }
            if let Some(entry) = per_newest.get_mut(owner.table) {
                if entry.is_none_or(|(seq, _)| owner.seq > seq) {
                    *entry = Some((owner.seq, slot));
                }
            }
        }
        match self.mode {
            FlashLayoutMode::GlobalLog => {
                if let Some((_, slot)) = newest {
                    self.next_slot = (slot + 1) % self.num_slots;
                }
            }
            FlashLayoutMode::PartitionPerTable => {
                for (table, entry) in per_newest.iter().enumerate() {
                    if let Some((_, slot)) = entry {
                        let within = slot - table as u64 * self.slots_per_table;
                        self.per_table_next[table] = (within + 1) % self.slots_per_table;
                    }
                }
            }
        }
    }

    /// Advances the write pointer past `dirty` slots (the half-programmed
    /// remains of torn writes on raw flash, which cannot be programmed
    /// again until their erase block is cycled). Each log — the global
    /// log, or each table's partition — skips forward while its next slot
    /// is dirty, so resumed flushes land on clean pages; the dirty slots
    /// are reclaimed when the circular pointer next erases their block.
    /// FTL-managed and seek media never need this: they overwrite in
    /// place.
    pub fn skip_dirty(&mut self, dirty: &[u64]) {
        match self.mode {
            FlashLayoutMode::GlobalLog => {
                for _ in 0..self.num_slots {
                    if !dirty.contains(&self.next_slot) {
                        break;
                    }
                    self.next_slot = (self.next_slot + 1) % self.num_slots;
                }
            }
            FlashLayoutMode::PartitionPerTable => {
                for table in 0..self.per_table_next.len() {
                    let base = table as u64 * self.slots_per_table;
                    for _ in 0..self.slots_per_table {
                        if !dirty.contains(&(base + self.per_table_next[table])) {
                            break;
                        }
                        self.per_table_next[table] =
                            (self.per_table_next[table] + 1) % self.slots_per_table;
                    }
                }
            }
        }
    }

    fn allocate_global(&mut self, table: usize, seq: u64) -> Result<SlotAllocation> {
        let slot = self.next_slot;
        self.next_slot = (self.next_slot + 1) % self.num_slots;
        let mut displaced = Vec::new();
        if let Some(owner) = self.owners[slot as usize].take() {
            displaced.push(owner);
        }
        self.owners[slot as usize] = Some(SlotOwner { table, seq });
        Ok(SlotAllocation { offset: slot * self.slot_size, blocks_to_erase: Vec::new(), displaced })
    }

    fn allocate_partitioned(&mut self, table: usize, seq: u64) -> Result<SlotAllocation> {
        if table >= self.per_table_next.len() {
            return Err(BufferHashError::InvalidConfig(format!(
                "table index {table} out of range for the allocator"
            )));
        }
        let base_slot = table as u64 * self.slots_per_table;
        let within = self.per_table_next[table];
        self.per_table_next[table] = (within + 1) % self.slots_per_table;
        let slot = base_slot + within;
        let offset = slot * self.slot_size;

        let mut displaced = Vec::new();
        let mut blocks_to_erase = Vec::new();

        if self.slot_size >= self.block_size {
            // Slot spans one or more whole erase blocks: erase exactly those.
            let first_block = offset / self.block_size;
            let blocks = self.slot_size.div_ceil(self.block_size);
            blocks_to_erase.extend(first_block..first_block + blocks);
            if let Some(owner) = self.owners[slot as usize].take() {
                displaced.push(owner);
            }
        } else {
            // Several slots share an erase block. Erase the block lazily:
            // only when the write lands on its first slot. All other live
            // slots in that block necessarily hold older incarnations of the
            // same table (the partition is written circularly), so they are
            // displaced together.
            if offset.is_multiple_of(self.block_size) {
                blocks_to_erase.push(offset / self.block_size);
                let slots_per_block = (self.block_size / self.slot_size).max(1);
                for s in slot..(slot + slots_per_block).min(base_slot + self.slots_per_table) {
                    if let Some(owner) = self.owners[s as usize].take() {
                        displaced.push(owner);
                    }
                }
            } else if let Some(owner) = self.owners[slot as usize].take() {
                // Mid-block slot: it was already erased when the block was.
                displaced.push(owner);
            }
        }
        self.owners[slot as usize] = Some(SlotOwner { table, seq });
        Ok(SlotAllocation { offset, blocks_to_erase, displaced })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_log_appends_sequentially_and_wraps() {
        let mut a = LogAllocator::new(
            FlashLayoutMode::GlobalLog,
            8 * 128 * 1024,
            128 * 1024,
            256 * 1024,
            2,
        )
        .unwrap();
        assert_eq!(a.num_slots(), 8);
        let mut offsets = Vec::new();
        for seq in 0..8u64 {
            let alloc = a.allocate((seq % 2) as usize, seq).unwrap();
            assert!(alloc.displaced.is_empty(), "no displacement before the log wraps");
            assert!(alloc.blocks_to_erase.is_empty());
            offsets.push(alloc.offset);
        }
        assert_eq!(offsets, (0..8).map(|i| i * 128 * 1024).collect::<Vec<_>>());
        // The 9th allocation wraps onto slot 0 and displaces its owner.
        let alloc = a.allocate(0, 8).unwrap();
        assert_eq!(alloc.offset, 0);
        assert_eq!(alloc.displaced, vec![SlotOwner { table: 0, seq: 0 }]);
    }

    #[test]
    fn released_slots_do_not_report_displacement() {
        let mut a =
            LogAllocator::new(FlashLayoutMode::GlobalLog, 4 * 64 * 1024, 64 * 1024, 64 * 1024, 1)
                .unwrap();
        let first = a.allocate(0, 0).unwrap();
        for seq in 1..4u64 {
            a.allocate(0, seq).unwrap();
        }
        a.release(first.offset);
        let wrapped = a.allocate(0, 4).unwrap();
        assert_eq!(wrapped.offset, first.offset);
        assert!(wrapped.displaced.is_empty());
        assert_eq!(a.live_slots(), 4);
    }

    #[test]
    fn partitioned_layout_keeps_tables_in_their_regions() {
        // 16 slots of 64 KiB over 4 tables -> 4 slots per table.
        let mut a = LogAllocator::new(
            FlashLayoutMode::PartitionPerTable,
            16 * 64 * 1024,
            64 * 1024,
            64 * 1024,
            4,
        )
        .unwrap();
        for round in 0..8u64 {
            for table in 0..4usize {
                let alloc = a.allocate(table, round).unwrap();
                let partition = alloc.offset / (4 * 64 * 1024);
                assert_eq!(partition as usize, table, "slot landed outside the partition");
            }
        }
    }

    #[test]
    fn partitioned_layout_erases_blocks_before_rewrite() {
        // Slot size == block size: every allocation erases its block.
        let mut a = LogAllocator::new(
            FlashLayoutMode::PartitionPerTable,
            8 * 128 * 1024,
            128 * 1024,
            128 * 1024,
            2,
        )
        .unwrap();
        let alloc = a.allocate(0, 0).unwrap();
        assert_eq!(alloc.blocks_to_erase, vec![0]);
        let alloc = a.allocate(1, 0).unwrap();
        assert_eq!(alloc.blocks_to_erase, vec![4]);
    }

    #[test]
    fn small_slots_share_an_erase_block_and_displace_together() {
        // 4 slots of 32 KiB per 128 KiB block, one table with 8 slots.
        let mut a = LogAllocator::new(
            FlashLayoutMode::PartitionPerTable,
            8 * 32 * 1024,
            32 * 1024,
            128 * 1024,
            1,
        )
        .unwrap();
        // Fill all 8 slots.
        for seq in 0..8u64 {
            let alloc = a.allocate(0, seq).unwrap();
            if seq % 4 == 0 {
                assert_eq!(alloc.blocks_to_erase.len(), 1, "block-aligned slot erases its block");
            } else {
                assert!(alloc.blocks_to_erase.is_empty());
            }
        }
        // Wrapping onto slot 0 erases block 0 and displaces all four live
        // incarnations that shared it.
        let alloc = a.allocate(0, 8).unwrap();
        assert_eq!(alloc.blocks_to_erase, vec![0]);
        assert_eq!(alloc.displaced.len(), 4);
        assert!(alloc.displaced.iter().all(|o| o.seq < 4));
    }

    #[test]
    fn slot_larger_than_block_erases_all_covered_blocks() {
        let mut a = LogAllocator::new(
            FlashLayoutMode::PartitionPerTable,
            4 * 256 * 1024,
            256 * 1024,
            128 * 1024,
            1,
        )
        .unwrap();
        let alloc = a.allocate(0, 0).unwrap();
        assert_eq!(alloc.blocks_to_erase, vec![0, 1]);
    }

    #[test]
    fn restore_resumes_the_global_log_after_the_newest_owner() {
        let mut a = LogAllocator::new(
            FlashLayoutMode::GlobalLog,
            8 * 128 * 1024,
            128 * 1024,
            256 * 1024,
            2,
        )
        .unwrap();
        // Pretend a recovery scan accepted incarnations in slots 2, 3 and 5;
        // the newest (seq 7) sits in slot 5.
        a.restore(&[
            (2, SlotOwner { table: 0, seq: 3 }),
            (5, SlotOwner { table: 1, seq: 7 }),
            (3, SlotOwner { table: 1, seq: 4 }),
        ]);
        assert_eq!(a.live_slots(), 3);
        // The next flush lands on slot 6 — exactly where a never-crashed
        // lifetime would have written next.
        let alloc = a.allocate(0, 8).unwrap();
        assert_eq!(alloc.offset, 6 * 128 * 1024);
        assert!(alloc.displaced.is_empty());
        // Wrapping far enough displaces the restored owners.
        let mut displaced = Vec::new();
        for seq in 9..15u64 {
            displaced.extend(a.allocate(0, seq).unwrap().displaced);
        }
        assert!(displaced.contains(&SlotOwner { table: 0, seq: 3 }));
    }

    #[test]
    fn restore_resumes_each_partition_independently() {
        // 8 slots of 128 KiB over 2 tables -> 4 slots per partition.
        let mut a = LogAllocator::new(
            FlashLayoutMode::PartitionPerTable,
            8 * 128 * 1024,
            128 * 1024,
            128 * 1024,
            2,
        )
        .unwrap();
        // Table 0's newest lives in slot 1 (within-partition 1); table 1's
        // newest in slot 7 (within-partition 3, the last one).
        a.restore(&[
            (0, SlotOwner { table: 0, seq: 1 }),
            (1, SlotOwner { table: 0, seq: 5 }),
            (7, SlotOwner { table: 1, seq: 6 }),
        ]);
        let alloc = a.allocate(0, 8).unwrap();
        assert_eq!(alloc.offset, 2 * 128 * 1024);
        // Table 1 wraps back to the start of its partition.
        let alloc = a.allocate(1, 9).unwrap();
        assert_eq!(alloc.offset, 4 * 128 * 1024);
    }

    #[test]
    fn restore_with_no_owners_resets_to_a_fresh_log() {
        let mut a =
            LogAllocator::new(FlashLayoutMode::GlobalLog, 4 * 64 * 1024, 64 * 1024, 64 * 1024, 1)
                .unwrap();
        for seq in 0..3u64 {
            a.allocate(0, seq).unwrap();
        }
        a.restore(&[]);
        assert_eq!(a.live_slots(), 0);
        assert_eq!(a.allocate(0, 0).unwrap().offset, 0);
    }

    #[test]
    fn skip_dirty_moves_the_global_pointer_past_torn_slots() {
        let mut a =
            LogAllocator::new(FlashLayoutMode::GlobalLog, 8 * 64 * 1024, 64 * 1024, 64 * 1024, 1)
                .unwrap();
        a.restore(&[(2, SlotOwner { table: 0, seq: 7 })]);
        // The torn write sits where the next flush would land (slot 3);
        // the pointer steps over it, and over a second dirty slot from an
        // earlier crash, onto the first clean one.
        a.skip_dirty(&[3, 4]);
        assert_eq!(a.allocate(0, 8).unwrap().offset, 5 * 64 * 1024);
    }

    #[test]
    fn skip_dirty_advances_each_partition_independently() {
        let mut a = LogAllocator::new(
            FlashLayoutMode::PartitionPerTable,
            8 * 64 * 1024,
            64 * 1024,
            64 * 1024,
            2,
        )
        .unwrap();
        a.restore(&[(0, SlotOwner { table: 0, seq: 1 }), (4, SlotOwner { table: 1, seq: 2 })]);
        // Table 0's next slot (1) is dirty; table 1's next slot (5) is
        // clean and must not move.
        a.skip_dirty(&[1]);
        assert_eq!(a.allocate(0, 3).unwrap().offset, 2 * 64 * 1024);
        assert_eq!(a.allocate(1, 4).unwrap().offset, 5 * 64 * 1024);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(LogAllocator::new(FlashLayoutMode::GlobalLog, 0, 128, 128, 1).is_err());
        assert!(LogAllocator::new(FlashLayoutMode::GlobalLog, 64, 128, 128, 1).is_err());
        assert!(LogAllocator::new(FlashLayoutMode::GlobalLog, 256, 128, 128, 4).is_err());
        let mut a =
            LogAllocator::new(FlashLayoutMode::PartitionPerTable, 512, 128, 128, 2).unwrap();
        assert!(a.allocate(5, 0).is_err());
    }
}
