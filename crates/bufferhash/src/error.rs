//! Error types for BufferHash and CLAM.

use std::fmt;

use flashsim::DeviceError;

/// Errors returned by BufferHash / CLAM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferHashError {
    /// The configuration is internally inconsistent (e.g. buffer larger than
    /// flash, zero super tables, Bloom budget of zero bits with filters
    /// enabled).
    InvalidConfig(String),
    /// An error bubbled up from the storage device.
    Device(DeviceError),
    /// An incarnation read back from flash failed validation (bad magic or
    /// truncated page). Indicates corruption or a layout bug.
    CorruptIncarnation {
        /// Byte offset of the offending page on flash.
        flash_offset: u64,
        /// Explanation of what failed to validate.
        reason: String,
    },
    /// The in-memory buffer could not accept an entry even after flushing
    /// (e.g. pathological cuckoo collisions with a tiny buffer).
    BufferInsertFailed,
}

impl fmt::Display for BufferHashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferHashError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BufferHashError::Device(e) => write!(f, "device error: {e}"),
            BufferHashError::CorruptIncarnation { flash_offset, reason } => {
                write!(f, "corrupt incarnation at flash offset {flash_offset}: {reason}")
            }
            BufferHashError::BufferInsertFailed => {
                write!(f, "buffer insert failed even after flushing")
            }
        }
    }
}

impl std::error::Error for BufferHashError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BufferHashError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for BufferHashError {
    fn from(e: DeviceError) -> Self {
        BufferHashError::Device(e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, BufferHashError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_errors_convert_and_chain() {
        let e: BufferHashError = DeviceError::DeviceFull.into();
        assert!(matches!(e, BufferHashError::Device(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("device error"));
    }

    #[test]
    fn display_is_informative() {
        let e =
            BufferHashError::CorruptIncarnation { flash_offset: 4096, reason: "bad magic".into() };
        assert!(e.to_string().contains("4096"));
        assert!(e.to_string().contains("bad magic"));
        assert!(BufferHashError::InvalidConfig("x".into()).to_string().contains('x'));
    }
}
