//! Recovery reporting for [`Clam::recover`](crate::Clam::recover).
//!
//! A recovery scan reads every incarnation slot on flash through the
//! completion ring, classifies each as empty, torn or valid by the
//! checksummed page headers (see [`crate::scan_incarnation`]), and
//! rebuilds the in-DRAM state — Bloom filters, log allocation map,
//! per-table incarnation queues — from the accepted incarnations alone.
//! The [`RecoveryReport`] is the scan's ledger: what was accepted, what
//! was rejected and why, how much flash was read, and how long the
//! ring-driven scan took.

use std::fmt;

use flashsim::SimDuration;

/// What a recovery scan found and rebuilt; returned by
/// [`Clam::recover`](crate::Clam::recover).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Incarnation slots scanned (the whole configured flash area).
    pub slots_scanned: u64,
    /// Bytes read off flash by the scan.
    pub bytes_scanned: u64,
    /// Incarnations accepted and registered into super tables.
    pub accepted: usize,
    /// Slots rejected as torn: checksum, version, count or identity
    /// failures — a flush the power cut interrupted, or foreign bytes.
    pub torn: usize,
    /// Slots whose incarnation was valid but superseded: shadowed by a
    /// higher-epoch copy of the same flush, or older than the youngest
    /// `k` incarnations its table retains.
    pub stale: usize,
    /// Slots holding no incarnation at all (never written or trimmed).
    pub empty: usize,
    /// Entries registered across all accepted incarnations.
    pub entries_recovered: usize,
    /// The epoch the recovered CLAM will stamp into its own flushes —
    /// strictly greater than every epoch seen on flash.
    pub epoch: u32,
    /// The flush sequence number the recovered CLAM resumes after —
    /// the largest `seq` on any checksum-valid page, torn slots included,
    /// so re-used sequence numbers can never shadow surviving data.
    pub seq_resumed: u64,
    /// Simulated makespan of the ring-driven scan (all slot reads
    /// admitted without waiting, overlapped per the device's queue).
    pub scan_makespan: SimDuration,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovered {} incarnations ({} entries) from {} slots \
             ({} torn, {} stale, {} empty), {:.1} KiB scanned in {}, \
             resuming at seq {} epoch {}",
            self.accepted,
            self.entries_recovered,
            self.slots_scanned,
            self.torn,
            self.stale,
            self.empty,
            self.bytes_scanned as f64 / 1024.0,
            self.scan_makespan,
            self.seq_resumed,
            self.epoch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display_mentions_every_ledger_line() {
        let report = RecoveryReport {
            slots_scanned: 8,
            bytes_scanned: 8 * 32 * 1024,
            accepted: 5,
            torn: 1,
            stale: 1,
            empty: 1,
            entries_recovered: 1234,
            epoch: 3,
            seq_resumed: 17,
            scan_makespan: SimDuration::from_micros(250),
        };
        let text = report.to_string();
        assert!(text.contains("5 incarnations"));
        assert!(text.contains("1234 entries"));
        assert!(text.contains("8 slots"));
        assert!(text.contains("1 torn"));
        assert!(text.contains("1 stale"));
        assert!(text.contains("seq 17 epoch 3"));
    }
}
