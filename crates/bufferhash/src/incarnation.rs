//! On-flash incarnation format.
//!
//! When a buffer fills, its entries are written to flash as an
//! *incarnation*: a small, immutable hash table laid out so that looking up
//! a key needs to read only one flash page (§5.1.1). Keys are assigned to
//! pages by hash; each page stores its entries sorted, behind a small
//! header. Because the buffer runs at 50% utilisation, pages have roughly 2×
//! the room they need on average and overflow is rare; when a page does
//! overflow, the excess spills into the next page and the page is flagged so
//! lookups know to continue.

use serde::{Deserialize, Serialize};

use crate::error::{BufferHashError, Result};
use crate::types::{hash_with_seed, Entry, Key, Value, ENTRY_SIZE};

/// Magic number identifying an incarnation page ("BHIN").
const PAGE_MAGIC: u32 = 0x4248_494e;
/// Bytes reserved for the per-page header.
pub const PAGE_HEADER_SIZE: usize = 16;
/// Flag bit: this page overflowed into the next page.
const FLAG_OVERFLOW: u16 = 1;

/// Geometry of an incarnation: how many pages it spans and how large each is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncarnationLayout {
    /// Flash page (or SSD sector) size in bytes.
    pub page_size: usize,
    /// Number of pages per incarnation.
    pub num_pages: usize,
}

impl IncarnationLayout {
    /// Creates a layout for an incarnation of `incarnation_bytes` total size
    /// on pages of `page_size` bytes.
    pub fn new(incarnation_bytes: usize, page_size: usize) -> Result<Self> {
        if page_size <= PAGE_HEADER_SIZE + ENTRY_SIZE {
            return Err(BufferHashError::InvalidConfig(format!(
                "page size {page_size} too small for incarnation pages"
            )));
        }
        let num_pages = (incarnation_bytes / page_size).max(1);
        Ok(IncarnationLayout { page_size, num_pages })
    }

    /// Total size of a serialized incarnation in bytes.
    pub fn total_bytes(&self) -> usize {
        self.page_size * self.num_pages
    }

    /// Number of entries one page can hold.
    pub fn entries_per_page(&self) -> usize {
        (self.page_size - PAGE_HEADER_SIZE) / ENTRY_SIZE
    }

    /// Maximum number of entries the incarnation can hold.
    pub fn max_entries(&self) -> usize {
        self.entries_per_page() * self.num_pages
    }

    /// The page a key hashes to.
    pub fn page_of_key(&self, key: Key) -> usize {
        (hash_with_seed(key, 0x9a6e_5c01) % self.num_pages as u64) as usize
    }

    /// Flash byte offset of page `page_idx` of an incarnation whose image
    /// starts at `flash_offset` — the address a probe of that page reads.
    pub fn page_offset(&self, flash_offset: u64, page_idx: usize) -> u64 {
        flash_offset + (page_idx % self.num_pages.max(1) * self.page_size) as u64
    }

    /// The page an overflow chain continues on after `page_idx` (wrapping
    /// spill, matching [`serialize`](Self::serialize)'s forward spill).
    pub fn next_page(&self, page_idx: usize) -> usize {
        (page_idx + 1) % self.num_pages.max(1)
    }

    /// Serializes `entries` into an incarnation image of
    /// `total_bytes()` bytes.
    ///
    /// Entries whose home page is full spill into subsequent pages; the
    /// overflowing page is flagged so lookups follow the chain. Returns an
    /// error if there are more entries than the incarnation can hold.
    pub fn serialize(&self, entries: &[Entry]) -> Result<Vec<u8>> {
        if entries.len() > self.max_entries() {
            return Err(BufferHashError::InvalidConfig(format!(
                "{} entries exceed incarnation capacity {}",
                entries.len(),
                self.max_entries()
            )));
        }
        let per_page = self.entries_per_page();
        // Bucket entries by home page.
        let mut buckets: Vec<Vec<Entry>> = vec![Vec::new(); self.num_pages];
        for &e in entries {
            buckets[self.page_of_key(e.key)].push(e);
        }
        // Spill overflow forward (with wraparound). Because the total volume
        // fits, each sweep pushes any remaining excess at least one page
        // further, so at most `num_pages` sweeps reach a fixed point.
        let mut overflowed = vec![false; self.num_pages];
        for _sweep in 0..self.num_pages {
            let mut moved = false;
            for i in 0..self.num_pages {
                if buckets[i].len() > per_page {
                    let excess = buckets[i].split_off(per_page);
                    overflowed[i] = true;
                    buckets[(i + 1) % self.num_pages].extend(excess);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        // Any bucket still overflowing would mean max_entries was exceeded.
        if buckets.iter().any(|b| b.len() > per_page) {
            return Err(BufferHashError::InvalidConfig(
                "incarnation overflow could not be resolved; too many entries".into(),
            ));
        }
        // Emit pages.
        let mut out = vec![0u8; self.total_bytes()];
        for (i, bucket) in buckets.iter_mut().enumerate() {
            bucket.sort_unstable_by_key(|e| e.key);
            let page = &mut out[i * self.page_size..(i + 1) * self.page_size];
            page[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
            page[4..6].copy_from_slice(&(bucket.len() as u16).to_le_bytes());
            let flags = if overflowed[i] { FLAG_OVERFLOW } else { 0 };
            page[6..8].copy_from_slice(&flags.to_le_bytes());
            // Bytes 8..16 reserved.
            for (j, e) in bucket.iter().enumerate() {
                let at = PAGE_HEADER_SIZE + j * ENTRY_SIZE;
                page[at..at + ENTRY_SIZE].copy_from_slice(&e.to_bytes());
            }
        }
        Ok(out)
    }
}

/// Result of probing one incarnation page for a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageLookup {
    /// The key was found with this value.
    Found(Value),
    /// The key is not on this page and the page did not overflow: the key is
    /// not in this incarnation.
    Absent,
    /// The key is not on this page but the page overflowed into the next
    /// one; the search must continue there.
    Continue,
}

/// Probes a single serialized page for `key`.
pub fn lookup_in_page(page: &[u8], key: Key) -> Result<PageLookup> {
    let (count, flags) = parse_header(page)?;
    let entries = &page[PAGE_HEADER_SIZE..];
    // Binary search over the sorted, densely packed entries.
    let mut lo = 0usize;
    let mut hi = count;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let e = Entry::from_bytes(&entries[mid * ENTRY_SIZE..]).ok_or_else(|| {
            BufferHashError::CorruptIncarnation {
                flash_offset: 0,
                reason: "truncated entry".into(),
            }
        })?;
        match e.key.cmp(&key) {
            std::cmp::Ordering::Equal => return Ok(PageLookup::Found(e.value)),
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    if flags & FLAG_OVERFLOW != 0 {
        Ok(PageLookup::Continue)
    } else {
        Ok(PageLookup::Absent)
    }
}

/// Parses all entries from a serialized page (used by partial-discard
/// eviction scans).
pub fn parse_page_entries(page: &[u8]) -> Result<Vec<Entry>> {
    let (count, _) = parse_header(page)?;
    let mut out = Vec::with_capacity(count);
    for j in 0..count {
        let at = PAGE_HEADER_SIZE + j * ENTRY_SIZE;
        let e = Entry::from_bytes(&page[at..at + ENTRY_SIZE]).ok_or_else(|| {
            BufferHashError::CorruptIncarnation {
                flash_offset: 0,
                reason: "truncated entry".into(),
            }
        })?;
        out.push(e);
    }
    Ok(out)
}

/// Parses every entry of a whole serialized incarnation.
pub fn parse_incarnation(bytes: &[u8], layout: &IncarnationLayout) -> Result<Vec<Entry>> {
    let mut out = Vec::new();
    for i in 0..layout.num_pages {
        let page = &bytes[i * layout.page_size..(i + 1) * layout.page_size];
        out.extend(parse_page_entries(page)?);
    }
    Ok(out)
}

fn parse_header(page: &[u8]) -> Result<(usize, u16)> {
    if page.len() < PAGE_HEADER_SIZE {
        return Err(BufferHashError::CorruptIncarnation {
            flash_offset: 0,
            reason: format!("page of {} bytes is smaller than the header", page.len()),
        });
    }
    let magic = u32::from_le_bytes(page[0..4].try_into().unwrap());
    if magic != PAGE_MAGIC {
        return Err(BufferHashError::CorruptIncarnation {
            flash_offset: 0,
            reason: format!("bad page magic {magic:#x}"),
        });
    }
    let count = u16::from_le_bytes(page[4..6].try_into().unwrap()) as usize;
    let flags = u16::from_le_bytes(page[6..8].try_into().unwrap());
    let max = (page.len() - PAGE_HEADER_SIZE) / ENTRY_SIZE;
    if count > max {
        return Err(BufferHashError::CorruptIncarnation {
            flash_offset: 0,
            reason: format!("entry count {count} exceeds page capacity {max}"),
        });
    }
    Ok((count, flags))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> IncarnationLayout {
        // 128 KiB incarnation on 2 KiB pages, as in the paper's flash-chip
        // configuration.
        IncarnationLayout::new(128 * 1024, 2048).unwrap()
    }

    fn sample_entries(n: u64) -> Vec<Entry> {
        (0..n).map(|i| Entry::new(hash_with_seed(i, 5), i * 10)).collect()
    }

    #[test]
    fn layout_capacities() {
        let l = layout();
        assert_eq!(l.num_pages, 64);
        assert_eq!(l.entries_per_page(), 127);
        assert_eq!(l.total_bytes(), 128 * 1024);
        assert!(l.max_entries() >= 4096);
    }

    #[test]
    fn page_offsets_and_overflow_hops_wrap() {
        let l = layout();
        assert_eq!(l.page_offset(1 << 20, 0), 1 << 20);
        assert_eq!(l.page_offset(1 << 20, 3), (1 << 20) + 3 * 2048);
        // Probing past the last page wraps, like the overflow spill does.
        assert_eq!(l.page_offset(0, l.num_pages), 0);
        assert_eq!(l.next_page(0), 1);
        assert_eq!(l.next_page(l.num_pages - 1), 0);
    }

    #[test]
    fn every_entry_is_findable_via_single_page_probe_chain() {
        let l = layout();
        let entries = sample_entries(4096);
        let image = l.serialize(&entries).unwrap();
        for e in &entries {
            let mut page_idx = l.page_of_key(e.key);
            let mut hops = 0;
            loop {
                let page = &image[page_idx * l.page_size..(page_idx + 1) * l.page_size];
                match lookup_in_page(page, e.key).unwrap() {
                    PageLookup::Found(v) => {
                        assert_eq!(v, e.value);
                        break;
                    }
                    PageLookup::Continue => {
                        page_idx = (page_idx + 1) % l.num_pages;
                        hops += 1;
                        assert!(hops < l.num_pages, "unbounded overflow chain");
                    }
                    PageLookup::Absent => panic!("entry {e:?} not found"),
                }
            }
        }
    }

    #[test]
    fn most_lookups_touch_exactly_one_page() {
        let l = layout();
        let entries = sample_entries(4096);
        let image = l.serialize(&entries).unwrap();
        let multi_hop = entries
            .iter()
            .filter(|e| {
                let page_idx = l.page_of_key(e.key);
                let page = &image[page_idx * l.page_size..(page_idx + 1) * l.page_size];
                !matches!(lookup_in_page(page, e.key).unwrap(), PageLookup::Found(_))
            })
            .count();
        // At 50% page fill, overflow is essentially non-existent.
        assert!(multi_hop * 100 < entries.len(), "too many multi-page lookups: {multi_hop}");
    }

    #[test]
    fn absent_keys_report_absent() {
        let l = layout();
        let entries = sample_entries(1000);
        let image = l.serialize(&entries).unwrap();
        let absent_key = hash_with_seed(999_999, 777);
        let page_idx = l.page_of_key(absent_key);
        let page = &image[page_idx * l.page_size..(page_idx + 1) * l.page_size];
        assert!(matches!(
            lookup_in_page(page, absent_key).unwrap(),
            PageLookup::Absent | PageLookup::Continue
        ));
    }

    #[test]
    fn parse_incarnation_recovers_all_entries() {
        let l = layout();
        let entries = sample_entries(3000);
        let image = l.serialize(&entries).unwrap();
        let mut recovered = parse_incarnation(&image, &l).unwrap();
        let mut expected = entries.clone();
        recovered.sort_unstable_by_key(|e| e.key);
        expected.sort_unstable_by_key(|e| e.key);
        assert_eq!(recovered, expected);
    }

    #[test]
    fn overflow_pages_are_flagged_and_followable() {
        // Force overflow with a tiny layout: 4 pages of 256 bytes -> 15
        // entries per page, 60 total; insert 50 entries that all hash
        // wherever they like — some pages will overflow with high
        // probability when we use many entries relative to capacity.
        let l = IncarnationLayout::new(1024, 256).unwrap();
        assert_eq!(l.num_pages, 4);
        let entries = sample_entries(55);
        let image = l.serialize(&entries).unwrap();
        // Every entry must still be findable.
        for e in &entries {
            let mut page_idx = l.page_of_key(e.key);
            let mut found = false;
            for _ in 0..l.num_pages {
                let page = &image[page_idx * l.page_size..(page_idx + 1) * l.page_size];
                match lookup_in_page(page, e.key).unwrap() {
                    PageLookup::Found(v) => {
                        assert_eq!(v, e.value);
                        found = true;
                        break;
                    }
                    PageLookup::Continue => page_idx = (page_idx + 1) % l.num_pages,
                    PageLookup::Absent => break,
                }
            }
            assert!(found, "entry {e:?} lost after overflow spill");
        }
    }

    #[test]
    fn serialize_rejects_too_many_entries() {
        let l = IncarnationLayout::new(1024, 256).unwrap();
        let entries = sample_entries(l.max_entries() as u64 + 1);
        assert!(l.serialize(&entries).is_err());
    }

    #[test]
    fn corrupt_pages_are_detected() {
        let l = layout();
        let image = l.serialize(&sample_entries(10)).unwrap();
        let mut bad = image.clone();
        bad[0] ^= 0xff; // clobber the magic
        assert!(matches!(
            lookup_in_page(&bad[..l.page_size], 1),
            Err(BufferHashError::CorruptIncarnation { .. })
        ));
        let mut bad_count = image;
        bad_count[4] = 0xff;
        bad_count[5] = 0xff;
        assert!(lookup_in_page(&bad_count[..l.page_size], 1).is_err());
        assert!(lookup_in_page(&[0u8; 8], 1).is_err());
    }

    #[test]
    fn tiny_page_size_is_rejected() {
        assert!(IncarnationLayout::new(1024, 16).is_err());
    }

    #[test]
    fn empty_incarnation_serializes_and_parses() {
        let l = layout();
        let image = l.serialize(&[]).unwrap();
        assert_eq!(parse_incarnation(&image, &l).unwrap(), Vec::new());
    }
}
