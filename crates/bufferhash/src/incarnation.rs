//! On-flash incarnation format.
//!
//! When a buffer fills, its entries are written to flash as an
//! *incarnation*: a small, immutable hash table laid out so that looking up
//! a key needs to read only one flash page (§5.1.1). Keys are assigned to
//! pages by hash; each page stores its entries sorted, behind a small
//! header. Because the buffer runs at 50% utilisation, pages have roughly 2×
//! the room they need on average and overflow is rare; when a page does
//! overflow, the excess spills into the next page and the page is flagged so
//! lookups know to continue.
//!
//! ## Self-describing pages and crash recovery
//!
//! Every page carries a 32-byte header that identifies the incarnation it
//! belongs to from flash contents alone:
//!
//! ```text
//!  0        4      6      8        10      12         16       24      28     32
//!  +--------+------+------+--------+-------+----------+--------+-------+------+
//!  | magic  |count |flags |version | table | page idx |  seq   | epoch | CRC  |
//!  | "BHIN" | u16  | u16  |  u16   |  u16  |   u32    |  u64   |  u32  | u32  |
//!  +--------+------+------+--------+-------+----------+--------+-------+------+
//! ```
//!
//! `seq` is the global flush sequence number (the incarnation's identity
//! within a CLAM lifetime), `table` the super table that flushed it, and
//! `epoch` the CLAM lifetime that wrote it. The CRC32 covers the whole page
//! (header with the CRC field zeroed, plus the payload), so a torn write —
//! a power cut mid-page — fails the checksum, and a cut at a page boundary
//! leaves pages whose identities disagree across the slot. The recovery
//! scan ([`scan_incarnation`]) classifies a slot as empty, torn, or a valid
//! incarnation; steady-state lookups skip the CRC (pages are verified once
//! at recovery, not on every probe).

use serde::{Deserialize, Serialize};

use crate::error::{BufferHashError, Result};
use crate::types::{hash_with_seed, Entry, Key, Value, ENTRY_SIZE};

/// Magic number identifying an incarnation page ("BHIN").
const PAGE_MAGIC: u32 = 0x4248_494e;
/// Bytes reserved for the per-page header.
pub const PAGE_HEADER_SIZE: usize = 32;
/// Flag bit: this page overflowed into the next page.
const FLAG_OVERFLOW: u16 = 1;
/// On-flash format version written into every page header.
pub const INCARNATION_VERSION: u16 = 1;

/// CRC32 (IEEE, reflected polynomial `0xEDB88320`) lookup table.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the CRC32 (IEEE) checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Identity an incarnation is stamped with when serialized: which super
/// table flushed it, its global flush sequence number, and the CLAM
/// lifetime (epoch) that wrote it. Recovery reads these back from the page
/// headers alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncarnationIdentity {
    /// Super table that flushed this incarnation.
    pub table: u16,
    /// Global flush sequence number (the incarnation's identity within a
    /// lifetime; younger incarnations shadow older ones).
    pub seq: u64,
    /// CLAM lifetime that wrote this incarnation. Incarnations are ordered
    /// by `(epoch, seq)`: when two valid slots claim the same flush
    /// sequence, the higher epoch wins and the lower is a stale lifetime's
    /// leftover.
    pub epoch: u32,
}

/// Geometry of an incarnation: how many pages it spans and how large each is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncarnationLayout {
    /// Flash page (or SSD sector) size in bytes.
    pub page_size: usize,
    /// Number of pages per incarnation.
    pub num_pages: usize,
}

impl IncarnationLayout {
    /// Creates a layout for an incarnation of `incarnation_bytes` total size
    /// on pages of `page_size` bytes.
    pub fn new(incarnation_bytes: usize, page_size: usize) -> Result<Self> {
        if page_size <= PAGE_HEADER_SIZE + ENTRY_SIZE {
            return Err(BufferHashError::InvalidConfig(format!(
                "page size {page_size} too small for incarnation pages"
            )));
        }
        let num_pages = (incarnation_bytes / page_size).max(1);
        Ok(IncarnationLayout { page_size, num_pages })
    }

    /// Total size of a serialized incarnation in bytes.
    pub fn total_bytes(&self) -> usize {
        self.page_size * self.num_pages
    }

    /// Number of entries one page can hold.
    pub fn entries_per_page(&self) -> usize {
        (self.page_size - PAGE_HEADER_SIZE) / ENTRY_SIZE
    }

    /// Maximum number of entries the incarnation can hold.
    pub fn max_entries(&self) -> usize {
        self.entries_per_page() * self.num_pages
    }

    /// The page a key hashes to.
    pub fn page_of_key(&self, key: Key) -> usize {
        (hash_with_seed(key, 0x9a6e_5c01) % self.num_pages as u64) as usize
    }

    /// Flash byte offset of page `page_idx` of an incarnation whose image
    /// starts at `flash_offset` — the address a probe of that page reads.
    pub fn page_offset(&self, flash_offset: u64, page_idx: usize) -> u64 {
        flash_offset + (page_idx % self.num_pages.max(1) * self.page_size) as u64
    }

    /// The page an overflow chain continues on after `page_idx` (wrapping
    /// spill, matching [`serialize`](Self::serialize)'s forward spill).
    pub fn next_page(&self, page_idx: usize) -> usize {
        (page_idx + 1) % self.num_pages.max(1)
    }

    /// Serializes `entries` into an incarnation image of `total_bytes()`
    /// bytes with a default (all-zero) [`IncarnationIdentity`]. Convenience
    /// for tests and tooling; the CLAM flush path uses
    /// [`serialize_identified`](Self::serialize_identified) so recovery can
    /// tell incarnations apart from flash contents alone.
    pub fn serialize(&self, entries: &[Entry]) -> Result<Vec<u8>> {
        self.serialize_identified(entries, IncarnationIdentity::default())
    }

    /// Serializes `entries` into an incarnation image of
    /// `total_bytes()` bytes, stamping every page header with `identity`
    /// and a CRC32 over the page contents.
    ///
    /// Entries whose home page is full spill into subsequent pages; the
    /// overflowing page is flagged so lookups follow the chain. Returns an
    /// error if there are more entries than the incarnation can hold.
    pub fn serialize_identified(
        &self,
        entries: &[Entry],
        identity: IncarnationIdentity,
    ) -> Result<Vec<u8>> {
        if entries.len() > self.max_entries() {
            return Err(BufferHashError::InvalidConfig(format!(
                "{} entries exceed incarnation capacity {}",
                entries.len(),
                self.max_entries()
            )));
        }
        let per_page = self.entries_per_page();
        // Bucket entries by home page.
        let mut buckets: Vec<Vec<Entry>> = vec![Vec::new(); self.num_pages];
        for &e in entries {
            buckets[self.page_of_key(e.key)].push(e);
        }
        // Spill overflow forward (with wraparound). Because the total volume
        // fits, each sweep pushes any remaining excess at least one page
        // further, so at most `num_pages` sweeps reach a fixed point.
        let mut overflowed = vec![false; self.num_pages];
        for _sweep in 0..self.num_pages {
            let mut moved = false;
            for i in 0..self.num_pages {
                if buckets[i].len() > per_page {
                    let excess = buckets[i].split_off(per_page);
                    overflowed[i] = true;
                    buckets[(i + 1) % self.num_pages].extend(excess);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        // Any bucket still overflowing would mean max_entries was exceeded.
        if buckets.iter().any(|b| b.len() > per_page) {
            return Err(BufferHashError::InvalidConfig(
                "incarnation overflow could not be resolved; too many entries".into(),
            ));
        }
        // Emit pages.
        let mut out = vec![0u8; self.total_bytes()];
        for (i, bucket) in buckets.iter_mut().enumerate() {
            bucket.sort_unstable_by_key(|e| e.key);
            let page = &mut out[i * self.page_size..(i + 1) * self.page_size];
            page[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
            page[4..6].copy_from_slice(&(bucket.len() as u16).to_le_bytes());
            let flags = if overflowed[i] { FLAG_OVERFLOW } else { 0 };
            page[6..8].copy_from_slice(&flags.to_le_bytes());
            page[8..10].copy_from_slice(&INCARNATION_VERSION.to_le_bytes());
            page[10..12].copy_from_slice(&identity.table.to_le_bytes());
            page[12..16].copy_from_slice(&(i as u32).to_le_bytes());
            page[16..24].copy_from_slice(&identity.seq.to_le_bytes());
            page[24..28].copy_from_slice(&identity.epoch.to_le_bytes());
            for (j, e) in bucket.iter().enumerate() {
                let at = PAGE_HEADER_SIZE + j * ENTRY_SIZE;
                page[at..at + ENTRY_SIZE].copy_from_slice(&e.to_bytes());
            }
            // The CRC covers the whole page with the CRC field zeroed
            // (bytes 28..32 are still zero at this point).
            let crc = crc32(page);
            page[28..32].copy_from_slice(&crc.to_le_bytes());
        }
        Ok(out)
    }
}

/// Result of probing one incarnation page for a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageLookup {
    /// The key was found with this value.
    Found(Value),
    /// The key is not on this page and the page did not overflow: the key is
    /// not in this incarnation.
    Absent,
    /// The key is not on this page but the page overflowed into the next
    /// one; the search must continue there.
    Continue,
}

/// Probes a single serialized page for `key`.
pub fn lookup_in_page(page: &[u8], key: Key) -> Result<PageLookup> {
    let (count, flags) = parse_header(page)?;
    let entries = &page[PAGE_HEADER_SIZE..];
    // Binary search over the sorted, densely packed entries.
    let mut lo = 0usize;
    let mut hi = count;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let e = Entry::from_bytes(&entries[mid * ENTRY_SIZE..]).ok_or_else(|| {
            BufferHashError::CorruptIncarnation {
                flash_offset: 0,
                reason: "truncated entry".into(),
            }
        })?;
        match e.key.cmp(&key) {
            std::cmp::Ordering::Equal => return Ok(PageLookup::Found(e.value)),
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    if flags & FLAG_OVERFLOW != 0 {
        Ok(PageLookup::Continue)
    } else {
        Ok(PageLookup::Absent)
    }
}

/// Parses all entries from a serialized page (used by partial-discard
/// eviction scans).
pub fn parse_page_entries(page: &[u8]) -> Result<Vec<Entry>> {
    let (count, _) = parse_header(page)?;
    let mut out = Vec::with_capacity(count);
    for j in 0..count {
        let at = PAGE_HEADER_SIZE + j * ENTRY_SIZE;
        let e = Entry::from_bytes(&page[at..at + ENTRY_SIZE]).ok_or_else(|| {
            BufferHashError::CorruptIncarnation {
                flash_offset: 0,
                reason: "truncated entry".into(),
            }
        })?;
        out.push(e);
    }
    Ok(out)
}

/// Parses every entry of a whole serialized incarnation.
pub fn parse_incarnation(bytes: &[u8], layout: &IncarnationLayout) -> Result<Vec<Entry>> {
    let mut out = Vec::new();
    for i in 0..layout.num_pages {
        let page = &bytes[i * layout.page_size..(i + 1) * layout.page_size];
        out.extend(parse_page_entries(page)?);
    }
    Ok(out)
}

fn parse_header(page: &[u8]) -> Result<(usize, u16)> {
    if page.len() < PAGE_HEADER_SIZE {
        return Err(BufferHashError::CorruptIncarnation {
            flash_offset: 0,
            reason: format!("page of {} bytes is smaller than the header", page.len()),
        });
    }
    let magic = u32::from_le_bytes(page[0..4].try_into().unwrap());
    if magic != PAGE_MAGIC {
        return Err(BufferHashError::CorruptIncarnation {
            flash_offset: 0,
            reason: format!("bad page magic {magic:#x}"),
        });
    }
    let count = u16::from_le_bytes(page[4..6].try_into().unwrap()) as usize;
    let flags = u16::from_le_bytes(page[6..8].try_into().unwrap());
    let max = (page.len() - PAGE_HEADER_SIZE) / ENTRY_SIZE;
    if count > max {
        return Err(BufferHashError::CorruptIncarnation {
            flash_offset: 0,
            reason: format!("entry count {count} exceeds page capacity {max}"),
        });
    }
    Ok((count, flags))
}

/// Fully decoded page header (the 32 bytes in front of every incarnation
/// page), as read back by the recovery scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHeader {
    /// Number of entries stored on the page.
    pub count: usize,
    /// Page flags (overflow chain marker).
    pub flags: u16,
    /// On-flash format version the page was written with.
    pub version: u16,
    /// Index of this page within its incarnation.
    pub page_idx: u32,
    /// Identity of the incarnation the page belongs to.
    pub identity: IncarnationIdentity,
}

/// Parses and *verifies* one page header: magic, format version, entry
/// count, and the CRC32 over the whole page. This is the recovery-scan
/// strength check — steady-state lookups use the cheaper magic/count check,
/// trusting pages that recovery (or the flush path) already validated.
pub fn parse_page_header_checked(page: &[u8]) -> Result<PageHeader> {
    let (count, flags) = parse_header(page)?;
    let version = u16::from_le_bytes(page[8..10].try_into().unwrap());
    if version != INCARNATION_VERSION {
        return Err(BufferHashError::CorruptIncarnation {
            flash_offset: 0,
            reason: format!("unsupported format version {version}"),
        });
    }
    let stored_crc = u32::from_le_bytes(page[28..32].try_into().unwrap());
    let mut shadow = page.to_vec();
    shadow[28..32].fill(0);
    let actual = crc32(&shadow);
    if actual != stored_crc {
        return Err(BufferHashError::CorruptIncarnation {
            flash_offset: 0,
            reason: format!(
                "page CRC mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
            ),
        });
    }
    Ok(PageHeader {
        count,
        flags,
        version,
        page_idx: u32::from_le_bytes(page[12..16].try_into().unwrap()),
        identity: IncarnationIdentity {
            table: u16::from_le_bytes(page[10..12].try_into().unwrap()),
            seq: u64::from_le_bytes(page[16..24].try_into().unwrap()),
            epoch: u32::from_le_bytes(page[24..28].try_into().unwrap()),
        },
    })
}

/// Recovery classification of one log slot's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotScan {
    /// No page in the slot carries a valid magic: the slot was never
    /// written (or was erased).
    Empty,
    /// The slot holds incarnation data that fails validation — a torn
    /// write, a partially overwritten older incarnation, or corruption.
    Torn {
        /// What failed to validate, for the recovery report.
        reason: String,
    },
    /// Every page validates and agrees on one identity: a complete
    /// incarnation.
    Valid {
        /// The incarnation's identity as stamped at flush time.
        identity: IncarnationIdentity,
        /// Every entry stored in the incarnation.
        entries: Vec<Entry>,
    },
}

/// Classifies the raw bytes of one log slot for recovery: [`SlotScan::Empty`]
/// if nothing recognizable was ever written there, [`SlotScan::Torn`] if the
/// slot holds incarnation data that fails per-page CRC/version checks or
/// whose pages disagree about which incarnation they belong to (a cut at a
/// page boundary), and [`SlotScan::Valid`] with the decoded identity and
/// entries otherwise. Never panics, whatever the bytes contain.
pub fn scan_incarnation(bytes: &[u8], layout: &IncarnationLayout) -> SlotScan {
    if bytes.len() < layout.total_bytes() {
        return SlotScan::Torn {
            reason: format!("slot holds {} bytes, expected {}", bytes.len(), layout.total_bytes()),
        };
    }
    let mut identity: Option<IncarnationIdentity> = None;
    let mut any_magic = false;
    let mut entries = Vec::new();
    for i in 0..layout.num_pages {
        let page = &bytes[i * layout.page_size..(i + 1) * layout.page_size];
        let magic = u32::from_le_bytes(page[0..4].try_into().unwrap());
        if magic == PAGE_MAGIC {
            any_magic = true;
        }
        let header = match parse_page_header_checked(page) {
            Ok(h) => h,
            Err(e) => {
                // A slot is empty only when *no* page carries the magic;
                // scan the remaining pages' magics to tell an empty slot
                // from a torn prefix.
                let rest_empty = ((i + 1)..layout.num_pages).all(|j| {
                    let p = &bytes[j * layout.page_size..(j + 1) * layout.page_size];
                    u32::from_le_bytes(p[0..4].try_into().unwrap()) != PAGE_MAGIC
                });
                if !any_magic && identity.is_none() && rest_empty {
                    return SlotScan::Empty;
                }
                return SlotScan::Torn { reason: format!("page {i}: {e}") };
            }
        };
        if header.page_idx != i as u32 {
            return SlotScan::Torn { reason: format!("page {i} claims index {}", header.page_idx) };
        }
        match identity {
            None => identity = Some(header.identity),
            Some(id) if id != header.identity => {
                return SlotScan::Torn {
                    reason: format!(
                        "page {i} identity {:?} disagrees with {:?}",
                        header.identity, id
                    ),
                };
            }
            Some(_) => {}
        }
        let page_entries = match parse_page_entries(page) {
            Ok(e) => e,
            Err(e) => return SlotScan::Torn { reason: format!("page {i}: {e}") },
        };
        entries.extend(page_entries);
    }
    match identity {
        Some(identity) => SlotScan::Valid { identity, entries },
        None => SlotScan::Empty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> IncarnationLayout {
        // 128 KiB incarnation on 2 KiB pages, as in the paper's flash-chip
        // configuration.
        IncarnationLayout::new(128 * 1024, 2048).unwrap()
    }

    fn sample_entries(n: u64) -> Vec<Entry> {
        (0..n).map(|i| Entry::new(hash_with_seed(i, 5), i * 10)).collect()
    }

    #[test]
    fn layout_capacities() {
        let l = layout();
        assert_eq!(l.num_pages, 64);
        assert_eq!(l.entries_per_page(), 126);
        assert_eq!(l.total_bytes(), 128 * 1024);
        assert!(l.max_entries() >= 4096);
    }

    #[test]
    fn page_offsets_and_overflow_hops_wrap() {
        let l = layout();
        assert_eq!(l.page_offset(1 << 20, 0), 1 << 20);
        assert_eq!(l.page_offset(1 << 20, 3), (1 << 20) + 3 * 2048);
        // Probing past the last page wraps, like the overflow spill does.
        assert_eq!(l.page_offset(0, l.num_pages), 0);
        assert_eq!(l.next_page(0), 1);
        assert_eq!(l.next_page(l.num_pages - 1), 0);
    }

    #[test]
    fn every_entry_is_findable_via_single_page_probe_chain() {
        let l = layout();
        let entries = sample_entries(4096);
        let image = l.serialize(&entries).unwrap();
        for e in &entries {
            let mut page_idx = l.page_of_key(e.key);
            let mut hops = 0;
            loop {
                let page = &image[page_idx * l.page_size..(page_idx + 1) * l.page_size];
                match lookup_in_page(page, e.key).unwrap() {
                    PageLookup::Found(v) => {
                        assert_eq!(v, e.value);
                        break;
                    }
                    PageLookup::Continue => {
                        page_idx = (page_idx + 1) % l.num_pages;
                        hops += 1;
                        assert!(hops < l.num_pages, "unbounded overflow chain");
                    }
                    PageLookup::Absent => panic!("entry {e:?} not found"),
                }
            }
        }
    }

    #[test]
    fn most_lookups_touch_exactly_one_page() {
        let l = layout();
        let entries = sample_entries(4096);
        let image = l.serialize(&entries).unwrap();
        let multi_hop = entries
            .iter()
            .filter(|e| {
                let page_idx = l.page_of_key(e.key);
                let page = &image[page_idx * l.page_size..(page_idx + 1) * l.page_size];
                !matches!(lookup_in_page(page, e.key).unwrap(), PageLookup::Found(_))
            })
            .count();
        // At 50% page fill, overflow is essentially non-existent.
        assert!(multi_hop * 100 < entries.len(), "too many multi-page lookups: {multi_hop}");
    }

    #[test]
    fn absent_keys_report_absent() {
        let l = layout();
        let entries = sample_entries(1000);
        let image = l.serialize(&entries).unwrap();
        let absent_key = hash_with_seed(999_999, 777);
        let page_idx = l.page_of_key(absent_key);
        let page = &image[page_idx * l.page_size..(page_idx + 1) * l.page_size];
        assert!(matches!(
            lookup_in_page(page, absent_key).unwrap(),
            PageLookup::Absent | PageLookup::Continue
        ));
    }

    #[test]
    fn parse_incarnation_recovers_all_entries() {
        let l = layout();
        let entries = sample_entries(3000);
        let image = l.serialize(&entries).unwrap();
        let mut recovered = parse_incarnation(&image, &l).unwrap();
        let mut expected = entries.clone();
        recovered.sort_unstable_by_key(|e| e.key);
        expected.sort_unstable_by_key(|e| e.key);
        assert_eq!(recovered, expected);
    }

    #[test]
    fn overflow_pages_are_flagged_and_followable() {
        // Force overflow with a tiny layout: 4 pages of 256 bytes -> 14
        // entries per page, 56 total; insert 55 entries that all hash
        // wherever they like — some pages will overflow with high
        // probability when we use many entries relative to capacity.
        let l = IncarnationLayout::new(1024, 256).unwrap();
        assert_eq!(l.num_pages, 4);
        let entries = sample_entries(55);
        let image = l.serialize(&entries).unwrap();
        // Every entry must still be findable.
        for e in &entries {
            let mut page_idx = l.page_of_key(e.key);
            let mut found = false;
            for _ in 0..l.num_pages {
                let page = &image[page_idx * l.page_size..(page_idx + 1) * l.page_size];
                match lookup_in_page(page, e.key).unwrap() {
                    PageLookup::Found(v) => {
                        assert_eq!(v, e.value);
                        found = true;
                        break;
                    }
                    PageLookup::Continue => page_idx = (page_idx + 1) % l.num_pages,
                    PageLookup::Absent => break,
                }
            }
            assert!(found, "entry {e:?} lost after overflow spill");
        }
    }

    #[test]
    fn serialize_rejects_too_many_entries() {
        let l = IncarnationLayout::new(1024, 256).unwrap();
        let entries = sample_entries(l.max_entries() as u64 + 1);
        assert!(l.serialize(&entries).is_err());
    }

    #[test]
    fn corrupt_pages_are_detected() {
        let l = layout();
        let image = l.serialize(&sample_entries(10)).unwrap();
        let mut bad = image.clone();
        bad[0] ^= 0xff; // clobber the magic
        assert!(matches!(
            lookup_in_page(&bad[..l.page_size], 1),
            Err(BufferHashError::CorruptIncarnation { .. })
        ));
        let mut bad_count = image;
        bad_count[4] = 0xff;
        bad_count[5] = 0xff;
        assert!(lookup_in_page(&bad_count[..l.page_size], 1).is_err());
        assert!(lookup_in_page(&[0u8; 8], 1).is_err());
    }

    #[test]
    fn tiny_page_size_is_rejected() {
        assert!(IncarnationLayout::new(1024, 16).is_err());
    }

    #[test]
    fn empty_incarnation_serializes_and_parses() {
        let l = layout();
        let image = l.serialize(&[]).unwrap();
        assert_eq!(parse_incarnation(&image, &l).unwrap(), Vec::new());
    }

    fn identity() -> IncarnationIdentity {
        IncarnationIdentity { table: 3, seq: 41, epoch: 7 }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn identity_round_trips_through_page_headers() {
        let l = layout();
        let image = l.serialize_identified(&sample_entries(500), identity()).unwrap();
        for i in 0..l.num_pages {
            let page = &image[i * l.page_size..(i + 1) * l.page_size];
            let header = parse_page_header_checked(page).unwrap();
            assert_eq!(header.identity, identity());
            assert_eq!(header.page_idx, i as u32);
            assert_eq!(header.version, INCARNATION_VERSION);
        }
        match scan_incarnation(&image, &l) {
            SlotScan::Valid { identity: id, mut entries } => {
                assert_eq!(id, identity());
                entries.sort_unstable_by_key(|e| e.key);
                let mut expected = sample_entries(500);
                expected.sort_unstable_by_key(|e| e.key);
                assert_eq!(entries, expected);
            }
            other => panic!("expected a valid scan, got {other:?}"),
        }
    }

    #[test]
    fn payload_bit_flip_fails_the_page_crc() {
        let l = layout();
        let mut image = l.serialize_identified(&sample_entries(500), identity()).unwrap();
        // Flip one payload bit in the middle of page 0.
        image[PAGE_HEADER_SIZE + 5] ^= 0x10;
        let err = parse_page_header_checked(&image[..l.page_size]).unwrap_err();
        assert!(err.to_string().contains("CRC mismatch"), "unexpected error: {err}");
        assert!(matches!(scan_incarnation(&image, &l), SlotScan::Torn { .. }));
    }

    #[test]
    fn half_written_page_is_torn_not_valid() {
        let l = layout();
        let image = l.serialize_identified(&sample_entries(500), identity()).unwrap();
        // Simulate a power cut mid-page: page 2 keeps only the first few
        // header bytes of the new image, the rest stays zero — the CRC (or
        // version) of the half-written page cannot validate.
        let mut torn = image.clone();
        let cut = 2 * l.page_size + 6;
        torn[cut..3 * l.page_size].fill(0);
        assert!(matches!(scan_incarnation(&torn, &l), SlotScan::Torn { .. }));
        // A cut at a page boundary over a previous incarnation leaves pages
        // whose seq fields disagree: also torn.
        let older = l
            .serialize_identified(
                &sample_entries(40),
                IncarnationIdentity { seq: 12, ..identity() },
            )
            .unwrap();
        let mut boundary = older;
        boundary[..2 * l.page_size].copy_from_slice(&image[..2 * l.page_size]);
        match scan_incarnation(&boundary, &l) {
            SlotScan::Torn { reason } => assert!(reason.contains("disagrees"), "{reason}"),
            other => panic!("expected torn, got {other:?}"),
        }
    }

    #[test]
    fn unknown_format_version_is_rejected() {
        let l = layout();
        let mut image = l.serialize_identified(&sample_entries(10), identity()).unwrap();
        image[8] = 0x99;
        // Re-stamp the CRC so only the version is wrong.
        let mut page = image[..l.page_size].to_vec();
        page[28..32].fill(0);
        let crc = crc32(&page);
        image[28..32].copy_from_slice(&crc.to_le_bytes());
        let err = parse_page_header_checked(&image[..l.page_size]).unwrap_err();
        assert!(err.to_string().contains("version"), "unexpected error: {err}");
    }

    #[test]
    fn scan_classifies_empty_and_never_panics_on_junk() {
        let l = IncarnationLayout::new(1024, 256).unwrap();
        assert_eq!(scan_incarnation(&vec![0u8; l.total_bytes()], &l), SlotScan::Empty);
        assert!(matches!(scan_incarnation(&[], &l), SlotScan::Torn { .. }));
        // Deterministic pseudo-random junk never classifies as valid (the
        // odds of a correct CRC are negligible) and never panics. Without
        // the magic anywhere it reads as empty; with a magic planted it
        // reads as torn.
        let mut junk: Vec<u8> =
            (0..l.total_bytes()).map(|i| (hash_with_seed(i as u64, 99) & 0xff) as u8).collect();
        assert!(!matches!(scan_incarnation(&junk, &l), SlotScan::Valid { .. }));
        junk[l.page_size..l.page_size + 4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
        assert!(matches!(scan_incarnation(&junk, &l), SlotScan::Torn { .. }));
    }
}
