//! The per-super-table bank of incarnation Bloom filters.
//!
//! [`FilterBank`] abstracts over the three configurations evaluated in the
//! paper: the default bit-sliced organisation (§5.1.3), plain
//! one-filter-per-incarnation storage (used by the bit-slicing ablation in
//! §7.3.1), and no filters at all (the Bloom-filter ablation, where every
//! incarnation must be probed on flash).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::bitslice::BitSlicedBloomSet;
use crate::bloom::BloomFilter;
use crate::types::Key;

/// How incarnation membership filters are organised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterMode {
    /// Bit-sliced filters with a sliding window (the paper's default).
    BitSliced,
    /// One independent Bloom filter per incarnation.
    PerIncarnation,
    /// No filters: lookups must probe every incarnation (ablation only).
    Disabled,
}

/// The bank of membership filters for one super table's incarnations.
#[derive(Debug, Clone)]
pub enum FilterBank {
    /// Bit-sliced storage.
    BitSliced(BitSlicedBloomSet),
    /// Plain per-incarnation filters, newest at the front (index = age).
    Plain {
        /// The filters, newest first.
        filters: VecDeque<BloomFilter>,
        /// Bits per filter.
        bits_per_filter: usize,
        /// Hash functions per filter.
        num_hashes: u32,
        /// Maximum number of incarnations.
        capacity: usize,
    },
    /// Filters disabled; only the incarnation count is tracked.
    Disabled {
        /// Number of live incarnations.
        count: usize,
        /// Maximum number of incarnations.
        capacity: usize,
    },
}

impl FilterBank {
    /// Creates a filter bank for up to `capacity` incarnations with
    /// `bits_per_filter` bits and `num_hashes` hash functions each.
    pub fn new(mode: FilterMode, capacity: usize, bits_per_filter: usize, num_hashes: u32) -> Self {
        match mode {
            FilterMode::BitSliced => {
                FilterBank::BitSliced(BitSlicedBloomSet::new(capacity, bits_per_filter, num_hashes))
            }
            FilterMode::PerIncarnation => FilterBank::Plain {
                filters: VecDeque::with_capacity(capacity),
                bits_per_filter,
                num_hashes,
                capacity,
            },
            FilterMode::Disabled => FilterBank::Disabled { count: 0, capacity },
        }
    }

    /// Number of live incarnations tracked.
    pub fn len(&self) -> usize {
        match self {
            FilterBank::BitSliced(s) => s.len(),
            FilterBank::Plain { filters, .. } => filters.len(),
            FilterBank::Disabled { count, .. } => *count,
        }
    }

    /// Returns `true` if no incarnations are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of incarnations.
    pub fn capacity(&self) -> usize {
        match self {
            FilterBank::BitSliced(s) => s.capacity(),
            FilterBank::Plain { capacity, .. } => *capacity,
            FilterBank::Disabled { capacity, .. } => *capacity,
        }
    }

    /// Registers a new youngest incarnation containing `keys`.
    ///
    /// The caller must have evicted first if the bank is at capacity.
    pub fn push_newest(&mut self, keys: &[Key]) {
        match self {
            FilterBank::BitSliced(s) => s.push_incarnation(keys.iter().copied()),
            FilterBank::Plain { filters, bits_per_filter, num_hashes, capacity } => {
                assert!(filters.len() < *capacity, "push into a full FilterBank");
                let mut f = BloomFilter::new(*bits_per_filter, *num_hashes);
                for &k in keys {
                    f.insert(k);
                }
                filters.push_front(f);
            }
            FilterBank::Disabled { count, capacity } => {
                assert!(*count < *capacity, "push into a full FilterBank");
                *count += 1;
            }
        }
    }

    /// Drops the oldest incarnation's filter.
    pub fn evict_oldest(&mut self) {
        match self {
            FilterBank::BitSliced(s) => s.evict_oldest(),
            FilterBank::Plain { filters, .. } => {
                filters.pop_back();
            }
            FilterBank::Disabled { count, .. } => {
                *count = count.saturating_sub(1);
            }
        }
    }

    /// Ages (0 = youngest) of the incarnations that may contain `key`,
    /// youngest first. With filters disabled every age is returned.
    pub fn query(&self, key: Key) -> Vec<usize> {
        match self {
            FilterBank::BitSliced(s) => s.query(key),
            FilterBank::Plain { filters, .. } => filters
                .iter()
                .enumerate()
                .filter(|(_, f)| f.contains(key))
                .map(|(age, _)| age)
                .collect(),
            FilterBank::Disabled { count, .. } => (0..*count).collect(),
        }
    }

    /// Returns `true` if the incarnation at `age` may contain `key`.
    ///
    /// Used by the update-based eviction policy to decide whether an entry
    /// of the evicted incarnation has been superseded by a younger one.
    pub fn may_contain_in(&self, age: usize, key: Key) -> bool {
        match self {
            FilterBank::BitSliced(s) => s.contains_in(age, key),
            FilterBank::Plain { filters, .. } => {
                filters.get(age).map(|f| f.contains(key)).unwrap_or(false)
            }
            FilterBank::Disabled { count, .. } => age < *count,
        }
    }

    /// Approximate DRAM footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            FilterBank::BitSliced(s) => s.memory_bytes(),
            FilterBank::Plain { filters, bits_per_filter, capacity, .. } => {
                // Account the full capacity (the DRAM is reserved even while
                // some slots are empty), matching the paper's budgeting.
                (*bits_per_filter / 8) * (*capacity).max(filters.len())
            }
            FilterBank::Disabled { .. } => 0,
        }
    }

    /// Number of 64-bit DRAM words touched by one membership query, used for
    /// in-memory latency accounting. Bit-slicing touches `h` slices of a few
    /// words; plain filters touch `h` scattered words per live incarnation.
    pub fn words_per_query(&self) -> usize {
        match self {
            FilterBank::BitSliced(s) => s.words_per_query(),
            FilterBank::Plain { filters, num_hashes, .. } => filters.len() * *num_hashes as usize,
            FilterBank::Disabled { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::hash_with_seed;

    fn keys(tag: u64, n: u64) -> Vec<Key> {
        (0..n).map(|i| hash_with_seed(i, tag + 1)).collect()
    }

    fn check_semantics(mode: FilterMode) {
        let mut bank = FilterBank::new(mode, 4, 1 << 13, 5);
        for inc in 0..4u64 {
            bank.push_newest(&keys(inc, 80));
        }
        assert_eq!(bank.len(), 4);
        // Keys of the youngest incarnation must be reported at age 0.
        for k in keys(3, 80) {
            assert!(bank.query(k).contains(&0));
            assert!(bank.may_contain_in(0, k));
        }
        // Keys of the oldest incarnation must be reported at age 3.
        for k in keys(0, 80) {
            assert!(bank.query(k).contains(&3));
        }
        bank.evict_oldest();
        assert_eq!(bank.len(), 3);
        // The old incarnation 1 is now the oldest (age 2).
        for k in keys(1, 80) {
            assert!(bank.query(k).contains(&2));
        }
    }

    #[test]
    fn bitsliced_semantics() {
        check_semantics(FilterMode::BitSliced);
    }

    #[test]
    fn per_incarnation_semantics() {
        check_semantics(FilterMode::PerIncarnation);
    }

    #[test]
    fn disabled_returns_every_incarnation() {
        let mut bank = FilterBank::new(FilterMode::Disabled, 8, 0, 0);
        bank.push_newest(&keys(0, 10));
        bank.push_newest(&keys(1, 10));
        bank.push_newest(&keys(2, 10));
        assert_eq!(bank.query(123_456), vec![0, 1, 2]);
        assert_eq!(bank.words_per_query(), 0);
        assert_eq!(bank.memory_bytes(), 0);
        bank.evict_oldest();
        assert_eq!(bank.query(123_456), vec![0, 1]);
    }

    #[test]
    fn bitsliced_queries_touch_fewer_words_than_plain() {
        let mut sliced = FilterBank::new(FilterMode::BitSliced, 16, 1 << 13, 7);
        let mut plain = FilterBank::new(FilterMode::PerIncarnation, 16, 1 << 13, 7);
        for inc in 0..16u64 {
            sliced.push_newest(&keys(inc, 50));
            plain.push_newest(&keys(inc, 50));
        }
        assert!(
            sliced.words_per_query() < plain.words_per_query(),
            "bit-slicing should reduce memory traffic ({} vs {})",
            sliced.words_per_query(),
            plain.words_per_query()
        );
    }

    #[test]
    fn spurious_matches_are_rare_for_both_filter_modes() {
        for mode in [FilterMode::BitSliced, FilterMode::PerIncarnation] {
            let mut bank = FilterBank::new(mode, 8, 1 << 14, 6);
            for inc in 0..8u64 {
                bank.push_newest(&keys(inc, 200));
            }
            let spurious: usize =
                (0..10_000u64).map(|i| bank.query(hash_with_seed(i, 0xbad)).len()).sum();
            assert!(spurious < 200, "mode {mode:?}: too many spurious matches: {spurious}");
        }
    }

    #[test]
    fn eviction_on_empty_bank_is_a_noop() {
        for mode in [FilterMode::BitSliced, FilterMode::PerIncarnation, FilterMode::Disabled] {
            let mut bank = FilterBank::new(mode, 4, 1024, 3);
            bank.evict_oldest();
            assert_eq!(bank.len(), 0);
        }
    }
}
