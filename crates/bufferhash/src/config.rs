//! CLAM configuration and the §6.4 parameter-tuning rules.
//!
//! A CLAM is configured by a handful of quantities: the flash capacity `F`,
//! the DRAM budget `M`, how much of that DRAM goes to buffers (`B`) versus
//! Bloom filters (`b = M − B`), the per-super-table buffer size `B'` (which
//! fixes the number of super tables `B / B'`), and the entry size `s`.
//! [`tuning`] implements the closed-form rules the paper derives for picking
//! them; [`ClamConfig::recommended`] applies those rules.

use flashsim::Geometry;

use crate::error::{BufferHashError, Result};
use crate::eviction::EvictionPolicy;
use crate::filters::FilterMode;
use crate::types::ENTRY_SIZE;

/// How incarnations are placed on flash (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashLayoutMode {
    /// The whole device is one circular log; incarnations from all super
    /// tables are appended in flush order. This is the right layout for
    /// FTL-managed SSDs, where interleaved writes to static partitions would
    /// defeat the drive's sequential-write optimisation.
    GlobalLog,
    /// The device is statically partitioned, one region per super table,
    /// each written circularly with explicit block erasure. This is the
    /// right layout for raw flash chips.
    PartitionPerTable,
}

/// Complete configuration of a CLAM.
#[derive(Debug, Clone, PartialEq)]
pub struct ClamConfig {
    /// Flash capacity in bytes (`F`).
    pub flash_capacity: u64,
    /// Total DRAM budget in bytes (`M`).
    pub dram_bytes: u64,
    /// DRAM dedicated to buffers across all super tables, in bytes (`B`).
    pub buffer_bytes_total: u64,
    /// Per-super-table buffer size in bytes (`B'`); with
    /// `buffer_bytes_total` this fixes the number of super tables.
    pub buffer_bytes_per_table: u64,
    /// Size of a hash entry in bytes (`s`); 16 in the paper.
    pub entry_size: usize,
    /// Maximum utilisation of the in-memory buffer hash table (0.5 in the
    /// paper, to keep cuckoo displacement cheap).
    pub max_buffer_utilization: f64,
    /// Eviction policy.
    pub eviction: EvictionPolicy,
    /// Organisation of the incarnation membership filters.
    pub filter_mode: FilterMode,
    /// Flash layout.
    pub layout: FlashLayoutMode,
    /// Ablation switch: when `false`, inserts bypass buffering and every
    /// insert is flushed to flash immediately (§7.3.1).
    pub enable_buffering: bool,
}

impl ClamConfig {
    /// A configuration following the paper's tuning rules for the given
    /// flash capacity, DRAM budget and device geometry.
    ///
    /// * total buffer memory `B` is set to the optimum `F / (s·ln²2)`,
    ///   capped at half the DRAM budget so Bloom filters always get space;
    /// * the per-table buffer is the flash erase-block size (the paper's
    ///   recommendation for flash chips, and its measured sweet spot of
    ///   128 KiB for SSDs);
    /// * the remaining DRAM is given to Bloom filters.
    pub fn recommended(flash_capacity: u64, dram_bytes: u64, geometry: Geometry) -> Result<Self> {
        let b_opt = tuning::optimal_total_buffer_bytes(flash_capacity, ENTRY_SIZE * 2);
        let buffer_bytes_total = b_opt.min(dram_bytes / 2).max(geometry.block_size as u64);
        let buffer_bytes_per_table = (geometry.block_size as u64).max(4 * 1024);
        let cfg = ClamConfig {
            flash_capacity,
            dram_bytes,
            buffer_bytes_total,
            buffer_bytes_per_table,
            entry_size: ENTRY_SIZE,
            max_buffer_utilization: 0.5,
            eviction: EvictionPolicy::Fifo,
            filter_mode: FilterMode::BitSliced,
            layout: FlashLayoutMode::GlobalLog,
            enable_buffering: true,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// A small configuration convenient for tests and examples: `F` and `M`
    /// scaled down but with the same structure as the paper's 32 GB / 4 GB
    /// prototype.
    pub fn small_test(flash_capacity: u64, dram_bytes: u64) -> Result<Self> {
        let buffer_bytes_per_table = 32 * 1024u64;
        let buffer_bytes_total = tuning::optimal_total_buffer_bytes(flash_capacity, ENTRY_SIZE * 2)
            .clamp(buffer_bytes_per_table, dram_bytes / 2);
        let cfg = ClamConfig {
            flash_capacity,
            dram_bytes,
            buffer_bytes_total,
            buffer_bytes_per_table,
            entry_size: ENTRY_SIZE,
            max_buffer_utilization: 0.5,
            eviction: EvictionPolicy::Fifo,
            filter_mode: FilterMode::BitSliced,
            layout: FlashLayoutMode::GlobalLog,
            enable_buffering: true,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<()> {
        let err = |msg: String| Err(BufferHashError::InvalidConfig(msg));
        if self.flash_capacity == 0 {
            return err("flash capacity must be non-zero".into());
        }
        if self.entry_size < ENTRY_SIZE {
            return err(format!("entry size must be at least {ENTRY_SIZE} bytes"));
        }
        if self.buffer_bytes_per_table == 0 || self.buffer_bytes_total == 0 {
            return err("buffer sizes must be non-zero".into());
        }
        if self.buffer_bytes_per_table > self.buffer_bytes_total {
            return err(format!(
                "per-table buffer ({}) exceeds total buffer memory ({})",
                self.buffer_bytes_per_table, self.buffer_bytes_total
            ));
        }
        if self.buffer_bytes_total > self.dram_bytes {
            return err(format!(
                "buffers ({}) exceed the DRAM budget ({})",
                self.buffer_bytes_total, self.dram_bytes
            ));
        }
        if self.buffer_bytes_total > self.flash_capacity {
            return err("total buffer memory exceeds flash capacity".into());
        }
        if !(0.05..=1.0).contains(&self.max_buffer_utilization) {
            return err(format!(
                "buffer utilisation {} outside [0.05, 1.0]",
                self.max_buffer_utilization
            ));
        }
        if self.num_super_tables() == 0 {
            return err("configuration yields zero super tables".into());
        }
        if self.incarnations_per_table() == 0 {
            return err("flash must hold at least one incarnation per super table".into());
        }
        Ok(())
    }

    /// Number of super tables (`B / B'`).
    pub fn num_super_tables(&self) -> usize {
        (self.buffer_bytes_total / self.buffer_bytes_per_table) as usize
    }

    /// Incarnations per super table in steady state (`k = F / B`).
    pub fn incarnations_per_table(&self) -> usize {
        (self.flash_capacity / self.buffer_bytes_total) as usize
    }

    /// DRAM available for Bloom filters (`b = M − B`), in bytes.
    pub fn bloom_bytes_total(&self) -> u64 {
        self.dram_bytes.saturating_sub(self.buffer_bytes_total)
    }

    /// Bloom-filter bits per incarnation (`m'`).
    pub fn bloom_bits_per_incarnation(&self) -> usize {
        let filters = self.num_super_tables() as u64 * self.incarnations_per_table() as u64;
        if filters == 0 {
            return 0;
        }
        ((self.bloom_bytes_total() * 8) / filters) as usize
    }

    /// Entries one buffer (and hence one incarnation) holds (`n'`).
    pub fn entries_per_incarnation(&self) -> usize {
        ((self.buffer_bytes_per_table as f64 / self.entry_size as f64)
            * self.max_buffer_utilization) as usize
    }

    /// Optimal number of Bloom hash functions (`h = (m'/n')·ln2`, §6.2).
    pub fn bloom_hashes(&self) -> u32 {
        let n = self.entries_per_incarnation().max(1) as f64;
        let m = self.bloom_bits_per_incarnation() as f64;
        ((m / n) * std::f64::consts::LN_2).round().clamp(1.0, 16.0) as u32
    }

    /// Expected Bloom-filter false-positive rate per incarnation.
    pub fn expected_false_positive_rate(&self) -> f64 {
        let h = self.bloom_hashes() as f64;
        0.5f64.powf(h)
    }

    /// Total slots in the flash log (one per incarnation held on flash).
    pub fn total_flash_slots(&self) -> u64 {
        self.flash_capacity / self.buffer_bytes_per_table
    }
}

/// Closed-form parameter tuning from §6.4.
pub mod tuning {
    /// Optimal total buffer memory `B_opt = F / (s·ln²2)` (same units as
    /// `F`). `s_effective` is the effective bytes per entry, i.e. the raw
    /// entry size divided by the buffer utilisation (32 bytes for 16-byte
    /// entries at 50% utilisation).
    pub fn optimal_total_buffer_bytes(flash_capacity: u64, s_effective: usize) -> u64 {
        let ln2_sq = std::f64::consts::LN_2 * std::f64::consts::LN_2;
        (flash_capacity as f64 / (s_effective.max(1) as f64 * ln2_sq)) as u64
    }

    /// Expected lookup I/O overhead (in the same time unit as
    /// `page_read_cost`) for a given Bloom budget:
    /// `C = (F/B)·(1/2)^(b·s·ln2 / F)·c_r` (§6.2).
    pub fn expected_lookup_overhead(
        flash_capacity: u64,
        total_buffer_bytes: u64,
        bloom_bytes: u64,
        s_effective: usize,
        page_read_cost: f64,
    ) -> f64 {
        if total_buffer_bytes == 0 {
            return f64::INFINITY;
        }
        let k = flash_capacity as f64 / total_buffer_bytes as f64;
        let exponent =
            (bloom_bytes as f64 * 8.0) * s_effective as f64 * 8.0 * std::f64::consts::LN_2
                / (flash_capacity as f64 * 8.0);
        k * 0.5f64.powf(exponent) * page_read_cost
    }

    /// Bloom memory needed (bytes) to keep the expected lookup I/O overhead
    /// below `target` (same unit as `page_read_cost`):
    /// `b ≥ F/(s·ln²2) · ln(s·ln²2·c_r / C_target)` (§6.4).
    pub fn bloom_bytes_for_target_overhead(
        flash_capacity: u64,
        s_effective: usize,
        page_read_cost: f64,
        target: f64,
    ) -> u64 {
        let ln2_sq = std::f64::consts::LN_2 * std::f64::consts::LN_2;
        let s = s_effective.max(1) as f64;
        let inner = (s * ln2_sq * page_read_cost / target).max(1.0);
        // The closed form yields a bit count; convert to bytes.
        let bits = (flash_capacity as f64 / (s * ln2_sq)) * inner.ln();
        (bits / 8.0) as u64
    }

    /// Number of super tables for a given total buffer memory and per-table
    /// buffer size (`B / B'`).
    pub fn num_super_tables(total_buffer_bytes: u64, per_table_buffer_bytes: u64) -> usize {
        (total_buffer_bytes / per_table_buffer_bytes.max(1)).max(1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(1 << 30, 4096, 256 * 1024).unwrap()
    }

    #[test]
    fn paper_scale_configuration_matches_reported_structure() {
        // 32 GB flash, 4 GB DRAM, 128 KiB buffers, 16-byte entries.
        let cfg = ClamConfig {
            flash_capacity: 32 << 30,
            dram_bytes: 4 << 30,
            buffer_bytes_total: 2 << 30,
            buffer_bytes_per_table: 128 * 1024,
            entry_size: 16,
            max_buffer_utilization: 0.5,
            eviction: EvictionPolicy::Fifo,
            filter_mode: FilterMode::BitSliced,
            layout: FlashLayoutMode::GlobalLog,
            enable_buffering: true,
        };
        cfg.validate().unwrap();
        // The paper reports 16,384 super tables, 16 incarnations each and
        // 4096 entries per buffer for this configuration (§7.1.1).
        assert_eq!(cfg.num_super_tables(), 16_384);
        assert_eq!(cfg.incarnations_per_table(), 16);
        assert_eq!(cfg.entries_per_incarnation(), 4096);
        // 2 GB of Bloom filters over 262,144 incarnations -> 64 Kib each.
        assert_eq!(cfg.bloom_bits_per_incarnation(), 65_536);
        // h = (m/n)·ln2 = 16·ln2 ≈ 11.
        assert_eq!(cfg.bloom_hashes(), 11);
        assert!(cfg.expected_false_positive_rate() < 0.001);
    }

    #[test]
    fn recommended_config_is_valid_and_balanced() {
        let cfg = ClamConfig::recommended(1 << 30, 256 << 20, geom()).unwrap();
        assert!(cfg.validate().is_ok());
        assert!(cfg.bloom_bytes_total() > 0);
        assert!(cfg.num_super_tables() >= 1);
        assert!(cfg.incarnations_per_table() >= 1);
    }

    #[test]
    fn small_test_config_is_valid() {
        let cfg = ClamConfig::small_test(16 << 20, 4 << 20).unwrap();
        assert!(cfg.num_super_tables() >= 1);
        assert!(cfg.incarnations_per_table() >= 2);
    }

    #[test]
    fn optimal_buffer_size_formula() {
        // B_opt = F/(s·ln²2) ≈ 2.08·F/s.
        let b = tuning::optimal_total_buffer_bytes(32 << 30, 32);
        let expected = (32u64 << 30) as f64 / 32.0 / 0.4805;
        assert!((b as f64 - expected).abs() / expected < 0.01);
    }

    #[test]
    fn lookup_overhead_decreases_with_bloom_memory() {
        let f = 32u64 << 30;
        let b = 2u64 << 30;
        let small = tuning::expected_lookup_overhead(f, b, 256 << 20, 32, 0.3);
        let large = tuning::expected_lookup_overhead(f, b, 1 << 30, 32, 0.3);
        assert!(large < small);
        assert!(small.is_finite());
    }

    #[test]
    fn bloom_budget_meets_its_target() {
        let f = 32u64 << 30;
        let cr = 0.3; // ms per page read
        let target = 0.01; // ms
        let bloom = tuning::bloom_bytes_for_target_overhead(f, 32, cr, target);
        let b_opt = tuning::optimal_total_buffer_bytes(f, 32);
        let achieved = tuning::expected_lookup_overhead(f, b_opt, bloom, 32, cr);
        assert!(
            achieved <= target * 1.05,
            "bloom budget {bloom} gives overhead {achieved}, target {target}"
        );
    }

    #[test]
    fn validation_rejects_inconsistent_configs() {
        let mut cfg = ClamConfig::small_test(16 << 20, 4 << 20).unwrap();
        cfg.buffer_bytes_total = cfg.dram_bytes + 1;
        assert!(cfg.validate().is_err());

        let mut cfg = ClamConfig::small_test(16 << 20, 4 << 20).unwrap();
        cfg.buffer_bytes_per_table = cfg.buffer_bytes_total * 2;
        assert!(cfg.validate().is_err());

        let mut cfg = ClamConfig::small_test(16 << 20, 4 << 20).unwrap();
        cfg.flash_capacity = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ClamConfig::small_test(16 << 20, 4 << 20).unwrap();
        cfg.max_buffer_utilization = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn num_super_tables_helper() {
        assert_eq!(tuning::num_super_tables(2 << 30, 128 * 1024), 16_384);
        assert_eq!(tuning::num_super_tables(1024, 0), 1024);
    }
}
