//! Core key/value and hashing types.
//!
//! The systems the paper targets store *fingerprints* — 32–64 bit hashes of
//! content chunks — mapped to small fixed-size values such as on-disk
//! addresses. BufferHash therefore works on fixed 16-byte entries: an 8-byte
//! key and an 8-byte value, exactly the entry size used in the paper's
//! evaluation (§7.1.1).

use serde::{Deserialize, Serialize};

/// A hash key (content fingerprint).
pub type Key = u64;

/// The value associated with a key (e.g. the on-disk address of a chunk).
pub type Value = u64;

/// Size of a serialized hash entry in bytes (8-byte key + 8-byte value).
pub const ENTRY_SIZE: usize = 16;

/// One (key, value) entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Entry {
    /// The key.
    pub key: Key,
    /// The value.
    pub value: Value,
}

impl Entry {
    /// Creates an entry.
    pub const fn new(key: Key, value: Value) -> Self {
        Entry { key, value }
    }

    /// Serializes the entry into 16 little-endian bytes.
    pub fn to_bytes(self) -> [u8; ENTRY_SIZE] {
        let mut out = [0u8; ENTRY_SIZE];
        out[..8].copy_from_slice(&self.key.to_le_bytes());
        out[8..].copy_from_slice(&self.value.to_le_bytes());
        out
    }

    /// Deserializes an entry from 16 little-endian bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < ENTRY_SIZE {
            return None;
        }
        let key = u64::from_le_bytes(bytes[..8].try_into().ok()?);
        let value = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        Some(Entry { key, value })
    }
}

/// 64-bit mixing function (a finalizer from MurmurHash3 / SplitMix64).
///
/// Used to derive independent hash functions from a key and a seed without
/// external dependencies. The output is uniformly distributed even for
/// structured inputs such as sequential integers.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Hashes `key` with a `seed`, producing a full 64-bit digest.
#[inline]
pub fn hash_with_seed(key: Key, seed: u64) -> u64 {
    mix64(key ^ mix64(seed.wrapping_add(0x9e37_79b9_7f4a_7c15)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn entry_round_trips_through_bytes() {
        let e = Entry::new(0xdead_beef_cafe_babe, 42);
        let bytes = e.to_bytes();
        assert_eq!(Entry::from_bytes(&bytes), Some(e));
    }

    #[test]
    fn entry_from_short_slice_is_none() {
        assert_eq!(Entry::from_bytes(&[0u8; 15]), None);
    }

    #[test]
    fn entry_size_matches_serialization() {
        assert_eq!(Entry::new(1, 2).to_bytes().len(), ENTRY_SIZE);
    }

    #[test]
    fn mix64_spreads_sequential_inputs() {
        // Sequential keys must produce well-spread hashes. Drawing 256
        // uniform bytes yields about 256·(1 − 1/e) ≈ 162 distinct values;
        // anything close to that indicates good mixing.
        let lows: HashSet<u8> = (0..256u64).map(|i| (mix64(i) & 0xff) as u8).collect();
        assert!(lows.len() > 140, "mix64 low byte not well distributed: {}", lows.len());
    }

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(12345), mix64(12345));
        assert_ne!(mix64(12345), 12345);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn seeded_hashes_differ_across_seeds() {
        let k = 0x1234_5678_9abc_def0;
        let h: HashSet<u64> = (0..16).map(|s| hash_with_seed(k, s)).collect();
        assert_eq!(h.len(), 16);
    }
}
