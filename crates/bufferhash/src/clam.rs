//! The CLAM: BufferHash running on DRAM + flash.
//!
//! [`Clam`] ties everything together: it partitions the key space across
//! super tables, orchestrates buffer flushes, incarnation writes, Bloom
//! filter maintenance and evictions against a [`flashsim::Device`], and
//! accounts the simulated latency of every operation the way the paper's
//! evaluation does (in-memory work plus any blocking flash I/O).
//!
//! Two operation pipelines are offered: per-op [`Clam::insert`] /
//! [`Clam::lookup`], which charge the full dispatch overhead to every
//! call, and the batched [`Clam::insert_batch`] / [`Clam::lookup_batch`],
//! which sort a batch by super table, amortize the dispatch overhead over
//! the batch, and coalesce flush-triggered incarnation writes that land on
//! contiguous log slots into single sequential device writes.
//!
//! The read path is **queued and streaming**: every lookup key runs a
//! probe state machine (buffer/delete-list check, then Bloom-guided
//! candidate incarnations, then chained page hops), and
//! [`Clam::lookup_batch`] drives those machines through the device's
//! **completion ring** ([`Device::submit_nowait`] /
//! [`Device::reap`](flashsim::Device::reap)): every unresolved key's next
//! page read is admitted without waiting, and the moment a read reaps, its
//! key's *next* read is re-armed — so independent keys' probe rounds
//! interleave and the queue stays full instead of draining at a per-round
//! barrier. The batch's flash time is the ring **makespan**
//! ([`flashsim::CompletionRing::makespan`]), which on variable-latency
//! media undercuts the sum of per-wave maxima the barrier pipeline pays.
//! A per-op [`Clam::lookup`] is a batch of one over the same pipeline;
//! [`Clam::lookup_batch_waves`] keeps the barrier wave pipeline as a
//! reference path (identical outcomes, different timing), which the
//! `io_queue_depth` harness sweeps ring-vs-barrier.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex, MutexGuard};

use flashsim::queue::{
    batch_latency, overlapped_requests, page_read_batch, IoCompletion, IoTicket, RingCompletion,
};
use flashsim::{
    CompletionRing, Device, IoRequest, LinearCost, MediumKind, RingRequest, SimDuration,
};

use crate::config::ClamConfig;
use crate::cuckoo::BufferInsert;
use crate::error::{BufferHashError, Result};
use crate::eviction::{EvictionPolicy, RetainDecision};
use crate::incarnation::{
    lookup_in_page, parse_incarnation, parse_page_header_checked, scan_incarnation,
    IncarnationIdentity, IncarnationLayout, PageLookup, SlotScan,
};
use crate::log::{LogAllocator, SlotOwner};
use crate::recovery::RecoveryReport;
use crate::stats::ClamStats;
use crate::supertable::{IncarnationMeta, SuperTable};
use crate::types::{hash_with_seed, Entry, Key, Value};

/// Fixed in-memory overhead charged once per hash-table *call*: request
/// dispatch, operation setup and stats bookkeeping on the host CPU. A
/// per-op call ([`Clam::insert`], [`Clam::lookup`]) pays it in full; a
/// batched call ([`Clam::insert_batch`], [`Clam::lookup_batch`]) pays it
/// once for the whole batch, which is where most of the batch speedup
/// comes from.
pub const BASE_OP_OVERHEAD: SimDuration = SimDuration::from_nanos(2_500);
/// Residual per-operation overhead inside a batched call: per-key hashing
/// and bookkeeping that batching cannot amortize away.
pub const BATCHED_OP_OVERHEAD: SimDuration = SimDuration::from_nanos(400);
/// Cost per 64-bit DRAM word touched by buffer/filter probes.
const WORD_COST: SimDuration = SimDuration::from_nanos(4);
/// DRAM words touched by a buffer probe (two cuckoo locations).
const BUFFER_PROBE_WORDS: usize = 4;

/// Outcome of an insert operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// End-to-end simulated latency charged to this insert.
    pub latency: SimDuration,
    /// Whether this insert triggered a buffer flush to flash.
    pub flushed: bool,
    /// Number of incarnations evicted by the flush chain (0 when no flush,
    /// 1 for a plain flush with eviction, more when partial-discard
    /// evictions cascaded).
    pub evictions: usize,
}

/// Outcome of a batched insert ([`Clam::insert_batch`]).
///
/// Latency is accounted at batch granularity: per-op dispatch overhead is
/// amortized across the batch and flush writes deferred for coalescing are
/// charged to the batch as a whole, not to the op that triggered them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchInsertOutcome {
    /// Number of operations in the batch.
    pub ops: usize,
    /// Total simulated latency of the batch, including coalesced flush
    /// writes drained at the end.
    pub latency: SimDuration,
    /// Operations that triggered at least one buffer flush.
    pub flushed_ops: usize,
    /// Incarnations evicted across all flush chains in the batch.
    pub evictions: usize,
    /// Device write commands eliminated by merging contiguous incarnation
    /// writes into one sequential write.
    pub coalesced_writes: usize,
}

impl BatchInsertOutcome {
    /// Mean simulated latency per operation.
    pub fn mean_latency(&self) -> SimDuration {
        if self.ops == 0 {
            SimDuration::ZERO
        } else {
            self.latency / self.ops as u64
        }
    }
}

/// Outcome of a lookup operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupOutcome {
    /// The value, if the key was found.
    pub value: Option<Value>,
    /// End-to-end simulated latency.
    pub latency: SimDuration,
    /// Number of flash page reads performed.
    pub flash_reads: usize,
    /// Where the value was found.
    pub source: LookupSource,
}

/// Where a lookup found (or failed to find) its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupSource {
    /// Found in the in-memory buffer.
    Buffer,
    /// Found in an on-flash incarnation.
    Flash,
    /// The key was deleted (delete-list hit).
    Deleted,
    /// Not found anywhere.
    Miss,
}

/// Verdict of a memory-only probe ([`Clam::probe_memory`]): either the key
/// resolved entirely from DRAM state (buffer, delete list, or Bloom filters
/// proving no live flash candidate), or the locked flash pipeline must run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryProbe {
    /// The key resolved without touching flash; the outcome is exactly what
    /// the locked lookup pipeline would have produced (`flash_reads == 0`).
    Resolved(LookupOutcome),
    /// At least one live flash incarnation may hold the key; only the
    /// exclusive probe pipeline can decide.
    NeedsFlash,
}

/// Outcome of a queued batch lookup ([`Clam::lookup_batch`]).
///
/// Carries one [`LookupOutcome`] per key (in input order) plus batch-level
/// accounting. The batch's [`latency`](Self::latency) is
/// **makespan-accounted**: probe waves submitted through
/// [`Device::submit`](flashsim::Device::submit) cost the maximum over the
/// device's queue lanes, not the summed per-read time, so a miss-heavy
/// batch on an overlapped device finishes far sooner than its per-key
/// latencies add up to. Each key's own [`LookupOutcome::latency`] still
/// records what that lookup would have cost charged alone (dispatch +
/// DRAM probes + its own page reads), which is what
/// [`ClamStats::lookups`](crate::ClamStats) samples.
#[derive(Debug, Clone, Default)]
pub struct BatchLookupOutcome {
    /// One outcome per key, in input order.
    pub outcomes: Vec<LookupOutcome>,
    /// Elapsed simulated time of the whole batch: per-key host work plus
    /// the makespan of every probe wave.
    pub latency: SimDuration,
    /// The flash share of [`latency`](Self::latency): the summed makespans
    /// of the probe waves (zero when every key resolved in memory).
    pub probe_latency: SimDuration,
    /// Probe rounds: the deepest key's chain of page reads. On the
    /// barrier pipeline ([`Clam::lookup_batch_waves`]) this equals the
    /// number of [`Device::submit`](flashsim::Device::submit) waves; on
    /// the streaming ring pipeline rounds of different keys interleave,
    /// but the depth is the same.
    pub waves: usize,
    /// Total flash page-read requests submitted across all rounds.
    pub probe_reads: usize,
    /// Completions delivered through [`Device::reap`](flashsim::Device::reap)
    /// (zero on the barrier wave pipeline).
    pub reaps: usize,
    /// In-flight depth high-water mark of the completion ring (zero on the
    /// barrier wave pipeline).
    pub ring_depth_high_water: usize,
}

impl BatchLookupOutcome {
    /// Number of keys looked up.
    pub fn ops(&self) -> usize {
        self.outcomes.len()
    }

    /// Returns `true` for the empty batch.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Number of keys that resolved to a value.
    pub fn hits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.value.is_some()).count()
    }

    /// Mean elapsed batch time per key (makespan-accounted).
    pub fn mean_latency(&self) -> SimDuration {
        if self.outcomes.is_empty() {
            SimDuration::ZERO
        } else {
            self.latency / self.outcomes.len() as u64
        }
    }

    /// The values in input order (convenience for callers that only need
    /// the lookup results).
    pub fn values(&self) -> Vec<Option<Value>> {
        self.outcomes.iter().map(|o| o.value).collect()
    }
}

impl std::ops::Index<usize> for BatchLookupOutcome {
    type Output = LookupOutcome;

    fn index(&self, index: usize) -> &LookupOutcome {
        &self.outcomes[index]
    }
}

impl IntoIterator for BatchLookupOutcome {
    type Item = LookupOutcome;
    type IntoIter = std::vec::IntoIter<LookupOutcome>;

    fn into_iter(self) -> Self::IntoIter {
        self.outcomes.into_iter()
    }
}

impl<'a> IntoIterator for &'a BatchLookupOutcome {
    type Item = &'a LookupOutcome;
    type IntoIter = std::slice::Iter<'a, LookupOutcome>;

    fn into_iter(self) -> Self::IntoIter {
        self.outcomes.iter()
    }
}

/// Memory usage summary of a CLAM (all figures in bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryUsage {
    /// DRAM used by buffers.
    pub buffers: usize,
    /// DRAM used by Bloom filters.
    pub filters: usize,
    /// DRAM used by delete lists.
    pub delete_lists: usize,
}

impl MemoryUsage {
    /// Total DRAM use.
    pub fn total(&self) -> usize {
        self.buffers + self.filters + self.delete_lists
    }
}

/// Process-wide source of incarnation epochs: every [`Clam`] lifetime —
/// fresh construction or recovery — gets an epoch strictly greater than
/// any handed out before, so flushed pages always say which lifetime
/// wrote them. [`Clam::recover`] additionally bumps this past the largest
/// epoch found on flash, covering images written by earlier processes.
static CLAM_EPOCH: AtomicU32 = AtomicU32::new(0);

/// One super table plus its per-table concurrency state (see DESIGN.md
/// "Per-table write locks").
///
/// * `op` — the **operation lock**: serializes whole logical mutations on
///   this table. A fine-grained writer holds it across its entire op
///   (insert including any flush chain), so per-table op order is well
///   defined even though the data lock below is released between steps.
/// * `state` — the **state lock**: protects the table's mutable data (the
///   cuckoo buffer, delete list, Bloom filters and incarnation queue). It
///   is a *leaf* lock, held only for the duration of single `SuperTable`
///   method calls — which is what lets a flush of one table force-evict
///   incarnations of *another* table (cross-table log-slot reclamation)
///   without any lock-ordering concerns.
/// * `epoch` — a per-table seqlock epoch, odd while a fine-grained writer
///   holds the op lock. Lock-free readers ([`Clam::try_probe_memory`])
///   validate against it so they never build a verdict from a half-applied
///   logical op (e.g. between a buffer drain and the matching incarnation
///   registration).
struct TableSlot {
    state: Mutex<SuperTable>,
    op: Mutex<()>,
    epoch: AtomicU64,
}

/// The stripe's super tables behind per-table locks, plus the table-lock
/// ledger (acquisitions, contended acquisitions, and the high-water mark
/// of concurrently write-locked tables) that [`Clam::stats`] folds into
/// [`ClamStats`].
struct TableSet {
    slots: Vec<TableSlot>,
    /// Fine-path write-lock acquisitions.
    acquisitions: AtomicU64,
    /// Acquisitions that found the op lock already held.
    contended: AtomicU64,
    /// Number of tables currently write-locked (fine path).
    locked: AtomicU64,
    /// High-water mark of `locked`: how many tables of this stripe were
    /// ever write-locked at the same instant.
    high_water: AtomicU64,
}

impl TableSet {
    fn new(tables: Vec<SuperTable>) -> Self {
        TableSet {
            slots: tables
                .into_iter()
                .map(|t| TableSlot {
                    state: Mutex::new(t),
                    op: Mutex::new(()),
                    epoch: AtomicU64::new(0),
                })
                .collect(),
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            locked: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    /// Runs `f` with table `t`'s state lock held. The lock is a leaf:
    /// `f` must not acquire any other lock.
    fn with<R>(&self, t: usize, f: impl FnOnce(&mut SuperTable) -> R) -> R {
        f(&mut self.slots[t].state.lock())
    }

    /// Current seqlock epoch of table `t` (odd while a fine-grained
    /// writer's logical op is in progress).
    fn epoch_of(&self, t: usize) -> u64 {
        self.slots[t].epoch.load(Ordering::SeqCst)
    }

    /// Acquires table `t`'s operation lock for a fine-grained logical
    /// write, recording the lock ledger and marking the table's epoch odd
    /// until the guard drops.
    fn lock_for_write(&self, t: usize) -> TableWriteGuard<'_> {
        let slot = &self.slots[t];
        let op = match slot.op.try_lock() {
            Some(guard) => guard,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                slot.op.lock()
            }
        };
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        let now_locked = self.locked.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(now_locked, Ordering::Relaxed);
        slot.epoch.fetch_add(1, Ordering::SeqCst);
        TableWriteGuard { set: self, slot, _op: op }
    }

    /// Folds the table-lock ledger into `stats`.
    fn merge_lock_ledger(&self, stats: &mut ClamStats) {
        stats.table_write_acquisitions += self.acquisitions.load(Ordering::Relaxed);
        stats.table_write_contended += self.contended.load(Ordering::Relaxed);
        stats.table_lock_high_water =
            stats.table_lock_high_water.max(self.high_water.load(Ordering::Relaxed));
    }

    /// Clears the table-lock ledger (for [`Clam::reset_stats`]).
    fn reset_lock_ledger(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.contended.store(0, Ordering::Relaxed);
        self.high_water.store(self.locked.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// RAII guard of one table's operation lock (fine-grained write path).
/// Dropping it marks the table's epoch even again and decrements the
/// concurrently-locked count.
struct TableWriteGuard<'a> {
    set: &'a TableSet,
    slot: &'a TableSlot,
    _op: MutexGuard<'a, ()>,
}

impl Drop for TableWriteGuard<'_> {
    fn drop(&mut self) {
        self.slot.epoch.fetch_add(1, Ordering::SeqCst);
        self.set.locked.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Orders the *flush* side-effects of a parallel batch insert: chunk `j`'s
/// first flush waits until every chunk `< j` has fully completed, so
/// allocator grants, flush sequence numbers and forced evictions happen in
/// exactly the order the sequential (coarse) batch would produce them —
/// that is what makes `set_coarse_locks(true)` a bit-identical baseline.
/// Buffer inserts (the common case) never wait: only a full buffer parks
/// on the gate, and it does so *before* taking the core lock, so a waiting
/// chunk holds nothing another chunk needs (its own table op locks only).
struct FlushGate {
    done: Mutex<Vec<bool>>,
    cv: Condvar,
}

impl FlushGate {
    fn new(chunks: usize) -> Self {
        FlushGate { done: Mutex::new(vec![false; chunks]), cv: Condvar::new() }
    }

    /// Blocks until every chunk before `chunk` has completed.
    fn wait_turn(&self, chunk: usize) {
        let mut done = self.done.lock();
        while !done[..chunk].iter().all(|&d| d) {
            done = self.cv.wait(done);
        }
    }

    /// Marks `chunk` complete and wakes waiters.
    fn complete(&self, chunk: usize) {
        let mut done = self.done.lock();
        done[chunk] = true;
        self.cv.notify_all();
    }
}

/// Drop guard that completes a chunk's gate slot on every exit path —
/// success, error return or panic — so one failing chunk can never
/// deadlock the chunks gated behind it.
struct GateCompletion<'a> {
    gate: &'a FlushGate,
    chunk: usize,
}

impl Drop for GateCompletion<'_> {
    fn drop(&mut self) {
        self.gate.complete(self.chunk);
    }
}

/// Per-chunk accumulator of a parallel batch insert.
struct ChunkOutcome {
    latency: SimDuration,
    flushed_ops: usize,
    evictions: usize,
}

impl ChunkOutcome {
    fn new() -> Self {
        ChunkOutcome { latency: SimDuration::ZERO, flushed_ops: 0, evictions: 0 }
    }
}

/// The shared, short-critical-section core of a [`Clam`]: everything that
/// is *not* per-table state — the device and its completion ring, the log
/// allocator (slot grants), the flush sequence counter and the
/// [`ClamStats`] ledger. Fine-grained writers take this lock only around
/// flush chains and ring drains; buffer-resident inserts, deletes and
/// memory probes never touch it. Because a flush chain runs entirely under
/// one core lock, allocator grant order equals ring admission order, which
/// is the invariant the PR-7 acknowledgment point rests on (admission
/// order = data-effect order on the device).
struct ClamCore<D: Device> {
    device: D,
    config: ClamConfig,
    /// The lifetime epoch stamped into every page this CLAM flushes; see
    /// [`CLAM_EPOCH`] and DESIGN.md "Crash consistency".
    epoch: u32,
    /// The (table-uniform) incarnation serialization layout.
    layout: IncarnationLayout,
    num_tables: usize,
    allocator: LogAllocator,
    seq: u64,
    stats: ClamStats,
    /// DRAM access cost model used for in-memory latency accounting.
    mem_cost: LinearCost,
    /// Incarnation writes deferred for coalescing. On the ring-driven
    /// write path this holds at most the *current* contiguous run (a
    /// non-contiguous write admits the finished run to the ring first, so
    /// flush traffic streams); on the barrier reference path it pools
    /// every deferred write until the batch-end drain sorts and merges
    /// them.
    pending_writes: Vec<(u64, Vec<u8>)>,
    /// True while a batched insert is collecting flush writes for
    /// coalescing.
    coalesce_writes: bool,
    /// True routes flushes, evictions and drains through the blocking
    /// barrier write path ([`ClamCore::flush_table_barrier`]) instead of
    /// the shared completion ring.
    barrier_writes: bool,
    /// The shared read/write completion ring of the current top-level call
    /// (`None` between calls): lookup probes, flush writes, eviction reads
    /// and trims all admit into it, so write traffic overlaps the tail of
    /// probe traffic (and vice versa) on one device timeline.
    ring: Option<CompletionRing>,
    /// Ring makespan already charged to some caller; the next sync charges
    /// only the growth beyond this horizon.
    ring_horizon: SimDuration,
    /// Ring `(reaps, admission stalls)` already attributed to the lookup
    /// ledger; the write-ring ledger takes the deltas beyond these marks.
    ring_read_marks: (u64, u64),
    /// Whether the current ring carried write-path traffic (writes,
    /// erases, trims) / read traffic, for the mixed-ring depth ledger.
    ring_wrote: bool,
    /// See [`ring_wrote`](Self::ring_wrote).
    ring_read: bool,
}

/// A cheap and large CAM: BufferHash on DRAM plus a flash [`Device`].
///
/// Since PR 10 the store is internally split for **per-super-table write
/// concurrency**: each [`SuperTable`]'s mutable state lives behind its own
/// lock (a [`TableSet`]), and the shared pieces — device, completion ring,
/// log allocator, stats ledger — live in a small mutex-protected
/// [`ClamCore`]. The classic `&mut self` API below is unchanged and takes
/// no locks (exclusive access reaches both halves directly); the `fine_*`
/// methods ([`fine_insert`](Self::fine_insert),
/// [`fine_insert_batch`](Self::fine_insert_batch),
/// [`fine_delete`](Self::fine_delete)) run through `&self` so writers to
/// *different* tables of one stripe commit in parallel.
pub struct Clam<D: Device> {
    tables: TableSet,
    core: Mutex<ClamCore<D>>,
    /// Copy of the core's configuration, readable without locking.
    config: ClamConfig,
    /// Copy of the core's lifetime epoch, readable without locking.
    epoch: u32,
    /// Copy of the core's DRAM cost model, usable without locking.
    mem_cost: LinearCost,
    /// Serializes concurrent [`fine_insert_batch`](Self::fine_insert_batch)
    /// calls: a batch owns the coalescing window (`coalesce_writes`) for
    /// its duration.
    batch_lock: Mutex<()>,
    /// Chunk-count override for [`fine_insert_batch`](Self::fine_insert_batch):
    /// 0 means "use [`std::thread::available_parallelism`]". Tests force a
    /// value > 1 to exercise the multi-chunk gate/rendezvous path even on
    /// single-core hosts (the scoped threads still run, time-sliced).
    batch_parallelism: AtomicUsize,
}

impl<D: Device> Clam<D> {
    /// Builds a CLAM over `device` with the given configuration.
    ///
    /// Fails if the configuration is inconsistent or the device is smaller
    /// than `config.flash_capacity`.
    pub fn new(device: D, config: ClamConfig) -> Result<Self> {
        config.validate()?;
        let geometry = device.geometry();
        if geometry.capacity < config.flash_capacity {
            return Err(BufferHashError::InvalidConfig(format!(
                "device capacity {} is smaller than the configured flash capacity {}",
                geometry.capacity, config.flash_capacity
            )));
        }
        let page_size = geometry.page_size as usize;
        let layout = IncarnationLayout::new(config.buffer_bytes_per_table as usize, page_size)?;
        let num_tables = config.num_super_tables();
        let k = config.incarnations_per_table();
        let bloom_bits = config.bloom_bits_per_incarnation();
        let bloom_hashes = config.bloom_hashes();
        let buffer_bytes = if config.enable_buffering {
            config.buffer_bytes_per_table as usize
        } else {
            // Ablation: a buffer that only ever holds one entry, so every
            // insert flushes straight to flash (§7.3.1 "without buffering").
            crate::types::ENTRY_SIZE * 2
        };
        let tables = (0..num_tables)
            .map(|id| {
                SuperTable::new(
                    id,
                    buffer_bytes,
                    config.max_buffer_utilization,
                    k,
                    config.filter_mode,
                    bloom_bits,
                    bloom_hashes,
                    layout,
                )
            })
            .collect();
        let allocator = LogAllocator::new(
            config.layout,
            config.flash_capacity,
            config.buffer_bytes_per_table,
            geometry.block_size as u64,
            num_tables,
        )?;
        let epoch = CLAM_EPOCH.fetch_add(1, Ordering::Relaxed) + 1;
        let mem_cost = LinearCost::new(0, 0.5);
        let core = ClamCore {
            device,
            config: config.clone(),
            epoch,
            layout,
            num_tables,
            allocator,
            seq: 0,
            stats: ClamStats::new(),
            mem_cost,
            pending_writes: Vec::new(),
            coalesce_writes: false,
            barrier_writes: false,
            ring: None,
            ring_horizon: SimDuration::ZERO,
            ring_read_marks: (0, 0),
            ring_wrote: false,
            ring_read: false,
        };
        Ok(Clam {
            tables: TableSet::new(tables),
            core: Mutex::new(core),
            config,
            epoch,
            mem_cost,
            batch_lock: Mutex::new(()),
            batch_parallelism: AtomicUsize::new(0),
        })
    }

    /// Rebuilds a CLAM from the flash contents of `device` alone — the
    /// recovery path after a crash or restart.
    ///
    /// The scan reads every incarnation slot through the completion ring
    /// (admitted without waiting via
    /// [`submit_nowait`](flashsim::Device::submit_nowait), overlapped per
    /// the device queue, reaped as reads retire), then:
    ///
    /// * rejects **torn** slots — any page failing the CRC32 / version /
    ///   identity checks of [`crate::scan_incarnation`] — which is how a
    ///   flush the power cut interrupted mid-write is discarded;
    /// * rejects **stale** slots — valid incarnations shadowed by a
    ///   higher-epoch copy of the same flush sequence, or older than the
    ///   youngest `k` their table retains;
    /// * registers the survivors oldest-to-youngest, rebuilding each
    ///   super table's Bloom filters and incarnation queue, and restores
    ///   the log allocator's owner map and write position;
    /// * scrubs torn slots on raw flash: erase blocks overlapping a torn
    ///   slot but no accepted one are erased, so resumed writes never
    ///   program over a power cut's half-written pages (FTL and seek
    ///   media ignore the hint);
    /// * resumes the flush sequence past the largest `seq` on any
    ///   CRC-valid page (pages inside torn slots included) and adopts an
    ///   epoch strictly greater than every epoch seen, so the recovered
    ///   lifetime can never re-issue an identity that still shadows
    ///   surviving on-flash data.
    ///
    /// Buffers and delete lists restart empty: buffered inserts and all
    /// deletes live only in DRAM and do not survive a crash — see
    /// DESIGN.md "Crash consistency" for the durability contract.
    pub fn recover(device: D, config: ClamConfig) -> Result<(Self, RecoveryReport)> {
        let mut clam = Clam::new(device, config)?;
        let report = {
            let tables = &clam.tables;
            clam.core.get_mut().recover_scan(tables)?
        };
        clam.epoch = clam.core.get_mut().epoch;
        Ok((clam, report))
    }

    /// The lifetime epoch this CLAM stamps into every page it flushes.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Routes every flush, eviction and coalesced drain through the
    /// blocking **barrier** write path (`flush_table_barrier`) instead of the
    /// shared completion ring. Off by default; kept (like
    /// [`lookup_batch_waves`](Self::lookup_batch_waves) on the read side)
    /// as the reference implementation for equivalence testing and the
    /// ring-vs-barrier write sweep in the `io_queue_depth` harness.
    pub fn set_barrier_writes(&mut self, barrier: bool) {
        self.core.get_mut().barrier_writes = barrier;
    }

    /// The configuration this CLAM was built with.
    pub fn config(&self) -> &ClamConfig {
        &self.config
    }

    /// Operation statistics collected so far, with the table-lock ledger
    /// folded in. Returned by value (the stats live inside the core lock).
    pub fn stats(&self) -> ClamStats {
        let mut stats = self.core.lock().stats.clone();
        self.tables.merge_lock_ledger(&mut stats);
        stats
    }

    /// Mutable access to the statistics (e.g. to compute quantiles, which
    /// require sorting the recorded samples).
    pub fn stats_mut(&mut self) -> &mut ClamStats {
        &mut self.core.get_mut().stats
    }

    /// Clears the operation statistics, the table-lock ledger and the
    /// device counters.
    pub fn reset_stats(&mut self) {
        let core = self.core.get_mut();
        core.stats.reset();
        core.device.reset_stats();
        self.tables.reset_lock_ledger();
    }

    /// Immutable access to the underlying device. Takes `&mut self`
    /// because the device lives inside the core lock; lock-free callers
    /// use [`with_device`](Self::with_device).
    pub fn device(&mut self) -> &D {
        &self.core.get_mut().device
    }

    /// Mutable access to the underlying device (e.g. to declare idle time).
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.core.get_mut().device
    }

    /// Runs `f` with a shared reference to the device (locks the core for
    /// the duration of `f`).
    pub fn with_device<R>(&self, f: impl FnOnce(&D) -> R) -> R {
        f(&self.core.lock().device)
    }

    /// Consumes the CLAM and returns the device.
    pub fn into_device(self) -> D {
        self.core.into_inner().device
    }

    /// Number of super tables.
    pub fn num_super_tables(&self) -> usize {
        self.tables.len()
    }

    /// Approximate number of live entries (buffered plus on flash; lazily
    /// superseded duplicates are counted once per copy).
    pub fn approximate_entries(&self) -> usize {
        (0..self.tables.len())
            .map(|t| {
                self.tables.with(t, |table| {
                    table.buffer_len()
                        + (0..table.num_incarnations())
                            .filter_map(|age| table.incarnation_at(age))
                            .map(|m| m.entries)
                            .sum::<usize>()
                })
            })
            .sum()
    }

    /// Current DRAM footprint.
    pub fn memory_usage(&self) -> MemoryUsage {
        let buffers = self.tables.len() * self.config.buffer_bytes_per_table as usize;
        let (delete_lists, total) = (0..self.tables.len())
            .map(|t| {
                self.tables.with(t, |table| {
                    (table.delete_list_len() * std::mem::size_of::<Key>(), table.memory_bytes())
                })
            })
            .fold((0usize, 0usize), |(d, m), (dl, mb)| (d + dl, m + mb));
        MemoryUsage { buffers, filters: total.saturating_sub(buffers + delete_lists), delete_lists }
    }

    /// Super table responsible for `key` (the paper partitions on the first
    /// `k1` bits of the key; hashing achieves the same uniform split without
    /// requiring a power-of-two table count).
    fn table_of(&self, key: Key) -> usize {
        (hash_with_seed(key, 0x7a_b1e5) % self.tables.len() as u64) as usize
    }

    /// Cost of touching `words` 64-bit words of DRAM.
    fn mem_words_cost(&self, words: usize) -> SimDuration {
        WORD_COST * words as u64 + self.mem_cost.cost(words * 8)
    }

    // ------------------------------------------------------------------
    // Public hash-table operations (exclusive `&mut self` path)
    // ------------------------------------------------------------------

    /// Inserts (or updates) `key` with `value`.
    ///
    /// Updates are lazy (§5.1.1): if an older value for the key is already
    /// on flash it is left there; lookups return the newest value because
    /// incarnations are examined youngest-first.
    pub fn insert(&mut self, key: Key, value: Value) -> Result<InsertOutcome> {
        self.core.get_mut().insert_with_dispatch(&self.tables, key, value, BASE_OP_OVERHEAD)
    }

    /// Alias for [`insert`](Self::insert); updates use the same lazy path.
    pub fn update(&mut self, key: Key, value: Value) -> Result<InsertOutcome> {
        self.insert(key, value)
    }

    /// Inserts (or updates) a batch of key/value pairs in one call.
    ///
    /// Operations are applied in input order *per super table* (ops are
    /// stably sorted by super table first), so as long as the flash log
    /// has not wrapped, the resulting state is observationally equivalent
    /// to calling [`insert`](Self::insert) for each pair in order: the
    /// same lookups succeed, the same buffers fill at the same points and
    /// the same flushes happen. Once capacity wraps, flush order *across*
    /// tables (which differs from the sequential interleaving) decides
    /// which incarnations the log overwrites, so forced-eviction victims
    /// may differ from a sequential execution — both are valid FIFO
    /// behavior. What always changes is the cost: the per-call dispatch
    /// overhead is paid once for the whole batch, each super table's
    /// filters and buffer are walked in one pass, and incarnation writes
    /// that land on contiguous log slots are coalesced into a single
    /// sequential device write.
    ///
    /// This is the sequential (coarse) batch path; the parallel
    /// fine-grained twin is [`fine_insert_batch`](Self::fine_insert_batch),
    /// which dispatches per-table groups onto scoped threads and is
    /// bit-identical to this path by construction (property-tested).
    ///
    /// ```
    /// use bufferhash::{Clam, ClamConfig};
    /// use flashsim::Ssd;
    ///
    /// let config = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
    /// let mut clam = Clam::new(Ssd::intel(8 << 20).unwrap(), config).unwrap();
    ///
    /// let ops: Vec<(u64, u64)> = (0..128).map(|i| (i * 7 + 1, i)).collect();
    /// let batch = clam.insert_batch(&ops).unwrap();
    /// assert_eq!(batch.ops, 128);
    /// // Amortized per-op cost is well below a per-op insert's overhead.
    /// assert!(batch.mean_latency() < bufferhash::BASE_OP_OVERHEAD);
    /// assert_eq!(clam.lookup(8).unwrap().value, Some(1));
    /// ```
    pub fn insert_batch(&mut self, ops: &[(Key, Value)]) -> Result<BatchInsertOutcome> {
        let mut order: Vec<usize> = (0..ops.len()).collect();
        // Stable sort: ops for one super table keep their input order.
        order.sort_by_key(|&i| self.table_of(ops[i].0));
        self.core.get_mut().insert_batch_ordered(&self.tables, ops, &order)
    }

    /// Looks up a batch of keys in one call through the **streaming ring
    /// pipeline**, returning one [`LookupOutcome`] per key (input order)
    /// inside a [`BatchLookupOutcome`].
    ///
    /// Keys are stably sorted by super table so each table's buffer and
    /// filter bank are probed in one pass, and the per-call dispatch
    /// overhead is amortized across the batch. Every key that misses the
    /// in-memory state becomes a probe state machine whose page reads are
    /// driven through the device's completion ring
    /// ([`Device::submit_nowait`](flashsim::Device::submit_nowait) /
    /// [`Device::reap`](flashsim::Device::reap)): all first reads are
    /// admitted up front, and each key re-arms its next read the moment
    /// its previous one reaps, so independent keys' probe rounds
    /// interleave and the device queue stays full. The batch is charged
    /// the ring **makespan** — on variable-latency media (the file
    /// backend) this undercuts the per-round barrier of
    /// [`lookup_batch_waves`](Self::lookup_batch_waves), which pays every
    /// round's straggler before starting the next.
    ///
    /// Under non-reinserting eviction policies (FIFO, update-based,
    /// priority — the default), lookups mutate nothing, so results
    /// (values, sources, flash read counts, hit/miss stats) are identical
    /// to per-op [`lookup`](Self::lookup) calls in the same order; only
    /// the charged latency differs. This identity is property-tested on
    /// all five device backends. The caveat is LRU eviction:
    /// re-insertions of flash-hit keys are applied *after* the batch
    /// resolves (in the order the keys resolved out of the wave loop), as
    /// the paper's asynchronous re-insertion would, so intra-batch
    /// outcomes can diverge from the
    /// per-op interleaving — a key repeated within one LRU batch probes
    /// flash again rather than hitting the just-re-inserted buffer copy,
    /// and a re-insertion flush that a sequential execution would have
    /// run *mid-batch* (possibly evicting an incarnation before a later
    /// key probes it) runs after the batch instead, so a later key can
    /// even observe a value the sequential interleaving would already
    /// have evicted. Both orders are valid under the paper's
    /// asynchronous-re-insertion semantics.
    ///
    /// ```
    /// use bufferhash::{Clam, ClamConfig};
    /// use flashsim::Ssd;
    ///
    /// let config = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
    /// let mut clam = Clam::new(Ssd::intel(8 << 20).unwrap(), config).unwrap();
    /// clam.insert_batch(&[(1, 10), (2, 20), (3, 30)]).unwrap();
    ///
    /// let found = clam.lookup_batch(&[2, 99, 1]).unwrap();
    /// assert_eq!(found[0].value, Some(20));
    /// assert_eq!(found[1].value, None);
    /// assert_eq!(found[2].value, Some(10));
    /// // Buffer hits resolve without flash probes: no waves were needed.
    /// assert_eq!(found.waves, 0);
    /// assert_eq!(found.hits(), 2);
    /// ```
    pub fn lookup_batch(&mut self, keys: &[Key]) -> Result<BatchLookupOutcome> {
        let core = self.core.get_mut();
        core.stats.batched_lookups += keys.len() as u64;
        core.lookup_batch_ring(&self.tables, keys, batch_dispatch(keys.len()))
    }

    /// Batched-lookup entry point for callers that amortize dispatch over a
    /// *larger* batch than `keys` — the `SharedClam` fast/locked split runs
    /// memory-resolved keys outside the lock and sends only the flash-bound
    /// remainder here, charging every key the full batch's amortized
    /// dispatch so the accounting matches the all-locked reference path.
    pub(crate) fn lookup_batch_amortized(
        &mut self,
        keys: &[Key],
        dispatch: SimDuration,
    ) -> Result<BatchLookupOutcome> {
        let core = self.core.get_mut();
        core.stats.batched_lookups += keys.len() as u64;
        core.lookup_batch_ring(&self.tables, keys, dispatch)
    }

    /// The **barrier wave** reference pipeline: each round collects the
    /// next pending page read of every unresolved key into one
    /// [`Device::submit`](flashsim::Device::submit) wave, charged at the
    /// wave makespan — the PR-4 read path, kept (like
    /// `StripedClam::insert_batch_serial`) for comparison, debugging and
    /// the ring-vs-barrier sweep in the `io_queue_depth` harness.
    ///
    /// Outcomes (values, sources, flash-read counts, hit/miss stats) are
    /// identical to [`lookup_batch`](Self::lookup_batch) — this is
    /// property-tested on all five backends. Only the charged latency
    /// differs: every round waits for the whole wave's straggler before
    /// the next round starts, so `probe_latency` is the *sum of per-wave
    /// maxima* instead of the ring makespan.
    pub fn lookup_batch_waves(&mut self, keys: &[Key]) -> Result<BatchLookupOutcome> {
        let core = self.core.get_mut();
        core.stats.batched_lookups += keys.len() as u64;
        core.lookup_batch_waves_with_dispatch(&self.tables, keys, batch_dispatch(keys.len()))
    }

    /// Looks up `key`: a batch of one over the streaming ring pipeline, so
    /// the per-op and batched paths share a single implementation (a chain
    /// of one-request admissions, whose makespan is exactly the summed
    /// read latency).
    pub fn lookup(&mut self, key: Key) -> Result<LookupOutcome> {
        let mut batch = self.core.get_mut().lookup_batch_ring(
            &self.tables,
            std::slice::from_ref(&key),
            BASE_OP_OVERHEAD,
        )?;
        Ok(batch.outcomes.pop().expect("one outcome per key"))
    }

    /// Probes `key` against DRAM state only — buffer, delete list and Bloom
    /// filters — through `&self`, without mutating anything. Blocks on the
    /// table's state lock if a writer holds it; the lock-free variant is
    /// [`try_probe_memory`](Self::try_probe_memory).
    ///
    /// Returns [`MemoryProbe::Resolved`] when the verdict is decidable from
    /// memory alone (buffer hit, delete shadow, or no live candidate
    /// incarnation): the outcome carries the same value, source,
    /// `flash_reads == 0` and per-op latency charge (`dispatch` + DRAM probe
    /// words) that [`lookup`](Self::lookup) would report. Returns
    /// [`MemoryProbe::NeedsFlash`] when a live incarnation may hold the key,
    /// in which case the caller must fall back to the exclusive pipeline.
    /// The caller is responsible for recording statistics for resolved
    /// probes (this method cannot: it holds no `&mut`); keys that would
    /// trigger LRU re-insertion never resolve here because re-insertion
    /// only follows a flash hit.
    pub fn probe_memory(&self, key: Key, dispatch: SimDuration) -> MemoryProbe {
        let t = self.table_of(key);
        self.tables.with(t, |table| self.probe_memory_in(table, key, dispatch))
    }

    /// Seqlock-validated variant of [`probe_memory`](Self::probe_memory):
    /// returns `None` instead of a verdict when a fine-grained writer's
    /// logical op on the key's table is in progress (the table epoch is
    /// odd) or completed while the probe ran (the epoch moved) — the
    /// caller must retry or fall back to a locked path. One state-lock
    /// critical section; never blocks on a whole-op lock.
    pub fn try_probe_memory(&self, key: Key, dispatch: SimDuration) -> Option<MemoryProbe> {
        let t = self.table_of(key);
        let before = self.tables.epoch_of(t);
        if before & 1 == 1 {
            return None;
        }
        let probe = self.tables.with(t, |table| self.probe_memory_in(table, key, dispatch));
        if self.tables.epoch_of(t) != before {
            return None;
        }
        Some(probe)
    }

    /// Returns `true` while a fine-grained writer's logical op on `key`'s
    /// table is in progress (the table's seqlock epoch is odd). The
    /// `clamd` engine's idle-shard bypass consults this so a bypassed
    /// scalar LOOKUP never races a table-local writer's half-applied
    /// mutation.
    pub fn table_writer_active(&self, key: Key) -> bool {
        self.tables.epoch_of(self.table_of(key)) & 1 == 1
    }

    /// The memory-probe verdict for `key` against one table's state;
    /// shared by [`probe_memory`](Self::probe_memory) and
    /// [`try_probe_memory`](Self::try_probe_memory).
    fn probe_memory_in(&self, table: &SuperTable, key: Key, dispatch: SimDuration) -> MemoryProbe {
        let filter_words = table.filter_words_per_query();
        let latency = dispatch + self.mem_words_cost(BUFFER_PROBE_WORDS + filter_words);
        if let Some(found) = table.memory_lookup(key) {
            let source = if found.is_some() { LookupSource::Buffer } else { LookupSource::Deleted };
            return MemoryProbe::Resolved(LookupOutcome {
                value: found,
                latency,
                flash_reads: 0,
                source,
            });
        }
        let live_candidate = table
            .candidate_incarnations(key)
            .into_iter()
            .any(|age| table.incarnation_at(age).is_some());
        if live_candidate {
            MemoryProbe::NeedsFlash
        } else {
            MemoryProbe::Resolved(LookupOutcome {
                value: None,
                latency,
                flash_reads: 0,
                source: LookupSource::Miss,
            })
        }
    }

    /// Returns `true` if `key` currently maps to a value.
    pub fn contains(&mut self, key: Key) -> Result<bool> {
        Ok(self.lookup(key)?.value.is_some())
    }

    /// Deletes `key` (lazily: flash copies are shadowed by the delete list
    /// and reclaimed at eviction time).
    pub fn delete(&mut self, key: Key) -> Result<SimDuration> {
        let t = self.table_of(key);
        let latency = BASE_OP_OVERHEAD + self.mem_words_cost(BUFFER_PROBE_WORDS + 2);
        self.tables.with(t, |table| table.delete(key));
        self.core.get_mut().stats.deletes.record(latency);
        Ok(latency)
    }

    /// Flushes every non-empty buffer to flash (e.g. before a bulk merge or
    /// shutdown). Returns the total simulated latency.
    ///
    /// The per-table incarnation writes coalesce into contiguous runs that
    /// stream into the device's completion ring as they form (contiguous
    /// log slots merge into sequential writes, independent runs overlap on
    /// the ring's lanes), so a whole-index flush costs the makespan of the
    /// ring schedule rather than the sum of blocking per-table writes. On
    /// the barrier reference path the runs pool and drain as one blocking
    /// submission instead.
    pub fn flush_all(&mut self) -> Result<SimDuration> {
        self.core.get_mut().flush_all(&self.tables)
    }

    /// Declares `idle` simulated time during which the device may perform
    /// background work (SSD garbage collection).
    pub fn idle(&mut self, idle: SimDuration) {
        self.core.get_mut().device.on_idle(idle);
    }

    // ------------------------------------------------------------------
    // Fine-grained write path (`&self`: per-table op locks + core lock)
    // ------------------------------------------------------------------

    /// Per-op insert through the fine-grained path: takes only `key`'s
    /// table op lock plus (on flush or for the ack drain) the short core
    /// lock, so concurrent inserts to *different* tables of this stripe
    /// commit in parallel. Observationally identical to
    /// [`insert`](Self::insert) when ops are serialized (property-tested).
    pub fn fine_insert(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        let t = self.table_of(key);
        let _guard = self.tables.lock_for_write(t);
        let mut stats = ClamStats::new();
        let outcome = self.fine_insert_locked(t, key, value, BASE_OP_OVERHEAD, None, &mut stats);
        self.core.lock().stats.merge(&stats);
        outcome
    }

    /// Per-op delete through the fine-grained path (op lock + a brief core
    /// lock for the ledger only — deletes never touch flash).
    pub fn fine_delete(&self, key: Key) -> Result<SimDuration> {
        let t = self.table_of(key);
        let _guard = self.tables.lock_for_write(t);
        let latency = BASE_OP_OVERHEAD + self.mem_words_cost(BUFFER_PROBE_WORDS + 2);
        self.tables.with(t, |table| table.delete(key));
        self.core.lock().stats.deletes.record(latency);
        Ok(latency)
    }

    /// Overrides how many chunks [`fine_insert_batch`](Self::fine_insert_batch)
    /// splits a batch into. `None` (the default) uses
    /// [`std::thread::available_parallelism`]. Tests pass `Some(n > 1)` to
    /// exercise the multi-chunk gate/rendezvous path deterministically,
    /// core count notwithstanding.
    pub fn set_batch_parallelism(&self, chunks: Option<usize>) {
        self.batch_parallelism.store(chunks.unwrap_or(0), Ordering::Relaxed);
    }

    /// Parallel fine-grained twin of [`insert_batch`](Self::insert_batch):
    /// partitions the batch into per-super-table groups, splits the groups
    /// into up to `available_parallelism` chunks, and runs the chunks on
    /// scoped threads — each chunk holding one table op lock at a time, so
    /// buffer-resident inserts of different tables proceed concurrently.
    ///
    /// **Bit-identical to the coarse path by construction.** Two mechanisms
    /// make that true: ops of one table keep input order under the table's
    /// op lock, and a [`FlushGate`] orders flush chains across chunks —
    /// chunk *j*'s first flush waits for chunks *< j* to complete, so
    /// allocator grants, flush sequence numbers, forced evictions and the
    /// device timeline replay exactly the sequential (table-ascending)
    /// order. Stats recorded per chunk merge into the ledger at batch end
    /// (recorder statistics are order-insensitive multisets). The chunks
    /// rendezvous on a barrier after taking their first table op lock,
    /// which is what makes the `table_lock_high_water` ledger deterministic
    /// on multi-core hosts.
    pub fn fine_insert_batch(&self, ops: &[(Key, Value)]) -> Result<BatchInsertOutcome>
    where
        D: Send,
    {
        let mut outcome = BatchInsertOutcome { ops: ops.len(), ..Default::default() };
        if ops.is_empty() {
            return Ok(outcome);
        }
        let _batch = self.batch_lock.lock();
        // Partition into per-table groups; ops of one table keep input
        // order, and tables are processed in ascending id order, exactly
        // like the coarse path's stable sort.
        let mut groups: Vec<Vec<(Key, Value)>> = vec![Vec::new(); self.tables.len()];
        for &(key, value) in ops {
            groups[self.table_of(key)].push((key, value));
        }
        let occupied: Vec<(usize, Vec<(Key, Value)>)> =
            groups.into_iter().enumerate().filter(|(_, g)| !g.is_empty()).collect();
        let dispatch = batch_dispatch(ops.len());
        let coalesced_before = {
            let mut core = self.core.lock();
            core.stats.batched_inserts += ops.len() as u64;
            core.coalesce_writes = true;
            core.stats.coalesced_flush_writes
        };
        // Contiguous chunks of whole per-table groups, balanced by op
        // count, one scoped thread each.
        let parallelism = match self.batch_parallelism.load(Ordering::Relaxed) {
            0 => std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            n => n,
        };
        let chunks = split_balanced(occupied, parallelism);
        let gate = FlushGate::new(chunks.len());
        let rendezvous = std::sync::Barrier::new(chunks.len());
        let results: Vec<(ClamStats, Result<ChunkOutcome>)> = if chunks.len() == 1 {
            vec![self.run_batch_chunk(&chunks[0], dispatch, &gate, 0, &rendezvous)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .iter()
                    .enumerate()
                    .map(|(i, chunk)| {
                        let (gate, rendezvous) = (&gate, &rendezvous);
                        scope.spawn(move || {
                            self.run_batch_chunk(chunk, dispatch, gate, i, rendezvous)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("batch chunk panicked")).collect()
            })
        };
        // One core lock to merge chunk ledgers (in chunk order), close the
        // coalescing window and drain the write ring, mirroring the coarse
        // batch-end drain.
        let mut failure = None;
        let mut core = self.core.lock();
        for (stats, result) in results {
            core.stats.merge(&stats);
            match result {
                Ok(chunk) => {
                    outcome.latency += chunk.latency;
                    outcome.flushed_ops += chunk.flushed_ops;
                    outcome.evictions += chunk.evictions;
                }
                Err(e) => failure = failure.or(Some(e)),
            }
        }
        core.coalesce_writes = false;
        let drained = core.drain_write_ring()?;
        core.stats.deferred_flush_time += drained;
        if let Some(e) = failure {
            return Err(e);
        }
        outcome.latency += drained;
        outcome.coalesced_writes = (core.stats.coalesced_flush_writes - coalesced_before) as usize;
        Ok(outcome)
    }

    /// One chunk of a [`fine_insert_batch`](Self::fine_insert_batch): runs
    /// its per-table groups in ascending table order, holding each table's
    /// op lock across that table's ops. The first table's lock is taken
    /// *before* the rendezvous barrier so every chunk demonstrably holds a
    /// lock at the same instant (deterministic lock high-water).
    fn run_batch_chunk(
        &self,
        groups: &[(usize, Vec<(Key, Value)>)],
        dispatch: SimDuration,
        gate: &FlushGate,
        chunk: usize,
        rendezvous: &std::sync::Barrier,
    ) -> (ClamStats, Result<ChunkOutcome>) {
        let mut stats = ClamStats::new();
        let _completion = GateCompletion { gate, chunk };
        let mut first_guard = Some(self.tables.lock_for_write(groups[0].0));
        rendezvous.wait();
        let mut outcome = ChunkOutcome::new();
        for (t, ops) in groups {
            let _guard = first_guard.take().unwrap_or_else(|| self.tables.lock_for_write(*t));
            for &(key, value) in ops {
                match self.fine_insert_locked(
                    *t,
                    key,
                    value,
                    dispatch,
                    Some((gate, chunk)),
                    &mut stats,
                ) {
                    Ok(op) => {
                        outcome.latency += op.latency;
                        if op.flushed {
                            outcome.flushed_ops += 1;
                        }
                        outcome.evictions += op.evictions;
                    }
                    Err(e) => return (stats, Err(e)),
                }
            }
        }
        (stats, Ok(outcome))
    }

    /// Fine-grained insert body; the caller holds table `t`'s op lock.
    /// Replays the coarse [`insert_with_dispatch`](ClamCore::insert_with_dispatch)
    /// sequence exactly: try the buffer, and only on `Full` park on the
    /// flush gate (batch mode), take the core lock and run the
    /// flush-then-retry loop under it — so allocator grant order equals
    /// ring admission order and the per-op ack point is untouched. Op
    /// recorder samples land in `stats` (a scratch ledger merged into the
    /// core ledger by the caller); flush-side counters are recorded by the
    /// core itself.
    fn fine_insert_locked(
        &self,
        t: usize,
        key: Key,
        value: Value,
        dispatch: SimDuration,
        gate: Option<(&FlushGate, usize)>,
        stats: &mut ClamStats,
    ) -> Result<InsertOutcome> {
        let mut latency = dispatch + self.mem_words_cost(BUFFER_PROBE_WORDS + 2);
        let mut flushed = false;
        let mut evictions = 0usize;
        let mut attempts = 0usize;
        let mut stored = matches!(
            self.tables.with(t, |table| table.buffer_insert(key, value)),
            BufferInsert::Stored(_)
        );
        if !stored {
            // Never wait on the gate while holding the core lock: the gate
            // orders this op's flush chain behind earlier chunks' chains.
            if let Some((gate, chunk)) = gate {
                gate.wait_turn(chunk);
            }
            let mut core = self.core.lock();
            while !stored {
                match core.flush_table(&self.tables, t, attempts) {
                    Ok(flush) => {
                        latency += flush.latency;
                        evictions += flush.evictions;
                        flushed = true;
                        attempts += 1;
                    }
                    Err(e) => {
                        // Close the op's ring even on failure so in-flight
                        // writes are reaped and the device stays usable.
                        if !core.coalesce_writes {
                            core.drain_write_ring().ok();
                        }
                        return Err(e);
                    }
                }
                stored = matches!(
                    self.tables.with(t, |table| table.buffer_insert(key, value)),
                    BufferInsert::Stored(_)
                );
            }
            if !core.coalesce_writes {
                latency += core.drain_write_ring()?;
                // The acknowledgment point (DESIGN.md "Crash consistency"):
                // a per-op insert is acked only once nothing of its flush
                // chain remains deferred or in flight on the ring.
                debug_assert!(
                    core.pending_writes.is_empty() && core.ring.is_none(),
                    "insert acked with flush writes still in flight"
                );
            }
        }
        if flushed {
            stats.record_cascade(evictions.max(1));
        }
        stats.inserts.record(latency);
        Ok(InsertOutcome { latency, flushed, evictions })
    }
}

/// One super table's slice of a batch: the table id and its ops in input
/// order.
type TableGroup = (usize, Vec<(Key, Value)>);

/// Splits per-table groups into at most `parallelism` contiguous chunks,
/// balanced by op count (each chunk gets whole groups; a chunk closes once
/// it reaches its fair share of the remaining ops).
fn split_balanced(groups: Vec<TableGroup>, parallelism: usize) -> Vec<Vec<TableGroup>> {
    let chunk_count = parallelism.min(groups.len()).max(1);
    let total_ops: usize = groups.iter().map(|(_, g)| g.len()).sum();
    let mut chunks: Vec<Vec<TableGroup>> = Vec::with_capacity(chunk_count);
    let mut current: Vec<TableGroup> = Vec::new();
    let mut current_ops = 0usize;
    let mut placed_ops = 0usize;
    let groups_len = groups.len();
    for (idx, group) in groups.into_iter().enumerate() {
        let remaining_chunks = chunk_count - chunks.len();
        let remaining_groups = groups_len - idx;
        let target = (total_ops - placed_ops).div_ceil(remaining_chunks);
        current_ops += group.1.len();
        current.push(group);
        // Close the chunk at its fair share, but never strand later chunks
        // without a group each.
        if chunks.len() + 1 < chunk_count
            && (current_ops >= target || remaining_groups - 1 < chunk_count - chunks.len())
        {
            placed_ops += current_ops;
            chunks.push(std::mem::take(&mut current));
            current_ops = 0;
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

impl<D: Device> ClamCore<D> {
    /// Super table responsible for `key`; must agree with
    /// [`Clam::table_of`] (same seed, same table count).
    fn table_of(&self, key: Key) -> usize {
        (hash_with_seed(key, 0x7a_b1e5) % self.num_tables as u64) as usize
    }

    /// Cost of touching `words` 64-bit words of DRAM.
    fn mem_words_cost(&self, words: usize) -> SimDuration {
        WORD_COST * words as u64 + self.mem_cost.cost(words * 8)
    }

    /// The recovery scan behind [`Clam::recover`]; see its documentation.
    fn recover_scan(&mut self, tables: &TableSet) -> Result<RecoveryReport> {
        let layout = self.layout;
        let slot_size = self.allocator.slot_size();
        let num_slots = self.allocator.num_slots();

        // Ring-driven scan: every slot read admitted without waiting and
        // reaped as it retires, so the scan costs the overlapped ring
        // makespan, not the summed per-read time.
        let mut ring = CompletionRing::for_queue(self.device.queue());
        let requests: Vec<RingRequest> = (0..num_slots)
            .map(|slot| RingRequest::new(IoRequest::read(slot * slot_size, slot_size as usize)))
            .collect();
        let tickets = self.device.submit_nowait(requests, &mut ring)?;
        let mut completions = Vec::with_capacity(tickets.len());
        while ring.in_flight() > 0 {
            completions.extend(self.device.reap(&mut ring, 1)?);
        }
        let scan_makespan = ring.makespan();
        let slot_of: HashMap<u64, usize> =
            tickets.iter().enumerate().map(|(i, t)| (t.id(), i)).collect();
        let mut images: Vec<Option<Vec<u8>>> = vec![None; num_slots as usize];
        for completion in completions {
            if let Some(&slot) = slot_of.get(&completion.ticket.id()) {
                images[slot] = Some(completion.result?);
            }
        }

        let mut torn = 0usize;
        let mut torn_slots: Vec<u64> = Vec::new();
        let mut empty = 0usize;
        let mut valid: Vec<(u64, IncarnationIdentity, Vec<Entry>)> = Vec::new();
        let mut max_seq_seen = 0u64;
        let mut max_epoch_seen = 0u32;
        for (slot, image) in images.iter().enumerate() {
            let bytes = image.as_ref().ok_or_else(|| {
                BufferHashError::InvalidConfig("recovery scan lost a slot read".into())
            })?;
            // Harvest identity watermarks from every CRC-valid page, torn
            // slots included: a re-issued (epoch, seq) must never shadow
            // data that survived elsewhere.
            for page in bytes.chunks_exact(layout.page_size) {
                if let Ok(header) = parse_page_header_checked(page) {
                    max_seq_seen = max_seq_seen.max(header.identity.seq);
                    max_epoch_seen = max_epoch_seen.max(header.identity.epoch);
                }
            }
            match scan_incarnation(bytes, &layout) {
                SlotScan::Empty => empty += 1,
                SlotScan::Torn { .. } => {
                    torn += 1;
                    torn_slots.push(slot as u64);
                }
                SlotScan::Valid { identity, entries } => {
                    if (identity.table as usize) < self.num_tables {
                        valid.push((slot as u64, identity, entries));
                    } else {
                        // An identity naming a table this configuration
                        // does not have is foreign data, not recoverable.
                        torn += 1;
                        torn_slots.push(slot as u64);
                    }
                }
            }
        }

        // Youngest-first by (epoch, seq): a higher-epoch copy of the same
        // flush sequence shadows the lower one (a later lifetime re-wrote
        // the slot), and each table keeps only its youngest `k`.
        valid.sort_by_key(|v| std::cmp::Reverse((v.1.epoch, v.1.seq)));
        let mut stale = 0usize;
        let mut kept: Vec<Vec<(u64, IncarnationIdentity, Vec<Entry>)>> =
            (0..self.num_tables).map(|_| Vec::new()).collect();
        let mut seen_seqs: Vec<HashSet<u64>> =
            (0..self.num_tables).map(|_| HashSet::new()).collect();
        for (slot, identity, entries) in valid {
            let t = identity.table as usize;
            if !seen_seqs[t].insert(identity.seq) {
                stale += 1;
                continue;
            }
            if kept[t].len() >= tables.with(t, |table| table.max_incarnations()) {
                stale += 1;
                continue;
            }
            kept[t].push((slot, identity, entries));
        }

        let mut accepted = 0usize;
        let mut entries_recovered = 0usize;
        let mut owners: Vec<(u64, SlotOwner)> = Vec::new();
        for (t, list) in kept.iter().enumerate() {
            // Register oldest first so the filter bank's sliding window
            // and the incarnation queue come out youngest-first, exactly
            // as steady-state flushes build them.
            for (slot, identity, entries) in list.iter().rev() {
                let keys: Vec<Key> = entries.iter().map(|e| e.key).collect();
                tables.with(t, |table| {
                    table.register_incarnation(
                        IncarnationMeta {
                            flash_offset: slot * slot_size,
                            entries: entries.len(),
                            seq: identity.seq,
                        },
                        &keys,
                    )
                });
                owners.push((*slot, SlotOwner { table: t, seq: identity.seq }));
                accepted += 1;
                entries_recovered += entries.len();
            }
        }
        self.allocator.restore(&owners);

        // Scrub torn slots on raw flash: a power-cut write leaves pages
        // programmed, and a mid-block slot in a partitioned layout is only
        // erased when the write pointer next crosses its block boundary —
        // so an un-scrubbed torn slot would fail its next program with
        // dirty pages. Erase every fully-managed block that overlaps a
        // torn slot and no accepted one (FTL and seek media reject or
        // ignore the hint; dirty pages are their problem, not the log's).
        if !torn_slots.is_empty() {
            let block_size = self.device.geometry().block_size as u64;
            let managed_end = num_slots * slot_size;
            let blocks_of = |slot: u64| {
                (slot * slot_size) / block_size..=(slot * slot_size + slot_size - 1) / block_size
            };
            let live: HashSet<u64> = owners.iter().flat_map(|(s, _)| blocks_of(*s)).collect();
            let mut scrubbed: HashSet<u64> = HashSet::new();
            for &slot in &torn_slots {
                for block in blocks_of(slot) {
                    let fully_managed = (block + 1) * block_size <= managed_end;
                    if fully_managed && !live.contains(&block) && scrubbed.insert(block) {
                        let _ = self.device.erase_block(block);
                    }
                }
            }
            // A torn slot whose block shares accepted data cannot be
            // scrubbed; on raw flash its half-programmed pages also cannot
            // be programmed again. Step the write pointer past such slots
            // so resumed flushes land on clean pages — the circular log
            // reclaims them when it next erases their block. FTL and seek
            // media overwrite in place, so their pointers stay put (and
            // resume exactly where a never-crashed lifetime would).
            if self.device.profile().kind == MediumKind::FlashChip {
                let dirty: Vec<u64> = torn_slots
                    .iter()
                    .copied()
                    .filter(|&slot| blocks_of(slot).any(|b| !scrubbed.contains(&b)))
                    .collect();
                self.allocator.skip_dirty(&dirty);
            }
        }

        self.seq = self.seq.max(max_seq_seen);
        self.epoch = self.epoch.max(max_epoch_seen.saturating_add(1));
        CLAM_EPOCH.fetch_max(self.epoch, Ordering::Relaxed);
        self.stats.recoveries += 1;
        self.stats.recovered_incarnations += accepted as u64;
        self.stats.recovery_torn_slots += torn as u64;

        Ok(RecoveryReport {
            slots_scanned: num_slots,
            bytes_scanned: num_slots * slot_size,
            accepted,
            torn,
            stale,
            empty,
            entries_recovered,
            epoch: self.epoch,
            seq_resumed: self.seq,
            scan_makespan,
        })
    }

    /// Insert body shared by the per-op and batched paths; `dispatch` is the
    /// fixed overhead charged to this op (full for per-op calls, amortized
    /// for batched ones).
    fn insert_with_dispatch(
        &mut self,
        tables: &TableSet,
        key: Key,
        value: Value,
        dispatch: SimDuration,
    ) -> Result<InsertOutcome> {
        let t = self.table_of(key);
        let mut latency = dispatch + self.mem_words_cost(BUFFER_PROBE_WORDS + 2);
        let mut flushed = false;
        let mut evictions = 0usize;
        // `attempts` doubles as the cascade depth: when partial-discard
        // eviction keeps retaining whole incarnations the policy degrades to
        // full discard after `k` rounds (§7.4), guaranteeing termination.
        let mut attempts = 0usize;
        loop {
            match tables.with(t, |table| table.buffer_insert(key, value)) {
                BufferInsert::Stored(_) => break,
                BufferInsert::Full => match self.flush_table(tables, t, attempts) {
                    Ok(flush) => {
                        latency += flush.latency;
                        evictions += flush.evictions;
                        flushed = true;
                        attempts += 1;
                    }
                    Err(e) => {
                        // Close the op's ring even on failure so in-flight
                        // writes are reaped and the device stays usable.
                        if !self.coalesce_writes {
                            self.drain_write_ring().ok();
                        }
                        return Err(e);
                    }
                },
            }
        }
        if flushed {
            self.stats.record_cascade(evictions.max(1));
        }
        // A per-op call owns its ring: the flush chain's device time (its
        // makespan, overlap-accounted) is charged to this insert. Batched
        // calls leave the ring open; the batch-end drain charges it.
        if !self.coalesce_writes {
            latency += self.drain_write_ring()?;
            // The acknowledgment point (DESIGN.md "Crash consistency"): a
            // per-op insert is acked only once nothing of its flush chain
            // remains deferred or in flight on the ring.
            debug_assert!(
                self.pending_writes.is_empty() && self.ring.is_none(),
                "insert acked with flush writes still in flight"
            );
        }
        self.stats.inserts.record(latency);
        Ok(InsertOutcome { latency, flushed, evictions })
    }

    /// The sequential batch-insert body behind [`Clam::insert_batch`];
    /// `order` is the stable table-sorted index order.
    fn insert_batch_ordered(
        &mut self,
        tables: &TableSet,
        ops: &[(Key, Value)],
        order: &[usize],
    ) -> Result<BatchInsertOutcome> {
        let mut outcome = BatchInsertOutcome { ops: ops.len(), ..Default::default() };
        if ops.is_empty() {
            return Ok(outcome);
        }
        let dispatch = batch_dispatch(ops.len());
        let coalesced_before = self.stats.coalesced_flush_writes;
        self.stats.batched_inserts += ops.len() as u64;
        self.coalesce_writes = true;
        let mut failure = None;
        for &i in order {
            let (key, value) = ops[i];
            match self.insert_with_dispatch(tables, key, value, dispatch) {
                Ok(op) => {
                    outcome.latency += op.latency;
                    if op.flushed {
                        outcome.flushed_ops += 1;
                    }
                    outcome.evictions += op.evictions;
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // Close the write ring even on failure so the device stays
        // consistent with the in-memory incarnation metadata. Finished
        // coalesced runs were already *admitted* as they formed (so flush
        // traffic streams out mid-batch and inserts keep flowing); this
        // end-of-batch drain admits the final run and reaps the ring, and
        // only its makespan is "deferred" time (charged to the batch, not
        // to any triggering insert). Eviction reads mid-batch sync the
        // ring and are charged to their op like a sequential flush.
        self.coalesce_writes = false;
        let drained = self.drain_write_ring()?;
        self.stats.deferred_flush_time += drained;
        if let Some(e) = failure {
            return Err(e);
        }
        outcome.latency += drained;
        outcome.coalesced_writes = (self.stats.coalesced_flush_writes - coalesced_before) as usize;
        Ok(outcome)
    }

    /// Buffer and delete-list checks plus probe planning, shared by the
    /// ring and wave pipelines: resolves every key it can from memory
    /// (recording its stats) and returns a probe state machine for each
    /// key that must touch flash.
    fn plan_lookups(
        &mut self,
        tables: &TableSet,
        keys: &[Key],
        dispatch: SimDuration,
    ) -> LookupPlan {
        let mut order: Vec<usize> = (0..keys.len()).collect();
        // Stable sort: keys for one super table keep their input order.
        order.sort_by_key(|&i| self.table_of(keys[i]));
        let mut plan = LookupPlan {
            out: vec![None; keys.len()],
            pending: Vec::new(),
            reinserts: Vec::new(),
            host_time: SimDuration::ZERO,
        };
        for &slot in &order {
            let key = keys[slot];
            let t = self.table_of(key);
            let (filter_words, found_in_memory, candidates) = tables.with(t, |table| {
                let found = table.memory_lookup(key);
                // Candidate incarnations, youngest first, guided by the
                // Bloom filters (only needed when memory has no verdict).
                let candidates =
                    if found.is_none() { table.candidate_incarnations(key) } else { Vec::new() };
                (table.filter_words_per_query(), found, candidates)
            });
            let latency = dispatch + self.mem_words_cost(BUFFER_PROBE_WORDS + filter_words);
            plan.host_time += latency;
            if let Some(found) = found_in_memory {
                let source =
                    if found.is_some() { LookupSource::Buffer } else { LookupSource::Deleted };
                if found.is_some() {
                    self.stats.lookup_hits += 1;
                } else {
                    self.stats.lookup_misses += 1;
                }
                self.stats.lookups.record(latency);
                self.stats.record_lookup_reads(0);
                plan.out[slot] =
                    Some(LookupOutcome { value: found, latency, flash_reads: 0, source });
                continue;
            }
            // Keys with no live candidate are misses without I/O.
            let mut state = ProbeState {
                slot,
                key,
                table: t,
                latency,
                flash_reads: 0,
                candidates: candidates.into_iter(),
                meta: None,
                page_idx: 0,
                hops_left: 0,
            };
            if self.advance_probe(tables, &mut state) {
                plan.pending.push(state);
            } else {
                plan.out[slot] = Some(self.resolve_probe(state, None, &mut plan.reinserts));
            }
        }
        plan
    }

    /// Flash offset of the page a probe state reads next.
    fn probe_offset(&self, state: &ProbeState) -> u64 {
        let meta = state.meta.expect("pending probes hold a candidate");
        self.layout.page_offset(meta.flash_offset, state.page_idx)
    }

    /// Steps one probe state machine on the page it just read (at
    /// `offset`). Returns the state and its next read offset while the key
    /// is unresolved; resolves it into `out` (recording stats and LRU
    /// re-insertions) otherwise.
    fn step_probe(
        &mut self,
        tables: &TableSet,
        mut state: ProbeState,
        page: &[u8],
        offset: u64,
        out: &mut [Option<LookupOutcome>],
        reinserts: &mut Vec<(usize, Key, Value)>,
    ) -> Result<Option<(ProbeState, u64)>> {
        state.flash_reads += 1;
        let slot = state.slot;
        let layout = self.layout;
        match lookup_in_page(page, state.key).map_err(|e| annotate_offset(e, offset))? {
            PageLookup::Found(v) => {
                out[slot] = Some(self.resolve_probe(state, Some(v), reinserts));
                Ok(None)
            }
            PageLookup::Absent => {
                self.stats.spurious_flash_reads += 1;
                if self.advance_probe(tables, &mut state) {
                    let next = self.probe_offset(&state);
                    Ok(Some((state, next)))
                } else {
                    out[slot] = Some(self.resolve_probe(state, None, reinserts));
                    Ok(None)
                }
            }
            PageLookup::Continue => {
                state.page_idx = layout.next_page(state.page_idx);
                state.hops_left -= 1;
                if state.hops_left > 0 {
                    let next = self.probe_offset(&state);
                    Ok(Some((state, next)))
                } else {
                    // Exhausted the overflow chain without a verdict.
                    self.stats.spurious_flash_reads += 1;
                    if self.advance_probe(tables, &mut state) {
                        let next = self.probe_offset(&state);
                        Ok(Some((state, next)))
                    } else {
                        out[slot] = Some(self.resolve_probe(state, None, reinserts));
                        Ok(None)
                    }
                }
            }
        }
    }

    /// The streaming ring pipeline behind [`Clam::lookup`] and
    /// [`Clam::lookup_batch`]; `dispatch` is the fixed overhead charged to
    /// each key (full for per-op calls, amortized for batched ones).
    fn lookup_batch_ring(
        &mut self,
        tables: &TableSet,
        keys: &[Key],
        dispatch: SimDuration,
    ) -> Result<BatchLookupOutcome> {
        let mut batch = BatchLookupOutcome::default();
        if keys.is_empty() {
            return Ok(batch);
        }
        let page_size = self.layout.page_size;
        let LookupPlan { mut out, pending, mut reinserts, host_time } =
            self.plan_lookups(tables, keys, dispatch);

        if !pending.is_empty() {
            // The probes run on the call's *shared* ring: LRU re-insertion
            // flushes (step 3) admit into the same ring, so their writes
            // overlap the tail of the probe traffic on the device timeline
            // instead of restarting the clock.
            self.ensure_ring();
            self.ring_read = true;
            let mut ring = self.ring.take().expect("ring just ensured");
            // Probe state of every in-flight read, keyed by ticket id.
            let mut states: HashMap<u64, ProbeState> = HashMap::with_capacity(pending.len());
            // 1. Admit every key's first read without waiting.
            let mut requests = Vec::with_capacity(pending.len());
            let mut admitted = Vec::with_capacity(pending.len());
            for state in pending {
                let offset = self.probe_offset(&state);
                requests.push(RingRequest::new(IoRequest::read(offset, page_size)));
                admitted.push(state);
            }
            batch.probe_reads += requests.len();
            self.stats.lookup_probe_requests += requests.len() as u64;
            let tickets = self.device.submit_nowait(requests, &mut ring)?;
            for (ticket, state) in tickets.into_iter().zip(admitted) {
                states.insert(ticket.id(), state);
            }

            // 2. Stream: the moment a read reaps, step its key's state
            //    machine and re-arm the key's next read (causally floored
            //    at the completion that produced it), so later rounds of
            //    fast keys overlap earlier rounds of slow ones. On a
            //    per-request failure, stop re-arming but keep reaping
            //    until the ring is empty before propagating: abandoning a
            //    ring with reads still in flight would leave their
            //    completions parked in the device forever.
            let mut failure: Option<BufferHashError> = None;
            while ring.in_flight() > 0 {
                let completions = self.device.reap(&mut ring, 1)?;
                let mut requests = Vec::new();
                let mut admitted = Vec::new();
                for completion in completions {
                    let mut state = states
                        .remove(&completion.ticket.id())
                        .expect("one probe state per in-flight ticket");
                    if failure.is_some() {
                        continue; // draining: discard late completions
                    }
                    if completion.lane != 0 {
                        self.stats.lookup_probes_overlapped += 1;
                    }
                    let offset = self.probe_offset(&state);
                    let page = match completion.result {
                        Ok(page) => page,
                        Err(e) => {
                            failure = Some(e.into());
                            continue;
                        }
                    };
                    state.latency += completion.latency;
                    match self.step_probe(tables, state, &page, offset, &mut out, &mut reinserts) {
                        Ok(Some((state, next))) => {
                            requests.push(RingRequest::after(
                                IoRequest::read(next, page_size),
                                completion.completed_at,
                            ));
                            admitted.push(state);
                        }
                        Ok(None) => {}
                        Err(e) => failure = Some(e),
                    }
                }
                if failure.is_none() && !requests.is_empty() {
                    batch.probe_reads += requests.len();
                    self.stats.lookup_probe_requests += requests.len() as u64;
                    let tickets = self.device.submit_nowait(requests, &mut ring)?;
                    for (ticket, state) in tickets.into_iter().zip(admitted) {
                        states.insert(ticket.id(), state);
                    }
                }
            }
            if let Some(e) = failure {
                // The reaps so far belong to the lookup ledger (recorded
                // below on success, skipped here): mark them so closing
                // the ring does not misattribute them to the flush side.
                self.ring_read_marks = (ring.reaps(), ring.admission_stalls());
                self.ring_horizon = ring.makespan();
                self.ring = Some(ring);
                self.finish_ring().ok();
                return Err(e);
            }
            batch.probe_latency = ring.makespan();
            batch.reaps = ring.reaps() as usize;
            batch.ring_depth_high_water = ring.depth_high_water();
            self.stats.lookup_batches_submitted += 1;
            self.stats.lookup_ring_reaps += ring.reaps();
            self.stats.lookup_ring_depth_high_water =
                self.stats.lookup_ring_depth_high_water.max(ring.depth_high_water() as u64);
            self.stats.lookup_ring_admission_stalls += ring.admission_stalls();
            // Everything reaped so far is on the lookup ledger, and the
            // probe makespan is charged to this batch: mark both so the
            // write side only ever accounts its own growth.
            self.ring_read_marks = (ring.reaps(), ring.admission_stalls());
            self.ring_horizon = ring.makespan();
            self.ring = Some(ring);
        }

        // 3. LRU: re-insert items used from flash so they survive FIFO
        //    eviction of old incarnations. The paper performs this
        //    asynchronously, so its cost is not charged to the batch. The
        //    re-insertion flushes admit into the same ring as the probes
        //    (see above); `apply_reinserts` closes the ring when it has
        //    work, and a reinsert-free call closes it right after.
        self.apply_reinserts(tables, reinserts)?;
        self.finish_ring()?;

        batch.latency = host_time + batch.probe_latency;
        batch.outcomes = out.into_iter().map(|o| o.expect("every key resolved")).collect();
        batch.waves = batch.outcomes.iter().map(|o| o.flash_reads).max().unwrap_or(0);
        self.stats.lookup_probe_waves += batch.waves as u64;
        Ok(batch)
    }

    /// The barrier wave pipeline behind [`Clam::lookup_batch_waves`].
    fn lookup_batch_waves_with_dispatch(
        &mut self,
        tables: &TableSet,
        keys: &[Key],
        dispatch: SimDuration,
    ) -> Result<BatchLookupOutcome> {
        let mut batch = BatchLookupOutcome::default();
        if keys.is_empty() {
            return Ok(batch);
        }
        let page_size = self.layout.page_size;
        let LookupPlan { mut out, mut pending, mut reinserts, host_time } =
            self.plan_lookups(tables, keys, dispatch);

        // Probe waves: submit the next pending page read of every
        // unresolved key as one request batch, charge the wave makespan,
        // and step each state machine on its completion.
        while !pending.is_empty() {
            let offsets: Vec<u64> = pending.iter().map(|s| self.probe_offset(s)).collect();
            let mut requests = page_read_batch(&offsets, page_size);
            let completions = self.device.submit(&mut requests)?;
            batch.waves += 1;
            batch.probe_reads += completions.len();
            batch.probe_latency += batch_latency(&completions);
            self.stats.lookup_probe_waves += 1;
            self.stats.lookup_probe_requests += completions.len() as u64;
            self.stats.lookup_probes_overlapped += overlapped_requests(&completions) as u64;

            let mut unresolved = Vec::with_capacity(pending.len());
            for (mut state, completion) in pending.into_iter().zip(completions) {
                let offset = offsets[completion.index];
                let page = completion.result?;
                state.latency += completion.latency;
                if let Some((state, _)) =
                    self.step_probe(tables, state, &page, offset, &mut out, &mut reinserts)?
                {
                    unresolved.push(state);
                }
            }
            pending = unresolved;
        }
        if batch.waves > 0 {
            self.stats.lookup_batches_submitted += 1;
        }

        // LRU re-insertions, as in the ring pipeline.
        self.apply_reinserts(tables, reinserts)?;

        batch.latency = host_time + batch.probe_latency;
        batch.outcomes = out.into_iter().map(|o| o.expect("every key resolved")).collect();
        Ok(batch)
    }

    /// Advances a probe to its next live candidate incarnation, resetting
    /// the page-chain cursor; returns `false` when the candidate list is
    /// exhausted (the key cannot be on flash).
    fn advance_probe(&self, tables: &TableSet, state: &mut ProbeState) -> bool {
        let layout = self.layout;
        for age in state.candidates.by_ref() {
            if let Some(meta) = tables.with(state.table, |table| table.incarnation_at(age)) {
                state.meta = Some(meta);
                state.page_idx = layout.page_of_key(state.key);
                state.hops_left = layout.num_pages;
                return true;
            }
        }
        false
    }

    /// Finishes one probe state machine: records the lookup statistics,
    /// queues the LRU re-insertion for keys served from flash, and builds
    /// the outcome.
    fn resolve_probe(
        &mut self,
        state: ProbeState,
        found: Option<Value>,
        reinserts: &mut Vec<(usize, Key, Value)>,
    ) -> LookupOutcome {
        let source = match found {
            Some(_) => LookupSource::Flash,
            None => LookupSource::Miss,
        };
        if found.is_some() {
            self.stats.lookup_hits += 1;
        } else {
            self.stats.lookup_misses += 1;
        }
        self.stats.lookups.record(state.latency);
        self.stats.record_lookup_reads(state.flash_reads);
        if let Some(v) = found {
            if self.config.eviction.reinserts_on_use() {
                reinserts.push((state.table, state.key, v));
            }
        }
        LookupOutcome {
            value: found,
            latency: state.latency,
            flash_reads: state.flash_reads,
            source,
        }
    }

    /// Applies the LRU re-insertions collected by a lookup call. Flush
    /// chains triggered here coalesce their incarnation writes and admit
    /// them into the call's shared completion ring (the same ring the
    /// probe reads ran on, so the writes overlap the probe tail) instead
    /// of looping blocking per-table writes; the asynchronous re-insert
    /// cost recorded in `ClamStats::async_reinsert_time` is the ring's
    /// makespan growth — makespan-accounted like every other flush. On
    /// the barrier reference path the writes pool and drain as one
    /// blocking [`Device::submit`](flashsim::Device::submit) batch.
    fn apply_reinserts(
        &mut self,
        tables: &TableSet,
        reinserts: Vec<(usize, Key, Value)>,
    ) -> Result<()> {
        if reinserts.is_empty() {
            return Ok(());
        }
        let was_coalescing = self.coalesce_writes;
        self.coalesce_writes = true;
        let mut cost = SimDuration::ZERO;
        let mut failure = None;
        'reinserts: for (t, key, value) in reinserts {
            let mut attempts = 0usize;
            loop {
                match tables.with(t, |table| table.buffer_insert(key, value)) {
                    BufferInsert::Stored(_) => break,
                    BufferInsert::Full => match self.flush_table(tables, t, attempts) {
                        Ok(flush) => {
                            cost += flush.latency;
                            attempts += 1;
                        }
                        Err(e) => {
                            failure = Some(e);
                            break 'reinserts;
                        }
                    },
                }
            }
            self.stats.reinsertions += 1;
        }
        // Drain even on failure so the device matches the incarnation
        // metadata registered so far.
        self.coalesce_writes = was_coalescing;
        let drained = self.drain_write_ring();
        if let Some(e) = failure {
            return Err(e);
        }
        cost += drained?;
        self.stats.async_reinsert_time += cost;
        Ok(())
    }

    /// The whole-index flush behind [`Clam::flush_all`].
    fn flush_all(&mut self, tables: &TableSet) -> Result<SimDuration> {
        let mut total = SimDuration::ZERO;
        let was_coalescing = self.coalesce_writes;
        self.coalesce_writes = true;
        let mut failure = None;
        for t in 0..tables.len() {
            if tables.with(t, |table| table.buffer_len()) > 0 {
                match self.flush_table(tables, t, 0) {
                    Ok(flush) => total += flush.latency,
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
        }
        // Drain even on failure so the device matches the in-memory
        // incarnation metadata registered so far.
        self.coalesce_writes = was_coalescing;
        let drained = self.drain_write_ring();
        if let Some(e) = failure {
            return Err(e);
        }
        total += drained?;
        Ok(total)
    }
}

impl<D: Device> ClamCore<D> {
    // ------------------------------------------------------------------
    // Flush and eviction orchestration
    // ------------------------------------------------------------------

    /// One flush chain for table `t`: evict if the incarnation table is
    /// full, write the buffer out as a new incarnation, cascade on
    /// retained re-inserts. Dispatches to the **ring-driven** write path
    /// (the default: writes are admitted to the call's shared completion
    /// ring without waiting, so they overlap each other and any probe
    /// traffic on the same ring) or to the blocking **barrier** reference
    /// path when [`Clam::set_barrier_writes`] is on.
    ///
    /// Runs entirely under one core lock on the fine-grained path, so the
    /// allocator grant and the ring admission of the resulting write are
    /// atomic — grant order *is* admission order, which devices apply as
    /// data-effect order (the PR-7 ack invariant).
    fn flush_table(&mut self, tables: &TableSet, t: usize, depth: usize) -> Result<FlushOutcome> {
        if self.barrier_writes {
            return self.flush_table_barrier(tables, t, depth);
        }
        let mut latency = SimDuration::ZERO;
        let mut evictions = 0usize;

        // Make room in the incarnation table if needed, applying the
        // configured eviction policy. Beyond `k` cascades fall back to full
        // discard to guarantee termination (§7.4).
        let mut retained: Vec<Entry> = Vec::new();
        let (num_incarnations, max_incarnations) =
            tables.with(t, |table| (table.num_incarnations(), table.max_incarnations()));
        if num_incarnations >= max_incarnations {
            let policy =
                if depth >= max_incarnations { EvictionPolicy::Fifo } else { self.config.eviction };
            let (evict_lat, kept) = self.evict_oldest(tables, t, &policy)?;
            latency += evict_lat;
            retained = kept;
            evictions += 1;
        }

        // Write the buffer out as a new incarnation.
        let entries = tables.with(t, |table| table.drain_buffer());
        if !entries.is_empty() {
            let keys: Vec<Key> = entries.iter().map(|e| e.key).collect();
            let layout = self.layout;
            self.seq += 1;
            let seq = self.seq;
            let image = layout.serialize_identified(
                &entries,
                IncarnationIdentity { table: t as u16, seq, epoch: self.epoch },
            )?;
            let alloc = self.allocator.allocate(t, seq)?;
            // Force-evict incarnations whose slots this write reclaims.
            // The victim table's state lock is a leaf, so reclaiming
            // across tables never orders against another table's op.
            for owner in &alloc.displaced {
                let dropped = tables.with(owner.table, |table| table.force_evict_up_to(owner.seq));
                for meta in dropped {
                    self.allocator.release(meta.flash_offset);
                    self.stats.forced_evictions += 1;
                }
            }
            if self.coalesce_writes && alloc.blocks_to_erase.is_empty() {
                // Batched path (SSD global log): coalesce into the current
                // contiguous run. A non-contiguous slot admits the finished
                // run to the ring first (see `push_coalesced_write`), so
                // flush traffic streams out mid-batch instead of pooling
                // behind the whole batch.
                self.push_coalesced_write(alloc.offset, image)?;
            } else {
                // Erase-before-program and write-after-write ordering both
                // rest on admission order: devices apply data effects in
                // admission order, and the ring's write-write conflict
                // floors keep the reported timing consistent with it. So
                // the deferred run, the erases and the incarnation write
                // are admitted back to back without waiting; their device
                // time is charged when the ring syncs (per-op end,
                // eviction read, or batch-end drain).
                self.admit_pending_writes()?;
                let mut requests: Vec<RingRequest> = alloc
                    .blocks_to_erase
                    .iter()
                    .map(|&block| RingRequest::new(IoRequest::Erase { block }))
                    .collect();
                requests.push(RingRequest::new(IoRequest::write(alloc.offset, image)));
                self.ring_admit(requests)?;
            }
            tables.with(t, |table| {
                table.register_incarnation(
                    IncarnationMeta { flash_offset: alloc.offset, entries: entries.len(), seq },
                    &keys,
                );
                table.prune_delete_list();
            });
            self.stats.flushes += 1;
        }

        // Re-insert retained entries; this can refill the buffer and cascade
        // into another flush (§7.4).
        for e in retained {
            self.stats.reinsertions += 1;
            loop {
                match tables.with(t, |table| table.buffer_insert(e.key, e.value)) {
                    BufferInsert::Stored(_) => break,
                    BufferInsert::Full => {
                        let inner = self.flush_table(tables, t, depth + 1)?;
                        latency += inner.latency;
                        evictions += inner.evictions;
                    }
                }
            }
        }

        Ok(FlushOutcome { latency, evictions })
    }

    /// The blocking **barrier** reference implementation of
    /// [`flush_table`](Self::flush_table): every incarnation write goes
    /// through [`Device::submit`](flashsim::Device::submit) (or pools for a
    /// blocking batch-end drain), paying each submission's full latency
    /// before the next starts. Kept verbatim as the baseline the
    /// ring-driven path is property-tested against (observationally
    /// equivalent on stored state and device counters) and raced against
    /// in the `io_queue_depth` harness.
    fn flush_table_barrier(
        &mut self,
        tables: &TableSet,
        t: usize,
        depth: usize,
    ) -> Result<FlushOutcome> {
        let mut latency = SimDuration::ZERO;
        let mut evictions = 0usize;

        // Make room in the incarnation table if needed, applying the
        // configured eviction policy. Beyond `k` cascades fall back to full
        // discard to guarantee termination (§7.4).
        let mut retained: Vec<Entry> = Vec::new();
        let (num_incarnations, max_incarnations) =
            tables.with(t, |table| (table.num_incarnations(), table.max_incarnations()));
        if num_incarnations >= max_incarnations {
            let policy =
                if depth >= max_incarnations { EvictionPolicy::Fifo } else { self.config.eviction };
            let (evict_lat, kept) = self.evict_oldest_barrier(tables, t, &policy)?;
            latency += evict_lat;
            retained = kept;
            evictions += 1;
        }

        // Write the buffer out as a new incarnation.
        let entries = tables.with(t, |table| table.drain_buffer());
        if !entries.is_empty() {
            let keys: Vec<Key> = entries.iter().map(|e| e.key).collect();
            let layout = self.layout;
            self.seq += 1;
            let seq = self.seq;
            let image = layout.serialize_identified(
                &entries,
                IncarnationIdentity { table: t as u16, seq, epoch: self.epoch },
            )?;
            let alloc = self.allocator.allocate(t, seq)?;
            // Force-evict incarnations whose slots this write reclaims.
            for owner in &alloc.displaced {
                let dropped = tables.with(owner.table, |table| table.force_evict_up_to(owner.seq));
                for meta in dropped {
                    self.allocator.release(meta.flash_offset);
                    self.stats.forced_evictions += 1;
                }
            }
            if self.coalesce_writes && alloc.blocks_to_erase.is_empty() {
                // Batched path (SSD global log): defer the write so runs of
                // contiguous slots flushed by the same batch become one
                // sequential device write. Drained before any flash read
                // and at the end of the batch.
                self.pending_writes.push((alloc.offset, image));
            } else {
                // Erases must not be reordered with already-deferred
                // writes, so drain first. The erases and the incarnation
                // write then go to the device as one in-order submission
                // (devices apply request effects in submission order, so
                // erase-before-program is preserved).
                latency += self.drain_pending_writes_barrier()?;
                let mut requests: Vec<IoRequest> =
                    alloc.blocks_to_erase.iter().map(|&block| IoRequest::Erase { block }).collect();
                requests.push(IoRequest::write(alloc.offset, image));
                latency += self.submit_checked(&mut requests)?.0;
            }
            tables.with(t, |table| {
                table.register_incarnation(
                    IncarnationMeta { flash_offset: alloc.offset, entries: entries.len(), seq },
                    &keys,
                );
                table.prune_delete_list();
            });
            self.stats.flushes += 1;
        }

        // Re-insert retained entries; this can refill the buffer and cascade
        // into another flush (§7.4).
        for e in retained {
            self.stats.reinsertions += 1;
            loop {
                match tables.with(t, |table| table.buffer_insert(e.key, e.value)) {
                    BufferInsert::Stored(_) => break,
                    BufferInsert::Full => {
                        let inner = self.flush_table_barrier(tables, t, depth + 1)?;
                        latency += inner.latency;
                        evictions += inner.evictions;
                    }
                }
            }
        }

        Ok(FlushOutcome { latency, evictions })
    }

    /// Evicts the oldest incarnation of table `t` under `policy` through
    /// the call's shared completion ring, returning the latency charged to
    /// the eviction and any entries to retain (re-insert).
    fn evict_oldest(
        &mut self,
        tables: &TableSet,
        t: usize,
        policy: &EvictionPolicy,
    ) -> Result<(SimDuration, Vec<Entry>)> {
        let Some(oldest) = tables.with(t, |table| table.oldest_incarnation()) else {
            return Ok((SimDuration::ZERO, Vec::new()));
        };
        let mut latency = SimDuration::ZERO;
        let mut retained = Vec::new();

        if policy.uses_partial_discard() {
            // The incarnation image may still sit in the deferred run or in
            // flight on the ring, so admit the run first: the scan read is
            // admitted *after* it, and admission order is data-effect
            // order, so the read observes the written bytes while the
            // read-after-write conflict floor keeps its start time honest.
            // The reclaiming TRIM is admitted behind the read for the same
            // reason (write-write floor against the read's range).
            self.admit_pending_writes()?;
            let layout = self.layout;
            let tickets = self.ring_admit(vec![
                RingRequest::new(IoRequest::read(oldest.flash_offset, layout.total_bytes())),
                RingRequest::new(IoRequest::Trim {
                    offset: oldest.flash_offset,
                    len: layout.total_bytes() as u64,
                }),
            ])?;
            let read_ticket = tickets[0];
            // The retain scan needs the page bytes back, so this is a sync
            // point: everything in flight — including unrelated flush
            // writes, which overlap the read on the ring's lanes — is
            // reaped, and the ring's makespan growth is charged to the
            // eviction.
            let (sync_lat, completions) = self.sync_ring()?;
            latency += sync_lat;
            let image = completions
                .into_iter()
                .find(|c| c.ticket == read_ticket)
                .and_then(|c| c.result.ok())
                .expect("read completion checked");
            // Deciding staleness also probes the in-memory filters.
            latency += self.mem_words_cost(oldest.entries * 2);
            let entries = parse_incarnation(&image, &layout)
                .map_err(|e| annotate_offset(e, oldest.flash_offset))?;
            tables.with(t, |table| {
                for e in entries {
                    if table.retain_decision(&e, policy) == RetainDecision::Retain {
                        retained.push(e);
                    }
                }
            });
        } else {
            // Full discard reclaims the slot with a TRIM admitted to the
            // ring; it is floored behind any in-flight write of the same
            // range, and its (zero or small) device time lands in the next
            // sync's makespan delta.
            let total = self.layout.total_bytes() as u64;
            self.ring_admit(vec![RingRequest::new(IoRequest::Trim {
                offset: oldest.flash_offset,
                len: total,
            })])?;
        }

        tables.with(t, |table| {
            table.drop_oldest_incarnation();
            table.prune_delete_list();
        });
        self.allocator.release(oldest.flash_offset);
        Ok((latency, retained))
    }

    /// The blocking barrier reference implementation of
    /// [`evict_oldest`](Self::evict_oldest): drains deferred writes, then
    /// scans and trims via blocking submissions. Used by
    /// [`flush_table_barrier`](Self::flush_table_barrier).
    fn evict_oldest_barrier(
        &mut self,
        tables: &TableSet,
        t: usize,
        policy: &EvictionPolicy,
    ) -> Result<(SimDuration, Vec<Entry>)> {
        let Some(oldest) = tables.with(t, |table| table.oldest_incarnation()) else {
            return Ok((SimDuration::ZERO, Vec::new()));
        };
        let mut latency = SimDuration::ZERO;
        let mut retained = Vec::new();

        if policy.uses_partial_discard() {
            // Scan the incarnation to decide which entries survive, and
            // queue the reclaiming TRIM behind the read in the same
            // submission (in-order, so the read sees the live bytes). The
            // incarnation may still sit in the batch's deferred-write queue,
            // so make the device current before submitting.
            latency += self.drain_pending_writes_barrier()?;
            let layout = self.layout;
            let mut requests = vec![
                IoRequest::read(oldest.flash_offset, layout.total_bytes()),
                IoRequest::Trim { offset: oldest.flash_offset, len: layout.total_bytes() as u64 },
            ];
            let (submit_lat, completions) = self.submit_checked(&mut requests)?;
            latency += submit_lat;
            let image = completions
                .into_iter()
                .next()
                .and_then(|c| c.result.ok())
                .expect("read completion checked");
            // Deciding staleness also probes the in-memory filters.
            latency += self.mem_words_cost(oldest.entries * 2);
            let entries = parse_incarnation(&image, &layout)
                .map_err(|e| annotate_offset(e, oldest.flash_offset))?;
            tables.with(t, |table| {
                for e in entries {
                    if table.retain_decision(&e, policy) == RetainDecision::Retain {
                        retained.push(e);
                    }
                }
            });
        } else {
            latency += self.device.trim(oldest.flash_offset, self.layout.total_bytes() as u64)?;
        }

        tables.with(t, |table| {
            table.drop_oldest_incarnation();
            table.prune_delete_list();
        });
        self.allocator.release(oldest.flash_offset);
        Ok((latency, retained))
    }

    /// Queues one incarnation write for coalescing. On the ring path the
    /// deferred set holds a single contiguous run: a write extending the
    /// run merges into it (one device command for the whole run), while a
    /// non-contiguous write **admits the finished run to the ring first**,
    /// so deferred flush traffic streams out as it forms instead of
    /// pooling until the batch ends. The barrier path pools everything and
    /// lets [`drain_pending_writes_barrier`](Self::drain_pending_writes_barrier)
    /// sort and merge at drain time; the two produce identical runs for
    /// the global log, whose slots are handed out in flush order.
    fn push_coalesced_write(&mut self, offset: u64, image: Vec<u8>) -> Result<()> {
        if self.barrier_writes {
            self.pending_writes.push((offset, image));
            return Ok(());
        }
        match self.pending_writes.last_mut() {
            Some((run_offset, run_image)) if offset == *run_offset + run_image.len() as u64 => {
                run_image.extend_from_slice(&image);
                self.stats.coalesced_flush_writes += 1;
            }
            _ => {
                self.admit_pending_writes()?;
                self.pending_writes.push((offset, image));
            }
        }
        Ok(())
    }

    /// Admits the deferred coalesced run (if any) to the call's shared
    /// ring without waiting. Ring path only — the barrier path drains with
    /// a blocking submission instead.
    fn admit_pending_writes(&mut self) -> Result<()> {
        if self.pending_writes.is_empty() {
            return Ok(());
        }
        let runs = std::mem::take(&mut self.pending_writes);
        let requests: Vec<RingRequest> = runs
            .into_iter()
            .map(|(offset, image)| RingRequest::new(IoRequest::write(offset, image)))
            .collect();
        self.ring_admit(requests)?;
        Ok(())
    }

    /// Flushes the write side of the current call: admits any deferred run
    /// and closes the shared ring, returning the device time charged to
    /// the caller (the ring's makespan growth since the last sync; on the
    /// barrier path, the blocking drain's batch latency).
    fn drain_write_ring(&mut self) -> Result<SimDuration> {
        if self.barrier_writes {
            return self.drain_pending_writes_barrier();
        }
        let admitted = self.admit_pending_writes();
        let finished = self.finish_ring();
        admitted?;
        finished
    }

    /// Barrier reference drain: writes out every deferred incarnation
    /// image, merging runs of contiguous offsets into single sequential
    /// device writes and handing the merged runs to the device as **one
    /// blocking submission**, so a device with an overlapped queue (SSD
    /// lanes, the file backend's worker pool) retires independent runs
    /// concurrently. Returns the simulated latency of the drained writes —
    /// the batch's elapsed (max-over-lanes) time, not the per-run sum.
    fn drain_pending_writes_barrier(&mut self) -> Result<SimDuration> {
        if self.pending_writes.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        let mut writes = std::mem::take(&mut self.pending_writes);
        // Stable sort: if the log wrapped within one batch and a slot was
        // written twice, the later image is written last and wins.
        writes.sort_by_key(|(offset, _)| *offset);
        let mut merged = 0u64;
        let mut requests: Vec<IoRequest> = Vec::new();
        let mut iter = writes.into_iter();
        let (mut run_offset, mut run_image) = iter.next().expect("non-empty");
        for (offset, image) in iter {
            if offset == run_offset + run_image.len() as u64 {
                run_image.extend_from_slice(&image);
                merged += 1;
            } else {
                requests.push(IoRequest::write(run_offset, run_image));
                run_offset = offset;
                run_image = image;
            }
        }
        requests.push(IoRequest::write(run_offset, run_image));
        let (total, _) = self.submit_checked(&mut requests)?;
        self.stats.coalesced_flush_writes += merged;
        Ok(total)
    }

    /// Submits a request batch to the device, propagates the first
    /// per-request failure, and returns the submission's elapsed latency
    /// (max over queue lanes) together with the completions, for callers
    /// that need read data back.
    fn submit_checked(
        &mut self,
        requests: &mut [IoRequest],
    ) -> Result<(SimDuration, Vec<IoCompletion>)> {
        let completions = self.device.submit(requests)?;
        let latency = batch_latency(&completions);
        if let Some(err) = completions.iter().find_map(|c| c.result.as_ref().err()) {
            return Err(err.clone().into());
        }
        Ok((latency, completions))
    }

    // ------------------------------------------------------------------
    // The call's shared completion ring
    // ------------------------------------------------------------------

    /// Lazily opens the current top-level call's shared ring, sized to the
    /// device's queue (one lane on serial devices, `max_queue_depth` lanes
    /// on overlapped ones).
    fn ensure_ring(&mut self) {
        if self.ring.is_none() {
            self.ring = Some(CompletionRing::for_queue(self.device.queue()));
        }
    }

    /// Admits write-path requests into the call's shared ring without
    /// waiting ([`Device::submit_nowait`](flashsim::Device::submit_nowait)),
    /// opening the ring if this is the call's first admission.
    fn ring_admit(&mut self, requests: Vec<RingRequest>) -> Result<Vec<IoTicket>> {
        for r in &requests {
            if matches!(r.request, IoRequest::Read { .. }) {
                self.ring_read = true;
            } else {
                self.ring_wrote = true;
            }
        }
        self.ensure_ring();
        let mut ring = self.ring.take().expect("ring just ensured");
        let tickets = self.device.submit_nowait(requests, &mut ring);
        self.ring = Some(ring);
        Ok(tickets?)
    }

    /// Reaps every in-flight request of the shared ring, records the
    /// write-ring ledger (reaps and stalls beyond the lookup pipeline's
    /// marks belong to the flush/eviction side), and returns the
    /// completions in ticket order together with the ring's **makespan
    /// growth** since the last charge, propagating the first per-request
    /// failure. The ring stays open: later admissions land on the same
    /// device timeline, which is what lets flush traffic overlap the tail
    /// of earlier probe or write traffic instead of restarting the clock.
    fn sync_ring(&mut self) -> Result<(SimDuration, Vec<RingCompletion>)> {
        let Some(mut ring) = self.ring.take() else {
            return Ok((SimDuration::ZERO, Vec::new()));
        };
        let mut completions: Vec<RingCompletion> = Vec::new();
        let mut failure: Option<BufferHashError> = None;
        while ring.in_flight() > 0 {
            match self.device.reap(&mut ring, 1) {
                Ok(reaped) => completions.extend(reaped),
                Err(e) => {
                    failure = Some(e.into());
                    break;
                }
            }
        }
        let (reaps_seen, stalls_seen) = self.ring_read_marks;
        self.stats.flush_ring_reaps += ring.reaps() - reaps_seen;
        self.stats.write_ring_admission_stalls += ring.admission_stalls() - stalls_seen;
        self.ring_read_marks = (ring.reaps(), ring.admission_stalls());
        if self.ring_wrote && self.ring_read {
            // The ring carried reads *and* writes this call: record how
            // deep the mixed stream stacked the lanes.
            self.stats.mixed_ring_depth_high_water =
                self.stats.mixed_ring_depth_high_water.max(ring.depth_high_water() as u64);
        }
        let makespan = ring.makespan();
        let charged = makespan - self.ring_horizon;
        self.ring_horizon = makespan;
        self.ring = Some(ring);
        if let Some(e) = failure {
            return Err(e);
        }
        completions.sort_by_key(|c| c.ticket);
        if let Some(err) = completions.iter().find_map(|c| c.result.as_ref().err()) {
            return Err(err.clone().into());
        }
        Ok((charged, completions))
    }

    /// Closes the call's shared ring: syncs it, resets the per-call ring
    /// state, and returns the final makespan growth. A no-op returning
    /// zero when no ring was opened.
    fn finish_ring(&mut self) -> Result<SimDuration> {
        if self.ring.is_none() {
            return Ok(SimDuration::ZERO);
        }
        let synced = self.sync_ring();
        self.ring = None;
        self.ring_horizon = SimDuration::ZERO;
        self.ring_read_marks = (0, 0);
        self.ring_wrote = false;
        self.ring_read = false;
        synced.map(|(charged, _)| charged)
    }
}

/// Per-op dispatch overhead inside a batch of `len` ops. A batch of one
/// degrades to the per-op path (full `BASE_OP_OVERHEAD`, no residual),
/// matching `FlashCostModel::insert_batch_amortized` at `b = 1`; larger
/// batches amortize the dispatch and pay the residual per op.
pub(crate) fn batch_dispatch(len: usize) -> SimDuration {
    if len <= 1 {
        BASE_OP_OVERHEAD
    } else {
        BASE_OP_OVERHEAD / len as u64 + BATCHED_OP_OVERHEAD
    }
}

/// Result of one flush chain.
#[derive(Debug, Clone, Copy)]
struct FlushOutcome {
    latency: SimDuration,
    evictions: usize,
}

/// In-memory phase of a lookup batch: keys resolved from buffers or
/// delete lists, probe state machines for the rest, plus the host-side
/// accounting, shared by the ring and wave pipelines.
struct LookupPlan {
    /// One slot per key; `Some` once the key resolved.
    out: Vec<Option<LookupOutcome>>,
    /// State machines for keys that must probe flash.
    pending: Vec<ProbeState>,
    /// LRU re-insertions queued by keys that already resolved.
    reinserts: Vec<(usize, Key, Value)>,
    /// Dispatch plus DRAM probe time of the whole batch.
    host_time: SimDuration,
}

/// Probe state machine for one key of a queued lookup batch: where the key
/// sits in its Bloom-guided candidate walk (which incarnation, which page
/// of the overflow chain) and the per-key accounting accumulated so far.
/// One page read per wave advances it until a verdict is reached.
struct ProbeState {
    /// Position of the key in the caller's batch.
    slot: usize,
    key: Key,
    /// Super table owning the key.
    table: usize,
    /// Per-key charge accumulated so far (dispatch + DRAM probes + own
    /// page reads).
    latency: SimDuration,
    flash_reads: usize,
    /// Remaining candidate incarnation ages, youngest first.
    candidates: std::vec::IntoIter<usize>,
    /// Candidate currently being probed (`Some` while pending).
    meta: Option<IncarnationMeta>,
    /// Page of the current candidate to read next.
    page_idx: usize,
    /// Overflow-chain hops left before the candidate is abandoned.
    hops_left: usize,
}

fn annotate_offset(e: BufferHashError, offset: u64) -> BufferHashError {
    match e {
        BufferHashError::CorruptIncarnation { reason, .. } => {
            BufferHashError::CorruptIncarnation { flash_offset: offset, reason }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::FilterMode;
    use flashsim::{MagneticDisk, Ssd};
    use std::collections::HashMap;

    fn small_clam() -> Clam<Ssd> {
        // 8 MiB flash, 2 MiB DRAM, 32 KiB buffers.
        let cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
        let ssd = Ssd::intel(8 << 20).unwrap();
        Clam::new(ssd, cfg).unwrap()
    }

    fn key(i: u64) -> Key {
        hash_with_seed(i, 0x5eed)
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let mut clam = small_clam();
        for i in 0..100u64 {
            clam.insert(key(i), i).unwrap();
        }
        for i in 0..100u64 {
            let out = clam.lookup(key(i)).unwrap();
            assert_eq!(out.value, Some(i), "key {i}");
        }
        assert_eq!(clam.stats().lookup_hits, 100);
    }

    #[test]
    fn recover_rebuilds_state_from_flash_alone() {
        let mut clam = small_clam();
        let n = 40_000u64;
        for i in 0..n {
            clam.insert(key(i), i).unwrap();
        }
        clam.flush_all().unwrap();
        let flushes = clam.stats().flushes;
        let old_epoch = clam.epoch();
        let old_seq = clam.core.get_mut().seq;
        let live = clam.core.get_mut().allocator.live_slots();
        let config = clam.config().clone();

        // Lose every byte of DRAM; recover from the flash image alone.
        let device = clam.into_device();
        let (mut recovered, report) = Clam::recover(device, config).unwrap();
        assert_eq!(report.accepted, live, "every live incarnation accepted: {report}");
        assert_eq!(report.torn, 0, "{report}");
        assert_eq!(report.stale, 0, "{report}");
        assert_eq!(report.slots_scanned, 256);
        assert_eq!(report.bytes_scanned, 8 << 20);
        assert!(report.scan_makespan > SimDuration::ZERO);
        assert!(report.epoch > old_epoch, "recovered lifetime gets a younger epoch");
        assert_eq!(report.seq_resumed, old_seq, "seq resumes past every flushed incarnation");
        assert!(flushes as usize >= live);

        for i in 0..n {
            assert_eq!(recovered.lookup(key(i)).unwrap().value, Some(i), "key {i}");
        }
        assert_eq!(recovered.stats().recoveries, 1);
        assert_eq!(recovered.stats().recovered_incarnations, live as u64);

        // The restored allocator and seq let the recovered CLAM keep
        // writing: new inserts flush into the slots a never-crashed
        // lifetime would have used, without clobbering live data.
        for i in n..(n + 40_000) {
            recovered.insert(key(i), i).unwrap();
        }
        recovered.flush_all().unwrap();
        for i in (0..n + 40_000).step_by(211) {
            assert_eq!(recovered.lookup(key(i)).unwrap().value, Some(i), "key {i}");
        }
    }

    #[test]
    fn recover_on_a_pristine_device_starts_empty() {
        let cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
        let ssd = Ssd::intel(8 << 20).unwrap();
        let (mut clam, report) = Clam::recover(ssd, cfg).unwrap();
        assert_eq!(report.accepted, 0);
        assert_eq!(report.torn, 0);
        assert_eq!(report.empty as u64, report.slots_scanned);
        assert_eq!(report.entries_recovered, 0);
        assert_eq!(clam.lookup(key(1)).unwrap().value, None);
        clam.insert(key(1), 1).unwrap();
        assert_eq!(clam.lookup(key(1)).unwrap().value, Some(1));
    }

    #[test]
    fn lookups_after_flush_read_from_flash() {
        let mut clam = small_clam();
        // Enough inserts to flush several buffers.
        let n = 40_000u64;
        for i in 0..n {
            clam.insert(key(i), i).unwrap();
        }
        assert!(clam.stats().flushes > 0, "expected at least one flush");
        // Early keys should now live on flash; they must still be found.
        let mut flash_hits = 0;
        for i in 0..200u64 {
            let out = clam.lookup(key(i)).unwrap();
            assert_eq!(out.value, Some(i));
            if out.source == LookupSource::Flash {
                flash_hits += 1;
                assert!(out.flash_reads >= 1);
            }
        }
        assert!(flash_hits > 0, "expected some lookups to be served from flash");
    }

    #[test]
    fn missing_keys_return_none_with_few_flash_reads() {
        let mut clam = small_clam();
        for i in 0..20_000u64 {
            clam.insert(key(i), i).unwrap();
        }
        let mut total_reads = 0usize;
        let misses = 2_000u64;
        for i in 0..misses {
            let out = clam.lookup(hash_with_seed(i, 0xdead_bead)).unwrap();
            assert_eq!(out.value, None);
            total_reads += out.flash_reads;
        }
        // With adequately sized Bloom filters, unsuccessful lookups should
        // almost never touch flash.
        let per_miss = total_reads as f64 / misses as f64;
        assert!(per_miss < 0.2, "unsuccessful lookups read flash {per_miss} times on average");
    }

    #[test]
    fn update_returns_the_newest_value() {
        let mut clam = small_clam();
        let k = key(7);
        clam.insert(k, 1).unwrap();
        // Push the old value to flash by filling the same super table's
        // buffer indirectly: insert enough keys overall.
        for i in 1000..30_000u64 {
            clam.insert(key(i), i).unwrap();
        }
        clam.insert(k, 2).unwrap();
        assert_eq!(clam.lookup(k).unwrap().value, Some(2));
        // And again after more churn.
        for i in 30_000..60_000u64 {
            clam.insert(key(i), i).unwrap();
        }
        assert_eq!(clam.lookup(k).unwrap().value, Some(2));
    }

    #[test]
    fn delete_hides_flash_copies() {
        let mut clam = small_clam();
        let k = key(3);
        clam.insert(k, 33).unwrap();
        for i in 10_000..40_000u64 {
            clam.insert(key(i), i).unwrap();
        }
        // The key is on flash by now; delete must still hide it.
        clam.delete(k).unwrap();
        let out = clam.lookup(k).unwrap();
        assert_eq!(out.value, None);
        assert_eq!(out.source, LookupSource::Deleted);
        // Re-inserting revives it.
        clam.insert(k, 44).unwrap();
        assert_eq!(clam.lookup(k).unwrap().value, Some(44));
    }

    #[test]
    fn matches_reference_model_under_churn() {
        let mut clam = small_clam();
        let mut model: HashMap<Key, Value> = HashMap::new();
        // Interleave inserts, updates and deletes, then verify every key
        // that should still be live. Use few enough keys that FIFO eviction
        // does not drop live entries.
        for i in 0..30_000u64 {
            let k = key(i % 10_000);
            match i % 7 {
                0..=4 => {
                    clam.insert(k, i).unwrap();
                    model.insert(k, i);
                }
                5 => {
                    clam.delete(k).unwrap();
                    model.remove(&k);
                }
                _ => {
                    let expect = model.get(&k).copied();
                    assert_eq!(clam.lookup(k).unwrap().value, expect, "iteration {i}");
                }
            }
        }
        for (k, v) in model {
            assert_eq!(clam.lookup(k).unwrap().value, Some(v));
        }
    }

    #[test]
    fn old_keys_are_evicted_fifo_when_capacity_wraps() {
        let cfg = ClamConfig::small_test(2 << 20, 1 << 20).unwrap();
        let mut clam = Clam::new(Ssd::intel(2 << 20).unwrap(), cfg).unwrap();
        let capacity_entries = clam.config().flash_capacity as usize / 32; // generous bound
        let n = capacity_entries as u64 * 3;
        for i in 0..n {
            clam.insert(key(i), i).unwrap();
        }
        assert!(clam.stats().forced_evictions > 0 || clam.stats().flushes > 0);
        // The oldest keys must be gone (FIFO), the newest still present.
        let old = clam.lookup(key(0)).unwrap();
        assert_eq!(old.value, None, "oldest key should have been evicted");
        let new = clam.lookup(key(n - 1)).unwrap();
        assert_eq!(new.value, Some(n - 1));
    }

    #[test]
    fn insert_latency_is_microseconds_on_average() {
        let mut clam = small_clam();
        for i in 0..50_000u64 {
            clam.insert(key(i), i).unwrap();
        }
        let mean = clam.stats().inserts.mean();
        assert!(mean < SimDuration::from_micros(60), "average insert latency too high: {mean}");
        let max = clam.stats().inserts.max();
        assert!(max > mean * 10, "worst-case insert should be dominated by flushes");
    }

    #[test]
    fn average_lookup_is_fast_at_moderate_hit_rates() {
        let mut clam = small_clam();
        for i in 0..50_000u64 {
            clam.insert(key(i), i).unwrap();
        }
        clam.reset_stats();
        // 40% of lookups hit existing keys, 60% miss.
        for i in 0..10_000u64 {
            let k = if i % 5 < 2 { key(20_000 + i) } else { hash_with_seed(i, 0xaaaa) };
            clam.lookup(k).unwrap();
        }
        let mean = clam.stats().lookups.mean();
        assert!(mean < SimDuration::from_micros(300), "average lookup latency too high: {mean}");
    }

    #[test]
    fn lru_reinserts_used_items() {
        let mut cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
        cfg.eviction = EvictionPolicy::Lru;
        let mut clam = Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap();
        // Insert enough that the early keys are flushed out of the buffers.
        for i in 0..40_000u64 {
            clam.insert(key(i), i).unwrap();
        }
        assert!(clam.stats().flushes > 0);
        let before = clam.stats().reinsertions;
        // Touch keys that are on flash.
        for i in 0..50u64 {
            clam.lookup(key(i)).unwrap();
        }
        assert!(clam.stats().reinsertions > before, "LRU lookups should re-insert flash hits");
    }

    #[test]
    fn update_based_eviction_retains_unmodified_entries() {
        let mut cfg = ClamConfig::small_test(2 << 20, 1 << 20).unwrap();
        cfg.eviction = EvictionPolicy::UpdateBased;
        let mut clam = Clam::new(Ssd::intel(2 << 20).unwrap(), cfg).unwrap();
        let mut cascades_seen = false;
        for i in 0..80_000u64 {
            // 40% of inserts update recent keys, the rest are new.
            let k = if i % 5 < 2 { key(i / 3) } else { key(i) };
            let out = clam.insert(k, i).unwrap();
            if out.evictions > 1 {
                cascades_seen = true;
            }
        }
        assert!(clam.stats().reinsertions > 0, "partial discard should retain some entries");
        // Cascades are possible but most evictions should be shallow.
        let hist = clam.stats().cascade_histogram.clone();
        let total: u64 = hist.iter().sum();
        let deep: u64 = hist.iter().skip(4).sum();
        assert!(total > 0);
        assert!(deep * 10 <= total, "cascades deeper than 3 should be rare ({deep}/{total})");
        let _ = cascades_seen;
    }

    #[test]
    fn priority_eviction_drops_low_priority_entries() {
        let mut cfg = ClamConfig::small_test(2 << 20, 1 << 20).unwrap();
        cfg.eviction = EvictionPolicy::priority_threshold(u64::MAX);
        // Threshold of MAX means nothing is retained: behaves like FIFO.
        let mut clam = Clam::new(Ssd::intel(2 << 20).unwrap(), cfg).unwrap();
        for i in 0..60_000u64 {
            clam.insert(key(i), i).unwrap();
        }
        assert_eq!(clam.stats().reinsertions, 0);
    }

    #[test]
    fn works_on_a_magnetic_disk_but_slower_lookups() {
        let cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
        let mut on_disk = Clam::new(MagneticDisk::new(8 << 20).unwrap(), cfg).unwrap();
        let cfg2 = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
        let mut on_ssd = Clam::new(Ssd::intel(8 << 20).unwrap(), cfg2).unwrap();
        for i in 0..60_000u64 {
            on_disk.insert(key(i), i).unwrap();
            on_ssd.insert(key(i), i).unwrap();
        }
        on_disk.reset_stats();
        on_ssd.reset_stats();
        for i in 0..2_000u64 {
            on_disk.lookup(key(i)).unwrap();
            on_ssd.lookup(key(i)).unwrap();
        }
        let disk_mean = on_disk.stats().lookups.mean();
        let ssd_mean = on_ssd.stats().lookups.mean();
        assert!(
            disk_mean > ssd_mean * 3,
            "disk lookups ({disk_mean}) should be much slower than SSD lookups ({ssd_mean})"
        );
    }

    #[test]
    fn disabled_bloom_filters_cause_many_flash_reads() {
        let mut cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
        cfg.filter_mode = FilterMode::Disabled;
        let mut clam = Clam::new(Ssd::intel(8 << 20).unwrap(), cfg).unwrap();
        for i in 0..60_000u64 {
            clam.insert(key(i), i).unwrap();
        }
        clam.reset_stats();
        for i in 0..500u64 {
            clam.lookup(hash_with_seed(i, 0xfeed)).unwrap(); // misses
        }
        let per_lookup = clam.stats().lookup_flash_reads as f64 / 500.0;
        assert!(
            per_lookup > 2.0,
            "without Bloom filters, misses should probe many incarnations (got {per_lookup})"
        );
    }

    #[test]
    fn flush_all_writes_buffered_entries() {
        let mut clam = small_clam();
        for i in 0..100u64 {
            clam.insert(key(i), i).unwrap();
        }
        let flushes_before = clam.stats().flushes;
        clam.flush_all().unwrap();
        assert!(clam.stats().flushes > flushes_before);
        for i in 0..100u64 {
            assert_eq!(clam.lookup(key(i)).unwrap().value, Some(i));
        }
    }

    #[test]
    fn memory_usage_reports_buffers_and_filters() {
        let clam = small_clam();
        let usage = clam.memory_usage();
        // Buffers use (at most) the configured budget: the number of super
        // tables is the floor of budget / per-table size.
        assert_eq!(
            usage.buffers,
            clam.num_super_tables() * clam.config().buffer_bytes_per_table as usize
        );
        assert!(usage.buffers <= clam.config().buffer_bytes_total as usize);
        assert!(usage.buffers <= clam.config().dram_bytes as usize);
        // Bit-sliced filters carry the sliding-window slack (§5.1.3), so
        // their resident size exceeds the nominal Bloom budget by a small
        // factor when k is small; it must still be the same order of
        // magnitude.
        assert!(usage.filters > 0);
        assert!(usage.filters <= clam.config().bloom_bytes_total() as usize * 12);
        assert_eq!(usage.delete_lists, 0);
    }

    #[test]
    fn rejects_device_smaller_than_configuration() {
        let cfg = ClamConfig::small_test(16 << 20, 4 << 20).unwrap();
        let ssd = Ssd::intel(4 << 20).unwrap();
        assert!(Clam::new(ssd, cfg).is_err());
    }

    #[test]
    fn insert_batch_matches_sequential_state() {
        let mut seq = small_clam();
        let mut bat = small_clam();
        let ops: Vec<(Key, Value)> = (0..60_000u64).map(|i| (key(i), i)).collect();
        for &(k, v) in &ops {
            seq.insert(k, v).unwrap();
        }
        for chunk in ops.chunks(64) {
            bat.insert_batch(chunk).unwrap();
        }
        // Same flush points, same incarnation counts, same entries.
        assert_eq!(seq.stats().flushes, bat.stats().flushes);
        assert!(bat.stats().flushes > 0, "workload must exercise flushing");
        assert_eq!(seq.approximate_entries(), bat.approximate_entries());
        for i in (0..60_000u64).step_by(61) {
            let a = seq.lookup(key(i)).unwrap();
            let b = bat.lookup(key(i)).unwrap();
            assert_eq!(a.value, b.value, "key {i}");
            assert_eq!(a.source, b.source, "key {i}");
        }
    }

    #[test]
    fn insert_batch_amortizes_latency() {
        let mut seq = small_clam();
        let mut bat = small_clam();
        let ops: Vec<(Key, Value)> = (0..50_000u64).map(|i| (key(i), i)).collect();
        let mut seq_total = SimDuration::ZERO;
        for &(k, v) in &ops {
            seq_total += seq.insert(k, v).unwrap().latency;
        }
        let mut bat_total = SimDuration::ZERO;
        for chunk in ops.chunks(64) {
            bat_total += bat.insert_batch(chunk).unwrap().latency;
        }
        assert!(
            bat_total * 2 < seq_total,
            "batched inserts ({bat_total}) should cost less than half of per-op ({seq_total})"
        );
        assert_eq!(bat.stats().batched_inserts, 50_000);
    }

    #[test]
    fn insert_batch_coalesces_contiguous_flush_writes() {
        let mut clam = small_clam();
        // One giant batch triggers many flushes; with the global log they
        // land on contiguous slots and coalesce.
        let ops: Vec<(Key, Value)> = (0..120_000u64).map(|i| (key(i), i)).collect();
        let out = clam.insert_batch(&ops).unwrap();
        assert!(out.flushed_ops > 0);
        assert!(
            out.coalesced_writes > 0,
            "contiguous incarnation writes should merge (flushed {} ops)",
            out.flushed_ops
        );
        assert_eq!(clam.stats().coalesced_flush_writes, out.coalesced_writes as u64);
        assert!(clam.stats().deferred_flush_time > SimDuration::ZERO);
    }

    #[test]
    fn lookup_batch_matches_sequential_lookups() {
        let mut clam = small_clam();
        let ops: Vec<(Key, Value)> = (0..40_000u64).map(|i| (key(i), i)).collect();
        clam.insert_batch(&ops).unwrap();
        let keys: Vec<Key> =
            (0..500u64).map(|i| if i % 3 == 0 { key(i) } else { key(1_000_000 + i) }).collect();
        let batched = clam.lookup_batch(&keys).unwrap();
        for (i, k) in keys.iter().enumerate() {
            let solo = clam.lookup(*k).unwrap();
            assert_eq!(batched[i].value, solo.value, "key index {i}");
            assert_eq!(batched[i].source, solo.source, "key index {i}");
        }
        assert_eq!(clam.stats().batched_lookups, 500);
    }

    #[test]
    fn lookup_batch_amortizes_buffer_hit_latency() {
        let mut clam = small_clam();
        let ops: Vec<(Key, Value)> = (0..500u64).map(|i| (key(i), i)).collect();
        clam.insert_batch(&ops).unwrap();
        // All keys are still buffered: per-op cost is pure overhead.
        let keys: Vec<Key> = (0..500u64).map(key).collect();
        let mut solo_total = SimDuration::ZERO;
        for &k in &keys {
            solo_total += clam.lookup(k).unwrap().latency;
        }
        let batched = clam.lookup_batch(&keys).unwrap();
        let bat_total = batched.latency;
        assert!(
            bat_total * 2 < solo_total,
            "batched buffer-hit lookups ({bat_total}) should be well under half of per-op ({solo_total})"
        );
        // No flash probes were needed, so no waves were submitted and the
        // batch is pure host time.
        assert_eq!(batched.waves, 0);
        assert_eq!(batched.probe_latency, SimDuration::ZERO);
        assert_eq!(clam.stats().lookup_probe_requests, 0);
    }

    #[test]
    fn single_op_batches_cost_the_same_as_per_op() {
        let mut per_op = small_clam();
        let mut batched = small_clam();
        let solo = per_op.insert(key(1), 1).unwrap().latency;
        let batch = batched.insert_batch(&[(key(1), 1)]).unwrap().latency;
        assert_eq!(solo, batch, "a batch of one must not cost more than a per-op insert");
        let solo = per_op.lookup(key(1)).unwrap().latency;
        let batch = batched.lookup_batch(&[key(1)]).unwrap();
        assert_eq!(
            solo, batch[0].latency,
            "a batch of one must not cost more than a per-op lookup"
        );
        assert_eq!(solo, batch.latency, "batch-of-one elapsed time equals the per-op charge");
    }

    #[test]
    fn empty_batches_are_no_ops() {
        let mut clam = small_clam();
        let out = clam.insert_batch(&[]).unwrap();
        assert_eq!(out.ops, 0);
        assert_eq!(out.latency, SimDuration::ZERO);
        assert!(clam.lookup_batch(&[]).unwrap().is_empty());
        assert_eq!(clam.stats().total_ops(), 0);
    }

    #[test]
    fn batched_and_perop_paths_interleave_safely() {
        let mut clam = small_clam();
        for round in 0..20u64 {
            let ops: Vec<(Key, Value)> =
                (0..2_000u64).map(|i| (key(round * 2_000 + i), i)).collect();
            clam.insert_batch(&ops).unwrap();
            // Per-op traffic between batches sees every batched write.
            for i in 0..50u64 {
                let k = key(round * 2_000 + i);
                assert_eq!(clam.lookup(k).unwrap().value, Some(i));
            }
        }
    }

    #[test]
    fn update_based_eviction_works_under_batching() {
        let mut cfg = ClamConfig::small_test(2 << 20, 1 << 20).unwrap();
        cfg.eviction = EvictionPolicy::UpdateBased;
        let mut clam = Clam::new(Ssd::intel(2 << 20).unwrap(), cfg).unwrap();
        // Enough churn that partial-discard evictions (which read flash
        // mid-batch) interleave with deferred batch writes.
        let ops: Vec<(Key, Value)> =
            (0..80_000u64).map(|i| if i % 5 < 2 { (key(i / 3), i) } else { (key(i), i) }).collect();
        for chunk in ops.chunks(256) {
            clam.insert_batch(chunk).unwrap();
        }
        assert!(clam.stats().reinsertions > 0, "partial discard should retain entries");
        // Recent keys must be readable.
        let recent = clam.lookup(key(79_999)).unwrap();
        assert_eq!(recent.value, Some(79_999));
    }

    #[test]
    fn table_partitioning_spreads_keys() {
        let clam = small_clam();
        let tables = clam.num_super_tables();
        let mut counts = vec![0usize; tables];
        for i in 0..10_000u64 {
            counts[clam.table_of(key(i))] += 1;
        }
        let expected = 10_000 / tables;
        assert!(counts.iter().all(|&c| c > expected / 3 && c < expected * 3));
    }

    /// A single-super-table CLAM with `rounds` incarnations of a few
    /// entries each (so probe chains never overflow), Bloom filters
    /// disabled so every lookup probes every incarnation deterministically.
    fn deterministic_probe_clam(device: Ssd, rounds: usize) -> Clam<Ssd> {
        let cfg = ClamConfig {
            flash_capacity: 8 << 20,
            dram_bytes: 1 << 20,
            buffer_bytes_total: 32 * 1024,
            buffer_bytes_per_table: 32 * 1024,
            entry_size: 16,
            max_buffer_utilization: 0.5,
            eviction: EvictionPolicy::Fifo,
            filter_mode: FilterMode::Disabled,
            layout: crate::config::FlashLayoutMode::GlobalLog,
            enable_buffering: true,
        };
        cfg.validate().unwrap();
        assert!(rounds <= cfg.incarnations_per_table());
        let mut clam = Clam::new(device, cfg).unwrap();
        for round in 0..rounds as u64 {
            for i in 0..8u64 {
                clam.insert(key(round * 100 + i), i).unwrap();
            }
            clam.flush_all().unwrap();
        }
        clam
    }

    #[test]
    fn queued_lookup_batch_overlaps_probes_on_the_device_queue() {
        // Intel-class SSD: overlapped queue, depth 8. 64 absent keys with
        // filters disabled probe 4 incarnations each — 4 waves of 64 reads.
        let mut clam = deterministic_probe_clam(Ssd::intel(8 << 20).unwrap(), 4);
        clam.reset_stats();
        let keys: Vec<Key> = (0..64u64).map(|i| hash_with_seed(i, 0xab5e7)).collect();
        let batch = clam.lookup_batch(&keys).unwrap();
        assert_eq!(batch.ops(), 64);
        assert_eq!(batch.hits(), 0);
        assert_eq!(batch.waves, 4);
        assert_eq!(batch.probe_reads, 4 * 64);
        // Makespan accounting: the batch's flash time is far below the sum
        // of the per-key read charges (8 lanes -> ~8x overlap).
        let summed: SimDuration =
            batch.outcomes.iter().map(|o| o.latency).fold(SimDuration::ZERO, |acc, l| acc + l);
        assert!(
            batch.latency * 4 < summed,
            "queued batch ({}) should undercut summed per-key charges ({summed})",
            batch.latency
        );
        // Stats ledger.
        let stats = clam.stats();
        assert_eq!(stats.lookup_batches_submitted, 1);
        assert_eq!(stats.lookup_probe_waves, 4);
        assert_eq!(stats.lookup_probe_requests, 4 * 64);
        assert!(stats.lookup_probes_overlapped > 0, "SSD lanes must overlap probes");
        let text = stats.to_string();
        assert!(text.contains("queued lookups: 1 batches, 4 waves"), "{text}");
    }

    #[test]
    fn queued_lookup_batch_matches_the_cost_model_exactly() {
        use crate::analysis::FlashCostModel;
        use flashsim::{DeviceProfile, QueueCapabilities};
        const ROUNDS: usize = 4;
        // 48 divides evenly into every swept lane count; 42 leaves a tail
        // at depth 8 (the case where the ring model strictly beats the
        // barrier model).
        for keys_n in [48usize, 42] {
            for depth in [1usize, 2, 8] {
                let profile = DeviceProfile {
                    queue: QueueCapabilities::overlapped(depth),
                    ..DeviceProfile::intel_x18m()
                };
                let build = || {
                    deterministic_probe_clam(
                        Ssd::with_profile(8 << 20, profile.clone()).unwrap(),
                        ROUNDS,
                    )
                };
                let keys: Vec<Key> =
                    (0..keys_n as u64).map(|i| hash_with_seed(i, 0x1017e)).collect();
                let model = FlashCostModel::from_profile(&profile);

                // Streaming ring pipeline == ring model, exactly.
                let mut clam = build();
                let ring = clam.lookup_batch(&keys).unwrap();
                assert_eq!(ring.waves, ROUNDS);
                assert_eq!(ring.probe_reads, ROUNDS * keys_n);
                assert_eq!(ring.reaps, ROUNDS * keys_n);
                assert_eq!(ring.ring_depth_high_water, keys_n);
                assert_eq!(
                    ring.probe_latency,
                    model.lookup_ring_makespan(keys_n, ROUNDS, depth),
                    "ring pipeline and closed-form ring model must agree at \
                     {keys_n} keys, depth {depth}"
                );

                // Barrier wave pipeline == wave model, exactly.
                let mut clam = build();
                let waves = clam.lookup_batch_waves(&keys).unwrap();
                assert_eq!(waves.waves, ROUNDS);
                assert_eq!(waves.reaps, 0);
                assert_eq!(
                    waves.probe_latency,
                    model.lookup_batch_makespan(keys_n, ROUNDS, depth),
                    "wave pipeline and closed-form wave model must agree at \
                     {keys_n} keys, depth {depth}"
                );

                // The ring never loses to the barrier, and wins exactly
                // the modelled tail when the lanes do not divide the keys.
                assert!(ring.probe_latency <= waves.probe_latency);
                let predicted = model.ring_over_waves_speedup(keys_n, ROUNDS, depth);
                let measured = waves.probe_latency.as_nanos() as f64
                    / ring.probe_latency.as_nanos().max(1) as f64;
                assert!(
                    (measured - predicted).abs() < 1e-9,
                    "ring-over-waves speedup {measured} vs model {predicted}"
                );
            }
        }
    }

    #[test]
    fn lru_reinserts_route_through_the_queued_flush_submission() {
        let mut cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
        cfg.eviction = EvictionPolicy::Lru;
        let mut clam = Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap();
        for i in 0..40_000u64 {
            clam.insert(key(i), i).unwrap();
        }
        assert!(clam.stats().flushes > 0);
        let flushes_before = clam.stats().flushes;
        let reinserts_before = clam.stats().reinsertions;
        let async_before = clam.stats().async_reinsert_time;
        // Batched lookups of flash-resident keys: every hit re-inserts, and
        // the buffers are already full, so re-insertion must flush — through
        // the deferred/queued submission, not blocking per-table writes.
        let keys: Vec<Key> = (0..2_000u64).map(key).collect();
        for chunk in keys.chunks(256) {
            let batch = clam.lookup_batch(chunk).unwrap();
            assert_eq!(batch.hits(), chunk.len());
        }
        let stats = clam.stats();
        assert!(stats.reinsertions > reinserts_before, "LRU lookups should re-insert flash hits");
        assert!(stats.flushes > flushes_before, "re-insertion into full buffers must flush");
        assert!(
            stats.async_reinsert_time > async_before,
            "re-insert flush cost must be accounted asynchronously"
        );
        // Re-insertion always lands the key in the buffer by the end of
        // its lookup call (later re-inserts may flush it back out, so probe
        // once to re-insert, then observe the buffered copy).
        assert_eq!(clam.lookup(key(0)).unwrap().value, Some(0));
        let again = clam.lookup(key(0)).unwrap();
        assert_eq!(again.value, Some(0));
        assert_eq!(again.source, LookupSource::Buffer);
    }

    #[test]
    fn flush_writes_ride_the_ring_and_fill_the_write_ledger() {
        let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
        let mut clam = Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap();
        let ops: Vec<(u64, u64)> = (0..40_000u64).map(|i| (key(i), i)).collect();
        for chunk in ops.chunks(512) {
            clam.insert_batch(chunk).unwrap();
        }
        clam.flush_all().unwrap();
        let stats = clam.stats();
        assert!(stats.flushes > 0);
        assert!(
            stats.flush_ring_reaps > 0,
            "ring-driven flushes must reap their writes off the ring: {stats}"
        );
        // Every ring reap of this write-only workload is on the flush
        // ledger, and they all reached the device's submission queue.
        let io = clam.device().stats();
        assert_eq!(io.requests_reaped, stats.flush_ring_reaps + stats.lookup_ring_reaps);
        assert!(io.ring_depth_high_water >= 1);
        // The ledger renders in the Display summary.
        assert!(stats.to_string().contains("write ring:"), "{stats}");
        // No mixed traffic here: inserts never put a read on the ring
        // (SSD evictions trim, they do not read back).
        assert_eq!(stats.mixed_ring_depth_high_water, 0, "{stats}");
    }

    #[test]
    fn lru_reinsert_flushes_share_the_lookup_ring() {
        let mut cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
        cfg.eviction = EvictionPolicy::Lru;
        let mut clam = Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap();
        for i in 0..40_000u64 {
            clam.insert(key(i), i).unwrap();
        }
        let flushes_before = clam.stats().flushes;
        // Flash-hit lookups re-insert, the full buffers flush, and those
        // flush writes are admitted into the *same* ring the probe reads
        // ran on — one mixed read/write stream per batch.
        let keys: Vec<Key> = (0..2_000u64).map(key).collect();
        for chunk in keys.chunks(256) {
            clam.lookup_batch(chunk).unwrap();
        }
        let stats = clam.stats();
        assert!(stats.flushes > flushes_before, "re-insertion must have flushed");
        assert!(stats.lookup_ring_reaps > 0, "probes reaped on the ring: {stats}");
        assert!(stats.flush_ring_reaps > 0, "re-insert flush writes reaped on the ring: {stats}");
        assert!(
            stats.mixed_ring_depth_high_water > 0,
            "reads and writes shared a ring, so the mixed high-water must register: {stats}"
        );
    }

    #[test]
    fn barrier_write_path_stays_observationally_equivalent_per_op() {
        // Same per-op workload (inserts with eviction churn, deletes,
        // lookups) on the default ring path and the barrier reference:
        // stored state and flash traffic must match exactly. The
        // cross-backend batched version lives in the property suite.
        let run = |barrier: bool| {
            let mut cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
            cfg.eviction = EvictionPolicy::UpdateBased;
            let mut clam = Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap();
            clam.set_barrier_writes(barrier);
            for i in 0..30_000u64 {
                clam.insert(key(i), i).unwrap();
                if i % 7 == 0 {
                    clam.delete(key(i / 2)).unwrap();
                }
                if i % 11 == 0 {
                    clam.update(key(i / 3), i).unwrap();
                }
            }
            clam.flush_all().unwrap();
            let values: Vec<_> =
                (0..30_000u64).step_by(97).map(|i| clam.lookup(key(i)).unwrap().value).collect();
            let stats = clam.stats();
            let io = clam.device().stats();
            (
                values,
                stats.flushes,
                stats.forced_evictions,
                stats.reinsertions,
                (io.writes, io.bytes_written, io.trims, io.erases),
            )
        };
        let ring = run(false);
        let barrier = run(true);
        assert_eq!(ring.0, barrier.0, "looked-up values diverge");
        assert_eq!(
            (ring.1, ring.2, ring.3),
            (barrier.1, barrier.2, barrier.3),
            "flush/eviction stats diverge"
        );
        assert_eq!(ring.4, barrier.4, "device write/trim/erase traffic diverges");
    }
}
