//! Operation statistics for a CLAM.
//!
//! Every hash-table operation records its end-to-end simulated latency plus
//! the breakdown the paper's evaluation reports: flash reads per lookup
//! (Table 2), buffer flushes and cascaded evictions (Figure 8b), Bloom
//! false positives, and so on.

use std::fmt;

use flashsim::{LatencyRecorder, SimDuration};

/// Counters and latency recorders for one CLAM instance.
#[derive(Debug, Clone, Default)]
pub struct ClamStats {
    /// Latency of insert operations.
    pub inserts: LatencyRecorder,
    /// Latency of lookup operations.
    pub lookups: LatencyRecorder,
    /// Latency of delete operations.
    pub deletes: LatencyRecorder,
    /// Lookups that found a value.
    pub lookup_hits: u64,
    /// Lookups that found nothing (or a deleted key).
    pub lookup_misses: u64,
    /// Buffer flushes (incarnations written to flash).
    pub flushes: u64,
    /// Incarnations force-evicted because the flash log wrapped onto them.
    pub forced_evictions: u64,
    /// Entries re-inserted into buffers by partial-discard eviction or LRU.
    pub reinsertions: u64,
    /// Flash page reads that did not yield the key (Bloom false positives
    /// or overflow-chain hops).
    pub spurious_flash_reads: u64,
    /// Total flash page reads performed by lookups.
    pub lookup_flash_reads: u64,
    /// Histogram of flash reads per lookup: `flash_reads_histogram[i]` is the
    /// number of lookups that performed exactly `i` flash reads (the last
    /// bucket accumulates everything at or beyond its index).
    pub flash_reads_histogram: Vec<u64>,
    /// Histogram of incarnations tried per eviction cascade (Figure 8b):
    /// index = number of incarnations evicted in one flush chain.
    pub cascade_histogram: Vec<u64>,
    /// Simulated latency spent in asynchronous LRU re-insertions (not
    /// charged to the triggering lookups).
    pub async_reinsert_time: SimDuration,
    /// Inserts submitted through the batched pipeline
    /// (`Clam::insert_batch`).
    pub batched_inserts: u64,
    /// Lookups submitted through the batched pipeline
    /// (`Clam::lookup_batch`).
    pub batched_lookups: u64,
    /// Device write commands eliminated by batch flush coalescing
    /// (contiguous incarnation writes merged into one sequential write).
    pub coalesced_flush_writes: u64,
    /// Simulated latency of incarnation writes deferred by batches and
    /// drained at the *end* of the batch (charged to the batch as a whole,
    /// not to any triggering insert). Drains forced mid-batch — before an
    /// erase or a partial-discard eviction read — are charged to the op
    /// that needed them, like a sequential flush, and are not counted here.
    pub deferred_flush_time: SimDuration,
    /// Lookup calls (batched or per-op) whose flash probes reached the
    /// device through the queued read pipeline (at least one probe wave
    /// submitted via `Device::submit`).
    pub lookup_batches_submitted: u64,
    /// Probe waves submitted by the queued lookup pipeline. Each wave
    /// carries the next pending page read of every key still unresolved in
    /// its batch.
    pub lookup_probe_waves: u64,
    /// Flash page-read requests submitted by the queued lookup pipeline
    /// (one per key per wave).
    pub lookup_probe_requests: u64,
    /// Probe requests that overlapped another request of their wave on the
    /// device queue (completed on a lane other than 0) — the lookup-side
    /// view of `IoStats::requests_overlapped`. Always zero on serial media.
    pub lookup_probes_overlapped: u64,
    /// Completions the streaming ring pipeline collected through
    /// `Device::reap` (zero when only the barrier wave pipeline ran).
    pub lookup_ring_reaps: u64,
    /// In-flight depth high-water mark over every completion ring the
    /// lookup pipeline drove. Merged with `max`, not summed: it is a
    /// high-water mark, not a count.
    pub lookup_ring_depth_high_water: u64,
    /// Ring admissions delayed by a conflicting in-flight range beyond
    /// lane availability. Read-read overlap is exempt, so this stays zero
    /// for pure probe traffic; it counts contention against interleaved
    /// writes.
    pub lookup_ring_admission_stalls: u64,
    /// Completions the ring-driven write path (flush, eviction, drain)
    /// collected through `Device::reap` — the flush-side counterpart of
    /// `lookup_ring_reaps`. Zero when only the barrier write path ran.
    pub flush_ring_reaps: u64,
    /// Write-side ring admissions whose start was delayed by a
    /// write-write or read-after-write conflict floor beyond lane
    /// availability — ordering the ring had to *enforce* rather than
    /// discover.
    pub write_ring_admission_stalls: u64,
    /// In-flight depth high-water mark over rings that carried **both**
    /// read and write traffic in one call (probe reads overlapping flush
    /// writes). Merged with `max`; zero when reads and writes never shared
    /// a ring.
    pub mixed_ring_depth_high_water: u64,
    /// Lookups resolved on the epoch-validated read fast path
    /// (`SharedClam::try_fast_lookup`) without taking the stripe's write
    /// lock.
    pub fast_lookups: u64,
    /// Fast-path attempts that lost the epoch/try-read race to a
    /// concurrent writer and fell back to the locked pipeline.
    pub fast_read_conflicts: u64,
    /// Recovery scans performed (`Clam::recover` constructions).
    pub recoveries: u64,
    /// Incarnations accepted and re-registered across all recovery scans.
    pub recovered_incarnations: u64,
    /// Slots a recovery scan rejected as torn (checksum/identity failures).
    pub recovery_torn_slots: u64,
    /// Per-table write-lock acquisitions on the fine-grained write path
    /// (`Clam::fine_insert` / `fine_delete` / `fine_insert_batch`). Zero
    /// while `set_coarse_locks(true)` routes everything through the
    /// stripe-global lock.
    pub table_write_acquisitions: u64,
    /// Table write-lock acquisitions that found the op lock already held
    /// (another fine-grained writer was mid-op on the same table).
    pub table_write_contended: u64,
    /// High-water mark of tables of one stripe write-locked at the same
    /// instant — direct evidence of intra-stripe write concurrency.
    /// Merged with `max` across stripes.
    pub table_lock_high_water: u64,
}

/// Maximum histogram index tracked explicitly; larger values accumulate in
/// the final bucket.
const HISTOGRAM_CAP: usize = 64;

impl ClamStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the number of flash reads a lookup performed.
    pub fn record_lookup_reads(&mut self, reads: usize) {
        self.lookup_flash_reads += reads as u64;
        let idx = reads.min(HISTOGRAM_CAP);
        if self.flash_reads_histogram.len() <= idx {
            self.flash_reads_histogram.resize(idx + 1, 0);
        }
        self.flash_reads_histogram[idx] += 1;
    }

    /// Records the number of incarnations evicted by one flush chain.
    pub fn record_cascade(&mut self, incarnations_tried: usize) {
        let idx = incarnations_tried.min(HISTOGRAM_CAP);
        if self.cascade_histogram.len() <= idx {
            self.cascade_histogram.resize(idx + 1, 0);
        }
        self.cascade_histogram[idx] += 1;
    }

    /// Total number of operations recorded.
    pub fn total_ops(&self) -> usize {
        self.inserts.len() + self.lookups.len() + self.deletes.len()
    }

    /// Fraction of lookups that performed exactly `n` flash reads.
    pub fn lookup_read_fraction(&self, n: usize) -> f64 {
        let total: u64 = self.flash_reads_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.flash_reads_histogram.get(n).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Lookup success rate observed so far.
    pub fn lookup_success_rate(&self) -> f64 {
        let total = self.lookup_hits + self.lookup_misses;
        if total == 0 {
            return 0.0;
        }
        self.lookup_hits as f64 / total as f64
    }

    /// Clears all statistics.
    pub fn reset(&mut self) {
        *self = ClamStats::default();
    }

    /// Merges another instance's statistics into this one (used to
    /// aggregate per-stripe stats). Every field is combined, histograms
    /// bucket-wise.
    pub fn merge(&mut self, other: &ClamStats) {
        self.inserts.merge(&other.inserts);
        self.lookups.merge(&other.lookups);
        self.deletes.merge(&other.deletes);
        self.lookup_hits += other.lookup_hits;
        self.lookup_misses += other.lookup_misses;
        self.flushes += other.flushes;
        self.forced_evictions += other.forced_evictions;
        self.reinsertions += other.reinsertions;
        self.spurious_flash_reads += other.spurious_flash_reads;
        self.lookup_flash_reads += other.lookup_flash_reads;
        merge_histogram(&mut self.flash_reads_histogram, &other.flash_reads_histogram);
        merge_histogram(&mut self.cascade_histogram, &other.cascade_histogram);
        self.async_reinsert_time += other.async_reinsert_time;
        self.batched_inserts += other.batched_inserts;
        self.batched_lookups += other.batched_lookups;
        self.coalesced_flush_writes += other.coalesced_flush_writes;
        self.deferred_flush_time += other.deferred_flush_time;
        self.lookup_batches_submitted += other.lookup_batches_submitted;
        self.lookup_probe_waves += other.lookup_probe_waves;
        self.lookup_probe_requests += other.lookup_probe_requests;
        self.lookup_probes_overlapped += other.lookup_probes_overlapped;
        self.lookup_ring_reaps += other.lookup_ring_reaps;
        self.lookup_ring_depth_high_water =
            self.lookup_ring_depth_high_water.max(other.lookup_ring_depth_high_water);
        self.lookup_ring_admission_stalls += other.lookup_ring_admission_stalls;
        self.flush_ring_reaps += other.flush_ring_reaps;
        self.write_ring_admission_stalls += other.write_ring_admission_stalls;
        self.mixed_ring_depth_high_water =
            self.mixed_ring_depth_high_water.max(other.mixed_ring_depth_high_water);
        self.fast_lookups += other.fast_lookups;
        self.fast_read_conflicts += other.fast_read_conflicts;
        self.recoveries += other.recoveries;
        self.recovered_incarnations += other.recovered_incarnations;
        self.recovery_torn_slots += other.recovery_torn_slots;
        self.table_write_acquisitions += other.table_write_acquisitions;
        self.table_write_contended += other.table_write_contended;
        self.table_lock_high_water = self.table_lock_high_water.max(other.table_lock_high_water);
    }

    /// Fraction of queued lookup probes that overlapped another probe of
    /// their wave on the device queue.
    pub fn probe_overlap_fraction(&self) -> f64 {
        if self.lookup_probe_requests == 0 {
            return 0.0;
        }
        self.lookup_probes_overlapped as f64 / self.lookup_probe_requests as f64
    }
}

impl fmt::Display for ClamStats {
    /// One-line operational summary, mirroring `IoStats`'s ledger style:
    /// op counts with mean latencies, hit rate, flush/eviction traffic, and
    /// the batched/queued pipeline counters (elided when untouched).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inserts: {} (mean {}) | lookups: {} (mean {}, {} hits / {} misses) | deletes: {}",
            self.inserts.len(),
            self.inserts.mean(),
            self.lookups.len(),
            self.lookups.mean(),
            self.lookup_hits,
            self.lookup_misses,
            self.deletes.len(),
        )?;
        write!(
            f,
            " | flushes: {} ({} forced evictions, {} reinsertions)",
            self.flushes, self.forced_evictions, self.reinsertions
        )?;
        write!(
            f,
            " | lookup flash reads: {} ({} spurious)",
            self.lookup_flash_reads, self.spurious_flash_reads
        )?;
        if self.batched_inserts > 0 || self.batched_lookups > 0 {
            write!(
                f,
                " | batched: {} inserts, {} lookups ({} coalesced writes)",
                self.batched_inserts, self.batched_lookups, self.coalesced_flush_writes
            )?;
        }
        if self.lookup_batches_submitted > 0 {
            write!(
                f,
                " | queued lookups: {} batches, {} waves, {} probes ({} overlapped)",
                self.lookup_batches_submitted,
                self.lookup_probe_waves,
                self.lookup_probe_requests,
                self.lookup_probes_overlapped
            )?;
        }
        if self.lookup_ring_reaps > 0 || self.lookup_ring_depth_high_water > 0 {
            write!(
                f,
                " | ring: {} reaps, depth hwm {}, {} stalls",
                self.lookup_ring_reaps,
                self.lookup_ring_depth_high_water,
                self.lookup_ring_admission_stalls
            )?;
        }
        if self.flush_ring_reaps > 0 || self.mixed_ring_depth_high_water > 0 {
            write!(
                f,
                " | write ring: {} reaps, {} stalls, mixed depth hwm {}",
                self.flush_ring_reaps,
                self.write_ring_admission_stalls,
                self.mixed_ring_depth_high_water
            )?;
        }
        if self.fast_lookups > 0 || self.fast_read_conflicts > 0 {
            write!(
                f,
                " | fast reads: {} lock-free, {} conflicts",
                self.fast_lookups, self.fast_read_conflicts
            )?;
        }
        if self.recoveries > 0 {
            write!(
                f,
                " | recovery: {} scans, {} incarnations, {} torn slots",
                self.recoveries, self.recovered_incarnations, self.recovery_torn_slots
            )?;
        }
        if self.table_write_acquisitions > 0 {
            write!(
                f,
                " | table locks: {} acquisitions, {} contended, concurrency hwm {}",
                self.table_write_acquisitions,
                self.table_write_contended,
                self.table_lock_high_water
            )?;
        }
        Ok(())
    }
}

/// Adds `src` into `dst` bucket-wise, growing `dst` as needed.
fn merge_histogram(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histograms_accumulate_and_cap() {
        let mut s = ClamStats::new();
        s.record_lookup_reads(0);
        s.record_lookup_reads(0);
        s.record_lookup_reads(1);
        s.record_lookup_reads(1000);
        assert_eq!(s.flash_reads_histogram[0], 2);
        assert_eq!(s.flash_reads_histogram[1], 1);
        assert_eq!(*s.flash_reads_histogram.last().unwrap(), 1);
        assert_eq!(s.lookup_flash_reads, 1001);
        assert!((s.lookup_read_fraction(0) - 0.5).abs() < 1e-9);
        assert_eq!(s.lookup_read_fraction(7), 0.0);
    }

    #[test]
    fn cascade_histogram() {
        let mut s = ClamStats::new();
        s.record_cascade(1);
        s.record_cascade(3);
        s.record_cascade(3);
        assert_eq!(s.cascade_histogram[1], 1);
        assert_eq!(s.cascade_histogram[3], 2);
    }

    #[test]
    fn table_lock_ledger_merges_and_displays() {
        let mut a = ClamStats::new();
        a.table_write_acquisitions = 10;
        a.table_write_contended = 2;
        a.table_lock_high_water = 3;
        let mut b = ClamStats::new();
        b.table_write_acquisitions = 5;
        b.table_write_contended = 1;
        b.table_lock_high_water = 7;
        a.merge(&b);
        assert_eq!(a.table_write_acquisitions, 15);
        assert_eq!(a.table_write_contended, 3);
        // High-water is a max across stripes, not a sum.
        assert_eq!(a.table_lock_high_water, 7);
        let line = a.to_string();
        assert!(line.contains("table locks: 15 acquisitions, 3 contended, concurrency hwm 7"));
        // The segment is elided while the fine path has never run.
        assert!(!ClamStats::new().to_string().contains("table locks"));
    }

    #[test]
    fn merge_combines_every_field_including_histograms() {
        let mut a = ClamStats::new();
        a.record_lookup_reads(0);
        a.record_cascade(1);
        a.lookup_hits = 3;
        a.flushes = 2;
        a.batched_inserts = 10;
        a.deferred_flush_time = SimDuration::from_micros(5);
        a.lookup_batches_submitted = 2;
        a.lookup_probe_requests = 6;
        let mut b = ClamStats::new();
        b.record_lookup_reads(0);
        b.record_lookup_reads(2);
        b.record_cascade(4);
        b.lookup_misses = 7;
        b.coalesced_flush_writes = 4;
        b.lookup_batches_submitted = 1;
        b.lookup_probe_waves = 3;
        b.lookup_probe_requests = 9;
        b.lookup_probes_overlapped = 5;
        a.merge(&b);
        assert_eq!(a.flash_reads_histogram[0], 2);
        assert_eq!(a.flash_reads_histogram[2], 1);
        assert_eq!(a.cascade_histogram[1], 1);
        assert_eq!(a.cascade_histogram[4], 1);
        assert_eq!(a.lookup_hits, 3);
        assert_eq!(a.lookup_misses, 7);
        assert_eq!(a.flushes, 2);
        assert_eq!(a.batched_inserts, 10);
        assert_eq!(a.coalesced_flush_writes, 4);
        assert_eq!(a.deferred_flush_time, SimDuration::from_micros(5));
        assert!((a.lookup_read_fraction(0) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.lookup_batches_submitted, 3);
        assert_eq!(a.lookup_probe_waves, 3);
        assert_eq!(a.lookup_probe_requests, 15);
        assert_eq!(a.lookup_probes_overlapped, 5);
        assert!((a.probe_overlap_fraction() - 5.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn display_summarizes_and_elides_untouched_pipelines() {
        let mut s = ClamStats::new();
        s.inserts.record(SimDuration::from_micros(3));
        s.lookup_hits = 1;
        s.flushes = 2;
        let quiet = s.to_string();
        assert!(quiet.contains("inserts: 1"));
        assert!(quiet.contains("flushes: 2"));
        assert!(!quiet.contains("batched:") && !quiet.contains("queued lookups:"));

        s.batched_lookups = 4;
        s.lookup_batches_submitted = 2;
        s.lookup_probe_waves = 3;
        s.lookup_probe_requests = 8;
        s.lookup_probes_overlapped = 6;
        let text = s.to_string();
        for needle in [
            "batched: 0 inserts, 4 lookups",
            "queued lookups: 2 batches, 3 waves",
            "8 probes (6 overlapped)",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text:?}");
        }
        assert_eq!(ClamStats::new().probe_overlap_fraction(), 0.0);
    }

    #[test]
    fn ring_counters_merge_and_display() {
        let mut a = ClamStats::new();
        a.lookup_batches_submitted = 1;
        a.lookup_ring_reaps = 10;
        a.lookup_ring_depth_high_water = 64;
        a.lookup_ring_admission_stalls = 2;
        let mut b = ClamStats::new();
        b.lookup_ring_reaps = 5;
        b.lookup_ring_depth_high_water = 32;
        a.merge(&b);
        assert_eq!(a.lookup_ring_reaps, 15, "reaps sum");
        assert_eq!(a.lookup_ring_depth_high_water, 64, "high-water merges with max");
        assert_eq!(a.lookup_ring_admission_stalls, 2);
        let text = a.to_string();
        assert!(text.contains("ring: 15 reaps, depth hwm 64, 2 stalls"), "{text}");
        // Ring-disabled profiles (barrier waves only) elide the segment.
        let mut quiet = ClamStats::new();
        quiet.lookup_batches_submitted = 1;
        quiet.lookup_probe_waves = 3;
        assert!(!quiet.to_string().contains("ring:"));
    }

    #[test]
    fn write_ring_counters_merge_and_display() {
        let mut a = ClamStats::new();
        a.flush_ring_reaps = 7;
        a.write_ring_admission_stalls = 3;
        a.mixed_ring_depth_high_water = 12;
        let mut b = ClamStats::new();
        b.flush_ring_reaps = 5;
        b.write_ring_admission_stalls = 1;
        b.mixed_ring_depth_high_water = 9;
        a.merge(&b);
        assert_eq!(a.flush_ring_reaps, 12, "write-side reaps sum");
        assert_eq!(a.write_ring_admission_stalls, 4, "stalls sum");
        assert_eq!(a.mixed_ring_depth_high_water, 12, "mixed high-water merges with max");
        let text = a.to_string();
        assert!(text.contains("write ring: 12 reaps, 4 stalls, mixed depth hwm 12"), "{text}");
        // Barrier-only runs (and zero-depth profiles, where the write path
        // never touches a ring) elide the segment without panicking.
        let mut quiet = ClamStats::new();
        quiet.flushes = 2;
        let quiet_text = quiet.to_string();
        assert!(!quiet_text.contains("write ring:"), "{quiet_text}");
        // A pure-write ring never mixes: the segment still renders off the
        // reap count alone.
        let mut pure = ClamStats::new();
        pure.flush_ring_reaps = 2;
        assert!(pure.to_string().contains("write ring: 2 reaps, 0 stalls, mixed depth hwm 0"));
    }

    #[test]
    fn recovery_counters_merge_and_display() {
        let mut a = ClamStats::new();
        a.recoveries = 1;
        a.recovered_incarnations = 5;
        a.recovery_torn_slots = 1;
        let mut b = ClamStats::new();
        b.recoveries = 2;
        b.recovered_incarnations = 3;
        a.merge(&b);
        assert_eq!(a.recoveries, 3);
        assert_eq!(a.recovered_incarnations, 8);
        assert_eq!(a.recovery_torn_slots, 1);
        let text = a.to_string();
        assert!(text.contains("recovery: 3 scans, 8 incarnations, 1 torn slots"), "{text}");
        // A never-recovered CLAM elides the segment.
        assert!(!ClamStats::new().to_string().contains("recovery:"));
    }

    #[test]
    fn fast_read_counters_merge_and_display() {
        let mut a = ClamStats::new();
        a.fast_lookups = 9;
        let mut b = ClamStats::new();
        b.fast_lookups = 3;
        b.fast_read_conflicts = 2;
        a.merge(&b);
        assert_eq!(a.fast_lookups, 12);
        assert_eq!(a.fast_read_conflicts, 2);
        let text = a.to_string();
        assert!(text.contains("fast reads: 12 lock-free, 2 conflicts"), "{text}");
        // A coarse-locked CLAM elides the segment.
        assert!(!ClamStats::new().to_string().contains("fast reads:"));
    }

    #[test]
    fn success_rate_and_reset() {
        let mut s = ClamStats::new();
        assert_eq!(s.lookup_success_rate(), 0.0);
        s.lookup_hits = 40;
        s.lookup_misses = 60;
        assert!((s.lookup_success_rate() - 0.4).abs() < 1e-9);
        s.inserts.record(SimDuration::from_micros(5));
        assert_eq!(s.total_ops(), 1);
        s.reset();
        assert_eq!(s.total_ops(), 0);
        assert_eq!(s.lookup_hits, 0);
    }
}
