//! Bit-sliced Bloom filters with a sliding window (§5.1.3).
//!
//! A super table keeps one Bloom filter per incarnation. Instead of storing
//! the `k` filters separately, all of them are stored as `m` bit-slices: the
//! i-th slice concatenates bit `i` from every incarnation's filter. A lookup
//! hashes the key to `h` bit positions, fetches those `h` slices, ANDs them,
//! and the positions of 1-bits in the result identify the incarnations that
//! may contain the key — `h` word-sized memory reads instead of `k·h`
//! scattered bit probes.
//!
//! Eviction uses the paper's sliding-window trick: each slice carries `w`
//! (here 64) extra bits. Evicting the oldest incarnation just advances the
//! window start; bits that fall out of the window are ignored and whole
//! 64-bit words are zeroed only once the window has completely moved past
//! them, giving a small amortized eviction cost.

use serde::{Deserialize, Serialize};

use crate::types::{hash_with_seed, Key};

/// Extra lanes appended to every slice (the `w` of §5.1.3); one machine word.
const WINDOW_SLACK: usize = 64;

/// Bit-sliced Bloom filters for the incarnations of one super table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSlicedBloomSet {
    /// Maximum number of incarnations (k).
    num_slots: usize,
    /// Bits per incarnation filter (m).
    bits_per_filter: usize,
    /// Hash functions per filter (h).
    num_hashes: u32,
    /// Total lanes per slice (k + w, rounded up to a whole word).
    lane_space: usize,
    /// 64-bit words per slice.
    words_per_slice: usize,
    /// All slices, `bits_per_filter * words_per_slice` words.
    slices: Vec<u64>,
    /// Lane index of the oldest live incarnation.
    window_start: usize,
    /// Number of live incarnations (≤ `num_slots`).
    count: usize,
}

impl BitSlicedBloomSet {
    /// Creates a bit-sliced filter set for up to `num_slots` incarnations,
    /// `bits_per_filter` bits and `num_hashes` hash functions per filter.
    pub fn new(num_slots: usize, bits_per_filter: usize, num_hashes: u32) -> Self {
        let num_slots = num_slots.max(1);
        let bits_per_filter = bits_per_filter.max(64);
        let lane_space = (num_slots + WINDOW_SLACK).div_ceil(64) * 64;
        let words_per_slice = lane_space / 64;
        BitSlicedBloomSet {
            num_slots,
            bits_per_filter,
            num_hashes: num_hashes.clamp(1, 16),
            lane_space,
            words_per_slice,
            slices: vec![0u64; bits_per_filter * words_per_slice],
            window_start: 0,
            count: 0,
        }
    }

    /// Maximum number of incarnations.
    pub fn capacity(&self) -> usize {
        self.num_slots
    }

    /// Number of live incarnations.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if there are no live incarnations.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bits per incarnation filter.
    pub fn bits_per_filter(&self) -> usize {
        self.bits_per_filter
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.slices.len() * 8
    }

    /// Bit positions (rows) probed for `key`.
    #[inline]
    fn rows(&self, key: Key) -> impl Iterator<Item = usize> + '_ {
        let h1 = hash_with_seed(key, 0x5bd1_e995);
        let h2 = hash_with_seed(key, 0x27d4_eb2f) | 1;
        let m = self.bits_per_filter as u64;
        (0..self.num_hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Lane index of the incarnation with the given `age`
    /// (age 0 = youngest, `count - 1` = oldest).
    fn lane_of_age(&self, age: usize) -> usize {
        debug_assert!(age < self.count);
        (self.window_start + self.count - 1 - age) % self.lane_space
    }

    fn set_bit(&mut self, row: usize, lane: usize) {
        let word = row * self.words_per_slice + lane / 64;
        self.slices[word] |= 1 << (lane % 64);
    }

    fn clear_lane(&mut self, lane: usize) {
        let (word_off, bit) = (lane / 64, lane % 64);
        let mask = !(1u64 << bit);
        for row in 0..self.bits_per_filter {
            self.slices[row * self.words_per_slice + word_off] &= mask;
        }
    }

    /// Registers a new (youngest) incarnation containing `keys`.
    ///
    /// The caller must ensure there is room (evict first if `len() ==
    /// capacity()`); pushing into a full set panics, as that indicates a
    /// logic error in the super table.
    pub fn push_incarnation<I: IntoIterator<Item = Key>>(&mut self, keys: I) {
        assert!(
            self.count < self.num_slots,
            "push_incarnation on a full BitSlicedBloomSet; evict first"
        );
        let lane = (self.window_start + self.count) % self.lane_space;
        // The lazy word-zeroing below guarantees this lane is already clear;
        // clearing defensively keeps correctness independent of that
        // invariant (it is a no-op in the common case).
        self.clear_lane(lane);
        self.count += 1;
        for key in keys {
            let rows: Vec<usize> = self.rows(key).collect();
            for row in rows {
                self.set_bit(row, lane);
            }
        }
    }

    /// Evicts the oldest incarnation by sliding the window.
    ///
    /// Whole 64-bit words are zeroed only when the window has moved entirely
    /// past them (the paper's amortized-reset optimisation).
    pub fn evict_oldest(&mut self) {
        if self.count == 0 {
            return;
        }
        self.window_start = (self.window_start + 1) % self.lane_space;
        self.count -= 1;
        if self.window_start.is_multiple_of(64) {
            // The word we just finished leaving contains only dead lanes.
            let words = self.words_per_slice;
            let word_behind = (self.window_start / 64 + words - 1) % words;
            for row in 0..self.bits_per_filter {
                self.slices[row * self.words_per_slice + word_behind] = 0;
            }
        }
    }

    /// Returns the ages (0 = youngest) of the incarnations that may contain
    /// `key`, ordered youngest to oldest.
    pub fn query(&self, key: Key) -> Vec<usize> {
        if self.count == 0 {
            return Vec::new();
        }
        // AND the h slices.
        let mut acc = vec![u64::MAX; self.words_per_slice];
        for row in self.rows(key) {
            let base = row * self.words_per_slice;
            for (word, slice_word) in acc.iter_mut().zip(&self.slices[base..]) {
                *word &= slice_word;
            }
        }
        // Collect window lanes whose AND bit is set, youngest first.
        let mut out = Vec::new();
        for age in 0..self.count {
            let lane = self.lane_of_age(age);
            if acc[lane / 64] >> (lane % 64) & 1 == 1 {
                out.push(age);
            }
        }
        out
    }

    /// Returns `true` if the incarnation with `age` may contain `key`
    /// (single-incarnation probe, used by the non-bit-sliced ablation path).
    pub fn contains_in(&self, age: usize, key: Key) -> bool {
        if age >= self.count {
            return false;
        }
        let lane = self.lane_of_age(age);
        self.rows(key)
            .all(|row| self.slices[row * self.words_per_slice + lane / 64] >> (lane % 64) & 1 == 1)
    }

    /// Number of 64-bit words touched by one query (for latency accounting:
    /// `h` slices of `words_per_slice` words each).
    pub fn words_per_query(&self) -> usize {
        self.num_hashes as usize * self.words_per_slice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_for(incarnation: u64, n: u64) -> Vec<Key> {
        (0..n).map(|i| hash_with_seed(i, incarnation.wrapping_add(1))).collect()
    }

    #[test]
    fn query_finds_the_right_incarnation() {
        let mut set = BitSlicedBloomSet::new(8, 1 << 14, 5);
        for inc in 0..4u64 {
            set.push_incarnation(keys_for(inc, 100));
        }
        assert_eq!(set.len(), 4);
        // Keys of incarnation 0 are the oldest (age 3).
        let k = keys_for(0, 100)[7];
        let ages = set.query(k);
        assert!(ages.contains(&3), "expected age 3 in {ages:?}");
        // Keys of incarnation 3 are the youngest (age 0).
        let k = keys_for(3, 100)[42];
        assert!(set.query(k).contains(&0));
    }

    #[test]
    fn no_false_negatives_across_all_incarnations() {
        let mut set = BitSlicedBloomSet::new(16, 1 << 14, 6);
        for inc in 0..16u64 {
            set.push_incarnation(keys_for(inc, 64));
        }
        for inc in 0..16u64 {
            let age = 15 - inc as usize;
            for k in keys_for(inc, 64) {
                assert!(set.query(k).contains(&age), "missing key of incarnation {inc}");
                assert!(set.contains_in(age, k));
            }
        }
    }

    #[test]
    fn eviction_slides_the_window() {
        let mut set = BitSlicedBloomSet::new(4, 1 << 12, 4);
        for inc in 0..4u64 {
            set.push_incarnation(keys_for(inc, 50));
        }
        // Evict the oldest (incarnation 0); its keys should mostly disappear
        // from query results (they can only reappear as false positives).
        set.evict_oldest();
        assert_eq!(set.len(), 3);
        let hits = keys_for(0, 50)
            .into_iter()
            .filter(|&k| set.query(k).contains(&2) && !keys_for(1, 50).contains(&k))
            .count();
        // Age 2 is now incarnation 1; incarnation 0's keys should rarely hit it.
        assert!(hits < 10, "too many stale hits after eviction: {hits}");
        // Incarnation 1 keys are now the oldest (age 2).
        for k in keys_for(1, 50) {
            assert!(set.query(k).contains(&2));
        }
    }

    #[test]
    fn long_churn_reuses_lanes_correctly() {
        // Push/evict many times so the window wraps the lane space several
        // times; no false negatives may appear for live incarnations.
        let mut set = BitSlicedBloomSet::new(4, 1 << 12, 4);
        for round in 0..400u64 {
            if set.len() == set.capacity() {
                set.evict_oldest();
            }
            set.push_incarnation(keys_for(round, 20));
            // All live incarnations still answer correctly.
            let live_from = round.saturating_sub(set.len() as u64 - 1);
            for (age_back, inc) in (live_from..=round).rev().enumerate() {
                for k in keys_for(inc, 20) {
                    assert!(
                        set.query(k).contains(&age_back),
                        "round {round}: lost keys of incarnation {inc}"
                    );
                }
            }
        }
    }

    #[test]
    fn false_positive_rate_is_low_with_adequate_bits() {
        let mut set = BitSlicedBloomSet::new(16, 1 << 16, 7);
        for inc in 0..16u64 {
            set.push_incarnation(keys_for(inc, 409));
        }
        let trials = 20_000u64;
        let mut fp = 0usize;
        for i in 0..trials {
            let k = hash_with_seed(i, 0xdead_beef);
            fp += set.query(k).len();
        }
        // Expected FPR per incarnation with m/n = 160 bits/item is tiny; the
        // whole-set spurious rate should be well under 1%.
        let per_lookup = fp as f64 / trials as f64;
        assert!(per_lookup < 0.01, "spurious incarnation matches per lookup: {per_lookup}");
    }

    #[test]
    fn empty_set_matches_nothing() {
        let set = BitSlicedBloomSet::new(8, 1024, 4);
        assert!(set.query(12345).is_empty());
        assert!(!set.contains_in(0, 12345));
        assert!(set.is_empty());
    }

    #[test]
    fn evicting_empty_set_is_a_noop() {
        let mut set = BitSlicedBloomSet::new(8, 1024, 4);
        set.evict_oldest();
        assert_eq!(set.len(), 0);
    }

    #[test]
    #[should_panic(expected = "full BitSlicedBloomSet")]
    fn pushing_into_full_set_panics() {
        let mut set = BitSlicedBloomSet::new(2, 1024, 4);
        set.push_incarnation([1]);
        set.push_incarnation([2]);
        set.push_incarnation([3]);
    }

    #[test]
    fn memory_and_query_cost_accounting() {
        let set = BitSlicedBloomSet::new(16, 1 << 15, 7);
        // 16 + 64 lanes -> 128 lanes -> 2 words per slice.
        assert_eq!(set.words_per_query(), 7 * 2);
        assert_eq!(set.memory_bytes(), (1 << 15) * 2 * 8);
    }
}
