//! Eviction policies (§5.1.2).
//!
//! BufferHash evicts at incarnation granularity using two primitives:
//!
//! * **full discard** — drop the oldest incarnation wholesale;
//! * **partial discard** — scan the oldest incarnation before dropping it
//!   and re-insert the entries that should be retained.
//!
//! The policies below are built from those primitives. FIFO (the default)
//! uses full discard; LRU uses full discard plus re-insertion-on-use at
//! lookup time; the update-based and priority-based policies use partial
//! discard and may trigger *cascaded evictions* when everything in the
//! evicted incarnation has to be retained.

use crate::types::Entry;

/// A function deriving an entry's priority for [`EvictionPolicy::PriorityBased`].
pub type PriorityFn = fn(&Entry) -> u64;

/// Default priority function: the entry's value (documented convention for
/// applications that encode a priority in the value).
pub fn value_as_priority(e: &Entry) -> u64 {
    e.value
}

/// How a super table makes room when its incarnation table is full.
#[derive(Debug, Clone, Copy, Default)]
pub enum EvictionPolicy {
    /// Drop the oldest incarnation wholesale (full discard). The most
    /// efficient policy and the BufferHash default; matches how commercial
    /// WAN optimizers age out fingerprints.
    #[default]
    Fifo,
    /// FIFO plus re-insertion: whenever a lookup finds an item in an
    /// incarnation (not the buffer), the item is re-inserted into the
    /// buffer, so recently used items survive eviction of old incarnations.
    Lru,
    /// Partial discard retaining entries that are still current: an entry is
    /// discarded only if its key was deleted, or appears in the buffer or in
    /// a younger incarnation (checked via the in-memory Bloom filters, so a
    /// false positive can occasionally discard a live entry — §5.1.2,
    /// footnote 2).
    UpdateBased,
    /// Partial discard retaining entries whose priority (derived by
    /// `priority`) is at least `threshold`.
    PriorityBased {
        /// Minimum priority an entry needs to be retained.
        threshold: u64,
        /// Function deriving an entry's priority.
        priority: PriorityFn,
    },
}

impl PartialEq for EvictionPolicy {
    /// Policies compare by kind and threshold; the priority function is
    /// intentionally ignored (function pointer identity is not meaningful).
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (EvictionPolicy::Fifo, EvictionPolicy::Fifo)
            | (EvictionPolicy::Lru, EvictionPolicy::Lru)
            | (EvictionPolicy::UpdateBased, EvictionPolicy::UpdateBased) => true,
            (
                EvictionPolicy::PriorityBased { threshold: a, .. },
                EvictionPolicy::PriorityBased { threshold: b, .. },
            ) => a == b,
            _ => false,
        }
    }
}

impl Eq for EvictionPolicy {}

impl EvictionPolicy {
    /// Returns `true` for policies that use the partial-discard primitive
    /// (and therefore must scan the evicted incarnation).
    pub fn uses_partial_discard(&self) -> bool {
        matches!(self, EvictionPolicy::UpdateBased | EvictionPolicy::PriorityBased { .. })
    }

    /// Returns `true` if lookups should re-insert flash hits into the buffer.
    pub fn reinserts_on_use(&self) -> bool {
        matches!(self, EvictionPolicy::Lru)
    }

    /// Convenience constructor for a priority policy using the entry value
    /// as its priority.
    pub fn priority_threshold(threshold: u64) -> Self {
        EvictionPolicy::PriorityBased { threshold, priority: value_as_priority }
    }
}

/// Why an entry of an evicted incarnation was kept or dropped (returned by
/// the retain decision for statistics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetainDecision {
    /// The entry is re-inserted into the buffer.
    Retain,
    /// The entry is discarded because the policy says it is dead.
    Discard,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fifo() {
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Fifo);
    }

    #[test]
    fn partial_discard_classification() {
        assert!(!EvictionPolicy::Fifo.uses_partial_discard());
        assert!(!EvictionPolicy::Lru.uses_partial_discard());
        assert!(EvictionPolicy::UpdateBased.uses_partial_discard());
        assert!(EvictionPolicy::priority_threshold(5).uses_partial_discard());
    }

    #[test]
    fn only_lru_reinserts_on_use() {
        assert!(EvictionPolicy::Lru.reinserts_on_use());
        assert!(!EvictionPolicy::Fifo.reinserts_on_use());
        assert!(!EvictionPolicy::UpdateBased.reinserts_on_use());
    }

    #[test]
    fn value_priority_helper() {
        let e = Entry::new(1, 99);
        assert_eq!(value_as_priority(&e), 99);
        if let EvictionPolicy::PriorityBased { threshold, priority } =
            EvictionPolicy::priority_threshold(50)
        {
            assert_eq!(threshold, 50);
            assert_eq!(priority(&e), 99);
        } else {
            panic!("expected priority policy");
        }
    }
}
