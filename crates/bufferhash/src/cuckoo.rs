//! In-memory buffer hash table using two-choice cuckoo hashing.
//!
//! Newly inserted entries accumulate in a per-super-table buffer before being
//! flushed to flash as an incarnation (§5.1). The paper's prototype uses
//! cuckoo hashing with two hash functions, which keeps space utilisation
//! high without chaining; we follow that choice.

use serde::{Deserialize, Serialize};

use crate::types::{hash_with_seed, Entry, Key, Value};

/// Maximum displacement chain length before an insert is declared failed.
/// Failures at 50% utilisation are vanishingly rare; the super table reacts
/// by flushing the buffer early.
const MAX_KICKS: usize = 128;

/// Outcome of a buffer insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferInsert {
    /// The entry was stored (possibly overwriting an older value for the
    /// same key, in which case the previous value is returned).
    Stored(Option<Value>),
    /// The buffer is at capacity (or a cuckoo cycle was hit); the caller must
    /// flush before retrying.
    Full,
}

/// A fixed-capacity cuckoo hash table of [`Entry`] values.
///
/// A small stash absorbs the (rare) displacement cycles so that no entry is
/// ever silently dropped; the admission limit (`capacity()`) is what forces
/// the super table to flush.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CuckooBuffer {
    slots: Vec<Option<Entry>>,
    /// Overflow stash for entries left homeless by a displacement cycle.
    stash: Vec<Entry>,
    /// Maximum number of entries admitted (capacity × max utilisation).
    max_entries: usize,
    len: usize,
}

impl CuckooBuffer {
    /// Creates a buffer with `num_slots` slots, admitting entries up to
    /// `max_utilization` (e.g. 0.5 per the paper's configuration).
    pub fn new(num_slots: usize, max_utilization: f64) -> Self {
        let num_slots = num_slots.max(2);
        let max_utilization = max_utilization.clamp(0.05, 1.0);
        let max_entries = ((num_slots as f64 * max_utilization).floor() as usize).max(1);
        CuckooBuffer { slots: vec![None; num_slots], stash: Vec::new(), max_entries, len: 0 }
    }

    /// Creates a buffer sized for a byte budget: `buffer_bytes / entry_size`
    /// slots (the paper sizes buffers in bytes, e.g. 128 KiB).
    pub fn with_byte_budget(buffer_bytes: usize, entry_size: usize, max_utilization: f64) -> Self {
        Self::new(buffer_bytes / entry_size.max(1), max_utilization)
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of entries admitted before the buffer reports full.
    pub fn capacity(&self) -> usize {
        self.max_entries
    }

    /// Returns `true` once the buffer has reached its admission capacity.
    pub fn is_full(&self) -> bool {
        self.len >= self.max_entries
    }

    /// Current utilisation (entries / slots).
    pub fn utilization(&self) -> f64 {
        self.len as f64 / self.slots.len() as f64
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Option<Entry>>()
    }

    #[inline]
    fn index(&self, key: Key, which: u64) -> usize {
        (hash_with_seed(key, 0xc0ff_ee00 + which) % self.slots.len() as u64) as usize
    }

    /// Looks up `key`, returning its value if present.
    pub fn get(&self, key: Key) -> Option<Value> {
        for which in 0..2 {
            if let Some(e) = self.slots[self.index(key, which)] {
                if e.key == key {
                    return Some(e.value);
                }
            }
        }
        self.stash.iter().find(|e| e.key == key).map(|e| e.value)
    }

    /// Inserts or updates `key` with `value`.
    ///
    /// Returns [`BufferInsert::Full`] when the admission limit is reached or
    /// a displacement cycle is detected; the caller should flush and retry.
    pub fn insert(&mut self, key: Key, value: Value) -> BufferInsert {
        // Update in place if the key is already present (§5.1.1: updates hit
        // the buffer directly while the entry is still in memory).
        for which in 0..2 {
            let idx = self.index(key, which);
            if let Some(e) = self.slots[idx] {
                if e.key == key {
                    self.slots[idx] = Some(Entry::new(key, value));
                    return BufferInsert::Stored(Some(e.value));
                }
            }
        }
        if let Some(e) = self.stash.iter_mut().find(|e| e.key == key) {
            let prev = e.value;
            e.value = value;
            return BufferInsert::Stored(Some(prev));
        }
        if self.is_full() {
            return BufferInsert::Full;
        }
        // Standard cuckoo displacement.
        let mut current = Entry::new(key, value);
        let mut which = 0u64;
        for _ in 0..MAX_KICKS {
            let idx = self.index(current.key, which);
            match self.slots[idx] {
                None => {
                    self.slots[idx] = Some(current);
                    self.len += 1;
                    return BufferInsert::Stored(None);
                }
                Some(existing) => {
                    self.slots[idx] = Some(current);
                    current = existing;
                    // The displaced entry moves to its alternate location.
                    which = if self.index(current.key, 0) == idx { 1 } else { 0 };
                }
            }
        }
        // Displacement cycle: every previously stored entry is still in the
        // table, only `current` (which may be an old, displaced entry) is
        // homeless. Park it in the stash so nothing is lost.
        self.stash.push(current);
        self.len += 1;
        BufferInsert::Stored(None)
    }

    /// Removes `key` from the buffer, returning its value if it was present.
    pub fn remove(&mut self, key: Key) -> Option<Value> {
        for which in 0..2 {
            let idx = self.index(key, which);
            if let Some(e) = self.slots[idx] {
                if e.key == key {
                    self.slots[idx] = None;
                    self.len -= 1;
                    return Some(e.value);
                }
            }
        }
        if let Some(pos) = self.stash.iter().position(|e| e.key == key) {
            let e = self.stash.swap_remove(pos);
            self.len -= 1;
            return Some(e.value);
        }
        None
    }

    /// Iterates over all entries (in unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = Entry> + '_ {
        self.slots.iter().filter_map(|s| *s).chain(self.stash.iter().copied())
    }

    /// Drains all entries, leaving the buffer empty.
    pub fn drain(&mut self) -> Vec<Entry> {
        let out: Vec<Entry> = self.iter().collect();
        self.slots.fill(None);
        self.stash.clear();
        self.len = 0;
        out
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.slots.fill(None);
        self.stash.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut b = CuckooBuffer::new(1024, 0.5);
        assert_eq!(b.insert(42, 100), BufferInsert::Stored(None));
        assert_eq!(b.get(42), Some(100));
        assert_eq!(b.remove(42), Some(100));
        assert_eq!(b.get(42), None);
        assert!(b.is_empty());
    }

    #[test]
    fn update_in_place_returns_previous_value() {
        let mut b = CuckooBuffer::new(64, 0.5);
        b.insert(7, 1);
        assert_eq!(b.insert(7, 2), BufferInsert::Stored(Some(1)));
        assert_eq!(b.get(7), Some(2));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn fills_to_half_utilization_without_failures() {
        let mut b = CuckooBuffer::new(8192, 0.5);
        let mut stored = 0;
        for i in 0..b.capacity() as u64 {
            match b.insert(hash_with_seed(i, 3), i) {
                BufferInsert::Stored(_) => stored += 1,
                BufferInsert::Full => break,
            }
        }
        assert_eq!(stored, b.capacity(), "cuckoo table should fill to 50% without cycles");
        assert!(b.is_full());
        assert_eq!(b.insert(u64::MAX, 0), BufferInsert::Full);
    }

    #[test]
    fn matches_a_reference_hashmap() {
        let mut b = CuckooBuffer::new(4096, 0.5);
        let mut model: HashMap<Key, Value> = HashMap::new();
        for i in 0..1500u64 {
            let k = hash_with_seed(i % 700, 9);
            let v = i;
            if let BufferInsert::Stored(_) = b.insert(k, v) {
                model.insert(k, v);
            }
            if i % 3 == 0 {
                let rk = hash_with_seed((i / 2) % 700, 9);
                assert_eq!(b.remove(rk), model.remove(&rk));
            }
        }
        for (k, v) in &model {
            assert_eq!(b.get(*k), Some(*v));
        }
        assert_eq!(b.len(), model.len());
    }

    #[test]
    fn drain_returns_everything_and_empties() {
        let mut b = CuckooBuffer::new(256, 0.5);
        for i in 0..100u64 {
            b.insert(hash_with_seed(i, 1), i);
        }
        let drained = b.drain();
        assert_eq!(drained.len(), 100);
        assert!(b.is_empty());
        assert_eq!(b.get(hash_with_seed(5, 1)), None);
    }

    #[test]
    fn byte_budget_constructor_matches_paper_configuration() {
        // 128 KiB buffer, 16-byte entries, 50% utilisation -> 4096 entries.
        let b = CuckooBuffer::with_byte_budget(128 * 1024, 16, 0.5);
        assert_eq!(b.num_slots(), 8192);
        assert_eq!(b.capacity(), 4096);
    }

    #[test]
    fn degenerate_sizes_are_clamped() {
        let b = CuckooBuffer::new(0, 0.0);
        assert!(b.num_slots() >= 2);
        assert!(b.capacity() >= 1);
    }

    #[test]
    fn iter_visits_each_entry_once() {
        let mut b = CuckooBuffer::new(128, 0.5);
        for i in 0..50u64 {
            b.insert(hash_with_seed(i, 77), i);
        }
        let mut seen: Vec<Key> = b.iter().map(|e| e.key).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 50);
    }
}
