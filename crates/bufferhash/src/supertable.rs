//! Super tables (§5.1): the in-memory half of one key-space partition.
//!
//! A super table owns the DRAM-resident state for its partition — the
//! buffer, the per-incarnation membership filters and the delete list — plus
//! the metadata describing where its incarnations live on flash. All flash
//! I/O is orchestrated by [`crate::clam::Clam`], which keeps this type
//! purely in-memory and easy to test.
//!
//! Nothing here synchronizes: a `SuperTable` assumes its caller serializes
//! mutations *per table*. `Clam` provides exactly that — each table sits in
//! a `TableSlot` behind its own op lock and state lock, so writers to
//! different tables of one stripe run concurrently while this type stays
//! single-writer (see DESIGN.md "Per-table write locks").

use std::collections::HashSet;
use std::collections::VecDeque;

use crate::cuckoo::{BufferInsert, CuckooBuffer};
use crate::eviction::{EvictionPolicy, RetainDecision};
use crate::filters::{FilterBank, FilterMode};
use crate::incarnation::IncarnationLayout;
use crate::types::{Entry, Key, Value, ENTRY_SIZE};

/// Metadata for one on-flash incarnation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncarnationMeta {
    /// Byte offset of the incarnation on flash.
    pub flash_offset: u64,
    /// Number of entries stored in the incarnation.
    pub entries: usize,
    /// Global flush sequence number (unique across the whole CLAM).
    pub seq: u64,
}

/// The DRAM-resident state of one key-space partition.
#[derive(Debug)]
pub struct SuperTable {
    /// Index of this super table within the CLAM.
    id: usize,
    buffer: CuckooBuffer,
    filters: FilterBank,
    /// Incarnation metadata, youngest first (index = age, matching the
    /// filter bank's convention).
    incarnations: VecDeque<IncarnationMeta>,
    /// Keys deleted while their entries were already on flash (§5.1.1).
    delete_list: HashSet<Key>,
    /// Layout used to serialize/parse this table's incarnations.
    layout: IncarnationLayout,
    max_incarnations: usize,
}

impl SuperTable {
    /// Creates an empty super table.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        buffer_bytes: usize,
        max_utilization: f64,
        max_incarnations: usize,
        filter_mode: FilterMode,
        bloom_bits_per_incarnation: usize,
        bloom_hashes: u32,
        layout: IncarnationLayout,
    ) -> Self {
        SuperTable {
            id,
            buffer: CuckooBuffer::with_byte_budget(buffer_bytes, ENTRY_SIZE, max_utilization),
            filters: FilterBank::new(
                filter_mode,
                max_incarnations.max(1),
                bloom_bits_per_incarnation,
                bloom_hashes,
            ),
            incarnations: VecDeque::with_capacity(max_incarnations),
            delete_list: HashSet::new(),
            layout,
            max_incarnations: max_incarnations.max(1),
        }
    }

    /// Index of this super table.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The incarnation serialization layout.
    pub fn layout(&self) -> IncarnationLayout {
        self.layout
    }

    /// Maximum incarnations held on flash for this table (`k`).
    pub fn max_incarnations(&self) -> usize {
        self.max_incarnations
    }

    /// Number of live incarnations.
    pub fn num_incarnations(&self) -> usize {
        self.incarnations.len()
    }

    /// Number of entries currently in the buffer.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Returns `true` when the buffer has reached its admission capacity.
    pub fn buffer_full(&self) -> bool {
        self.buffer.is_full()
    }

    /// Metadata of the incarnation at `age` (0 = youngest).
    pub fn incarnation_at(&self, age: usize) -> Option<IncarnationMeta> {
        self.incarnations.get(age).copied()
    }

    /// Metadata of the oldest incarnation.
    pub fn oldest_incarnation(&self) -> Option<IncarnationMeta> {
        self.incarnations.back().copied()
    }

    /// Looks up `key` in the in-memory state only.
    ///
    /// Returns `Some(Some(value))` if the buffer holds the key,
    /// `Some(None)` if the key is known to be deleted, and `None` when the
    /// caller must consult flash.
    pub fn memory_lookup(&self, key: Key) -> Option<Option<Value>> {
        if self.delete_list.contains(&key) {
            return Some(None);
        }
        self.buffer.get(key).map(Some)
    }

    /// Inserts into the buffer. A new value for a deleted key revives it.
    pub fn buffer_insert(&mut self, key: Key, value: Value) -> BufferInsert {
        let res = self.buffer.insert(key, value);
        if matches!(res, BufferInsert::Stored(_)) {
            self.delete_list.remove(&key);
        }
        res
    }

    /// Deletes `key`: removes it from the buffer if present, otherwise
    /// records it in the delete list so flash copies are ignored (§5.1.1).
    ///
    /// Returns `true` if the key was present in the buffer.
    pub fn delete(&mut self, key: Key) -> bool {
        if self.buffer.remove(key).is_some() {
            // Older values may still exist on flash; shadow them too.
            if self.num_incarnations() > 0 {
                self.delete_list.insert(key);
            }
            true
        } else {
            self.delete_list.insert(key);
            false
        }
    }

    /// Returns `true` if `key` is in the delete list.
    pub fn is_deleted(&self, key: Key) -> bool {
        self.delete_list.contains(&key)
    }

    /// Number of keys in the delete list.
    pub fn delete_list_len(&self) -> usize {
        self.delete_list.len()
    }

    /// Drains the buffer for a flush, returning all entries.
    pub fn drain_buffer(&mut self) -> Vec<Entry> {
        self.buffer.drain()
    }

    /// Registers a freshly written incarnation as the youngest.
    ///
    /// The caller must have made room first (`num_incarnations() <
    /// max_incarnations()`).
    pub fn register_incarnation(&mut self, meta: IncarnationMeta, keys: &[Key]) {
        assert!(
            self.incarnations.len() < self.max_incarnations,
            "register_incarnation on a full incarnation table"
        );
        self.filters.push_newest(keys);
        self.incarnations.push_front(meta);
    }

    /// Drops the oldest incarnation, returning its metadata.
    pub fn drop_oldest_incarnation(&mut self) -> Option<IncarnationMeta> {
        let meta = self.incarnations.pop_back();
        if meta.is_some() {
            self.filters.evict_oldest();
        }
        meta
    }

    /// Force-drops the incarnation with sequence number `seq` (used when the
    /// global log wraps onto its slot). Because the log is written in flush
    /// order, that incarnation is the oldest or among the oldest; any older
    /// ones are dropped along with it.
    ///
    /// Returns the metadata of every incarnation dropped.
    pub fn force_evict_up_to(&mut self, seq: u64) -> Vec<IncarnationMeta> {
        let mut dropped = Vec::new();
        while let Some(oldest) = self.incarnations.back().copied() {
            if oldest.seq > seq {
                break;
            }
            self.drop_oldest_incarnation();
            dropped.push(oldest);
        }
        dropped
    }

    /// Ages (0 = youngest) of incarnations that may contain `key`, youngest
    /// first, according to the membership filters.
    pub fn candidate_incarnations(&self, key: Key) -> Vec<usize> {
        self.filters.query(key)
    }

    /// DRAM words touched by one filter query (for latency accounting).
    pub fn filter_words_per_query(&self) -> usize {
        self.filters.words_per_query()
    }

    /// Decides whether `entry` from the evicted (oldest) incarnation should
    /// be retained under `policy` (§5.1.2).
    ///
    /// For the update-based policy an entry is dead if its key was deleted,
    /// is present in the buffer, or may appear in a *younger* incarnation
    /// (checked through the Bloom filters, so false positives can
    /// occasionally drop a live entry). For the priority-based policy an
    /// entry is dead when its priority is below the threshold.
    pub fn retain_decision(&self, entry: &Entry, policy: &EvictionPolicy) -> RetainDecision {
        match policy {
            EvictionPolicy::Fifo | EvictionPolicy::Lru => RetainDecision::Discard,
            EvictionPolicy::UpdateBased => {
                if self.delete_list.contains(&entry.key) || self.buffer.get(entry.key).is_some() {
                    return RetainDecision::Discard;
                }
                // Ages 0..len-1 are younger than the oldest (len-1).
                let oldest_age = self.num_incarnations().saturating_sub(1);
                for age in 0..oldest_age {
                    if self.filters.may_contain_in(age, entry.key) {
                        return RetainDecision::Discard;
                    }
                }
                RetainDecision::Retain
            }
            EvictionPolicy::PriorityBased { threshold, priority } => {
                if self.delete_list.contains(&entry.key) {
                    return RetainDecision::Discard;
                }
                if priority(entry) >= *threshold {
                    RetainDecision::Retain
                } else {
                    RetainDecision::Discard
                }
            }
        }
    }

    /// Removes delete-list entries whose on-flash copies have all been
    /// evicted. Called after the oldest incarnation is dropped; with the
    /// oldest gone, any deleted key that no longer matches a younger
    /// incarnation's filter cannot exist on flash any more.
    pub fn prune_delete_list(&mut self) {
        if self.incarnations.is_empty() {
            self.delete_list.clear();
            return;
        }
        let filters = &self.filters;
        let live = self.incarnations.len();
        self.delete_list.retain(|&k| (0..live).any(|age| filters.may_contain_in(age, k)));
    }

    /// Approximate DRAM footprint of this super table in bytes (buffer
    /// slots, filters and delete list).
    pub fn memory_bytes(&self) -> usize {
        self.buffer.num_slots() * ENTRY_SIZE
            + self.filters.memory_bytes()
            + self.delete_list.len() * std::mem::size_of::<Key>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::hash_with_seed;

    fn table() -> SuperTable {
        SuperTable::new(
            0,
            16 * 1024,
            0.5,
            4,
            FilterMode::BitSliced,
            1 << 13,
            6,
            IncarnationLayout::new(16 * 1024, 2048).unwrap(),
        )
    }

    fn meta(seq: u64) -> IncarnationMeta {
        IncarnationMeta { flash_offset: seq * 16 * 1024, entries: 10, seq }
    }

    #[test]
    fn buffer_insert_and_memory_lookup() {
        let mut t = table();
        assert!(matches!(t.buffer_insert(1, 10), BufferInsert::Stored(None)));
        assert_eq!(t.memory_lookup(1), Some(Some(10)));
        assert_eq!(t.memory_lookup(2), None);
        assert_eq!(t.buffer_len(), 1);
    }

    #[test]
    fn delete_semantics() {
        let mut t = table();
        t.buffer_insert(1, 10);
        // Deleting a buffered key removes it outright (no flash copies yet).
        assert!(t.delete(1));
        assert_eq!(t.memory_lookup(1), None);
        assert_eq!(t.delete_list_len(), 0);
        // Deleting an unbuffered key goes to the delete list and shadows
        // flash lookups.
        assert!(!t.delete(2));
        assert!(t.is_deleted(2));
        assert_eq!(t.memory_lookup(2), Some(None));
        // Re-inserting revives the key.
        t.buffer_insert(2, 20);
        assert!(!t.is_deleted(2));
        assert_eq!(t.memory_lookup(2), Some(Some(20)));
    }

    #[test]
    fn delete_of_buffered_key_with_flash_copies_shadows_them() {
        let mut t = table();
        t.register_incarnation(meta(0), &[7]);
        t.buffer_insert(7, 70);
        assert!(t.delete(7));
        // The flash copy must remain shadowed.
        assert!(t.is_deleted(7));
        assert_eq!(t.memory_lookup(7), Some(None));
    }

    #[test]
    fn incarnation_registration_and_age_order() {
        let mut t = table();
        for seq in 0..4u64 {
            let keys: Vec<Key> = (0..10).map(|i| hash_with_seed(i, seq + 1)).collect();
            t.register_incarnation(meta(seq), &keys);
        }
        assert_eq!(t.num_incarnations(), 4);
        // Youngest (seq 3) is age 0; oldest (seq 0) is age 3.
        assert_eq!(t.incarnation_at(0).unwrap().seq, 3);
        assert_eq!(t.oldest_incarnation().unwrap().seq, 0);
        // Filter candidates agree with ages.
        let key_of_seq0 = hash_with_seed(5, 1);
        assert!(t.candidate_incarnations(key_of_seq0).contains(&3));
    }

    #[test]
    fn drop_oldest_keeps_filters_in_sync() {
        let mut t = table();
        for seq in 0..4u64 {
            let keys: Vec<Key> = (0..10).map(|i| hash_with_seed(i, seq + 1)).collect();
            t.register_incarnation(meta(seq), &keys);
        }
        let dropped = t.drop_oldest_incarnation().unwrap();
        assert_eq!(dropped.seq, 0);
        assert_eq!(t.num_incarnations(), 3);
        // Keys of seq 1 are now the oldest (age 2).
        let key_of_seq1 = hash_with_seed(3, 2);
        assert!(t.candidate_incarnations(key_of_seq1).contains(&2));
    }

    #[test]
    fn force_evict_drops_everything_up_to_seq() {
        let mut t = table();
        for seq in 0..4u64 {
            t.register_incarnation(meta(seq), &[seq]);
        }
        let dropped = t.force_evict_up_to(1);
        assert_eq!(dropped.len(), 2);
        assert_eq!(t.num_incarnations(), 2);
        assert_eq!(t.oldest_incarnation().unwrap().seq, 2);
        // Evicting a seq that is not present does nothing.
        assert!(t.force_evict_up_to(1).is_empty());
    }

    #[test]
    fn retain_decision_fifo_always_discards() {
        let t = table();
        let e = Entry::new(1, 2);
        assert_eq!(t.retain_decision(&e, &EvictionPolicy::Fifo), RetainDecision::Discard);
        assert_eq!(t.retain_decision(&e, &EvictionPolicy::Lru), RetainDecision::Discard);
    }

    #[test]
    fn retain_decision_update_based() {
        let mut t = table();
        // Oldest incarnation (about to be evicted) holds keys 100..110.
        let old_keys: Vec<Key> = (100..110).collect();
        t.register_incarnation(meta(0), &old_keys);
        // A younger incarnation holds key 100 (so 100 was updated).
        t.register_incarnation(meta(1), &[100]);
        // Key 101 is in the buffer (updated), key 102 is deleted.
        t.buffer_insert(101, 1);
        t.delete(102);
        assert_eq!(
            t.retain_decision(&Entry::new(100, 0), &EvictionPolicy::UpdateBased),
            RetainDecision::Discard
        );
        assert_eq!(
            t.retain_decision(&Entry::new(101, 0), &EvictionPolicy::UpdateBased),
            RetainDecision::Discard
        );
        assert_eq!(
            t.retain_decision(&Entry::new(102, 0), &EvictionPolicy::UpdateBased),
            RetainDecision::Discard
        );
        // Key 105 was never touched again: retain it.
        assert_eq!(
            t.retain_decision(&Entry::new(105, 0), &EvictionPolicy::UpdateBased),
            RetainDecision::Retain
        );
    }

    #[test]
    fn retain_decision_priority_based() {
        let t = table();
        let policy = EvictionPolicy::priority_threshold(50);
        assert_eq!(t.retain_decision(&Entry::new(1, 99), &policy), RetainDecision::Retain);
        assert_eq!(t.retain_decision(&Entry::new(1, 10), &policy), RetainDecision::Discard);
    }

    #[test]
    fn prune_delete_list_drops_unreachable_keys() {
        let mut t = table();
        t.register_incarnation(meta(0), &[42]);
        t.delete(42);
        t.delete(43); // never on flash
        assert_eq!(t.delete_list_len(), 2);
        t.prune_delete_list();
        // 42 still matches the live incarnation's filter; 43 matches nothing
        // (up to Bloom false positives, absent at this filter size).
        assert!(t.is_deleted(42));
        assert!(t.delete_list_len() <= 2);
        t.drop_oldest_incarnation();
        t.prune_delete_list();
        assert_eq!(t.delete_list_len(), 0);
    }

    #[test]
    fn memory_accounting_is_positive_and_grows_with_filters() {
        let mut t = table();
        let before = t.memory_bytes();
        t.register_incarnation(meta(0), &[1, 2, 3]);
        assert!(t.memory_bytes() >= before);
        assert!(t.memory_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "full incarnation table")]
    fn registering_beyond_capacity_panics() {
        let mut t = table();
        for seq in 0..5u64 {
            t.register_incarnation(meta(seq), &[seq]);
        }
    }
}
