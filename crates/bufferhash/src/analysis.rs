//! Closed-form I/O cost model (§6).
//!
//! The paper derives analytical expressions for the amortized and worst-case
//! insert cost and the expected lookup cost of BufferHash on flash. These
//! functions reproduce those expressions; they drive the analytical curves
//! of Figure 3 and Figure 4 and are cross-checked against the simulator in
//! the benchmark harness.

use flashsim::{DeviceProfile, MediumKind, OverlapModel, QueueCapabilities, SimDuration};

use crate::config::tuning;

/// Flash cost parameters extracted from a device profile, in the linear form
/// `a + b·x` used by the paper.
#[derive(Debug, Clone)]
pub struct FlashCostModel {
    /// Read cost function.
    pub read: flashsim::LinearCost,
    /// Write cost function.
    pub write: flashsim::LinearCost,
    /// Erase cost function.
    pub erase: flashsim::LinearCost,
    /// Flash page / SSD sector size in bytes (`S_p`).
    pub page_size: usize,
    /// Erase-block size in bytes (`S_b`).
    pub block_size: usize,
    /// `true` when an FTL hides erase/copy costs inside the write cost
    /// (SSDs): the `C2`/`C3` terms are then omitted (§6.1).
    pub ftl_managed: bool,
    /// Submission-queue shape of the device (depth and overlap model),
    /// driving the queue-depth-aware cost terms below.
    pub queue: QueueCapabilities,
}

impl FlashCostModel {
    /// Builds a cost model from a device profile.
    pub fn from_profile(profile: &DeviceProfile) -> Self {
        FlashCostModel {
            read: profile.read_cost,
            write: profile.write_cost,
            erase: profile.erase_cost,
            page_size: profile.page_size as usize,
            block_size: profile.block_size as usize,
            ftl_managed: matches!(profile.kind, MediumKind::Ssd | MediumKind::Dram),
            queue: profile.queue,
        }
    }

    /// Cost of reading one flash page / SSD sector (`c_r`).
    pub fn page_read_cost(&self) -> SimDuration {
        self.read.cost(self.page_size)
    }

    /// `C1`: cost of sequentially writing one buffer of `buffer_bytes`.
    pub fn flush_write_cost(&self, buffer_bytes: usize) -> SimDuration {
        let pages = buffer_bytes.div_ceil(self.page_size);
        self.write.cost(pages * self.page_size)
    }

    /// `C2`: erase cost charged to one flush (zero for FTL-managed devices).
    pub fn flush_erase_cost(&self, buffer_bytes: usize) -> SimDuration {
        if self.ftl_managed {
            return SimDuration::ZERO;
        }
        let ni = buffer_bytes.div_ceil(self.page_size) as f64;
        let nb = (self.block_size / self.page_size) as f64;
        let blocks = (ni / nb).ceil() as usize;
        let erase = self.erase.cost(blocks * self.block_size);
        // Only ni/nb of flushes need an erase when the buffer is smaller
        // than a block.
        erase * (ni / nb).min(1.0)
    }

    /// `C3`: cost of saving and restoring valid pages that share an erase
    /// block with the evicted incarnation (zero for FTL-managed devices and
    /// for buffers that are a whole number of blocks).
    pub fn flush_copy_cost(&self, buffer_bytes: usize) -> SimDuration {
        if self.ftl_managed {
            return SimDuration::ZERO;
        }
        let ni = buffer_bytes.div_ceil(self.page_size);
        let nb = self.block_size / self.page_size;
        if nb == 0 {
            return SimDuration::ZERO;
        }
        let p_prime = (nb - ni % nb) % nb;
        if p_prime == 0 {
            return SimDuration::ZERO;
        }
        self.read.cost(p_prime * self.page_size) + self.write.cost(p_prime * self.page_size)
    }

    /// Worst-case insert cost: a full flush, `C1 + C2 + C3`.
    pub fn insert_worst_case(&self, buffer_bytes: usize) -> SimDuration {
        self.flush_write_cost(buffer_bytes)
            + self.flush_erase_cost(buffer_bytes)
            + self.flush_copy_cost(buffer_bytes)
    }

    /// Amortized insert cost: `(C1 + C2 + C3)·s/B'` where `s` is the
    /// *effective* entry size (entry size / buffer utilisation).
    pub fn insert_amortized(
        &self,
        buffer_bytes: usize,
        effective_entry_size: usize,
    ) -> SimDuration {
        let worst = self.insert_worst_case(buffer_bytes);
        let per_flush_inserts = (buffer_bytes / effective_entry_size.max(1)).max(1) as u64;
        worst / per_flush_inserts
    }

    /// Expected lookup I/O cost for a successful-lookup probability of zero
    /// (i.e. the false-positive-driven overhead only):
    /// `C = (F/B)·(1/2)^(b·s·ln2/F)·c_r` (§6.2).
    pub fn lookup_expected_overhead(
        &self,
        flash_capacity: u64,
        total_buffer_bytes: u64,
        bloom_bytes: u64,
        effective_entry_size: usize,
    ) -> SimDuration {
        let ms = tuning::expected_lookup_overhead(
            flash_capacity,
            total_buffer_bytes,
            bloom_bytes,
            effective_entry_size,
            self.page_read_cost().as_millis_f64(),
        );
        SimDuration::from_millis_f64(ms)
    }

    /// Expected lookup cost including true hits: a fraction `lsr` of lookups
    /// must read one page (their key is on flash), and every lookup pays the
    /// false-positive overhead.
    pub fn lookup_expected_cost(
        &self,
        flash_capacity: u64,
        total_buffer_bytes: u64,
        bloom_bytes: u64,
        effective_entry_size: usize,
        lookup_success_rate: f64,
    ) -> SimDuration {
        let overhead = self.lookup_expected_overhead(
            flash_capacity,
            total_buffer_bytes,
            bloom_bytes,
            effective_entry_size,
        );
        overhead + self.page_read_cost() * lookup_success_rate.clamp(0.0, 1.0)
    }

    /// The `α` ratio of §6.3: cost of sequentially writing one buffer
    /// relative to the cost of one random page write.
    pub fn alpha(&self, buffer_bytes: usize) -> f64 {
        let buffered = self.flush_write_cost(buffer_bytes).as_nanos() as f64;
        let single = self.write.cost(self.page_size).as_nanos().max(1) as f64;
        buffered / single
    }

    // ------------------------------------------------------------------
    // Batched-operation cost model
    // ------------------------------------------------------------------
    //
    // Extension of the §6.1 amortization argument to the batched pipeline
    // (`Clam::insert_batch`): buffering amortizes *flash* cost over the
    // entries of one flush; batching additionally amortizes the *host-side
    // dispatch* cost over the operations of one batch. Per-op end-to-end
    // insert cost at batch size `b`:
    //
    //   T(b) = D/b + r + (C1 + C2 + C3)·s/B'
    //
    // where `D` is the per-call dispatch overhead (`BASE_OP_OVERHEAD`),
    // `r` the residual per-op overhead inside a batch
    // (`BATCHED_OP_OVERHEAD`, with `r = 0` and `D` un-divided at `b = 1`),
    // and the last term is `insert_amortized`. Flush-write coalescing
    // shaves the fixed command cost of contiguous incarnation writes on
    // top of this; the model omits it, so it is conservative.

    /// End-to-end amortized per-insert cost at batch size 1 (the per-op
    /// pipeline): dispatch overhead plus the §6.1 amortized flash cost.
    pub fn insert_end_to_end(
        &self,
        buffer_bytes: usize,
        effective_entry_size: usize,
    ) -> SimDuration {
        crate::clam::BASE_OP_OVERHEAD + self.insert_amortized(buffer_bytes, effective_entry_size)
    }

    /// End-to-end amortized per-insert cost when inserts arrive in batches
    /// of `batch_size`: the dispatch overhead is paid once per batch and a
    /// residual per-op overhead remains.
    pub fn insert_batch_amortized(
        &self,
        buffer_bytes: usize,
        effective_entry_size: usize,
        batch_size: usize,
    ) -> SimDuration {
        if batch_size <= 1 {
            return self.insert_end_to_end(buffer_bytes, effective_entry_size);
        }
        crate::clam::BASE_OP_OVERHEAD / batch_size as u64
            + crate::clam::BATCHED_OP_OVERHEAD
            + self.insert_amortized(buffer_bytes, effective_entry_size)
    }

    /// Predicted insert-throughput speedup of batch size `batch_size` over
    /// the per-op pipeline: `T(1) / T(b)`.
    pub fn batch_insert_speedup(
        &self,
        buffer_bytes: usize,
        effective_entry_size: usize,
        batch_size: usize,
    ) -> f64 {
        let per_op = self.insert_end_to_end(buffer_bytes, effective_entry_size).as_nanos() as f64;
        let batched = self
            .insert_batch_amortized(buffer_bytes, effective_entry_size, batch_size)
            .as_nanos()
            .max(1) as f64;
        per_op / batched
    }

    // ------------------------------------------------------------------
    // Queue-depth-aware cost model
    // ------------------------------------------------------------------
    //
    // Submission queues (`Device::submit`) add a second, orthogonal
    // amortization axis: independent requests of one submission overlap on
    // up to `L` queue lanes (`L = min(depth, max_queue_depth)`, 1 for
    // serial media), so a batch of `n` equal-cost requests completes in
    //
    //   M(n, d) = c · ⌈n / L⌉
    //
    // instead of `n·c` — the greedy earliest-free-lane schedule the
    // simulated backends implement. The `io_queue_depth` binary
    // cross-checks these expressions against the simulator and against
    // the real-file worker pool.

    /// Number of queue lanes a submission issued at `queue_depth` actually
    /// gets: 1 on serial media, otherwise `queue_depth` capped by the
    /// device's maximum depth.
    ///
    /// Deliberately *not* named like
    /// [`QueueCapabilities::effective_lanes`], whose argument is a batch
    /// size; this one takes the *requested queue depth* of a sweep.
    pub fn lanes_at_depth(&self, queue_depth: usize) -> usize {
        match self.queue.overlap {
            OverlapModel::Serial => 1,
            // `.max(1)` twice: both a zero requested depth and a degenerate
            // zero-depth profile degrade to serial instead of panicking.
            OverlapModel::Overlapped => queue_depth.min(self.queue.max_queue_depth.max(1)).max(1),
        }
    }

    /// Predicted elapsed (makespan) time of a submission of `requests`
    /// equal-cost requests, each costing `unit_cost`, issued at
    /// `queue_depth`.
    pub fn submit_makespan(
        &self,
        requests: usize,
        unit_cost: SimDuration,
        queue_depth: usize,
    ) -> SimDuration {
        let lanes = self.lanes_at_depth(queue_depth);
        unit_cost * requests.div_ceil(lanes) as u64
    }

    /// Predicted elapsed time of `flushes` buffer flushes (each `C1+C2+C3`
    /// for a buffer of `buffer_bytes`) submitted as one batch at
    /// `queue_depth` — the queue-depth-aware cost of draining a coalesced
    /// flush queue.
    pub fn flush_queue_makespan(
        &self,
        flushes: usize,
        buffer_bytes: usize,
        queue_depth: usize,
    ) -> SimDuration {
        self.submit_makespan(flushes, self.insert_worst_case(buffer_bytes), queue_depth)
    }

    /// Predicted throughput gain of issuing `requests` equal-cost requests
    /// at `queue_depth` over depth 1: `n·c / M(n, d)`. Saturates at the
    /// device's maximum queue depth and is exactly 1.0 on serial media.
    pub fn queue_depth_speedup(&self, requests: usize, queue_depth: usize) -> f64 {
        if requests == 0 {
            return 1.0;
        }
        let lanes = self.lanes_at_depth(queue_depth);
        requests as f64 / requests.div_ceil(lanes) as f64
    }

    // ------------------------------------------------------------------
    // Queued-lookup cost model
    // ------------------------------------------------------------------
    //
    // The queued read pipeline (`Clam::lookup_batch`) resolves a batch in
    // probe *waves*: each wave submits the next pending page read of every
    // unresolved key as one submission. A batch of `n` keys that each
    // probe `w` pages therefore runs `w` waves of `n` equal-cost reads,
    // and its flash time is
    //
    //   M_lookup(n, w, d) = w · c_r · ⌈n / L⌉
    //
    // with `L = min(d, max_queue_depth)` lanes (1 on serial media) — `w`
    // copies of the `submit_makespan` term. The expected per-key wave
    // count on a miss-heavy workload comes from the Bloom filters: each of
    // the `k` incarnations false-positives with rate `p`, and each probed
    // candidate occasionally chains an extra overflow-page hop.

    /// Expected flash probes (page reads, and hence probe waves) per
    /// *unsuccessful* lookup: `k·p·(1 + h)` where `k` is the number of
    /// incarnations per super table, `p` the per-incarnation Bloom
    /// false-positive rate, and `h` the expected extra overflow-chain hops
    /// per probed candidate (0 at the paper's 50% page fill, where
    /// overflow is essentially non-existent; `k·1·(1+h)` with disabled
    /// filters).
    pub fn expected_probes_per_miss(
        &self,
        incarnations: usize,
        false_positive_rate: f64,
        chain_hop_rate: f64,
    ) -> f64 {
        incarnations as f64 * false_positive_rate.clamp(0.0, 1.0) * (1.0 + chain_hop_rate.max(0.0))
    }

    /// Predicted elapsed (makespan) flash time of a queued `lookup_batch`
    /// of `keys` keys that each probe `probes_per_key` flash pages, issued
    /// at `queue_depth`: `probes_per_key` waves of `⌈keys / L⌉` page-read
    /// slots. Matches the simulator **exactly** on uniform probe chains
    /// (equal per-key probe counts, page-aligned reads) — the
    /// `io_queue_depth` binary and the CLAM test suite cross-check the
    /// identity.
    ///
    /// ```
    /// use bufferhash::analysis::FlashCostModel;
    /// use flashsim::DeviceProfile;
    ///
    /// // Intel-class SSD: overlapped queue, depth 8.
    /// let model = FlashCostModel::from_profile(&DeviceProfile::intel_x18m());
    /// // 64 miss-heavy lookups, Bloom filters disabled so each key probes
    /// // all 8 of its incarnations:
    /// let serial = model.lookup_batch_makespan(64, 8, 1);
    /// let queued = model.lookup_batch_makespan(64, 8, 8);
    /// assert_eq!(serial, queued * 8, "8 lanes retire the waves 8x faster");
    /// assert!((model.lookup_batch_speedup(64, 8) - 8.0).abs() < 1e-9);
    /// ```
    pub fn lookup_batch_makespan(
        &self,
        keys: usize,
        probes_per_key: usize,
        queue_depth: usize,
    ) -> SimDuration {
        self.submit_makespan(keys, self.page_read_cost(), queue_depth) * probes_per_key as u64
    }

    /// [`lookup_batch_makespan`](Self::lookup_batch_makespan) for a
    /// fractional expected wave count (e.g. straight from
    /// [`expected_probes_per_miss`](Self::expected_probes_per_miss)).
    pub fn expected_lookup_batch_makespan(
        &self,
        keys: usize,
        probes_per_key: f64,
        queue_depth: usize,
    ) -> SimDuration {
        let wave = self.submit_makespan(keys, self.page_read_cost(), queue_depth);
        SimDuration::from_millis_f64(wave.as_millis_f64() * probes_per_key.max(0.0))
    }

    /// Predicted throughput gain of the queued lookup pipeline at
    /// `queue_depth` over depth 1 for a batch of `keys` keys. The wave
    /// count cancels, so this is exactly the queue-depth speedup of one
    /// wave: saturates at the device's maximum depth, 1.0 on serial media.
    pub fn lookup_batch_speedup(&self, keys: usize, queue_depth: usize) -> f64 {
        self.queue_depth_speedup(keys, queue_depth)
    }

    // ------------------------------------------------------------------
    // Completion-ring cost model
    // ------------------------------------------------------------------
    //
    // The streaming ring pipeline removes the per-round barrier: the
    // moment one key's page read retires, its next read enters the queue,
    // so the schedule is a single list schedule of `n` chains of `w`
    // equal-cost reads on `L` lanes instead of `w` barrier-separated waves
    // of `n` reads. Its makespan is the classic level-schedule bound
    //
    //   M_ring(n, w, d) = c_r · max(w, ⌈n·w / L⌉)
    //
    // — total work spread over the lanes, floored by the longest chain.
    // For `L | n` this equals the barrier pipeline's `w·⌈n/L⌉` term: on
    // uniform simulated latencies the ring's win is only the tail
    // (`n mod L`) rounding. The structural win appears on variable
    // *measured* latencies (the file backend), where the barrier pays
    // every round's straggler while the ring amortizes stragglers across
    // the whole stream; the `io_queue_depth` harness measures that gap.

    /// Predicted elapsed (makespan) flash time of a **streaming ring**
    /// `lookup_batch` of `keys` keys that each probe `probes_per_key`
    /// flash pages, issued at `queue_depth`: the total page-read work
    /// spread over the lanes, floored by the per-key chain length.
    /// Matches the simulator **exactly** on uniform probe chains — the
    /// CLAM test suite and the `io_queue_depth` binary cross-check the
    /// identity.
    ///
    /// ```
    /// use bufferhash::analysis::FlashCostModel;
    /// use flashsim::DeviceProfile;
    ///
    /// // Intel-class SSD: overlapped queue, depth 8.
    /// let model = FlashCostModel::from_profile(&DeviceProfile::intel_x18m());
    /// // 60 miss-heavy lookups probing 4 incarnations each: the barrier
    /// // pipeline pays 4 waves of ceil(60/8) = 8 slots; the ring packs
    /// // the same 240 reads into ceil(240/8) = 30 slots.
    /// let waves = model.lookup_batch_makespan(60, 4, 8);
    /// let ring = model.lookup_ring_makespan(60, 4, 8);
    /// assert_eq!(waves, model.page_read_cost() * 32);
    /// assert_eq!(ring, model.page_read_cost() * 30);
    /// assert!(model.ring_over_waves_speedup(60, 4, 8) > 1.0);
    /// ```
    pub fn lookup_ring_makespan(
        &self,
        keys: usize,
        probes_per_key: usize,
        queue_depth: usize,
    ) -> SimDuration {
        if keys == 0 || probes_per_key == 0 {
            return SimDuration::ZERO;
        }
        let lanes = self.lanes_at_depth(queue_depth);
        let slots = ((keys * probes_per_key).div_ceil(lanes)).max(probes_per_key);
        self.page_read_cost() * slots as u64
    }

    /// Predicted gain of the streaming ring pipeline over the barrier wave
    /// pipeline for the same workload: `M_waves / M_ring`. Exactly 1.0
    /// when the lane count divides the key count (uniform simulated
    /// latencies leave only tail rounding) and on serial media; the
    /// measured gap on real storage is larger, because the barrier also
    /// pays every wave's straggler.
    pub fn ring_over_waves_speedup(
        &self,
        keys: usize,
        probes_per_key: usize,
        queue_depth: usize,
    ) -> f64 {
        let ring = self.lookup_ring_makespan(keys, probes_per_key, queue_depth);
        if ring.is_zero() {
            return 1.0;
        }
        let waves = self.lookup_batch_makespan(keys, probes_per_key, queue_depth);
        waves.as_nanos() as f64 / ring.as_nanos() as f64
    }

    /// Predicted elapsed (makespan) flash time of `flushes` ring-admitted
    /// buffer flushes (each a single incarnation write costing
    /// `C1+C2+C3` for a buffer of `buffer_bytes`) at `queue_depth`:
    ///
    ///   `M_flush(f, d) = c_w · ⌈f / L⌉`
    ///
    /// Flush chains are single-write chains (chain length 1), so the
    /// level-schedule bound `max(1, ⌈f·1 / L⌉)` collapses to the barrier
    /// drain's [`flush_queue_makespan`](Self::flush_queue_makespan): on
    /// **uniform simulated latencies** ring and barrier write phases cost
    /// the same, and the ring's win comes from overlapping the write phase
    /// with probe traffic ([`mixed_ring_makespan`](Self::mixed_ring_makespan))
    /// and, on real storage, from streaming past stragglers. The
    /// `io_queue_depth` binary cross-checks the identity against the
    /// simulator.
    ///
    /// ```
    /// use bufferhash::analysis::FlashCostModel;
    /// use flashsim::DeviceProfile;
    ///
    /// let model = FlashCostModel::from_profile(&DeviceProfile::intel_x18m());
    /// // 16 flushes of 32 KiB buffers over 8 lanes: two write slots.
    /// let ring = model.flush_ring_makespan(16, 32 << 10, 8);
    /// assert_eq!(ring, model.insert_worst_case(32 << 10) * 2);
    /// // Single-write chains: identical to the barrier drain's makespan.
    /// assert_eq!(ring, model.flush_queue_makespan(16, 32 << 10, 8));
    /// ```
    pub fn flush_ring_makespan(
        &self,
        flushes: usize,
        buffer_bytes: usize,
        queue_depth: usize,
    ) -> SimDuration {
        if flushes == 0 {
            return SimDuration::ZERO;
        }
        let lanes = self.lanes_at_depth(queue_depth);
        self.insert_worst_case(buffer_bytes) * flushes.div_ceil(lanes) as u64
    }

    /// Predicted elapsed (makespan) flash time of a **mixed** ring stream:
    /// `flushes` buffer flushes admitted ahead of `keys` probe chains of
    /// `probes_per_key` page reads each, all sharing one completion ring
    /// at `queue_depth`. Writes are admitted first (data-effect order:
    /// reads of reclaimed slots must observe the written bytes), so the
    /// schedule is a write phase followed by a read phase:
    ///
    ///   `M_mixed = M_flush(f, d) + M_ring(n, w, d)`
    ///
    /// Matches the simulator **exactly** whenever the lane count divides
    /// the flush count (the write phase then ends with every lane equally
    /// busy, so the read phase starts from a flat frontier exactly as
    /// [`lookup_ring_makespan`](Self::lookup_ring_makespan) assumes);
    /// otherwise the read phase backfills the write phase's ragged tail
    /// and this expression is an upper bound. The CLAM test suite and
    /// `io_queue_depth` part [6/6] cross-check the identity at every
    /// swept depth.
    ///
    /// ```
    /// use bufferhash::analysis::FlashCostModel;
    /// use flashsim::DeviceProfile;
    ///
    /// let model = FlashCostModel::from_profile(&DeviceProfile::intel_x18m());
    /// let mixed = model.mixed_ring_makespan(48, 4, 8, 32 << 10, 8);
    /// assert_eq!(
    ///     mixed,
    ///     model.flush_ring_makespan(8, 32 << 10, 8)
    ///         + model.lookup_ring_makespan(48, 4, 8)
    /// );
    /// ```
    pub fn mixed_ring_makespan(
        &self,
        keys: usize,
        probes_per_key: usize,
        flushes: usize,
        buffer_bytes: usize,
        queue_depth: usize,
    ) -> SimDuration {
        self.flush_ring_makespan(flushes, buffer_bytes, queue_depth)
            + self.lookup_ring_makespan(keys, probes_per_key, queue_depth)
    }

    /// Predicted elapsed (makespan) time of a recovery scan
    /// ([`Clam::recover`](crate::Clam::recover)): `slots` slot reads of
    /// `slot_bytes` each, admitted to the completion ring without waiting
    /// at `queue_depth`. Each read spans `⌈slot_bytes / S_p⌉` pages, so
    ///
    ///   `M_recover(s, d) = c_slot · ⌈s / L⌉`,  `c_slot = read(⌈B/S_p⌉·S_p)`
    ///
    /// with `L = min(d, max_queue_depth)` lanes (1 on serial media).
    /// Matches the simulator **exactly** on idle devices (slot reads are
    /// equal-cost and page-aligned); the CLAM test suite and the
    /// `io_queue_depth` `recovery` part cross-check the identity.
    ///
    /// ```
    /// use bufferhash::analysis::FlashCostModel;
    /// use flashsim::DeviceProfile;
    ///
    /// let model = FlashCostModel::from_profile(&DeviceProfile::intel_x18m());
    /// // 256 slots of 32 KiB: 8 ring lanes retire the scan 8x faster.
    /// let serial = model.recovery_scan_makespan(256, 32 << 10, 1);
    /// let ringed = model.recovery_scan_makespan(256, 32 << 10, 8);
    /// assert_eq!(serial, ringed * 8);
    /// ```
    pub fn recovery_scan_makespan(
        &self,
        slots: usize,
        slot_bytes: usize,
        queue_depth: usize,
    ) -> SimDuration {
        let pages = slot_bytes.div_ceil(self.page_size);
        self.submit_makespan(slots, self.read.cost(pages * self.page_size), queue_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> FlashCostModel {
        FlashCostModel::from_profile(&DeviceProfile::flash_chip())
    }

    fn ssd() -> FlashCostModel {
        FlashCostModel::from_profile(&DeviceProfile::intel_x18m())
    }

    #[test]
    fn ssd_model_omits_erase_and_copy_terms() {
        let m = ssd();
        assert_eq!(m.flush_erase_cost(128 * 1024), SimDuration::ZERO);
        assert_eq!(m.flush_copy_cost(128 * 1024), SimDuration::ZERO);
        assert!(m.flush_write_cost(128 * 1024) > SimDuration::ZERO);
    }

    #[test]
    fn chip_insert_cost_is_minimised_near_the_block_size() {
        // Figure 4(a): on a raw chip, the amortized insert cost is lowest
        // when the buffer matches the erase-block size (128 KiB).
        let m = chip();
        let s_eff = 32;
        let at_block = m.insert_amortized(128 * 1024, s_eff);
        let smaller = m.insert_amortized(16 * 1024, s_eff);
        let larger_cost = m.insert_amortized(4 * 1024 * 1024, s_eff);
        assert!(at_block <= smaller, "block-sized buffer should beat smaller buffers");
        // Much larger buffers are no better than the block-sized one.
        assert!(at_block <= larger_cost * 2);
    }

    #[test]
    fn amortized_cost_is_inverse_in_buffer_size_for_ssds() {
        let m = ssd();
        let small = m.insert_amortized(32 * 1024, 32);
        let large = m.insert_amortized(1024 * 1024, 32);
        assert!(large < small, "larger buffers amortize better on SSDs");
    }

    #[test]
    fn worst_case_grows_with_buffer_size() {
        let m = ssd();
        assert!(m.insert_worst_case(1024 * 1024) > m.insert_worst_case(64 * 1024));
    }

    #[test]
    fn copy_cost_zero_when_buffer_is_block_multiple() {
        let m = chip();
        assert_eq!(m.flush_copy_cost(128 * 1024), SimDuration::ZERO);
        assert_eq!(m.flush_copy_cost(256 * 1024), SimDuration::ZERO);
        assert!(m.flush_copy_cost(96 * 1024) > SimDuration::ZERO);
    }

    #[test]
    fn lookup_overhead_shrinks_with_more_bloom_memory() {
        let m = ssd();
        let f = 32u64 << 30;
        let b = 2u64 << 30;
        let small = m.lookup_expected_overhead(f, b, 128 << 20, 32);
        let large = m.lookup_expected_overhead(f, b, 1 << 30, 32);
        let very_large = m.lookup_expected_overhead(f, b, 2 << 30, 32);
        assert!(large < small);
        // With ~1 GB of Bloom filters the overhead drops well below one page
        // read per lookup, and keeps shrinking with more memory (Figure 3).
        assert!(large < m.page_read_cost() / 2);
        assert!(very_large < m.page_read_cost() / 10);
    }

    #[test]
    fn lookup_cost_scales_with_success_rate() {
        let m = ssd();
        let f = 32u64 << 30;
        let b = 2u64 << 30;
        let at_0 = m.lookup_expected_cost(f, b, 1 << 30, 32, 0.0);
        let at_40 = m.lookup_expected_cost(f, b, 1 << 30, 32, 0.4);
        let at_100 = m.lookup_expected_cost(f, b, 1 << 30, 32, 1.0);
        assert!(at_0 < at_40 && at_40 < at_100);
        // 40% LSR on the Intel profile should land in the ~0.05–0.15 ms
        // range the paper reports.
        let ms = at_40.as_millis_f64();
        assert!((0.02..0.3).contains(&ms), "40% LSR expected cost {ms} ms");
    }

    #[test]
    fn batch_cost_shrinks_with_batch_size_and_saturates() {
        let m = ssd();
        let (buf, s_eff) = (32 * 1024, 32);
        let b1 = m.insert_batch_amortized(buf, s_eff, 1);
        let b8 = m.insert_batch_amortized(buf, s_eff, 8);
        let b64 = m.insert_batch_amortized(buf, s_eff, 64);
        let b4096 = m.insert_batch_amortized(buf, s_eff, 4096);
        assert_eq!(b1, m.insert_end_to_end(buf, s_eff));
        assert!(b8 < b1 && b64 < b8 && b4096 <= b64);
        // The residual per-op overhead and the flash term bound the win.
        let floor = m.insert_amortized(buf, s_eff) + crate::clam::BATCHED_OP_OVERHEAD;
        assert!(b4096 >= floor);
    }

    #[test]
    fn model_predicts_at_least_2x_speedup_at_batch_64_on_ssd() {
        let m = ssd();
        let speedup = m.batch_insert_speedup(32 * 1024, 32, 64);
        assert!(speedup >= 2.0, "predicted speedup {speedup:.2} below 2x");
        // Batching is near-free to opt out of: batch size 1 is the per-op
        // path by definition.
        let unity = m.batch_insert_speedup(32 * 1024, 32, 1);
        assert!((unity - 1.0).abs() < 1e-9);
    }

    #[test]
    fn queue_model_overlaps_on_intel_and_not_on_serial_media() {
        let m = ssd(); // Intel: overlapped, depth 8
        let c = SimDuration::from_micros(100);
        assert_eq!(m.lanes_at_depth(1), 1);
        assert_eq!(m.lanes_at_depth(4), 4);
        assert_eq!(m.lanes_at_depth(64), 8, "saturates at the device depth");
        assert_eq!(m.submit_makespan(16, c, 1), c * 16);
        assert_eq!(m.submit_makespan(16, c, 8), c * 2);
        assert!((m.queue_depth_speedup(16, 8) - 8.0).abs() < 1e-9);
        assert!((m.queue_depth_speedup(16, 64) - 8.0).abs() < 1e-9);
        assert!((m.queue_depth_speedup(0, 8) - 1.0).abs() < 1e-9);

        let serial = chip();
        assert_eq!(serial.lanes_at_depth(8), 1);
        assert!((serial.queue_depth_speedup(16, 8) - 1.0).abs() < 1e-9);

        // A degenerate zero-depth profile degrades to serial, not a panic.
        let degenerate = FlashCostModel::from_profile(&DeviceProfile {
            queue: flashsim::QueueCapabilities::overlapped(0),
            ..DeviceProfile::intel_x18m()
        });
        assert_eq!(degenerate.lanes_at_depth(4), 1);
    }

    #[test]
    fn queue_depth_speedup_is_monotone_up_to_saturation() {
        let m = ssd();
        let mut last = 0.0;
        for depth in [1usize, 2, 4, 8, 16] {
            let s = m.queue_depth_speedup(64, depth);
            assert!(s >= last, "speedup must not regress at depth {depth}");
            last = s;
        }
        // Flush makespan shrinks with depth accordingly.
        let d1 = m.flush_queue_makespan(8, 32 * 1024, 1);
        let d8 = m.flush_queue_makespan(8, 32 * 1024, 8);
        assert_eq!(d8 * 8, d1);
    }

    #[test]
    fn queued_lookup_model_scales_with_depth_and_probe_count() {
        let m = ssd(); // overlapped, depth 8
        let c = m.page_read_cost();
        // 64 keys x 4 probes each: 4 waves of ceil(64/L) read slots.
        assert_eq!(m.lookup_batch_makespan(64, 4, 1), c * 256);
        assert_eq!(m.lookup_batch_makespan(64, 4, 8), c * 32);
        assert_eq!(m.lookup_batch_makespan(64, 0, 8), SimDuration::ZERO);
        assert!((m.lookup_batch_speedup(64, 8) - 8.0).abs() < 1e-9);
        assert!((m.lookup_batch_speedup(64, 64) - 8.0).abs() < 1e-9, "saturates at device depth");

        // Serial media get no overlap: the chip retires waves one read at
        // a time regardless of the requested depth.
        let serial = chip();
        assert_eq!(serial.lookup_batch_makespan(16, 2, 8), serial.page_read_cost() * 32);
        assert!((serial.lookup_batch_speedup(16, 8) - 1.0).abs() < 1e-9);

        // The fractional form agrees with the integral one and scales
        // linearly in the expected probe count.
        let exact = m.lookup_batch_makespan(64, 4, 8);
        let expected = m.expected_lookup_batch_makespan(64, 4.0, 8);
        let diff = exact.as_nanos().abs_diff(expected.as_nanos());
        assert!(diff <= 1, "fractional form must agree: {exact} vs {expected}");
        assert!(m.expected_lookup_batch_makespan(64, 0.5, 8) < m.lookup_batch_makespan(64, 1, 8));
    }

    #[test]
    fn ring_makespan_is_work_over_lanes_floored_by_the_chain() {
        let m = ssd(); // overlapped, depth 8
        let c = m.page_read_cost();
        // Divisible case: ring == barrier waves.
        assert_eq!(m.lookup_ring_makespan(64, 4, 8), c * 32);
        assert_eq!(m.lookup_ring_makespan(64, 4, 8), m.lookup_batch_makespan(64, 4, 8));
        assert!((m.ring_over_waves_speedup(64, 4, 8) - 1.0).abs() < 1e-9);
        // Non-divisible: the ring packs the tail the barrier wastes.
        assert_eq!(m.lookup_ring_makespan(60, 4, 8), c * 30);
        assert!(m.ring_over_waves_speedup(60, 4, 8) > 1.06);
        // Chain floor: fewer keys than lanes are bound by their own chain.
        assert_eq!(m.lookup_ring_makespan(2, 4, 8), c * 4);
        // Serial media and empty batches degrade gracefully.
        let serial = chip();
        assert_eq!(serial.lookup_ring_makespan(16, 2, 8), serial.page_read_cost() * 32);
        assert!((serial.ring_over_waves_speedup(16, 2, 8) - 1.0).abs() < 1e-9);
        assert_eq!(m.lookup_ring_makespan(0, 4, 8), SimDuration::ZERO);
        assert_eq!(m.lookup_ring_makespan(64, 0, 8), SimDuration::ZERO);
        assert!((m.ring_over_waves_speedup(0, 0, 8) - 1.0).abs() < 1e-9);
        // A degenerate zero-depth profile degrades to serial, no panic.
        let degenerate = FlashCostModel::from_profile(&DeviceProfile {
            queue: flashsim::QueueCapabilities::overlapped(0),
            ..DeviceProfile::intel_x18m()
        });
        assert_eq!(degenerate.lookup_ring_makespan(4, 2, 8), degenerate.page_read_cost() * 8);
    }

    #[test]
    fn flush_and_mixed_ring_makespans_compose_the_phase_bounds() {
        let m = ssd(); // overlapped, depth 8
        let w = m.insert_worst_case(32 << 10);
        // Single-write chains: ring == barrier drain on uniform latencies.
        assert_eq!(m.flush_ring_makespan(16, 32 << 10, 8), w * 2);
        assert_eq!(m.flush_ring_makespan(16, 32 << 10, 8), m.flush_queue_makespan(16, 32 << 10, 8));
        assert_eq!(m.flush_ring_makespan(0, 32 << 10, 8), SimDuration::ZERO);
        // Serial media pay the full sum.
        let serial = chip();
        assert_eq!(
            serial.flush_ring_makespan(3, 32 << 10, 8),
            serial.insert_worst_case(32 << 10) * 3
        );
        // The mixed stream is a write phase followed by a read phase.
        assert_eq!(
            m.mixed_ring_makespan(60, 4, 8, 32 << 10, 8),
            m.flush_ring_makespan(8, 32 << 10, 8) + m.lookup_ring_makespan(60, 4, 8)
        );
        assert_eq!(m.mixed_ring_makespan(0, 0, 0, 32 << 10, 8), SimDuration::ZERO);
        // A degenerate zero-depth profile degrades to serial, no panic.
        let degenerate = FlashCostModel::from_profile(&DeviceProfile {
            queue: flashsim::QueueCapabilities::overlapped(0),
            ..DeviceProfile::intel_x18m()
        });
        assert_eq!(degenerate.flush_ring_makespan(4, 32 << 10, 8), w * 4);
    }

    /// Drives the mixed write-then-read stream through the SSD simulator's
    /// ring (`submit_nowait`/`reap`, re-arming each probe chain from its
    /// previous completion like the lookup pipeline does) and checks
    /// `mixed_ring_makespan` against the ring's actual makespan — **exact**
    /// at every depth with the lane count dividing the flush count.
    #[test]
    fn mixed_ring_makespan_matches_the_simulator_exactly() {
        use flashsim::{CompletionRing, Device, IoRequest, RingRequest, Ssd};
        use std::collections::HashMap;

        let m = ssd();
        let buffer: usize = 32 << 10;
        let (flushes, keys, probes) = (8usize, 48usize, 4usize);
        for depth in [1usize, 2, 8] {
            let mut dev = Ssd::intel(64 << 20).unwrap();
            let page = dev.profile().page_size as usize;
            let mut ring = CompletionRing::new(m.lanes_at_depth(depth));
            // Write phase: `flushes` incarnation-sized writes to disjoint
            // log slots, admitted without waiting.
            let writes: Vec<RingRequest> = (0..flushes)
                .map(|i| {
                    RingRequest::new(IoRequest::write((i * buffer) as u64, vec![0xAA; buffer]))
                })
                .collect();
            dev.submit_nowait(writes, &mut ring).unwrap();
            dev.reap(&mut ring, 1).unwrap();
            // Read phase: `keys` chains of `probes` page reads, each chain
            // re-armed the moment its previous read reaps.
            let read_base = (flushes * buffer) as u64;
            let first: Vec<RingRequest> = (0..keys)
                .map(|i| RingRequest::new(IoRequest::read(read_base + (i * page) as u64, page)))
                .collect();
            let tickets = dev.submit_nowait(first, &mut ring).unwrap();
            let mut rounds: HashMap<u64, usize> = tickets.iter().map(|t| (t.id(), 1)).collect();
            while ring.in_flight() > 0 {
                for c in dev.reap(&mut ring, 1).unwrap() {
                    let done = rounds.remove(&c.ticket.id()).unwrap();
                    if done < probes {
                        let next =
                            RingRequest::after(IoRequest::read(read_base, page), c.completed_at);
                        let t = dev.submit_nowait(vec![next], &mut ring).unwrap();
                        rounds.insert(t[0].id(), done + 1);
                    }
                }
            }
            assert_eq!(
                ring.makespan(),
                m.mixed_ring_makespan(keys, probes, flushes, buffer, depth),
                "model drifts from the simulator at depth {depth}"
            );
        }
    }

    /// Runs real recovery scans ([`Clam::recover`]) and checks the
    /// reported ring makespan against `recovery_scan_makespan` — exact on
    /// an overlapped SSD (after a full workload) and on a serial raw chip.
    #[test]
    fn recovery_scan_makespan_matches_the_simulator_exactly() {
        use crate::clam::Clam;
        use crate::config::ClamConfig;
        use crate::types::hash_with_seed;
        use flashsim::{Device, FlashChip, Ssd};

        // SSD: 8 MiB flash in 256 slots of 32 KiB, ring depth 8.
        let cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
        let mut clam = Clam::new(Ssd::intel(8 << 20).unwrap(), cfg.clone()).unwrap();
        for i in 0..40_000u64 {
            clam.insert(hash_with_seed(i, 1), i).unwrap();
        }
        clam.flush_all().unwrap();
        let device = clam.into_device();
        let m = FlashCostModel::from_profile(device.profile());
        let depth = device.profile().queue.max_queue_depth;
        let (_, report) = Clam::recover(device, cfg).unwrap();
        assert_eq!(
            report.scan_makespan,
            m.recovery_scan_makespan(256, 32 << 10, depth),
            "SSD recovery scan drifts from the model: {report}"
        );

        // Raw chip: serial queue, so the scan is the summed slot reads.
        let chip = FlashChip::new(1 << 20).unwrap();
        let m = FlashCostModel::from_profile(chip.profile());
        let cfg = ClamConfig::small_test(1 << 20, 256 << 10).unwrap();
        let (_, report) = Clam::recover(chip, cfg).unwrap();
        assert_eq!(report.slots_scanned, 32);
        assert_eq!(
            report.scan_makespan,
            m.recovery_scan_makespan(32, 32 << 10, 1),
            "chip recovery scan drifts from the model: {report}"
        );
    }

    #[test]
    fn expected_probes_per_miss_follows_bloom_and_chain_terms() {
        let m = ssd();
        // 8 incarnations at a 1% false-positive rate: ~0.08 probes/miss.
        let light = m.expected_probes_per_miss(8, 0.01, 0.0);
        assert!((light - 0.08).abs() < 1e-12);
        // Disabled filters degrade to one probe per incarnation...
        assert!((m.expected_probes_per_miss(8, 1.0, 0.0) - 8.0).abs() < 1e-12);
        // ...plus the overflow-chain hops.
        assert!((m.expected_probes_per_miss(8, 1.0, 0.25) - 10.0).abs() < 1e-12);
        // Rates are clamped to sane ranges.
        assert_eq!(m.expected_probes_per_miss(8, -1.0, 0.0), 0.0);
        assert!((m.expected_probes_per_miss(8, 2.0, -3.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_is_much_smaller_than_the_page_count_of_the_buffer() {
        // §6.3: sequentially writing a 256 KiB buffer (64 pages) is far
        // cheaper than 64 individual random page writes — batching pays the
        // command cost once. The paper reports α < 10 for several drives and
        // α below the page count for all of them.
        for model in [ssd(), FlashCostModel::from_profile(&DeviceProfile::transcend_ts32g())] {
            let pages = 256 * 1024 / model.page_size;
            let alpha = model.alpha(256 * 1024);
            assert!(alpha < pages as f64 / 1.5, "alpha = {alpha} vs {pages} pages");
        }
    }
}
