//! Thread-safe CLAM wrappers.
//!
//! The systems the paper targets (WAN optimizers, dedup servers, content
//! directories) serve many connections at once. [`SharedClam`] wraps a
//! [`Clam`] in a [`parking_lot::Mutex`] behind an [`Arc`] so worker threads
//! can share one index, and [`StripedClam`] stripes the key space across
//! several independent CLAMs (each typically on its own SSD, as §5.2
//! suggests) so operations on different stripes proceed in parallel.
//!
//! Both wrappers expose two locking regimes. The per-op methods
//! ([`StripedClam::insert`], [`StripedClam::lookup`], …) take the stripe
//! lock once *per operation* — coarse, simple, and fine when each call does
//! real flash work. High-throughput callers should prefer the batched path
//! ([`SharedClam::insert_batch`], [`StripedClam::insert_batch`],
//! [`StripedClam::lookup_batch`]): a batch is partitioned by stripe and
//! each stripe's lock is taken **once per stripe-batch**, with the whole
//! sub-batch applied under that single acquisition via the underlying
//! [`Clam::insert_batch`] pipeline (amortized dispatch overhead plus
//! coalesced flush writes).

use std::sync::Arc;

use parking_lot::Mutex;

use flashsim::Device;

use crate::clam::{BatchInsertOutcome, Clam, InsertOutcome, LookupOutcome};
use crate::error::Result;
use crate::stats::ClamStats;
use crate::types::{hash_with_seed, Key, Value};

/// A cloneable, thread-safe handle to a single CLAM.
pub struct SharedClam<D: Device> {
    inner: Arc<Mutex<Clam<D>>>,
}

impl<D: Device> Clone for SharedClam<D> {
    fn clone(&self) -> Self {
        SharedClam { inner: Arc::clone(&self.inner) }
    }
}

impl<D: Device> SharedClam<D> {
    /// Wraps a CLAM for shared use.
    pub fn new(clam: Clam<D>) -> Self {
        SharedClam { inner: Arc::new(Mutex::new(clam)) }
    }

    /// Inserts (or updates) a key.
    pub fn insert(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        self.inner.lock().insert(key, value)
    }

    /// Looks up a key.
    pub fn lookup(&self, key: Key) -> Result<LookupOutcome> {
        self.inner.lock().lookup(key)
    }

    /// Inserts a batch of key/value pairs under one lock acquisition,
    /// using the batched CLAM pipeline (see [`Clam::insert_batch`]).
    pub fn insert_batch(&self, ops: &[(Key, Value)]) -> Result<BatchInsertOutcome> {
        self.inner.lock().insert_batch(ops)
    }

    /// Looks up a batch of keys under one lock acquisition, returning one
    /// outcome per key in input order (see [`Clam::lookup_batch`]).
    pub fn lookup_batch(&self, keys: &[Key]) -> Result<Vec<LookupOutcome>> {
        self.inner.lock().lookup_batch(keys)
    }

    /// Deletes a key.
    pub fn delete(&self, key: Key) -> Result<()> {
        self.inner.lock().delete(key)?;
        Ok(())
    }

    /// Snapshot of the operation statistics.
    pub fn stats(&self) -> ClamStats {
        self.inner.lock().stats().clone()
    }

    /// Runs `f` with exclusive access to the underlying CLAM (e.g. for
    /// `flush_all` or configuration inspection).
    pub fn with<R>(&self, f: impl FnOnce(&mut Clam<D>) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

/// A CLAM striped over several devices: stripe `i` holds the keys that hash
/// to it, so lookups and inserts for different stripes contend on different
/// locks (and, conceptually, different SSDs).
pub struct StripedClam<D: Device> {
    stripes: Vec<SharedClam<D>>,
}

impl<D: Device> StripedClam<D> {
    /// Builds a striped CLAM from per-stripe CLAMs (one per device).
    ///
    /// Returns an error-free constructor; an empty stripe list is rejected
    /// by panicking early because it is a static misconfiguration.
    pub fn new(stripes: Vec<Clam<D>>) -> Self {
        assert!(!stripes.is_empty(), "StripedClam needs at least one stripe");
        StripedClam { stripes: stripes.into_iter().map(SharedClam::new).collect() }
    }

    /// Number of stripes.
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    fn stripe_index(&self, key: Key) -> usize {
        (hash_with_seed(key, 0x57_e19e) % self.stripes.len() as u64) as usize
    }

    fn stripe_of(&self, key: Key) -> &SharedClam<D> {
        &self.stripes[self.stripe_index(key)]
    }

    /// Inserts (or updates) a key on its stripe.
    pub fn insert(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        self.stripe_of(key).insert(key, value)
    }

    /// Looks up a key on its stripe.
    pub fn lookup(&self, key: Key) -> Result<LookupOutcome> {
        self.stripe_of(key).lookup(key)
    }

    /// Deletes a key on its stripe.
    pub fn delete(&self, key: Key) -> Result<()> {
        self.stripe_of(key).delete(key)
    }

    /// Inserts a batch of key/value pairs, partitioned by stripe.
    ///
    /// Each stripe's lock is acquired **once** for its whole sub-batch
    /// (instead of once per op), and the sub-batch runs through the
    /// underlying [`Clam::insert_batch`] pipeline. The reported latency is
    /// the sum over stripes; a deployment with one SSD per stripe would
    /// overlap them and see roughly the slowest stripe instead.
    ///
    /// ```
    /// use bufferhash::{Clam, ClamConfig, StripedClam};
    /// use flashsim::Ssd;
    ///
    /// let clam = |_| {
    ///     let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
    ///     Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap()
    /// };
    /// let striped = StripedClam::new((0..3).map(clam).collect());
    ///
    /// let ops: Vec<(u64, u64)> = (0..256).map(|i| (i * 11 + 1, i)).collect();
    /// let out = striped.insert_batch(&ops).unwrap();
    /// assert_eq!(out.ops, 256);
    /// assert_eq!(striped.lookup(12).unwrap().value, Some(1));
    /// ```
    pub fn insert_batch(&self, ops: &[(Key, Value)]) -> Result<BatchInsertOutcome> {
        let mut groups: Vec<Vec<(Key, Value)>> = vec![Vec::new(); self.stripes.len()];
        for &(key, value) in ops {
            groups[self.stripe_index(key)].push((key, value));
        }
        let mut total = BatchInsertOutcome { ops: ops.len(), ..Default::default() };
        for (idx, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let out = self.stripes[idx].insert_batch(group)?;
            total.latency += out.latency;
            total.flushed_ops += out.flushed_ops;
            total.evictions += out.evictions;
            total.coalesced_writes += out.coalesced_writes;
        }
        Ok(total)
    }

    /// Looks up a batch of keys, partitioned by stripe, with one lock
    /// acquisition per stripe-batch. Outcomes are returned in input order.
    pub fn lookup_batch(&self, keys: &[Key]) -> Result<Vec<LookupOutcome>> {
        let mut groups: Vec<(Vec<Key>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); self.stripes.len()];
        for (pos, &key) in keys.iter().enumerate() {
            let idx = self.stripe_index(key);
            groups[idx].0.push(key);
            groups[idx].1.push(pos);
        }
        let mut out: Vec<Option<LookupOutcome>> = vec![None; keys.len()];
        for (idx, (group, positions)) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let results = self.stripes[idx].lookup_batch(group)?;
            for (result, &pos) in results.into_iter().zip(positions) {
                out[pos] = Some(result);
            }
        }
        Ok(out.into_iter().map(|o| o.expect("every key routed")).collect())
    }

    /// Aggregated statistics across all stripes (every counter, recorder
    /// and histogram merged; see [`ClamStats::merge`]).
    pub fn stats(&self) -> ClamStats {
        let mut total = ClamStats::new();
        for stripe in &self.stripes {
            total.merge(&stripe.stats());
        }
        total
    }

    /// A cloneable handle to stripe `i` (for per-thread pinning).
    pub fn stripe(&self, i: usize) -> Option<SharedClam<D>> {
        self.stripes.get(i).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClamConfig;
    use flashsim::Ssd;
    use std::thread;

    fn clam() -> Clam<Ssd> {
        let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
        Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap()
    }

    fn key(i: u64) -> Key {
        hash_with_seed(i, 42)
    }

    #[test]
    fn shared_clam_is_usable_from_multiple_threads() {
        let shared = SharedClam::new(clam());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let handle = shared.clone();
            handles.push(thread::spawn(move || {
                for i in 0..5_000u64 {
                    let k = key(t * 1_000_000 + i);
                    handle.insert(k, i).unwrap();
                    assert_eq!(handle.lookup(k).unwrap().value, Some(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.stats().inserts.len(), 20_000);
        assert!(shared.stats().lookup_hits >= 20_000);
    }

    #[test]
    fn shared_clam_with_gives_exclusive_access() {
        let shared = SharedClam::new(clam());
        shared.insert(key(1), 1).unwrap();
        let flushes = shared.with(|c| {
            c.flush_all().unwrap();
            c.stats().flushes
        });
        assert!(flushes >= 1);
    }

    #[test]
    fn striped_clam_routes_keys_consistently() {
        let striped = StripedClam::new(vec![clam(), clam(), clam()]);
        assert_eq!(striped.num_stripes(), 3);
        for i in 0..10_000u64 {
            striped.insert(key(i), i).unwrap();
        }
        for i in (0..10_000u64).step_by(37) {
            assert_eq!(striped.lookup(key(i)).unwrap().value, Some(i), "key {i}");
        }
        striped.delete(key(0)).unwrap();
        assert_eq!(striped.lookup(key(0)).unwrap().value, None);
        // Work is spread across stripes.
        let stats = striped.stats();
        assert_eq!(stats.inserts.len(), 10_000);
        for s in 0..3 {
            let stripe_inserts = striped.stripe(s).unwrap().stats().inserts.len();
            assert!(
                stripe_inserts > 1_000,
                "stripe {s} got only {stripe_inserts} inserts; routing is unbalanced"
            );
        }
    }

    #[test]
    fn striped_clam_parallel_threads() {
        let striped = std::sync::Arc::new(StripedClam::new(vec![clam(), clam()]));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = std::sync::Arc::clone(&striped);
            handles.push(thread::spawn(move || {
                for i in 0..3_000u64 {
                    let k = key(t * 10_000_000 + i);
                    s.insert(k, i).unwrap();
                    assert_eq!(s.lookup(k).unwrap().value, Some(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(striped.stats().inserts.len(), 12_000);
    }

    #[test]
    fn shared_clam_batch_round_trips() {
        let shared = SharedClam::new(clam());
        let ops: Vec<(u64, u64)> = (0..5_000u64).map(|i| (key(i), i * 2)).collect();
        let out = shared.insert_batch(&ops).unwrap();
        assert_eq!(out.ops, 5_000);
        let keys: Vec<u64> = ops.iter().map(|(k, _)| *k).collect();
        let found = shared.lookup_batch(&keys).unwrap();
        for (i, outcome) in found.iter().enumerate() {
            assert_eq!(outcome.value, Some(i as u64 * 2), "key {i}");
        }
        assert_eq!(shared.stats().batched_inserts, 5_000);
        assert_eq!(shared.stats().batched_lookups, 5_000);
    }

    #[test]
    fn striped_clam_batches_route_like_per_op() {
        let striped = StripedClam::new(vec![clam(), clam(), clam()]);
        let ops: Vec<(u64, u64)> = (0..9_000u64).map(|i| (key(i), i)).collect();
        let out = striped.insert_batch(&ops).unwrap();
        assert_eq!(out.ops, 9_000);
        // Batched lookups agree with per-op lookups in input order.
        let keys: Vec<u64> =
            (0..2_000u64).map(|i| if i % 4 == 0 { key(500_000 + i) } else { key(i) }).collect();
        let batched = striped.lookup_batch(&keys).unwrap();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(batched[i].value, striped.lookup(*k).unwrap().value, "index {i}");
        }
        // Every stripe saw batched traffic through its own lock.
        let stats = striped.stats();
        assert_eq!(stats.batched_inserts, 9_000);
        assert_eq!(stats.inserts.len(), 9_000);
        // Aggregation keeps the per-lookup read histogram (one bucket entry
        // per lookup), so Table-2-style breakdowns work on striped CLAMs.
        let histogram_total: u64 = stats.flash_reads_histogram.iter().sum();
        assert_eq!(histogram_total, stats.lookups.len() as u64);
        for s in 0..3 {
            assert!(striped.stripe(s).unwrap().stats().batched_inserts > 1_000);
        }
    }

    #[test]
    fn striped_batches_from_multiple_threads() {
        let striped = std::sync::Arc::new(StripedClam::new(vec![clam(), clam()]));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = std::sync::Arc::clone(&striped);
            handles.push(thread::spawn(move || {
                let ops: Vec<(u64, u64)> =
                    (0..3_000u64).map(|i| (key(t * 10_000_000 + i), i)).collect();
                for chunk in ops.chunks(128) {
                    s.insert_batch(chunk).unwrap();
                }
                let keys: Vec<u64> = ops.iter().map(|(k, _)| *k).collect();
                for (i, out) in s.lookup_batch(&keys).unwrap().into_iter().enumerate() {
                    assert_eq!(out.value, Some(i as u64));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(striped.stats().inserts.len(), 12_000);
        assert_eq!(striped.stats().batched_inserts, 12_000);
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn empty_stripe_list_is_rejected() {
        let _ = StripedClam::<Ssd>::new(Vec::new());
    }

    #[test]
    fn missing_stripe_handle_is_none() {
        let striped = StripedClam::new(vec![clam()]);
        assert!(striped.stripe(0).is_some());
        assert!(striped.stripe(5).is_none());
    }
}
