//! Thread-safe CLAM wrappers.
//!
//! The systems the paper targets (WAN optimizers, dedup servers, content
//! directories) serve many connections at once. [`SharedClam`] wraps a
//! [`Clam`] in a [`parking_lot::Mutex`] behind an [`Arc`] so worker threads
//! can share one index, and [`StripedClam`] stripes the key space across
//! several independent CLAMs (each typically on its own SSD, as §5.2
//! suggests) so operations on different stripes proceed in parallel.
//!
//! Both wrappers expose two locking regimes. The per-op methods
//! ([`StripedClam::insert`], [`StripedClam::lookup`], …) take the stripe
//! lock once *per operation* — coarse, simple, and fine when each call does
//! real flash work. High-throughput callers should prefer the batched path
//! ([`SharedClam::insert_batch`], [`StripedClam::insert_batch`],
//! [`StripedClam::lookup_batch`]): a batch is partitioned by stripe and
//! each stripe's lock is taken **once per stripe-batch**, with the whole
//! sub-batch applied under that single acquisition via the underlying
//! [`Clam::insert_batch`] pipeline (amortized dispatch overhead plus
//! coalesced flush writes).
//!
//! Stripe sub-batches are **dispatched concurrently**: each stripe models
//! an independent device (one SSD per stripe, §5.2), so
//! [`StripedClam::insert_batch`] runs the stripes on their own threads and
//! reports the batch latency as the *maximum over stripes* rather than the
//! sum — the same max-over-lanes accounting the
//! [`flashsim` submission queues](flashsim::queue) use below it.
//! [`StripedClam::insert_batch_serial`] keeps the one-stripe-at-a-time
//! reference path (summed latency) for comparison and debugging.
//! [`StripedClam::lookup_batch`] composes both levels of overlap: stripes
//! run concurrently, and within each stripe the queued probe pipeline
//! ([`Clam::lookup_batch`]) overlaps flash page reads on the device's
//! submission-queue lanes.
//!
//! ## Intra-stripe read concurrency
//!
//! Since PR 9 the stripe lock is a [`parking_lot::RwLock`] guarded by a
//! seqlock-style **write epoch**, and lookups take a lock-free-style fast
//! path first: load the epoch (odd means a writer is pending — fall back),
//! `try_read` the stripe (contended — fall back), probe DRAM state only
//! ([`Clam::probe_memory`]: cuckoo buffer, delete list, Bloom filters),
//! then re-validate the epoch (changed — discard and fall back). Keys
//! whose verdict needs flash, and every fallback, go through the exclusive
//! write-locked pipeline exactly as before, so outcomes are identical to
//! the coarse path — only contention changes. Fast-path statistics land in
//! a side ledger merged into [`SharedClam::stats`];
//! [`SharedClam::set_coarse_locks`] restores the strict
//! everything-exclusive baseline for A/B runs and equivalence tests.
//!
//! ## Intra-stripe write concurrency
//!
//! Since PR 10 writes use the same shared/exclusive split. Fine-grained
//! inserts and deletes hold the stripe's **read** lock for the whole
//! logical op and serialize per super table inside the [`Clam`]
//! ([`Clam::fine_insert`], [`Clam::fine_insert_batch`]): two writers
//! whose keys land on different tables of one stripe commit in parallel,
//! coordinated only through the short core critical section that orders
//! allocator grants and ring admissions. The global write epoch stays
//! even while fine writers run — the read fast path instead validates
//! against the **per-table** seqlock epochs via
//! [`Clam::try_probe_memory`], so a fast read conflicts exactly with
//! writers on *its* table, not with every writer on the stripe.
//! Exclusive entry points ([`SharedClam::with`], `flush_all`, recovery)
//! still take the write lock, which drains all fine writers first.
//! Coarse mode routes writes through the exclusive path too, restoring
//! the strict stripe-global baseline bit for bit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use flashsim::{Device, SimDuration};

use crate::clam::{
    batch_dispatch, BatchInsertOutcome, BatchLookupOutcome, Clam, InsertOutcome, LookupOutcome,
    MemoryProbe,
};
use crate::config::ClamConfig;
use crate::error::Result;
use crate::recovery::RecoveryReport;
use crate::stats::ClamStats;
use crate::types::{hash_with_seed, Key, Value};

/// A cloneable, thread-safe handle to a single CLAM.
pub struct SharedClam<D: Device> {
    inner: Arc<SharedInner<D>>,
}

/// Shared state behind one stripe: the CLAM under a reader-writer lock,
/// the seqlock-style write epoch (odd while a writer is pending or
/// active), the coarse-mode switch, and the side ledger where fast-path
/// reads record their statistics (they cannot touch the CLAM's own
/// ledger, which sits behind the write lock).
struct SharedInner<D: Device> {
    clam: RwLock<Clam<D>>,
    write_epoch: AtomicU64,
    coarse: AtomicBool,
    fast_ledger: Mutex<ClamStats>,
}

impl<D: Device> Clone for SharedClam<D> {
    fn clone(&self) -> Self {
        SharedClam { inner: Arc::clone(&self.inner) }
    }
}

impl<D: Device> SharedClam<D> {
    /// Wraps a CLAM for shared use.
    pub fn new(clam: Clam<D>) -> Self {
        SharedClam {
            inner: Arc::new(SharedInner {
                clam: RwLock::new(clam),
                write_epoch: AtomicU64::new(0),
                coarse: AtomicBool::new(false),
                fast_ledger: Mutex::new(ClamStats::new()),
            }),
        }
    }

    /// Recovers a CLAM from the flash contents of `device` (see
    /// [`Clam::recover`]) and wraps it for shared use, returning the
    /// recovery scan's report alongside the handle.
    pub fn recover(device: D, config: ClamConfig) -> Result<(Self, RecoveryReport)> {
        let (clam, report) = Clam::recover(device, config)?;
        Ok((SharedClam::new(clam), report))
    }

    /// Runs `f` under the exclusive write lock, bracketing it with the
    /// seqlock protocol: the epoch goes odd before the lock is requested
    /// (so fast readers yield immediately instead of racing `try_read`
    /// against a blocked writer) and even again after the guard drops.
    fn with_write<R>(&self, f: impl FnOnce(&mut Clam<D>) -> R) -> R {
        self.inner.write_epoch.fetch_add(1, Ordering::SeqCst);
        let result = {
            let mut guard = self.inner.clam.write();
            f(&mut guard)
        };
        self.inner.write_epoch.fetch_add(1, Ordering::SeqCst);
        result
    }

    /// Counts one lost fast-path race in the side ledger.
    fn note_conflict(&self) {
        self.inner.fast_ledger.lock().fast_read_conflicts += 1;
    }

    /// Switches between the fine-grained default — epoch-validated read
    /// fast path plus per-super-table write locks — and the coarse
    /// everything-exclusive baseline, where every op takes the stripe's
    /// write lock. Coarse mode is kept for A/B comparisons and the
    /// equivalence property tests; outcomes are identical in both modes.
    pub fn set_coarse_locks(&self, coarse: bool) {
        self.inner.coarse.store(coarse, Ordering::SeqCst);
    }

    /// `true` when the coarse everything-exclusive baseline is active.
    pub fn coarse_locks(&self) -> bool {
        self.inner.coarse.load(Ordering::SeqCst)
    }

    /// Forwards [`Clam::set_batch_parallelism`]: overrides the chunk count
    /// of fine-grained batch inserts (`None` = `available_parallelism`).
    pub fn set_batch_parallelism(&self, chunks: Option<usize>) {
        self.inner.clam.read().set_batch_parallelism(chunks);
    }

    /// Attempts to resolve `key` on the read fast path: no write lock, no
    /// queue, memory state only. Returns `None` — with the locked pipeline
    /// as the caller's fallback — when coarse mode is on, when the key
    /// needs a flash probe, or when the epoch/`try_read` race is lost to a
    /// writer (counted in [`ClamStats::fast_read_conflicts`]).
    pub fn try_fast_lookup(&self, key: Key) -> Option<LookupOutcome> {
        let outcome = self.fast_probe(key, crate::clam::BASE_OP_OVERHEAD)?;
        let mut ledger = self.inner.fast_ledger.lock();
        record_fast_outcome(&mut ledger, &outcome, false);
        Some(outcome)
    }

    /// The epoch-validated memory probe shared by the scalar and batched
    /// fast paths. Returns the would-be outcome without recording any
    /// statistics.
    fn fast_probe(&self, key: Key, dispatch: SimDuration) -> Option<LookupOutcome> {
        if self.inner.coarse.load(Ordering::SeqCst) {
            return None;
        }
        let before = self.inner.write_epoch.load(Ordering::SeqCst);
        if before % 2 == 1 {
            self.note_conflict();
            return None;
        }
        let probe = {
            let Some(guard) = self.inner.clam.try_read() else {
                self.note_conflict();
                return None;
            };
            // Per-table seqlock validation: a fine-grained writer on the
            // key's table (which holds the *read* lock, so `try_read`
            // cannot see it) makes the probe return `None`.
            let Some(probe) = guard.try_probe_memory(key, dispatch) else {
                self.note_conflict();
                return None;
            };
            probe
        };
        let outcome = match probe {
            MemoryProbe::Resolved(outcome) => outcome,
            MemoryProbe::NeedsFlash => return None,
        };
        if self.inner.write_epoch.load(Ordering::SeqCst) != before {
            self.note_conflict();
            return None;
        }
        Some(outcome)
    }

    /// Inserts (or updates) a key. By default this is a **fine-grained**
    /// write: it holds the stripe's shared (read) lock and serializes only
    /// on the key's super-table op lock ([`Clam::fine_insert`]), so
    /// inserts landing on different tables of this stripe commit in
    /// parallel. Coarse mode routes through the exclusive stripe lock
    /// instead; outcomes are identical either way.
    pub fn insert(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        if self.inner.coarse.load(Ordering::SeqCst) {
            return self.with_write(|c| c.insert(key, value));
        }
        self.inner.clam.read().fine_insert(key, value)
    }

    /// Looks up a key: the epoch-validated fast path first (see
    /// [`try_fast_lookup`](Self::try_fast_lookup)), the exclusive pipeline
    /// when the key needs flash or the race is lost. Outcomes are
    /// identical either way.
    pub fn lookup(&self, key: Key) -> Result<LookupOutcome> {
        if let Some(outcome) = self.try_fast_lookup(key) {
            return Ok(outcome);
        }
        self.with_write(|c| c.lookup(key))
    }

    /// Inserts a batch of key/value pairs using the batched CLAM
    /// pipeline. By default the batch runs through the **fine-grained**
    /// parallel path ([`Clam::fine_insert_batch`]): the stripe lock is
    /// held shared and the batch's per-super-table groups execute on
    /// scoped threads, each serializing only on its table op locks, with
    /// a flush gate replaying the coarse path's flush order so results,
    /// flash traffic and ledgers are bit-identical to the exclusive
    /// baseline ([`Clam::insert_batch`], used in coarse mode).
    pub fn insert_batch(&self, ops: &[(Key, Value)]) -> Result<BatchInsertOutcome> {
        if self.inner.coarse.load(Ordering::SeqCst) {
            return self.with_write(|c| c.insert_batch(ops));
        }
        self.inner.clam.read().fine_insert_batch(ops)
    }

    /// Looks up a batch of keys through the streaming ring pipeline,
    /// returning one outcome per key in input order plus the batch's
    /// makespan-accounted latency (see [`Clam::lookup_batch`]).
    ///
    /// With the fast path enabled, memory-resolved keys are answered under
    /// one shared (`try_read`) acquisition and only the flash-bound
    /// remainder takes the write lock; every key is still charged the full
    /// batch's amortized dispatch, so outcomes and per-op accounting match
    /// the coarse path exactly (the batch latency adds the fast keys' host
    /// time to the locked remainder's makespan, just as the all-locked
    /// plan would).
    pub fn lookup_batch(&self, keys: &[Key]) -> Result<BatchLookupOutcome> {
        if self.inner.coarse.load(Ordering::SeqCst) {
            return self.with_write(|c| c.lookup_batch(keys));
        }
        let dispatch = batch_dispatch(keys.len());
        let mut resolved: Vec<Option<LookupOutcome>> = vec![None; keys.len()];
        let fast_pass_valid = {
            let before = self.inner.write_epoch.load(Ordering::SeqCst);
            if before % 2 == 1 {
                false
            } else if let Some(guard) = self.inner.clam.try_read() {
                for (slot, &key) in keys.iter().enumerate() {
                    // `None` (a fine-grained writer is active on the key's
                    // table) leaves the key unresolved; it joins the
                    // flash-bound remainder and resolves under the write
                    // lock, which drains that writer first.
                    if let Some(MemoryProbe::Resolved(outcome)) =
                        guard.try_probe_memory(key, dispatch)
                    {
                        resolved[slot] = Some(outcome);
                    }
                }
                drop(guard);
                self.inner.write_epoch.load(Ordering::SeqCst) == before
            } else {
                false
            }
        };
        if !fast_pass_valid {
            // One counted conflict for the whole batch; the entire batch
            // re-runs on the locked reference path.
            self.note_conflict();
            return self.with_write(|c| c.lookup_batch(keys));
        }
        let mut rem_keys = Vec::new();
        let mut rem_pos = Vec::new();
        let mut fast_host_time = SimDuration::ZERO;
        {
            let mut ledger = self.inner.fast_ledger.lock();
            for (slot, entry) in resolved.iter().enumerate() {
                match entry {
                    Some(outcome) => {
                        record_fast_outcome(&mut ledger, outcome, true);
                        fast_host_time += outcome.latency;
                    }
                    None => {
                        rem_keys.push(keys[slot]);
                        rem_pos.push(slot);
                    }
                }
            }
        }
        let mut batch = if rem_keys.is_empty() {
            BatchLookupOutcome::default()
        } else {
            self.with_write(|c| c.lookup_batch_amortized(&rem_keys, dispatch))?
        };
        let locked_outcomes = std::mem::take(&mut batch.outcomes);
        for (outcome, &pos) in locked_outcomes.into_iter().zip(&rem_pos) {
            resolved[pos] = Some(outcome);
        }
        batch.outcomes = resolved.into_iter().map(|o| o.expect("every key resolved")).collect();
        batch.latency += fast_host_time;
        Ok(batch)
    }

    /// The barrier wave reference path for
    /// [`lookup_batch`](Self::lookup_batch) (see
    /// [`Clam::lookup_batch_waves`]): identical outcomes, per-round
    /// barrier timing. Always runs under the exclusive lock.
    pub fn lookup_batch_waves(&self, keys: &[Key]) -> Result<BatchLookupOutcome> {
        self.with_write(|c| c.lookup_batch_waves(keys))
    }

    /// Deletes a key. Fine-grained by default (shared stripe lock +
    /// the key's table op lock, [`Clam::fine_delete`]); exclusive in
    /// coarse mode.
    pub fn delete(&self, key: Key) -> Result<()> {
        if self.inner.coarse.load(Ordering::SeqCst) {
            self.with_write(|c| c.delete(key))?;
        } else {
            self.inner.clam.read().fine_delete(key)?;
        }
        Ok(())
    }

    /// Updates a key (alias for [`insert`](Self::insert), like
    /// [`Clam::update`]).
    pub fn update(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        self.insert(key, value)
    }

    /// Returns `true` if `key` currently maps to a value.
    pub fn contains(&self, key: Key) -> Result<bool> {
        Ok(self.lookup(key)?.value.is_some())
    }

    /// Flushes every non-empty buffer to flash under one lock acquisition
    /// (see [`Clam::flush_all`]). Returns the total simulated latency.
    pub fn flush_all(&self) -> Result<SimDuration> {
        self.with_write(|c| c.flush_all())
    }

    /// Declares `idle` simulated time to the underlying device (see
    /// [`Clam::idle`]).
    pub fn idle(&self, idle: SimDuration) {
        self.with_write(|c| c.idle(idle))
    }

    /// Snapshot of the operation statistics: the CLAM's own ledger merged
    /// with the fast-path side ledger (so per-lookup invariants — one
    /// latency sample and one read-histogram entry per lookup — hold
    /// regardless of which path served it).
    pub fn stats(&self) -> ClamStats {
        let mut total = self.inner.clam.read().stats();
        total.merge(&self.inner.fast_ledger.lock());
        total
    }

    /// Returns `true` while a write may be in flight for `key`'s super
    /// table: the stripe-global epoch is odd (an exclusive writer is
    /// pending or active), the stripe is write-locked, or a fine-grained
    /// writer's logical op on that table is in progress (its seqlock
    /// epoch is odd; see [`Clam::table_writer_active`]). The `clamd`
    /// engine's idle-shard bypass consults this so a bypassed scalar
    /// LOOKUP never races a half-applied mutation.
    pub fn table_writer_active(&self, key: Key) -> bool {
        if self.inner.write_epoch.load(Ordering::SeqCst) % 2 == 1 {
            return true;
        }
        let Some(guard) = self.inner.clam.try_read() else {
            return true;
        };
        guard.table_writer_active(key)
    }

    /// Switches the write path between the ring-driven default and the
    /// blocking barrier reference (see [`Clam::set_barrier_writes`]).
    pub fn set_barrier_writes(&self, barrier: bool) {
        self.with_write(|c| c.set_barrier_writes(barrier));
    }

    /// Runs `f` with exclusive access to the underlying CLAM (e.g. for
    /// `flush_all` or configuration inspection). Bracketed by the write
    /// epoch like every other exclusive entry point.
    pub fn with<R>(&self, f: impl FnOnce(&mut Clam<D>) -> R) -> R {
        self.with_write(f)
    }

    /// Unwraps the sole handle back into the CLAM (for crash-simulation
    /// tests that keep only the device). Panics if other clones exist.
    /// The fast-path side ledger is discarded.
    pub fn into_clam(self) -> Clam<D> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner.clam.into_inner(),
            Err(_) => panic!("SharedClam::into_clam requires sole ownership"),
        }
    }
}

/// Records one fast-path-resolved lookup into the side ledger, mirroring
/// exactly what the locked pipeline's `plan_lookups`/`resolve_probe` would
/// have recorded (fast-resolved keys never touch flash, hence zero reads).
fn record_fast_outcome(ledger: &mut ClamStats, outcome: &LookupOutcome, batched: bool) {
    if outcome.value.is_some() {
        ledger.lookup_hits += 1;
    } else {
        ledger.lookup_misses += 1;
    }
    ledger.lookups.record(outcome.latency);
    ledger.record_lookup_reads(0);
    ledger.fast_lookups += 1;
    if batched {
        ledger.batched_lookups += 1;
    }
}

/// A CLAM striped over several devices: stripe `i` holds the keys that hash
/// to it, so lookups and inserts for different stripes contend on different
/// locks (and, conceptually, different SSDs).
pub struct StripedClam<D: Device> {
    stripes: Vec<SharedClam<D>>,
}

impl<D: Device> StripedClam<D> {
    /// Builds a striped CLAM from per-stripe CLAMs (one per device).
    ///
    /// Returns an error-free constructor; an empty stripe list is rejected
    /// by panicking early because it is a static misconfiguration.
    pub fn new(stripes: Vec<Clam<D>>) -> Self {
        assert!(!stripes.is_empty(), "StripedClam needs at least one stripe");
        StripedClam { stripes: stripes.into_iter().map(SharedClam::new).collect() }
    }

    /// Recovers every stripe from its device's flash contents (see
    /// [`Clam::recover`]) and assembles the striped CLAM, returning one
    /// [`RecoveryReport`] per stripe in input order. Stripe routing is
    /// deterministic, so recovering each device independently restores
    /// exactly the keys each stripe owned.
    pub fn recover(stripes: Vec<(D, ClamConfig)>) -> Result<(Self, Vec<RecoveryReport>)> {
        assert!(!stripes.is_empty(), "StripedClam needs at least one stripe");
        let mut recovered = Vec::with_capacity(stripes.len());
        let mut reports = Vec::with_capacity(stripes.len());
        for (device, config) in stripes {
            let (clam, report) = Clam::recover(device, config)?;
            recovered.push(clam);
            reports.push(report);
        }
        Ok((StripedClam::new(recovered), reports))
    }

    /// Number of stripes.
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Stripe owning `key`. Routing is deterministic and public so upper
    /// layers (the `clamd` sharded batcher) can key their own partitioning
    /// off the same function — same key, same stripe, same shard.
    pub fn stripe_index(&self, key: Key) -> usize {
        (hash_with_seed(key, 0x57_e19e) % self.stripes.len() as u64) as usize
    }

    fn stripe_of(&self, key: Key) -> &SharedClam<D> {
        &self.stripes[self.stripe_index(key)]
    }

    /// Inserts (or updates) a key on its stripe.
    pub fn insert(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        self.stripe_of(key).insert(key, value)
    }

    /// Looks up a key on its stripe.
    pub fn lookup(&self, key: Key) -> Result<LookupOutcome> {
        self.stripe_of(key).lookup(key)
    }

    /// Deletes a key on its stripe.
    pub fn delete(&self, key: Key) -> Result<()> {
        self.stripe_of(key).delete(key)
    }

    /// Inserts a batch of key/value pairs, partitioned by stripe and
    /// **dispatched to the stripes concurrently**.
    ///
    /// Each stripe's lock is acquired **once** for its whole sub-batch
    /// (instead of once per op), the sub-batch runs through the underlying
    /// [`Clam::insert_batch`] pipeline, and every non-empty stripe executes
    /// on its own thread — stripes model independent devices (one SSD per
    /// stripe), so their flash work genuinely overlaps. The reported
    /// latency is therefore the **maximum over stripes** (the batch is done
    /// when the slowest stripe is), while the event counters (`flushed_ops`,
    /// `evictions`, `coalesced_writes`) sum across stripes. Results and
    /// per-stripe state are identical to the serial reference path
    /// ([`insert_batch_serial`](Self::insert_batch_serial)): stripes share
    /// no state, so dispatch order cannot change any outcome.
    ///
    /// ```
    /// use bufferhash::{Clam, ClamConfig, StripedClam};
    /// use flashsim::Ssd;
    ///
    /// let clam = |_| {
    ///     let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
    ///     Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap()
    /// };
    /// let striped = StripedClam::new((0..3).map(clam).collect());
    ///
    /// let ops: Vec<(u64, u64)> = (0..256).map(|i| (i * 11 + 1, i)).collect();
    /// let out = striped.insert_batch(&ops).unwrap();
    /// assert_eq!(out.ops, 256);
    /// assert_eq!(striped.lookup(12).unwrap().value, Some(1));
    /// ```
    pub fn insert_batch(&self, ops: &[(Key, Value)]) -> Result<BatchInsertOutcome> {
        let groups = self.partition(ops);
        let occupied: Vec<usize> = (0..groups.len()).filter(|&i| !groups[i].is_empty()).collect();
        let results =
            self.dispatch_stripes(&occupied, |idx| self.stripes[idx].insert_batch(&groups[idx]));
        let mut total = BatchInsertOutcome { ops: ops.len(), ..Default::default() };
        for result in results.into_iter().flatten() {
            let out = result?;
            total.latency = total.latency.max(out.latency);
            total.flushed_ops += out.flushed_ops;
            total.evictions += out.evictions;
            total.coalesced_writes += out.coalesced_writes;
        }
        Ok(total)
    }

    /// Runs `job(stripe_index)` for every index in `indices` — on scoped
    /// threads when more than one stripe participates, inline otherwise —
    /// and returns one result slot per stripe (`None` for stripes that
    /// were not dispatched). The shared fan-out engine behind
    /// [`insert_batch`](Self::insert_batch),
    /// [`lookup_batch`](Self::lookup_batch) and
    /// [`flush_all`](Self::flush_all).
    fn dispatch_stripes<R, F>(&self, indices: &[usize], job: F) -> Vec<Option<Result<R>>>
    where
        R: Send,
        F: Fn(usize) -> Result<R> + Sync,
    {
        let mut results: Vec<Option<Result<R>>> = Vec::new();
        results.resize_with(self.stripes.len(), || None);
        match indices {
            [] => {}
            // One stripe: no point paying a thread spawn.
            [only] => results[*only] = Some(job(*only)),
            _ => std::thread::scope(|scope| {
                let job = &job;
                let handles: Vec<_> =
                    indices.iter().map(|&idx| (idx, scope.spawn(move || job(idx)))).collect();
                for (idx, handle) in handles {
                    results[idx] = Some(handle.join().expect("stripe worker panicked"));
                }
            }),
        }
        results
    }

    /// The serial reference path for [`insert_batch`](Self::insert_batch):
    /// stripes execute one after another and the reported latency is the
    /// **sum over stripes**, as a single-device deployment would observe.
    /// State and counters after this call are identical to the concurrent
    /// path's.
    pub fn insert_batch_serial(&self, ops: &[(Key, Value)]) -> Result<BatchInsertOutcome> {
        let groups = self.partition(ops);
        let mut total = BatchInsertOutcome { ops: ops.len(), ..Default::default() };
        for (idx, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let out = self.stripes[idx].insert_batch(group)?;
            total.latency += out.latency;
            total.flushed_ops += out.flushed_ops;
            total.evictions += out.evictions;
            total.coalesced_writes += out.coalesced_writes;
        }
        Ok(total)
    }

    /// Groups `ops` by owning stripe, preserving input order within each
    /// stripe (which is what makes batched execution observationally
    /// equivalent to per-op calls).
    fn partition(&self, ops: &[(Key, Value)]) -> Vec<Vec<(Key, Value)>> {
        let mut groups: Vec<Vec<(Key, Value)>> = vec![Vec::new(); self.stripes.len()];
        for &(key, value) in ops {
            groups[self.stripe_index(key)].push((key, value));
        }
        groups
    }

    /// Flushes every stripe's buffers (see [`Clam::flush_all`]), running
    /// the stripes concurrently; returns the max-over-stripes latency.
    pub fn flush_all(&self) -> Result<SimDuration> {
        let all: Vec<usize> = (0..self.stripes.len()).collect();
        let results = self.dispatch_stripes(&all, |idx| self.stripes[idx].flush_all());
        let mut max = SimDuration::ZERO;
        for r in results.into_iter().flatten() {
            max = max.max(r?);
        }
        Ok(max)
    }

    /// Updates a key on its stripe (alias for [`insert`](Self::insert)).
    pub fn update(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        self.stripe_of(key).update(key, value)
    }

    /// Returns `true` if `key` currently maps to a value.
    pub fn contains(&self, key: Key) -> Result<bool> {
        self.stripe_of(key).contains(key)
    }

    /// Looks up a batch of keys, partitioned by stripe, with one lock
    /// acquisition per stripe-batch and the stripe sub-batches dispatched
    /// concurrently (independent devices, like
    /// [`insert_batch`](Self::insert_batch)). Each stripe resolves its
    /// sub-batch through the queued probe pipeline
    /// ([`Clam::lookup_batch`]), so the reported batch latency is the
    /// **maximum over stripes** of each stripe's wave-makespan time —
    /// stripes overlap on their own devices *and* each stripe's probes
    /// overlap on its device's queue lanes. Outcomes are returned in input
    /// order and are identical to per-op lookups; probe-read counts sum
    /// across stripes, while `waves` reports the deepest (slowest) stripe's
    /// wave count, consistent with the max-over-stripes latency.
    pub fn lookup_batch(&self, keys: &[Key]) -> Result<BatchLookupOutcome> {
        let mut groups: Vec<(Vec<Key>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); self.stripes.len()];
        for (pos, &key) in keys.iter().enumerate() {
            let idx = self.stripe_index(key);
            groups[idx].0.push(key);
            groups[idx].1.push(pos);
        }
        let occupied: Vec<usize> = (0..groups.len()).filter(|&i| !groups[i].0.is_empty()).collect();
        let results =
            self.dispatch_stripes(&occupied, |idx| self.stripes[idx].lookup_batch(&groups[idx].0));
        let mut out: Vec<Option<LookupOutcome>> = vec![None; keys.len()];
        let mut total = BatchLookupOutcome::default();
        for (idx, result) in results.into_iter().enumerate() {
            let Some(result) = result else { continue };
            let stripe_batch = result?;
            total.latency = total.latency.max(stripe_batch.latency);
            total.probe_latency = total.probe_latency.max(stripe_batch.probe_latency);
            total.waves = total.waves.max(stripe_batch.waves);
            total.probe_reads += stripe_batch.probe_reads;
            total.reaps += stripe_batch.reaps;
            total.ring_depth_high_water =
                total.ring_depth_high_water.max(stripe_batch.ring_depth_high_water);
            for (outcome, &pos) in stripe_batch.into_iter().zip(&groups[idx].1) {
                out[pos] = Some(outcome);
            }
        }
        total.outcomes = out.into_iter().map(|o| o.expect("every key routed")).collect();
        Ok(total)
    }

    /// Aggregated statistics across all stripes (every counter, recorder
    /// and histogram merged; see [`ClamStats::merge`]).
    pub fn stats(&self) -> ClamStats {
        let mut total = ClamStats::new();
        for stripe in &self.stripes {
            total.merge(&stripe.stats());
        }
        total
    }

    /// A cloneable handle to stripe `i` (for per-thread pinning).
    pub fn stripe(&self, i: usize) -> Option<SharedClam<D>> {
        self.stripes.get(i).cloned()
    }

    /// Switches every stripe's write path between the ring-driven default
    /// and the blocking barrier reference (see
    /// [`Clam::set_barrier_writes`]).
    pub fn set_barrier_writes(&self, barrier: bool) {
        for stripe in &self.stripes {
            stripe.set_barrier_writes(barrier);
        }
    }

    /// Switches every stripe between the epoch-validated read fast path
    /// (default) and the coarse everything-exclusive baseline (see
    /// [`SharedClam::set_coarse_locks`]).
    pub fn set_coarse_locks(&self, coarse: bool) {
        for stripe in &self.stripes {
            stripe.set_coarse_locks(coarse);
        }
    }

    /// Overrides the fine-batch chunk count on every stripe (see
    /// [`SharedClam::set_batch_parallelism`]).
    pub fn set_batch_parallelism(&self, chunks: Option<usize>) {
        for stripe in &self.stripes {
            stripe.set_batch_parallelism(chunks);
        }
    }

    /// Attempts to resolve `key` on its stripe's read fast path (see
    /// [`SharedClam::try_fast_lookup`]); `None` means the caller must use
    /// the locked path.
    pub fn try_fast_lookup(&self, key: Key) -> Option<LookupOutcome> {
        self.stripe_of(key).try_fast_lookup(key)
    }

    /// Returns `true` while a write may be in flight for `key`'s super
    /// table on its stripe (see [`SharedClam::table_writer_active`]).
    pub fn table_writer_active(&self, key: Key) -> bool {
        self.stripe_of(key).table_writer_active(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClamConfig;
    use flashsim::Ssd;
    use std::thread;

    fn clam() -> Clam<Ssd> {
        let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
        Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap()
    }

    fn key(i: u64) -> Key {
        hash_with_seed(i, 42)
    }

    #[test]
    fn shared_clam_is_usable_from_multiple_threads() {
        let shared = SharedClam::new(clam());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let handle = shared.clone();
            handles.push(thread::spawn(move || {
                for i in 0..5_000u64 {
                    let k = key(t * 1_000_000 + i);
                    handle.insert(k, i).unwrap();
                    assert_eq!(handle.lookup(k).unwrap().value, Some(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.stats().inserts.len(), 20_000);
        assert!(shared.stats().lookup_hits >= 20_000);
    }

    #[test]
    fn shared_clam_with_gives_exclusive_access() {
        let shared = SharedClam::new(clam());
        shared.insert(key(1), 1).unwrap();
        let flushes = shared.with(|c| {
            c.flush_all().unwrap();
            c.stats().flushes
        });
        assert!(flushes >= 1);
    }

    #[test]
    fn striped_clam_routes_keys_consistently() {
        let striped = StripedClam::new(vec![clam(), clam(), clam()]);
        assert_eq!(striped.num_stripes(), 3);
        for i in 0..10_000u64 {
            striped.insert(key(i), i).unwrap();
        }
        for i in (0..10_000u64).step_by(37) {
            assert_eq!(striped.lookup(key(i)).unwrap().value, Some(i), "key {i}");
        }
        striped.delete(key(0)).unwrap();
        assert_eq!(striped.lookup(key(0)).unwrap().value, None);
        // Work is spread across stripes.
        let stats = striped.stats();
        assert_eq!(stats.inserts.len(), 10_000);
        for s in 0..3 {
            let stripe_inserts = striped.stripe(s).unwrap().stats().inserts.len();
            assert!(
                stripe_inserts > 1_000,
                "stripe {s} got only {stripe_inserts} inserts; routing is unbalanced"
            );
        }
    }

    #[test]
    fn striped_clam_parallel_threads() {
        let striped = std::sync::Arc::new(StripedClam::new(vec![clam(), clam()]));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = std::sync::Arc::clone(&striped);
            handles.push(thread::spawn(move || {
                for i in 0..3_000u64 {
                    let k = key(t * 10_000_000 + i);
                    s.insert(k, i).unwrap();
                    assert_eq!(s.lookup(k).unwrap().value, Some(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(striped.stats().inserts.len(), 12_000);
    }

    #[test]
    fn shared_clam_batch_round_trips() {
        let shared = SharedClam::new(clam());
        let ops: Vec<(u64, u64)> = (0..5_000u64).map(|i| (key(i), i * 2)).collect();
        let out = shared.insert_batch(&ops).unwrap();
        assert_eq!(out.ops, 5_000);
        let keys: Vec<u64> = ops.iter().map(|(k, _)| *k).collect();
        let found = shared.lookup_batch(&keys).unwrap();
        for (i, outcome) in found.outcomes.iter().enumerate() {
            assert_eq!(outcome.value, Some(i as u64 * 2), "key {i}");
        }
        assert_eq!(shared.stats().batched_inserts, 5_000);
        assert_eq!(shared.stats().batched_lookups, 5_000);
    }

    #[test]
    fn striped_clam_batches_route_like_per_op() {
        let striped = StripedClam::new(vec![clam(), clam(), clam()]);
        let ops: Vec<(u64, u64)> = (0..9_000u64).map(|i| (key(i), i)).collect();
        let out = striped.insert_batch(&ops).unwrap();
        assert_eq!(out.ops, 9_000);
        // Batched lookups agree with per-op lookups in input order.
        let keys: Vec<u64> =
            (0..2_000u64).map(|i| if i % 4 == 0 { key(500_000 + i) } else { key(i) }).collect();
        let batched = striped.lookup_batch(&keys).unwrap();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(batched[i].value, striped.lookup(*k).unwrap().value, "index {i}");
        }
        // Every stripe saw batched traffic through its own lock.
        let stats = striped.stats();
        assert_eq!(stats.batched_inserts, 9_000);
        assert_eq!(stats.inserts.len(), 9_000);
        // Aggregation keeps the per-lookup read histogram (one bucket entry
        // per lookup), so Table-2-style breakdowns work on striped CLAMs.
        let histogram_total: u64 = stats.flash_reads_histogram.iter().sum();
        assert_eq!(histogram_total, stats.lookups.len() as u64);
        for s in 0..3 {
            assert!(striped.stripe(s).unwrap().stats().batched_inserts > 1_000);
        }
    }

    #[test]
    fn striped_batches_from_multiple_threads() {
        let striped = std::sync::Arc::new(StripedClam::new(vec![clam(), clam()]));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = std::sync::Arc::clone(&striped);
            handles.push(thread::spawn(move || {
                let ops: Vec<(u64, u64)> =
                    (0..3_000u64).map(|i| (key(t * 10_000_000 + i), i)).collect();
                for chunk in ops.chunks(128) {
                    s.insert_batch(chunk).unwrap();
                }
                let keys: Vec<u64> = ops.iter().map(|(k, _)| *k).collect();
                for (i, out) in s.lookup_batch(&keys).unwrap().into_iter().enumerate() {
                    assert_eq!(out.value, Some(i as u64));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(striped.stats().inserts.len(), 12_000);
        assert_eq!(striped.stats().batched_inserts, 12_000);
    }

    #[test]
    fn striped_queued_lookups_report_max_over_stripes() {
        let striped = StripedClam::new(vec![clam(), clam(), clam()]);
        let ops: Vec<(u64, u64)> = (0..60_000u64).map(|i| (key(i), i)).collect();
        for chunk in ops.chunks(1024) {
            striped.insert_batch(chunk).unwrap();
        }
        // Miss-heavy probe traffic so each stripe submits real waves.
        let keys: Vec<u64> =
            (0..1_500u64).map(|i| if i % 3 == 0 { key(i) } else { key(900_000 + i) }).collect();
        let batch = striped.lookup_batch(&keys).unwrap();
        assert_eq!(batch.ops(), keys.len());
        // Max-over-stripes: the batch cannot be cheaper than any stripe's
        // own makespan, and the merged counters describe all stripes.
        let stats = striped.stats();
        if stats.lookup_probe_requests > 0 {
            assert_eq!(batch.probe_reads as u64, stats.lookup_probe_requests);
            assert!(batch.waves as u64 <= stats.lookup_probe_waves);
        }
        // Values agree with per-op lookups.
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(batch[i].value, striped.lookup(k).unwrap().value, "key index {i}");
        }
    }

    #[test]
    fn stripes_can_share_one_device_and_its_ring() {
        use flashsim::SharedDevice;
        // Two stripes over *partitions of one SSD*: their queued probe
        // traffic funnels through the same device queue (one controller's
        // ring timeline), which is what makes cross-batch contention and
        // overlap real instead of per-stripe-device fiction.
        let shared = SharedDevice::new(flashsim::Ssd::intel(8 << 20).unwrap());
        let stripe = |base: u64| {
            let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
            Clam::new(shared.partition(base, 4 << 20).unwrap(), cfg).unwrap()
        };
        let striped = StripedClam::new(vec![stripe(0), stripe(4 << 20)]);
        let ops: Vec<(u64, u64)> = (0..30_000u64).map(|i| (key(i), i)).collect();
        for chunk in ops.chunks(512) {
            striped.insert_batch(chunk).unwrap();
        }
        // Concurrent stripe lookups (miss-heavy so both stripes probe)
        // interleave their ring admissions on the one device.
        let keys: Vec<u64> =
            (0..1_000u64).map(|i| if i % 3 == 0 { key(i) } else { key(700_000 + i) }).collect();
        let batch = striped.lookup_batch(&keys).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(batch[i].value, striped.lookup(k).unwrap().value, "key index {i}");
        }
        // The single underlying device saw both stripes' traffic.
        let device_stats = shared.with(|d| d.stats());
        assert!(device_stats.requests_reaped > 0, "ring probes must flow through the device");
        let stats = striped.stats();
        assert!(stats.lookup_ring_reaps >= device_stats.requests_reaped / 2);
        // The write path rode the same ring: every stripe's flush traffic
        // was admitted through the shared device's submission queue, not
        // through blocking submits.
        assert!(stats.flushes > 0, "the workload must have flushed");
        assert!(
            stats.flush_ring_reaps > 0,
            "flush writes must be reaped off the shared ring: {stats}"
        );
        assert_eq!(
            device_stats.requests_reaped,
            stats.lookup_ring_reaps + stats.flush_ring_reaps,
            "every reap on the shared device belongs to one of the two ledgers"
        );
    }

    #[test]
    fn ring_and_wave_lookup_batches_agree_on_shared_clams() {
        let shared = SharedClam::new(clam());
        let ops: Vec<(u64, u64)> = (0..30_000u64).map(|i| (key(i), i)).collect();
        for chunk in ops.chunks(512) {
            shared.insert_batch(chunk).unwrap();
        }
        let keys: Vec<u64> =
            (0..800u64).map(|i| if i % 2 == 0 { key(i) } else { key(600_000 + i) }).collect();
        let ring = shared.lookup_batch(&keys).unwrap();
        let wave = shared.lookup_batch_waves(&keys).unwrap();
        assert_eq!(ring.ops(), wave.ops());
        for i in 0..keys.len() {
            assert_eq!(ring[i].value, wave[i].value, "key index {i}");
            assert_eq!(ring[i].source, wave[i].source, "key index {i}");
            assert_eq!(ring[i].flash_reads, wave[i].flash_reads, "key index {i}");
        }
        assert_eq!(ring.waves, wave.waves, "ring rounds match the wave count");
        assert!(ring.reaps > 0 && wave.reaps == 0, "only the ring pipeline reaps");
    }

    #[test]
    fn parallel_dispatch_matches_the_serial_path() {
        let parallel = StripedClam::new(vec![clam(), clam(), clam()]);
        let serial = StripedClam::new(vec![clam(), clam(), clam()]);
        let ops: Vec<(u64, u64)> = (0..60_000u64).map(|i| (key(i), i * 3)).collect();
        let mut max_total = flashsim::SimDuration::ZERO;
        let mut sum_total = flashsim::SimDuration::ZERO;
        for chunk in ops.chunks(512) {
            let p = parallel.insert_batch(chunk).unwrap();
            let s = serial.insert_batch_serial(chunk).unwrap();
            // Same outcomes, event for event; only the latency accounting
            // differs (max-over-stripes vs. sum-over-stripes).
            assert_eq!(p.ops, s.ops);
            assert_eq!(p.flushed_ops, s.flushed_ops);
            assert_eq!(p.evictions, s.evictions);
            assert_eq!(p.coalesced_writes, s.coalesced_writes);
            assert!(p.latency <= s.latency);
            max_total += p.latency;
            sum_total += s.latency;
        }
        assert!(
            max_total < sum_total,
            "max-over-stripes ({max_total}) must undercut summed dispatch ({sum_total})"
        );
        // Identical end state: same per-stripe counters, same lookups.
        let (ps, ss) = (parallel.stats(), serial.stats());
        assert_eq!(ps.flushes, ss.flushes);
        assert_eq!(ps.inserts.len(), ss.inserts.len());
        assert_eq!(ps.batched_inserts, ss.batched_inserts);
        for i in (0..60_000u64).step_by(271) {
            assert_eq!(
                parallel.lookup(key(i)).unwrap().value,
                serial.lookup(key(i)).unwrap().value,
                "key {i}"
            );
        }
    }

    #[test]
    fn wrappers_expose_the_full_clam_surface() {
        let shared = SharedClam::new(clam());
        shared.insert(key(1), 1).unwrap();
        shared.update(key(1), 2).unwrap();
        assert!(shared.contains(key(1)).unwrap());
        let flushed = shared.flush_all().unwrap();
        assert!(flushed > flashsim::SimDuration::ZERO);
        shared.idle(flashsim::SimDuration::from_millis(1));
        shared.delete(key(1)).unwrap();
        assert!(!shared.contains(key(1)).unwrap());

        let striped = StripedClam::new(vec![clam(), clam()]);
        for i in 0..500u64 {
            striped.update(key(i), i).unwrap();
        }
        assert!(striped.contains(key(7)).unwrap());
        let flushes_before = striped.stats().flushes;
        striped.flush_all().unwrap();
        assert!(striped.stats().flushes > flushes_before);
        striped.delete(key(7)).unwrap();
        assert!(!striped.contains(key(7)).unwrap());
        // Buffered entries survive the flush.
        assert_eq!(striped.lookup(key(8)).unwrap().value, Some(8));
    }

    #[test]
    fn wrappers_recover_from_flash_contents() {
        // Fill a striped CLAM, flush, lose the DRAM, and recover each
        // stripe from its device image alone.
        let striped = StripedClam::new(vec![clam(), clam()]);
        let ops: Vec<(u64, u64)> = (0..20_000u64).map(|i| (key(i), i)).collect();
        for chunk in ops.chunks(512) {
            striped.insert_batch(chunk).unwrap();
        }
        striped.flush_all().unwrap();
        // Simulate the crash: drop every wrapper, keeping only the flash.
        let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
        let pairs: Vec<(Ssd, ClamConfig)> = striped
            .stripes
            .into_iter()
            .map(|stripe| (stripe.into_clam().into_device(), cfg.clone()))
            .collect();
        let (recovered, reports) = StripedClam::recover(pairs).unwrap();
        assert_eq!(reports.len(), 2);
        for report in &reports {
            assert!(report.accepted > 0, "{report}");
            assert_eq!(report.torn, 0, "{report}");
        }
        for (k, v) in &ops {
            assert_eq!(recovered.lookup(*k).unwrap().value, Some(*v), "key {k:#x}");
        }
        assert_eq!(recovered.stats().recoveries, 2);
    }

    #[test]
    fn fast_reads_resolve_buffered_keys_without_the_write_lock() {
        let shared = SharedClam::new(clam());
        shared.insert(key(1), 10).unwrap();
        // Buffered key: resolves on the fast path, from DRAM, zero reads.
        let outcome = shared.try_fast_lookup(key(1)).expect("buffered key resolves fast");
        assert_eq!(outcome.value, Some(10));
        assert_eq!(outcome.source, crate::clam::LookupSource::Buffer);
        assert_eq!(outcome.flash_reads, 0);
        // A key with no live candidate anywhere is a fast miss.
        let miss = shared.try_fast_lookup(key(999_999)).expect("bloom-negative key is a fast miss");
        assert_eq!(miss.value, None);
        assert_eq!(miss.source, crate::clam::LookupSource::Miss);
        let stats = shared.stats();
        assert_eq!(stats.fast_lookups, 2);
        assert_eq!(stats.lookup_hits, 1);
        assert_eq!(stats.lookup_misses, 1);
        // The per-lookup invariants hold across the merged ledgers.
        assert_eq!(stats.flash_reads_histogram.iter().sum::<u64>(), stats.lookups.len() as u64);
        // Coarse mode disables the fast path entirely.
        shared.set_coarse_locks(true);
        assert!(shared.coarse_locks());
        assert!(shared.try_fast_lookup(key(1)).is_none());
        assert_eq!(shared.lookup(key(1)).unwrap().value, Some(10), "locked path still serves");
    }

    #[test]
    fn fast_reads_yield_to_writers_and_count_the_conflict() {
        let shared = SharedClam::new(clam());
        shared.insert(key(1), 1).unwrap();
        let reader = shared.clone();
        // While `with` holds the write lock the epoch is odd, so a
        // concurrent fast read must fall back (and count the conflict).
        shared.with(|_| {
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    assert!(reader.try_fast_lookup(key(1)).is_none());
                });
            });
        });
        let stats = shared.stats();
        assert!(stats.fast_read_conflicts >= 1, "{stats}");
        assert_eq!(shared.lookup(key(1)).unwrap().value, Some(1));
    }

    #[test]
    fn fast_and_coarse_lookups_agree_after_flushes() {
        // Same op sequence against a fast-path CLAM and a coarse baseline:
        // identical values, sources and flash-read counts, per key.
        let fast = SharedClam::new(clam());
        let coarse = SharedClam::new(clam());
        coarse.set_coarse_locks(true);
        let ops: Vec<(u64, u64)> = (0..20_000u64).map(|i| (key(i), i)).collect();
        for chunk in ops.chunks(512) {
            fast.insert_batch(chunk).unwrap();
            coarse.insert_batch(chunk).unwrap();
        }
        for i in (0..20_000u64).step_by(501) {
            fast.delete(key(i)).unwrap();
            coarse.delete(key(i)).unwrap();
        }
        let keys: Vec<u64> =
            (0..3_000u64).map(|i| if i % 3 == 0 { key(i) } else { key(800_000 + i) }).collect();
        let f = fast.lookup_batch(&keys).unwrap();
        let c = coarse.lookup_batch(&keys).unwrap();
        for i in 0..keys.len() {
            assert_eq!(f[i].value, c[i].value, "key index {i}");
            assert_eq!(f[i].source, c[i].source, "key index {i}");
            assert_eq!(f[i].flash_reads, c[i].flash_reads, "key index {i}");
        }
        // Both ledgers saw every lookup, whichever path served it.
        let (fs, cs) = (fast.stats(), coarse.stats());
        assert_eq!(fs.lookups.len(), cs.lookups.len());
        assert_eq!(fs.lookup_hits, cs.lookup_hits);
        assert_eq!(fs.lookup_misses, cs.lookup_misses);
        assert_eq!(fs.batched_lookups, cs.batched_lookups);
        assert!(fs.fast_lookups > 0, "the fast path must have served the memory-resolved keys");
        assert_eq!(cs.fast_lookups, 0, "coarse mode never uses the fast path");
    }

    #[test]
    fn fine_and_coarse_writes_agree_and_fill_the_lock_ledger() {
        let fine = SharedClam::new(clam());
        let coarse = SharedClam::new(clam());
        coarse.set_coarse_locks(true);
        for i in 0..8_000u64 {
            fine.insert(key(i), i).unwrap();
            coarse.insert(key(i), i).unwrap();
        }
        for i in (0..8_000u64).step_by(97) {
            fine.delete(key(i)).unwrap();
            coarse.delete(key(i)).unwrap();
        }
        for i in (0..8_000u64).step_by(53) {
            assert_eq!(
                fine.lookup(key(i)).unwrap().value,
                coarse.lookup(key(i)).unwrap().value,
                "key {i}"
            );
        }
        let (fs, cs) = (fine.stats(), coarse.stats());
        assert_eq!(fs.flushes, cs.flushes);
        assert_eq!(fs.inserts.len(), cs.inserts.len());
        assert_eq!(fs.deletes.len(), cs.deletes.len());
        assert_eq!(fs.forced_evictions, cs.forced_evictions);
        assert_eq!(fs.coalesced_flush_writes, cs.coalesced_flush_writes);
        // Every fine-grained op went through a table op lock; the coarse
        // baseline never touches them.
        assert!(fs.table_write_acquisitions >= 8_000, "{fs}");
        assert_eq!(cs.table_write_acquisitions, 0, "{cs}");
    }

    #[test]
    fn table_writer_active_tracks_exclusive_and_fine_writers() {
        let shared = SharedClam::new(clam());
        shared.insert(key(1), 1).unwrap();
        assert!(!shared.table_writer_active(key(1)), "idle stripe has no writer");
        // An exclusive section makes every table's writer flag trip
        // (stripe-global epoch is odd while `with` runs).
        let probe = shared.clone();
        shared.with(|_| {
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    assert!(probe.table_writer_active(key(1)));
                });
            });
        });
        assert!(!shared.table_writer_active(key(1)));
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn empty_stripe_list_is_rejected() {
        let _ = StripedClam::<Ssd>::new(Vec::new());
    }

    #[test]
    fn missing_stripe_handle_is_none() {
        let striped = StripedClam::new(vec![clam()]);
        assert!(striped.stripe(0).is_some());
        assert!(striped.stripe(5).is_none());
    }
}
