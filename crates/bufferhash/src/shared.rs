//! Thread-safe CLAM wrappers.
//!
//! The systems the paper targets (WAN optimizers, dedup servers, content
//! directories) serve many connections at once. [`SharedClam`] wraps a
//! [`Clam`] in a [`parking_lot::Mutex`] behind an [`Arc`] so worker threads
//! can share one index, and [`StripedClam`] goes one step further by
//! striping the key space across several independent CLAMs (each typically
//! on its own SSD, as §5.2 suggests) so operations on different stripes
//! proceed in parallel.

use std::sync::Arc;

use parking_lot::Mutex;

use flashsim::Device;

use crate::clam::{Clam, InsertOutcome, LookupOutcome};
use crate::error::Result;
use crate::stats::ClamStats;
use crate::types::{hash_with_seed, Key, Value};

/// A cloneable, thread-safe handle to a single CLAM.
pub struct SharedClam<D: Device> {
    inner: Arc<Mutex<Clam<D>>>,
}

impl<D: Device> Clone for SharedClam<D> {
    fn clone(&self) -> Self {
        SharedClam { inner: Arc::clone(&self.inner) }
    }
}

impl<D: Device> SharedClam<D> {
    /// Wraps a CLAM for shared use.
    pub fn new(clam: Clam<D>) -> Self {
        SharedClam { inner: Arc::new(Mutex::new(clam)) }
    }

    /// Inserts (or updates) a key.
    pub fn insert(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        self.inner.lock().insert(key, value)
    }

    /// Looks up a key.
    pub fn lookup(&self, key: Key) -> Result<LookupOutcome> {
        self.inner.lock().lookup(key)
    }

    /// Deletes a key.
    pub fn delete(&self, key: Key) -> Result<()> {
        self.inner.lock().delete(key)?;
        Ok(())
    }

    /// Snapshot of the operation statistics.
    pub fn stats(&self) -> ClamStats {
        self.inner.lock().stats().clone()
    }

    /// Runs `f` with exclusive access to the underlying CLAM (e.g. for
    /// `flush_all` or configuration inspection).
    pub fn with<R>(&self, f: impl FnOnce(&mut Clam<D>) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

/// A CLAM striped over several devices: stripe `i` holds the keys that hash
/// to it, so lookups and inserts for different stripes contend on different
/// locks (and, conceptually, different SSDs).
pub struct StripedClam<D: Device> {
    stripes: Vec<SharedClam<D>>,
}

impl<D: Device> StripedClam<D> {
    /// Builds a striped CLAM from per-stripe CLAMs (one per device).
    ///
    /// Returns an error-free constructor; an empty stripe list is rejected
    /// by panicking early because it is a static misconfiguration.
    pub fn new(stripes: Vec<Clam<D>>) -> Self {
        assert!(!stripes.is_empty(), "StripedClam needs at least one stripe");
        StripedClam { stripes: stripes.into_iter().map(SharedClam::new).collect() }
    }

    /// Number of stripes.
    pub fn num_stripes(&self) -> usize {
        self.stripes.len()
    }

    fn stripe_of(&self, key: Key) -> &SharedClam<D> {
        let idx = (hash_with_seed(key, 0x57_e19e) % self.stripes.len() as u64) as usize;
        &self.stripes[idx]
    }

    /// Inserts (or updates) a key on its stripe.
    pub fn insert(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        self.stripe_of(key).insert(key, value)
    }

    /// Looks up a key on its stripe.
    pub fn lookup(&self, key: Key) -> Result<LookupOutcome> {
        self.stripe_of(key).lookup(key)
    }

    /// Deletes a key on its stripe.
    pub fn delete(&self, key: Key) -> Result<()> {
        self.stripe_of(key).delete(key)
    }

    /// Aggregated statistics across all stripes.
    pub fn stats(&self) -> ClamStats {
        let mut total = ClamStats::new();
        for stripe in &self.stripes {
            let s = stripe.stats();
            total.inserts.merge(&s.inserts);
            total.lookups.merge(&s.lookups);
            total.deletes.merge(&s.deletes);
            total.lookup_hits += s.lookup_hits;
            total.lookup_misses += s.lookup_misses;
            total.flushes += s.flushes;
            total.forced_evictions += s.forced_evictions;
            total.reinsertions += s.reinsertions;
            total.spurious_flash_reads += s.spurious_flash_reads;
            total.lookup_flash_reads += s.lookup_flash_reads;
        }
        total
    }

    /// A cloneable handle to stripe `i` (for per-thread pinning).
    pub fn stripe(&self, i: usize) -> Option<SharedClam<D>> {
        self.stripes.get(i).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClamConfig;
    use flashsim::Ssd;
    use std::thread;

    fn clam() -> Clam<Ssd> {
        let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
        Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap()
    }

    fn key(i: u64) -> Key {
        hash_with_seed(i, 42)
    }

    #[test]
    fn shared_clam_is_usable_from_multiple_threads() {
        let shared = SharedClam::new(clam());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let handle = shared.clone();
            handles.push(thread::spawn(move || {
                for i in 0..5_000u64 {
                    let k = key(t * 1_000_000 + i);
                    handle.insert(k, i).unwrap();
                    assert_eq!(handle.lookup(k).unwrap().value, Some(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.stats().inserts.len(), 20_000);
        assert!(shared.stats().lookup_hits >= 20_000);
    }

    #[test]
    fn shared_clam_with_gives_exclusive_access() {
        let shared = SharedClam::new(clam());
        shared.insert(key(1), 1).unwrap();
        let flushes = shared.with(|c| {
            c.flush_all().unwrap();
            c.stats().flushes
        });
        assert!(flushes >= 1);
    }

    #[test]
    fn striped_clam_routes_keys_consistently() {
        let striped = StripedClam::new(vec![clam(), clam(), clam()]);
        assert_eq!(striped.num_stripes(), 3);
        for i in 0..10_000u64 {
            striped.insert(key(i), i).unwrap();
        }
        for i in (0..10_000u64).step_by(37) {
            assert_eq!(striped.lookup(key(i)).unwrap().value, Some(i), "key {i}");
        }
        striped.delete(key(0)).unwrap();
        assert_eq!(striped.lookup(key(0)).unwrap().value, None);
        // Work is spread across stripes.
        let stats = striped.stats();
        assert_eq!(stats.inserts.len(), 10_000);
        for s in 0..3 {
            let stripe_inserts = striped.stripe(s).unwrap().stats().inserts.len();
            assert!(
                stripe_inserts > 1_000,
                "stripe {s} got only {stripe_inserts} inserts; routing is unbalanced"
            );
        }
    }

    #[test]
    fn striped_clam_parallel_threads() {
        let striped = std::sync::Arc::new(StripedClam::new(vec![clam(), clam()]));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = std::sync::Arc::clone(&striped);
            handles.push(thread::spawn(move || {
                for i in 0..3_000u64 {
                    let k = key(t * 10_000_000 + i);
                    s.insert(k, i).unwrap();
                    assert_eq!(s.lookup(k).unwrap().value, Some(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(striped.stats().inserts.len(), 12_000);
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn empty_stripe_list_is_rejected() {
        let _ = StripedClam::<Ssd>::new(Vec::new());
    }

    #[test]
    fn missing_stripe_handle_is_none() {
        let striped = StripedClam::new(vec![clam()]);
        assert!(striped.stripe(0).is_some());
        assert!(striped.stripe(5).is_none());
    }
}
