//! Online backup service (§3).
//!
//! Online backup services let many clients continuously push "diffs" of the
//! files they edit to a central repository and fetch changes back on demand.
//! The central repository is exactly the deduplicating chunk store of
//! [`crate::DedupStore`]; this module adds the multi-client workload on top
//! so the aggregate insert/lookup rates the paper motivates can be driven
//! against either a CLAM- or a BDB-backed index.

use flashsim::{Device, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wanopt::{FingerprintStore, Result};

use crate::store::DedupStore;

/// A client with a local dataset that it periodically edits and backs up.
#[derive(Debug, Clone)]
pub struct BackupClient {
    /// Client identifier.
    pub id: u64,
    dataset: Vec<u8>,
    rng: StdRng,
}

impl BackupClient {
    /// Creates a client with `dataset_bytes` of initial data.
    pub fn new(id: u64, dataset_bytes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ id.wrapping_mul(0x9e37_79b9));
        let dataset = (0..dataset_bytes).map(|_| rng.gen()).collect();
        BackupClient { id, dataset, rng }
    }

    /// Current dataset contents.
    pub fn dataset(&self) -> &[u8] {
        &self.dataset
    }

    /// Edits a random region of the dataset (as a user saving a file would)
    /// and returns the number of bytes touched.
    pub fn edit(&mut self, edit_bytes: usize) -> usize {
        if self.dataset.is_empty() {
            return 0;
        }
        let edit = edit_bytes.min(self.dataset.len());
        let start = self.rng.gen_range(0..=self.dataset.len() - edit);
        for b in &mut self.dataset[start..start + edit] {
            *b = self.rng.gen();
        }
        edit
    }
}

/// Aggregate statistics of a backup round.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackupStats {
    /// Backups performed.
    pub backups: u64,
    /// Total bytes offered by clients.
    pub bytes_offered: u64,
    /// Bytes actually stored after deduplication.
    pub bytes_stored: u64,
    /// Total simulated time spent in the repository.
    pub repository_time: SimDuration,
}

impl BackupStats {
    /// Fraction of offered bytes eliminated by deduplication.
    pub fn dedup_ratio(&self) -> f64 {
        if self.bytes_offered == 0 {
            0.0
        } else {
            1.0 - self.bytes_stored as f64 / self.bytes_offered as f64
        }
    }
}

/// The central backup repository serving many clients.
pub struct BackupServer<S: FingerprintStore, D: Device> {
    store: DedupStore<S, D>,
    stats: BackupStats,
}

impl<S: FingerprintStore, D: Device> BackupServer<S, D> {
    /// Creates a server over a deduplicating store.
    pub fn new(store: DedupStore<S, D>) -> Self {
        BackupServer { store, stats: BackupStats::default() }
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> BackupStats {
        self.stats
    }

    /// Access to the underlying store.
    pub fn store(&self) -> &DedupStore<S, D> {
        &self.store
    }

    /// Mutable access to the underlying store (e.g. to merge another
    /// dataset's fingerprints into the repository index).
    pub fn store_mut(&mut self) -> &mut DedupStore<S, D> {
        &mut self.store
    }

    /// Performs a full backup of one client's dataset.
    pub fn backup(&mut self, client: &BackupClient) -> Result<SimDuration> {
        let stored_before = self.store.stats().bytes_stored;
        let t = self.store.ingest(client.dataset())?;
        self.stats.backups += 1;
        self.stats.bytes_offered += client.dataset().len() as u64;
        self.stats.bytes_stored += self.store.stats().bytes_stored - stored_before;
        self.stats.repository_time += t;
        Ok(t)
    }

    /// Runs `rounds` of edit-then-backup across all `clients`, returning the
    /// aggregate statistics.
    pub fn run_rounds(
        &mut self,
        clients: &mut [BackupClient],
        rounds: usize,
        edit_bytes: usize,
    ) -> Result<BackupStats> {
        for _ in 0..rounds {
            for client in clients.iter_mut() {
                client.edit(edit_bytes);
                self.backup(client)?;
            }
        }
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferhash::{Clam, ClamConfig};
    use flashsim::{MagneticDisk, Ssd};
    use wanopt::ClamStore;

    fn server() -> BackupServer<ClamStore<Ssd>, MagneticDisk> {
        let cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
        let clam = Clam::new(Ssd::intel(8 << 20).unwrap(), cfg).unwrap();
        let store = DedupStore::new(ClamStore::new(clam), MagneticDisk::new(64 << 20).unwrap());
        BackupServer::new(store)
    }

    #[test]
    fn first_backup_stores_everything_later_backups_store_little() {
        let mut server = server();
        let mut clients = vec![BackupClient::new(0, 300_000, 7)];
        server.backup(&clients[0]).unwrap();
        let after_first = server.stats();
        assert!(after_first.dedup_ratio() < 0.05);
        // Small edits followed by repeated full backups dedupe heavily.
        server.run_rounds(&mut clients, 3, 20_000).unwrap();
        let final_stats = server.stats();
        assert!(
            final_stats.dedup_ratio() > 0.5,
            "repeated backups should deduplicate well, ratio {}",
            final_stats.dedup_ratio()
        );
        assert_eq!(final_stats.backups, 4);
    }

    #[test]
    fn multiple_clients_with_distinct_data_do_not_cross_deduplicate() {
        let mut server = server();
        let mut clients: Vec<BackupClient> =
            (0..3).map(|i| BackupClient::new(i, 150_000, 11)).collect();
        server.run_rounds(&mut clients, 1, 0).unwrap();
        let stats = server.stats();
        // Three distinct datasets: nothing to share on the first round.
        assert!(stats.dedup_ratio() < 0.05, "ratio {}", stats.dedup_ratio());
        assert_eq!(stats.backups, 3);
        assert!(stats.repository_time > SimDuration::ZERO);
    }

    #[test]
    fn edits_change_only_the_requested_amount() {
        let mut c = BackupClient::new(1, 100_000, 3);
        let before = c.dataset().to_vec();
        let touched = c.edit(5_000);
        assert_eq!(touched, 5_000);
        let diff = c.dataset().iter().zip(&before).filter(|(a, b)| a != b).count();
        assert!(diff <= 5_000);
        assert!(diff > 3_000, "random rewrite should change most touched bytes ({diff})");
    }
}
