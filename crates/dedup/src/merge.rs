//! Fingerprint-index merging (§3).
//!
//! Merging a smaller dataset's index into a larger one requires looking up
//! every fingerprint of the smaller index in the larger index and inserting
//! the ones that are new. The paper estimates this takes ~2 hours with a
//! Berkeley-DB index and under 2 minutes with a CLAM; [`merge_indexes`]
//! reproduces that experiment for any pair of [`FingerprintStore`]s.

use flashsim::SimDuration;
use wanopt::{FingerprintStore, Result};

/// A dataset's fingerprint set: the (fingerprint, archive address) pairs of
/// its chunks.
#[derive(Debug, Clone, Default)]
pub struct FingerprintSet {
    /// The fingerprints and their archive addresses.
    pub entries: Vec<(u64, u64)>,
}

impl FingerprintSet {
    /// Generates a synthetic fingerprint set of `n` entries, of which
    /// roughly `overlap` (in `[0, 1]`) also appear in the set produced with
    /// `other_seed` (modelling two datasets that share content).
    pub fn synthetic(n: usize, overlap: f64, seed: u64, other_seed: u64) -> Self {
        let overlap = overlap.clamp(0.0, 1.0);
        let shared = (n as f64 * overlap) as usize;
        let mut entries = Vec::with_capacity(n);
        for i in 0..shared {
            // Shared fingerprints derive from the pair of seeds so both sets
            // produce the same values.
            let fp = bufferhash::hash_with_seed(i as u64, seed.min(other_seed) ^ 0x5eed);
            entries.push((fp, i as u64));
        }
        for i in shared..n {
            let fp = bufferhash::hash_with_seed(i as u64, seed.wrapping_mul(0x9e37_79b9));
            entries.push((fp, i as u64));
        }
        FingerprintSet { entries }
    }

    /// Number of fingerprints in the set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` for an empty set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Outcome of an index merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeReport {
    /// Fingerprints examined (the size of the smaller index).
    pub fingerprints: usize,
    /// Fingerprints that were already present in the target index.
    pub already_present: usize,
    /// Fingerprints inserted into the target index.
    pub inserted: usize,
    /// Total simulated time for the merge.
    pub total_time: SimDuration,
}

impl MergeReport {
    /// Merge throughput in fingerprints per second.
    pub fn fingerprints_per_second(&self) -> f64 {
        let secs = self.total_time.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.fingerprints as f64 / secs
        }
    }
}

/// Merges `source` (the smaller dataset's fingerprints) into `target`.
///
/// Every source fingerprint is looked up in `target`; new fingerprints are
/// inserted. Returns what happened and how long it took (simulated).
pub fn merge_indexes<S: FingerprintStore>(
    target: &mut S,
    source: &FingerprintSet,
) -> Result<MergeReport> {
    let mut report = MergeReport {
        fingerprints: source.len(),
        already_present: 0,
        inserted: 0,
        total_time: SimDuration::ZERO,
    };
    for &(fp, addr) in &source.entries {
        let (found, t) = target.lookup(fp)?;
        report.total_time += t;
        if found.is_some() {
            report.already_present += 1;
        } else {
            report.total_time += target.insert(fp, addr)?;
            report.inserted += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baseline::{BdbConfig, BdbHashIndex};
    use bufferhash::{Clam, ClamConfig};
    use flashsim::Ssd;
    use wanopt::{BdbStore, ClamStore};

    fn clam_store() -> ClamStore<Ssd> {
        let cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
        ClamStore::new(Clam::new(Ssd::intel(8 << 20).unwrap(), cfg).unwrap())
    }

    #[test]
    fn synthetic_sets_share_the_requested_overlap() {
        let a = FingerprintSet::synthetic(1000, 0.3, 1, 2);
        let b = FingerprintSet::synthetic(1000, 0.3, 2, 1);
        let set_a: std::collections::HashSet<u64> = a.entries.iter().map(|e| e.0).collect();
        let common = b.entries.iter().filter(|e| set_a.contains(&e.0)).count();
        assert!((250..350).contains(&common), "expected ~300 shared fingerprints, got {common}");
    }

    #[test]
    fn merge_inserts_only_new_fingerprints() {
        let mut target = clam_store();
        // Pre-populate the target with its own dataset.
        let existing = FingerprintSet::synthetic(5_000, 0.4, 1, 2);
        for &(fp, addr) in &existing.entries {
            target.insert(fp, addr).unwrap();
        }
        // Merge the other dataset, which shares ~40% of its fingerprints.
        let source = FingerprintSet::synthetic(5_000, 0.4, 2, 1);
        let report = merge_indexes(&mut target, &source).unwrap();
        assert_eq!(report.fingerprints, 5_000);
        assert_eq!(report.already_present + report.inserted, 5_000);
        assert!((1_500..2_500).contains(&report.already_present), "{report:?}");
        // Everything from the source is now present.
        for &(fp, _) in &source.entries {
            assert!(target.lookup(fp).unwrap().0.is_some());
        }
    }

    #[test]
    fn clam_merge_is_much_faster_than_bdb_merge() {
        let existing = FingerprintSet::synthetic(8_000, 0.0, 1, 2);
        let source = FingerprintSet::synthetic(8_000, 0.0, 2, 1);

        let mut clam = clam_store();
        for &(fp, addr) in &existing.entries {
            clam.insert(fp, addr).unwrap();
        }
        let clam_report = merge_indexes(&mut clam, &source).unwrap();

        let idx = BdbHashIndex::new(
            Ssd::intel(8 << 20).unwrap(),
            BdbConfig { cache_bytes: 256 * 1024, ..Default::default() },
        )
        .unwrap();
        let mut bdb = BdbStore::new(idx, usize::MAX);
        for &(fp, addr) in &existing.entries {
            bdb.insert(fp, addr).unwrap();
        }
        let bdb_report = merge_indexes(&mut bdb, &source).unwrap();

        assert!(
            clam_report.total_time * 5 < bdb_report.total_time,
            "CLAM merge {} should be far faster than BDB merge {}",
            clam_report.total_time,
            bdb_report.total_time
        );
        assert!(clam_report.fingerprints_per_second() > bdb_report.fingerprints_per_second());
    }

    #[test]
    fn empty_source_is_a_noop() {
        let mut target = clam_store();
        let report = merge_indexes(&mut target, &FingerprintSet::default()).unwrap();
        assert_eq!(report.fingerprints, 0);
        assert_eq!(report.total_time, SimDuration::ZERO);
    }
}
