//! The deduplicating chunk store.
//!
//! Incoming data streams are chunked (content-defined), fingerprinted and
//! checked against the fingerprint index; only never-seen chunks are written
//! to the archival store. This is the §3 "data deduplication and backup"
//! application, reusing the WAN optimizer's chunking machinery with a
//! different write path.

use std::collections::HashSet;

use flashsim::{Device, SimDuration};
use wanopt::{chunk_boundaries, ChunkerConfig, ContentCache, FingerprintStore, Result, Sha1};

/// Counters describing a deduplication run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Bytes offered to the store.
    pub bytes_in: u64,
    /// Bytes actually written to archival storage.
    pub bytes_stored: u64,
    /// Chunks offered.
    pub chunks_in: u64,
    /// Chunks that were duplicates of already-stored data.
    pub chunks_deduplicated: u64,
}

impl DedupStats {
    /// Deduplication ratio (bytes eliminated / bytes offered).
    pub fn dedup_ratio(&self) -> f64 {
        if self.bytes_in == 0 {
            0.0
        } else {
            1.0 - self.bytes_stored as f64 / self.bytes_in as f64
        }
    }
}

/// A deduplicating chunk store: fingerprint index + archival chunk storage.
pub struct DedupStore<S: FingerprintStore, D: Device> {
    index: S,
    archive: ContentCache<D>,
    chunker: ChunkerConfig,
    stats: DedupStats,
    /// Simulated time spent in index operations.
    pub index_time: SimDuration,
    /// Simulated time spent writing the archive.
    pub archive_time: SimDuration,
}

impl<S: FingerprintStore, D: Device> DedupStore<S, D> {
    /// Creates a store over a fingerprint index and an archival device.
    pub fn new(index: S, archive_device: D) -> Self {
        DedupStore {
            index,
            archive: ContentCache::new(archive_device),
            chunker: ChunkerConfig::paper_default(),
            stats: DedupStats::default(),
            index_time: SimDuration::ZERO,
            archive_time: SimDuration::ZERO,
        }
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> DedupStats {
        self.stats
    }

    /// Access to the fingerprint index.
    pub fn index(&self) -> &S {
        &self.index
    }

    /// Mutable access to the fingerprint index.
    pub fn index_mut(&mut self) -> &mut S {
        &mut self.index
    }

    /// Ingests one data stream (a file or backup object); duplicate chunks
    /// are suppressed. Returns the simulated time spent.
    ///
    /// Index traffic is batched per stream: one
    /// [`FingerprintStore::lookup_batch`] over every chunk fingerprint,
    /// then one [`FingerprintStore::insert_batch`] for the chunks that
    /// turned out to be new — a CLAM-backed index amortizes its per-op
    /// overhead across the whole stream. Chunks repeated *within* the
    /// stream deduplicate from their second occurrence on, exactly as in
    /// the eager per-chunk formulation.
    pub fn ingest(&mut self, data: &[u8]) -> Result<SimDuration> {
        let mut total = SimDuration::ZERO;
        let boundaries = chunk_boundaries(data, &self.chunker);
        let fingerprints: Vec<u64> = boundaries
            .iter()
            .map(|&(start, end)| Sha1::digest(&data[start..end]).fingerprint64())
            .collect();
        let (hits, t) = self.index.lookup_batch(&fingerprints)?;
        self.index_time += t;
        total += t;
        let mut inserts: Vec<(u64, u64)> = Vec::new();
        let mut new_this_stream = HashSet::new();
        for (i, &(start, end)) in boundaries.iter().enumerate() {
            let chunk = &data[start..end];
            self.stats.bytes_in += chunk.len() as u64;
            self.stats.chunks_in += 1;
            if hits[i].is_some() || new_this_stream.contains(&fingerprints[i]) {
                self.stats.chunks_deduplicated += 1;
                continue;
            }
            let (addr, t) = self.archive.append(chunk)?;
            self.archive_time += t;
            total += t;
            inserts.push((fingerprints[i], addr));
            new_this_stream.insert(fingerprints[i]);
            self.stats.bytes_stored += chunk.len() as u64;
        }
        let t = self.index.insert_batch(&inserts)?;
        self.index_time += t;
        total += t;
        Ok(total)
    }

    /// Verifies that a previously ingested stream can be fully restored from
    /// the archive; returns the number of bytes verified.
    pub fn verify(&mut self, data: &[u8]) -> Result<u64> {
        let mut ok_bytes = 0u64;
        for (start, end) in chunk_boundaries(data, &self.chunker) {
            let chunk = &data[start..end];
            let fp = Sha1::digest(chunk).fingerprint64();
            if let (Some(addr), _) = self.index.lookup(fp)? {
                if let Ok((bytes, _)) = self.archive.read(addr, chunk.len()) {
                    if bytes == chunk {
                        ok_bytes += chunk.len() as u64;
                    }
                }
            }
        }
        Ok(ok_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferhash::{Clam, ClamConfig};
    use flashsim::{MagneticDisk, Ssd};
    use rand::{Rng, SeedableRng};
    use wanopt::ClamStore;

    fn store() -> DedupStore<ClamStore<Ssd>, MagneticDisk> {
        let cfg = ClamConfig::small_test(8 << 20, 2 << 20).unwrap();
        let clam = Clam::new(Ssd::intel(8 << 20).unwrap(), cfg).unwrap();
        DedupStore::new(ClamStore::new(clam), MagneticDisk::new(64 << 20).unwrap())
    }

    fn random_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn repeated_backups_deduplicate_almost_completely() {
        let mut s = store();
        let dataset = random_bytes(600_000, 1);
        s.ingest(&dataset).unwrap();
        let first = s.stats();
        assert!(first.dedup_ratio() < 0.05);
        // A second "full backup" of the same data stores almost nothing new.
        s.ingest(&dataset).unwrap();
        let second = s.stats();
        assert!(second.bytes_stored - first.bytes_stored < dataset.len() as u64 / 20);
        assert!(second.dedup_ratio() > 0.45);
    }

    #[test]
    fn incremental_changes_store_only_the_changed_region() {
        let mut s = store();
        let mut dataset = random_bytes(800_000, 2);
        s.ingest(&dataset).unwrap();
        let before = s.stats().bytes_stored;
        // Modify a 40 KiB region in the middle, as an edited file would.
        for b in &mut dataset[400_000..440_000] {
            *b ^= 0xFF;
        }
        s.ingest(&dataset).unwrap();
        let added = s.stats().bytes_stored - before;
        assert!(
            added < 120_000,
            "an incremental change of 40 KiB should add well under 120 KiB, added {added}"
        );
    }

    #[test]
    fn verify_restores_ingested_data() {
        let mut s = store();
        let dataset = random_bytes(300_000, 3);
        s.ingest(&dataset).unwrap();
        let ok = s.verify(&dataset).unwrap();
        assert!(ok as usize * 10 >= dataset.len() * 9, "verified only {ok} bytes");
    }

    #[test]
    fn ingest_routes_index_traffic_through_batches() {
        let mut s = store();
        let dataset = random_bytes(400_000, 9);
        s.ingest(&dataset).unwrap();
        s.ingest(&dataset).unwrap();
        let st = s.stats();
        let clam_stats = s.index().clam().stats().clone();
        assert_eq!(clam_stats.batched_lookups, st.chunks_in, "one batched lookup per chunk");
        assert!(clam_stats.batched_inserts > 0);
        // The second, fully duplicate backup inserted nothing new.
        assert_eq!(clam_stats.batched_inserts, st.chunks_in - st.chunks_deduplicated);
    }

    #[test]
    fn stats_account_every_chunk() {
        let mut s = store();
        let dataset = random_bytes(200_000, 4);
        s.ingest(&dataset).unwrap();
        let st = s.stats();
        assert_eq!(st.bytes_in, dataset.len() as u64);
        assert_eq!(st.chunks_deduplicated, 0);
        assert!(st.chunks_in > 10);
        assert!(s.index_time > SimDuration::ZERO);
        assert!(s.archive_time > SimDuration::ZERO);
    }
}
