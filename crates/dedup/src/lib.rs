//! # dedup — deduplication, backup and index-merge applications on CLAMs
//!
//! The paper motivates CLAMs with three application classes (§3); besides
//! the WAN optimizer (the `wanopt` crate), it describes **data
//! deduplication / backup** systems whose fingerprint indexes reach tens of
//! gigabytes, and whose most painful maintenance task is merging one
//! dataset's index into another. This crate builds those applications on
//! top of the same [`wanopt::FingerprintStore`] abstraction so the
//! CLAM-vs-BerkeleyDB comparison of §3 ("2 hours with BDB, under 2 minutes
//! with a CLAM") can be reproduced.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backup;
mod merge;
mod store;

pub use backup::{BackupClient, BackupServer, BackupStats};
pub use merge::{merge_indexes, FingerprintSet, MergeReport};
pub use store::{DedupStats, DedupStore};
