//! # dedup — deduplication, backup and index-merge applications on CLAMs
//!
//! The paper motivates CLAMs with three application classes (§3); besides
//! the WAN optimizer (the `wanopt` crate), it describes **data
//! deduplication / backup** systems whose fingerprint indexes reach tens of
//! gigabytes, and whose most painful maintenance task is merging one
//! dataset's index into another. This crate builds those applications on
//! top of the same [`wanopt::FingerprintStore`] abstraction so the
//! CLAM-vs-BerkeleyDB comparison of §3 ("2 hours with BDB, under 2 minutes
//! with a CLAM") can be reproduced.
//!
//! ## What's here
//!
//! * [`DedupStore`] — the deduplicating chunk store: content-defined
//!   chunking ([`wanopt::chunk_boundaries`]), SHA-1 fingerprints, a
//!   fingerprint index and an archival [`wanopt::ContentCache`]. Ingest
//!   batches its index traffic — one [`wanopt::FingerprintStore::lookup_batch`]
//!   over a stream's chunk fingerprints, one
//!   [`wanopt::FingerprintStore::insert_batch`] for the new chunks — so a
//!   CLAM-backed index amortizes per-op overhead across the stream.
//! * [`BackupServer`] / [`BackupClient`] — full/incremental backup rounds
//!   over a `DedupStore`, with [`BackupStats`] per round.
//! * [`merge_indexes`] — the §3 index-merge maintenance task over
//!   [`FingerprintSet`]s, reporting a [`MergeReport`]; the
//!   `dedup_merge` bench binary turns this into the "2 h → 2 min"
//!   comparison.
//!
//! Runnable end-to-end scenarios: `examples/dedup_merge.rs` and the
//! `dedup_merge` binary in `crates/bench`. Design context: DESIGN.md
//! ("Batched operations") in the repository root.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backup;
mod merge;
mod store;

pub use backup::{BackupClient, BackupServer, BackupStats};
pub use merge::{merge_indexes, FingerprintSet, MergeReport};
pub use store::{DedupStats, DedupStore};
