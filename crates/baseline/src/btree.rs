//! A Berkeley-DB-style B+tree index on disk or SSD.
//!
//! The paper also evaluated BDB's B-tree access method and found it slower
//! than the hash index for fingerprint workloads (§7.2.2); this
//! implementation exists so that comparison can be reproduced. It is a
//! page-based B+tree: fixed-size device pages, leaves chained for scans, an
//! LRU write-back page cache shared with the same cost characteristics as
//! [`crate::BdbHashIndex`].

use std::collections::HashMap;

use flashsim::{Device, LatencyRecorder, SimDuration};

use crate::error::{BaselineError, Result};

const NODE_MAGIC: u32 = 0x4254_5245; // "BTRE"
const HEADER: usize = 24;
const KEY_SIZE: usize = 8;
const VAL_SIZE: usize = 8;
/// Child pointers are 4-byte page numbers.
const PTR_SIZE: usize = 4;
const NO_PAGE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeKind {
    Leaf,
    Internal,
}

struct CachedPage {
    data: Vec<u8>,
    dirty: bool,
    last_used: u64,
}

/// A page-based B+tree over 64-bit keys and values.
pub struct BdbBtreeIndex<D: Device> {
    device: D,
    page_size: usize,
    root: u32,
    next_free_page: u32,
    total_pages: u64,
    cache: HashMap<u32, CachedPage>,
    cache_capacity_pages: usize,
    clock: u64,
    entries: u64,
    /// Latency of insert operations.
    pub insert_latency: LatencyRecorder,
    /// Latency of lookup operations.
    pub lookup_latency: LatencyRecorder,
}

impl<D: Device> BdbBtreeIndex<D> {
    /// Creates an empty B+tree spanning the device, with a DRAM page cache
    /// of `cache_bytes`.
    pub fn new(device: D, cache_bytes: usize) -> Result<Self> {
        let geom = device.geometry();
        let page_size = geom.page_size as usize;
        if page_size < HEADER + 4 * (KEY_SIZE + VAL_SIZE) {
            return Err(BaselineError::InvalidConfig(
                "page size too small for B-tree nodes".into(),
            ));
        }
        let mut tree = BdbBtreeIndex {
            device,
            page_size,
            root: 0,
            next_free_page: 1,
            total_pages: geom.pages(),
            cache: HashMap::new(),
            cache_capacity_pages: (cache_bytes / page_size).max(8),
            clock: 0,
            entries: 0,
            insert_latency: LatencyRecorder::new(),
            lookup_latency: LatencyRecorder::new(),
        };
        // Initialise the root as an empty leaf.
        let root_data = tree.new_node(NodeKind::Leaf);
        tree.cache.insert(0, CachedPage { data: root_data, dirty: true, last_used: 0 });
        Ok(tree)
    }

    /// Number of entries stored.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Returns `true` if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Access to the underlying device.
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Mutable access to the underlying device.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    // ------------- node layout helpers -------------
    //
    // Header: magic u32 | kind u8 | pad u8 | count u16 | next_leaf u32 | pad
    // Leaf payload:      count * (key u64, value u64)
    // Internal payload:  count * (key u64, child u32)  plus one extra child
    //                    stored in the header's next_leaf field (leftmost).

    fn new_node(&self, kind: NodeKind) -> Vec<u8> {
        let mut data = vec![0u8; self.page_size];
        data[0..4].copy_from_slice(&NODE_MAGIC.to_le_bytes());
        data[4] = match kind {
            NodeKind::Leaf => 0,
            NodeKind::Internal => 1,
        };
        data[8..12].copy_from_slice(&NO_PAGE.to_le_bytes());
        data
    }

    fn kind(data: &[u8]) -> NodeKind {
        if data[4] == 0 {
            NodeKind::Leaf
        } else {
            NodeKind::Internal
        }
    }

    fn count(data: &[u8]) -> usize {
        u16::from_le_bytes(data[6..8].try_into().unwrap()) as usize
    }

    fn set_count(data: &mut [u8], count: usize) {
        data[6..8].copy_from_slice(&(count as u16).to_le_bytes());
    }

    fn aux(data: &[u8]) -> u32 {
        u32::from_le_bytes(data[8..12].try_into().unwrap())
    }

    fn set_aux(data: &mut [u8], value: u32) {
        data[8..12].copy_from_slice(&value.to_le_bytes());
    }

    fn leaf_capacity(&self) -> usize {
        (self.page_size - HEADER) / (KEY_SIZE + VAL_SIZE)
    }

    fn internal_capacity(&self) -> usize {
        (self.page_size - HEADER) / (KEY_SIZE + PTR_SIZE)
    }

    fn leaf_entry(data: &[u8], i: usize) -> (u64, u64) {
        let at = HEADER + i * (KEY_SIZE + VAL_SIZE);
        (
            u64::from_le_bytes(data[at..at + 8].try_into().unwrap()),
            u64::from_le_bytes(data[at + 8..at + 16].try_into().unwrap()),
        )
    }

    fn set_leaf_entry(data: &mut [u8], i: usize, key: u64, value: u64) {
        let at = HEADER + i * (KEY_SIZE + VAL_SIZE);
        data[at..at + 8].copy_from_slice(&key.to_le_bytes());
        data[at + 8..at + 16].copy_from_slice(&value.to_le_bytes());
    }

    fn internal_entry(data: &[u8], i: usize) -> (u64, u32) {
        let at = HEADER + i * (KEY_SIZE + PTR_SIZE);
        (
            u64::from_le_bytes(data[at..at + 8].try_into().unwrap()),
            u32::from_le_bytes(data[at + 8..at + 12].try_into().unwrap()),
        )
    }

    fn set_internal_entry(data: &mut [u8], i: usize, key: u64, child: u32) {
        let at = HEADER + i * (KEY_SIZE + PTR_SIZE);
        data[at..at + 8].copy_from_slice(&key.to_le_bytes());
        data[at + 8..at + 12].copy_from_slice(&child.to_le_bytes());
    }

    // ------------- page cache -------------

    fn load_page(&mut self, page_no: u32) -> Result<SimDuration> {
        self.clock += 1;
        if let Some(p) = self.cache.get_mut(&page_no) {
            p.last_used = self.clock;
            return Ok(SimDuration::ZERO);
        }
        let mut latency = SimDuration::ZERO;
        if self.cache.len() >= self.cache_capacity_pages {
            latency += self.evict_one()?;
        }
        let mut data = vec![0u8; self.page_size];
        latency += self.device.read_at(page_no as u64 * self.page_size as u64, &mut data)?;
        let clock = self.clock;
        self.cache.insert(page_no, CachedPage { data, dirty: false, last_used: clock });
        Ok(latency)
    }

    fn evict_one(&mut self) -> Result<SimDuration> {
        // Never evict the root (page 0); it is touched on every operation.
        let Some((&victim, _)) =
            self.cache.iter().filter(|(&n, _)| n != self.root).min_by_key(|(_, p)| p.last_used)
        else {
            return Ok(SimDuration::ZERO);
        };
        let page = self.cache.remove(&victim).expect("victim exists");
        if page.dirty {
            Ok(self.device.write_at(victim as u64 * self.page_size as u64, &page.data)?)
        } else {
            Ok(SimDuration::ZERO)
        }
    }

    fn allocate_page(&mut self, kind: NodeKind) -> Result<u32> {
        if self.next_free_page as u64 >= self.total_pages {
            return Err(BaselineError::Full);
        }
        // Keep the cache within its budget; the write-back of the evicted
        // page is visible in the device statistics.
        while self.cache.len() >= self.cache_capacity_pages {
            self.evict_one()?;
        }
        let no = self.next_free_page;
        self.next_free_page += 1;
        let data = self.new_node(kind);
        self.clock += 1;
        let clock = self.clock;
        self.cache.insert(no, CachedPage { data, dirty: true, last_used: clock });
        Ok(no)
    }

    /// Writes back every dirty cached page.
    pub fn flush(&mut self) -> Result<SimDuration> {
        let mut latency = SimDuration::ZERO;
        let dirty: Vec<u32> = self.cache.iter().filter(|(_, p)| p.dirty).map(|(&n, _)| n).collect();
        for page_no in dirty {
            let data = self.cache.get(&page_no).expect("cached").data.clone();
            latency += self.device.write_at(page_no as u64 * self.page_size as u64, &data)?;
            self.cache.get_mut(&page_no).expect("cached").dirty = false;
        }
        Ok(latency)
    }

    // ------------- operations -------------

    /// Looks up `key`, returning the value (if any) and the simulated latency.
    pub fn lookup(&mut self, key: u64) -> Result<(Option<u64>, SimDuration)> {
        let mut latency = SimDuration::ZERO;
        let mut page_no = self.root;
        loop {
            latency += self.load_page(page_no)?;
            let page = &self.cache[&page_no];
            match Self::kind(&page.data) {
                NodeKind::Internal => {
                    page_no = self.child_for(&page.data.clone(), key);
                }
                NodeKind::Leaf => {
                    let data = &page.data;
                    let count = Self::count(data);
                    let mut result = None;
                    for i in 0..count {
                        let (k, v) = Self::leaf_entry(data, i);
                        if k == key {
                            result = Some(v);
                            break;
                        }
                        if k > key {
                            break;
                        }
                    }
                    self.lookup_latency.record(latency);
                    return Ok((result, latency));
                }
            }
        }
    }

    fn child_for(&self, data: &[u8], key: u64) -> u32 {
        let count = Self::count(data);
        let mut child = Self::aux(data); // leftmost child
        for i in 0..count {
            let (k, c) = Self::internal_entry(data, i);
            if key >= k {
                child = c;
            } else {
                break;
            }
        }
        child
    }

    /// Inserts or updates `key` with `value`, returning the simulated latency.
    pub fn insert(&mut self, key: u64, value: u64) -> Result<SimDuration> {
        let mut latency = SimDuration::ZERO;
        // Descend, remembering the path for splits.
        let mut path: Vec<u32> = Vec::new();
        let mut page_no = self.root;
        loop {
            latency += self.load_page(page_no)?;
            let kind = Self::kind(&self.cache[&page_no].data);
            match kind {
                NodeKind::Internal => {
                    path.push(page_no);
                    page_no = self.child_for(&self.cache[&page_no].data.clone(), key);
                }
                NodeKind::Leaf => break,
            }
        }
        // Insert into the leaf (sorted position).
        let inserted_new = {
            let leaf = self.cache.get_mut(&page_no).expect("leaf cached");
            let count = Self::count(&leaf.data);
            let mut pos = count;
            let mut update = false;
            for i in 0..count {
                let (k, _) = Self::leaf_entry(&leaf.data, i);
                if k == key {
                    pos = i;
                    update = true;
                    break;
                }
                if k > key {
                    pos = i;
                    break;
                }
            }
            if update {
                Self::set_leaf_entry(&mut leaf.data, pos, key, value);
                leaf.dirty = true;
                false
            } else {
                // Shift right and insert.
                for i in (pos..count).rev() {
                    let (k, v) = Self::leaf_entry(&leaf.data, i);
                    Self::set_leaf_entry(&mut leaf.data, i + 1, k, v);
                }
                Self::set_leaf_entry(&mut leaf.data, pos, key, value);
                Self::set_count(&mut leaf.data, count + 1);
                leaf.dirty = true;
                true
            }
        };
        if inserted_new {
            self.entries += 1;
        }
        // Split up the path while nodes overflow.
        let mut child_no = page_no;
        loop {
            let needs_split = {
                let node = &self.cache[&child_no];
                match Self::kind(&node.data) {
                    NodeKind::Leaf => Self::count(&node.data) > self.leaf_capacity() - 1,
                    NodeKind::Internal => Self::count(&node.data) > self.internal_capacity() - 1,
                }
            };
            if !needs_split {
                break;
            }
            let (sep_key, new_page) = self.split_node(child_no)?;
            match path.pop() {
                Some(parent) => {
                    latency += self.load_page(parent)?;
                    self.insert_into_internal(parent, sep_key, new_page);
                    child_no = parent;
                }
                None => {
                    // Splitting the root: create a new root.
                    let new_root = self.allocate_page(NodeKind::Internal)?;
                    {
                        let root = self.cache.get_mut(&new_root).expect("cached");
                        Self::set_aux(&mut root.data, child_no);
                        Self::set_internal_entry(&mut root.data, 0, sep_key, new_page);
                        Self::set_count(&mut root.data, 1);
                        root.dirty = true;
                    }
                    self.root = new_root;
                    break;
                }
            }
        }
        self.insert_latency.record(latency);
        Ok(latency)
    }

    fn insert_into_internal(&mut self, page_no: u32, key: u64, child: u32) {
        let node = self.cache.get_mut(&page_no).expect("internal cached");
        let count = Self::count(&node.data);
        let mut pos = count;
        for i in 0..count {
            let (k, _) = Self::internal_entry(&node.data, i);
            if k > key {
                pos = i;
                break;
            }
        }
        for i in (pos..count).rev() {
            let (k, c) = Self::internal_entry(&node.data, i);
            Self::set_internal_entry(&mut node.data, i + 1, k, c);
        }
        Self::set_internal_entry(&mut node.data, pos, key, child);
        Self::set_count(&mut node.data, count + 1);
        node.dirty = true;
    }

    /// Splits `page_no` in half; returns the separator key and the new
    /// right-sibling page number.
    fn split_node(&mut self, page_no: u32) -> Result<(u64, u32)> {
        let kind = Self::kind(&self.cache[&page_no].data);
        let new_no = self.allocate_page(kind)?;
        // Allocating the sibling may have evicted `page_no`; bring it back.
        self.load_page(page_no)?;
        let (sep, old_data, new_data) = {
            let old = &self.cache[&page_no].data;
            let count = Self::count(old);
            let mid = count / 2;
            let mut new_data = self.new_node(kind);
            let mut old_data = old.clone();
            let sep = match kind {
                NodeKind::Leaf => {
                    for (j, i) in (mid..count).enumerate() {
                        let (k, v) = Self::leaf_entry(old, i);
                        Self::set_leaf_entry(&mut new_data, j, k, v);
                    }
                    Self::set_count(&mut new_data, count - mid);
                    Self::set_count(&mut old_data, mid);
                    // Chain leaves for range scans.
                    let old_next = Self::aux(old);
                    Self::set_aux(&mut new_data, old_next);
                    Self::set_aux(&mut old_data, new_no);
                    Self::leaf_entry(old, mid).0
                }
                NodeKind::Internal => {
                    // The middle key moves up; its child becomes the new
                    // node's leftmost child.
                    let (mid_key, mid_child) = Self::internal_entry(old, mid);
                    Self::set_aux(&mut new_data, mid_child);
                    for (j, i) in (mid + 1..count).enumerate() {
                        let (k, c) = Self::internal_entry(old, i);
                        Self::set_internal_entry(&mut new_data, j, k, c);
                    }
                    Self::set_count(&mut new_data, count - mid - 1);
                    Self::set_count(&mut old_data, mid);
                    mid_key
                }
            };
            (sep, old_data, new_data)
        };
        self.cache.get_mut(&page_no).expect("cached").data = old_data;
        self.cache.get_mut(&page_no).expect("cached").dirty = true;
        self.cache.get_mut(&new_no).expect("cached").data = new_data;
        self.cache.get_mut(&new_no).expect("cached").dirty = true;
        Ok((sep, new_no))
    }

    /// Scans all entries in key order (debug / verification helper). Walks
    /// the leaf chain starting from the leftmost leaf.
    pub fn scan_all(&mut self) -> Result<Vec<(u64, u64)>> {
        // Find the leftmost leaf.
        let mut page_no = self.root;
        loop {
            self.load_page(page_no)?;
            let data = &self.cache[&page_no].data;
            match Self::kind(data) {
                NodeKind::Internal => page_no = Self::aux(data),
                NodeKind::Leaf => break,
            }
        }
        let mut out = Vec::new();
        loop {
            self.load_page(page_no)?;
            let data = self.cache[&page_no].data.clone();
            let count = Self::count(&data);
            for i in 0..count {
                out.push(Self::leaf_entry(&data, i));
            }
            let next = Self::aux(&data);
            if next == NO_PAGE {
                break;
            }
            page_no = next;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashsim::Ssd;

    fn tree() -> BdbBtreeIndex<Ssd> {
        BdbBtreeIndex::new(Ssd::intel(8 << 20).unwrap(), 64 * 1024).unwrap()
    }

    fn key(i: u64) -> u64 {
        i.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    #[test]
    fn insert_and_lookup_small() {
        let mut t = tree();
        for i in 0..100u64 {
            t.insert(key(i), i).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(t.lookup(key(i)).unwrap().0, Some(i));
        }
        assert_eq!(t.lookup(key(1000)).unwrap().0, None);
    }

    #[test]
    fn survives_many_inserts_with_splits() {
        let mut t = tree();
        let n = 30_000u64;
        for i in 0..n {
            t.insert(key(i), i).unwrap();
        }
        assert_eq!(t.len(), n);
        for i in (0..n).step_by(371) {
            assert_eq!(t.lookup(key(i)).unwrap().0, Some(i), "key {i}");
        }
    }

    #[test]
    fn scan_returns_sorted_unique_keys() {
        let mut t = tree();
        for i in 0..5_000u64 {
            t.insert(key(i), i).unwrap();
        }
        let all = t.scan_all().unwrap();
        assert_eq!(all.len(), 5_000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan must be sorted and duplicate-free");
    }

    #[test]
    fn updates_replace_existing_values() {
        let mut t = tree();
        for i in 0..2_000u64 {
            t.insert(key(i), i).unwrap();
        }
        for i in 0..2_000u64 {
            t.insert(key(i), i + 1_000_000).unwrap();
        }
        assert_eq!(t.len(), 2_000);
        for i in (0..2_000u64).step_by(191) {
            assert_eq!(t.lookup(key(i)).unwrap().0, Some(i + 1_000_000));
        }
    }

    #[test]
    fn sequential_keys_also_work() {
        let mut t = tree();
        for i in 0..10_000u64 {
            t.insert(i, i * 2).unwrap();
        }
        for i in (0..10_000u64).step_by(503) {
            assert_eq!(t.lookup(i).unwrap().0, Some(i * 2));
        }
        let all = t.scan_all().unwrap();
        assert_eq!(all.len(), 10_000);
    }

    #[test]
    fn flush_persists_dirty_pages() {
        let mut t = tree();
        for i in 0..1_000u64 {
            t.insert(key(i), i).unwrap();
        }
        let before = t.device().stats().writes;
        t.flush().unwrap();
        assert!(t.device().stats().writes > before);
    }

    #[test]
    fn random_lookups_cost_device_reads_once_tree_exceeds_cache() {
        let mut t = tree();
        for i in 0..50_000u64 {
            t.insert(key(i), i).unwrap();
        }
        t.device_mut().reset_stats();
        for i in 0..500u64 {
            t.lookup(key(i * 37)).unwrap();
        }
        assert!(t.device().stats().reads > 300, "reads: {}", t.device().stats().reads);
    }
}
