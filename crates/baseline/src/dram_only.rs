//! DRAM-only hash stores (RamSan-style appliances and plain host DRAM).
//!
//! The paper's §1/§2 cost comparison pits the CLAM against DRAM-SSD
//! appliances: blazingly fast but so expensive that their hash
//! operations/second/dollar is one to two orders of magnitude worse. This
//! module provides that comparison point: a hash table held entirely in
//! (modelled) DRAM, with the appliance's latency and price attached.

use std::collections::HashMap;

use flashsim::{DeviceProfile, LatencyRecorder, SimDuration};

/// A hash table held entirely in DRAM with an attached cost profile.
pub struct DramHashStore {
    map: HashMap<u64, u64>,
    profile: DeviceProfile,
    /// Latency of insert operations.
    pub insert_latency: LatencyRecorder,
    /// Latency of lookup operations.
    pub lookup_latency: LatencyRecorder,
}

impl DramHashStore {
    /// A store modelling a RamSan-class DRAM-SSD appliance.
    pub fn ramsan() -> Self {
        Self::with_profile(DeviceProfile::ramsan_dram_ssd())
    }

    /// A store modelling plain host DRAM.
    pub fn host_dram() -> Self {
        Self::with_profile(DeviceProfile::dram())
    }

    /// A store with an arbitrary profile.
    pub fn with_profile(profile: DeviceProfile) -> Self {
        DramHashStore {
            map: HashMap::new(),
            profile,
            insert_latency: LatencyRecorder::new(),
            lookup_latency: LatencyRecorder::new(),
        }
    }

    /// The cost/latency profile backing this store.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn op_cost(&self) -> SimDuration {
        // One device access of a 16-byte entry.
        self.profile.read_cost.cost(16)
    }

    /// Inserts or updates a key, returning the simulated latency.
    pub fn insert(&mut self, key: u64, value: u64) -> SimDuration {
        let lat = self.op_cost();
        self.map.insert(key, value);
        self.insert_latency.record(lat);
        lat
    }

    /// Looks up a key, returning the value (if any) and the latency.
    pub fn lookup(&mut self, key: u64) -> (Option<u64>, SimDuration) {
        let lat = self.op_cost();
        self.lookup_latency.record(lat);
        (self.map.get(&key).copied(), lat)
    }

    /// Deletes a key, returning whether it was present and the latency.
    pub fn delete(&mut self, key: u64) -> (bool, SimDuration) {
        let lat = self.op_cost();
        (self.map.remove(&key).is_some(), lat)
    }

    /// Sustainable operations per second implied by the latency model.
    pub fn ops_per_second(&self) -> f64 {
        let per_op = self.op_cost().as_secs_f64();
        if per_op <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / per_op
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_map_semantics() {
        let mut s = DramHashStore::host_dram();
        s.insert(1, 10);
        s.insert(2, 20);
        s.insert(1, 11);
        assert_eq!(s.lookup(1).0, Some(11));
        assert_eq!(s.lookup(3).0, None);
        assert_eq!(s.len(), 2);
        assert!(s.delete(2).0);
        assert!(!s.delete(2).0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ramsan_is_fast_but_latency_is_nonzero() {
        let mut s = DramHashStore::ramsan();
        let lat = s.insert(1, 1);
        assert!(lat > SimDuration::ZERO);
        assert!(lat < SimDuration::from_micros(100));
        assert!(s.ops_per_second() > 100_000.0);
    }

    #[test]
    fn appliance_price_is_recorded_for_cost_analysis() {
        let s = DramHashStore::ramsan();
        assert!(s.profile().dollar_cost > 50_000.0);
    }
}
