//! Error types for the baseline index implementations.

use std::fmt;

use flashsim::DeviceError;

/// Errors returned by the baseline indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The index configuration is inconsistent.
    InvalidConfig(String),
    /// The index ran out of space.
    Full,
    /// A page read back from the device failed validation.
    Corrupt(String),
    /// An error bubbled up from the storage device.
    Device(DeviceError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BaselineError::Full => write!(f, "index is full"),
            BaselineError::Corrupt(msg) => write!(f, "corrupt index page: {msg}"),
            BaselineError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for BaselineError {
    fn from(e: DeviceError) -> Self {
        BaselineError::Device(e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, BaselineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BaselineError = DeviceError::DeviceFull.into();
        assert!(e.to_string().contains("device error"));
        assert!(BaselineError::Full.to_string().contains("full"));
        assert!(BaselineError::InvalidConfig("bad".into()).to_string().contains("bad"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
