//! # baseline — comparison systems for the CLAM evaluation
//!
//! The paper compares BufferHash-based CLAMs against the approaches a
//! practitioner would otherwise use. This crate implements those baselines
//! on the same simulated devices so every figure can be reproduced:
//!
//! * [`ConventionalFlashHash`] — a hash table whose slots live directly on
//!   flash (the "BufferHash without buffering" strawman of §7.3.1);
//! * [`BdbHashIndex`] — a Berkeley-DB-style page hash index with overflow
//!   chains and an LRU page cache (the `DB+SSD` / `DB+Disk` comparator of
//!   §7.2.2 and §8);
//! * [`BdbBtreeIndex`] — the B-tree access method of the same database;
//! * [`DramHashStore`] — DRAM-only stores (host DRAM and RamSan-class
//!   appliances) for the ops/sec/$ comparison;
//! * [`cost`] — hash-operations-per-second-per-dollar calculations.
//!
//! ## How these are used
//!
//! All baselines run on the same simulated [`flashsim`] devices as the
//! CLAM and return simulated latencies, so comparisons isolate the data
//! structure from the medium: `fig7_bdb_latency_cdf` (BDB latency CDFs),
//! `table3_lookup_fraction` (BufferHash vs. BDB as the lookup fraction
//! varies), `ops_per_dollar` (§8's cost-effectiveness table) and the
//! `ablation` binary (which degrades BufferHash toward
//! [`ConventionalFlashHash`]) all live in `crates/bench/src/bin/`. The
//! BDB-style indexes deliberately have **no batched pipeline** — they
//! update pages in place per op, which is exactly the behavior the
//! paper's buffering + batching design is built to avoid; in `wanopt`
//! they fall back to `FingerprintStore`'s per-op default batch methods.
//!
//! See EXPERIMENTS.md in the repository root for the full experiment
//! index.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bdb;
mod btree;
mod conventional;
pub mod cost;
mod dram_only;
mod error;

pub use bdb::{BdbConfig, BdbHashIndex};
pub use btree::BdbBtreeIndex;
pub use conventional::ConventionalFlashHash;
pub use cost::{cost_effectiveness, cost_effectiveness_from_rate, CostEffectiveness, SystemCost};
pub use dram_only::DramHashStore;
pub use error::{BaselineError, Result};
