//! Cost-effectiveness analysis: hash operations per second per dollar.
//!
//! The paper's headline economic claim (§1, §7.5) is that a CLAM delivers
//! 1–2 orders of magnitude more hash operations/second/dollar than either a
//! DRAM-SSD appliance or a disk-resident database index. This module turns
//! measured latencies and hardware price tags into that metric.

use flashsim::SimDuration;
use serde::{Deserialize, Serialize};

/// Price breakdown of one system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemCost {
    /// Human-readable name, e.g. `"CLAM (Intel SSD)"`.
    pub name: String,
    /// Storage device cost in dollars.
    pub device_dollars: f64,
    /// DRAM cost in dollars.
    pub dram_dollars: f64,
    /// Host/other cost in dollars (chassis, CPU share).
    pub other_dollars: f64,
}

impl SystemCost {
    /// Total system cost.
    pub fn total_dollars(&self) -> f64 {
        self.device_dollars + self.dram_dollars + self.other_dollars
    }

    /// The paper's CLAM prototype price point: ~4 GB DRAM + 80 GB flash for
    /// roughly $400 (§1).
    pub fn clam_prototype(name: &str, device_dollars: f64) -> Self {
        SystemCost {
            name: name.to_string(),
            device_dollars,
            dram_dollars: 100.0,
            other_dollars: 0.0,
        }
    }

    /// A RamSan-class DRAM appliance.
    pub fn ramsan() -> Self {
        SystemCost {
            name: "RamSan DRAM-SSD (128GB)".to_string(),
            device_dollars: 120_000.0,
            dram_dollars: 0.0,
            other_dollars: 0.0,
        }
    }

    /// A commodity server with a magnetic disk running a database index.
    pub fn disk_bdb() -> Self {
        SystemCost {
            name: "BerkeleyDB on disk".to_string(),
            device_dollars: 70.0,
            dram_dollars: 100.0,
            other_dollars: 0.0,
        }
    }
}

/// Operations/second/dollar for one operation class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostEffectiveness {
    /// System description.
    pub system: String,
    /// Mean latency per operation.
    pub mean_latency_ms: f64,
    /// Sustainable operations per second (1 / mean latency).
    pub ops_per_second: f64,
    /// System cost in dollars.
    pub total_dollars: f64,
    /// The headline metric.
    pub ops_per_second_per_dollar: f64,
}

/// Computes ops/sec/$ from a measured mean latency and a price tag.
pub fn cost_effectiveness(system: &SystemCost, mean_latency: SimDuration) -> CostEffectiveness {
    let secs = mean_latency.as_secs_f64();
    let ops_per_second = if secs > 0.0 { 1.0 / secs } else { f64::INFINITY };
    let total = system.total_dollars().max(1.0);
    CostEffectiveness {
        system: system.name.clone(),
        mean_latency_ms: mean_latency.as_millis_f64(),
        ops_per_second,
        total_dollars: total,
        ops_per_second_per_dollar: ops_per_second / total,
    }
}

/// Computes ops/sec/$ from a device-rated operations-per-second figure
/// (used for the RamSan appliance, rated at 300K IOPS).
pub fn cost_effectiveness_from_rate(system: &SystemCost, ops_per_second: f64) -> CostEffectiveness {
    let total = system.total_dollars().max(1.0);
    CostEffectiveness {
        system: system.name.clone(),
        mean_latency_ms: if ops_per_second > 0.0 { 1000.0 / ops_per_second } else { f64::INFINITY },
        ops_per_second,
        total_dollars: total,
        ops_per_second_per_dollar: ops_per_second / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clam_beats_ramsan_on_ops_per_dollar() {
        // CLAM lookups at 0.06 ms on a ~$500 system vs RamSan at 300K IOPS
        // for $120K — the paper's 42 lookups/s/$ vs 2.5 ops/s/$ comparison.
        let clam = cost_effectiveness(
            &SystemCost::clam_prototype("CLAM (Intel SSD)", 390.0),
            SimDuration::from_micros(60),
        );
        let ramsan = cost_effectiveness_from_rate(&SystemCost::ramsan(), 300_000.0);
        assert!(clam.ops_per_second_per_dollar > 10.0 * ramsan.ops_per_second_per_dollar);
        assert!((ramsan.ops_per_second_per_dollar - 2.5).abs() < 0.5);
        assert!(clam.ops_per_second_per_dollar > 20.0);
    }

    #[test]
    fn clam_beats_disk_bdb_on_ops_per_dollar() {
        let clam = cost_effectiveness(
            &SystemCost::clam_prototype("CLAM (Intel SSD)", 390.0),
            SimDuration::from_micros(60),
        );
        let bdb = cost_effectiveness(&SystemCost::disk_bdb(), SimDuration::from_millis(7));
        assert!(clam.ops_per_second_per_dollar > 10.0 * bdb.ops_per_second_per_dollar);
    }

    #[test]
    fn totals_add_up() {
        let c = SystemCost::clam_prototype("x", 400.0);
        assert_eq!(c.total_dollars(), 500.0);
        let eff = cost_effectiveness(&c, SimDuration::from_millis(1));
        assert!((eff.ops_per_second - 1000.0).abs() < 1.0);
        assert!((eff.ops_per_second_per_dollar - 2.0).abs() < 0.01);
    }

    #[test]
    fn zero_latency_is_handled() {
        let eff = cost_effectiveness(&SystemCost::disk_bdb(), SimDuration::ZERO);
        assert!(eff.ops_per_second.is_infinite());
    }
}
