//! A conventional hash table stored directly on flash (§4).
//!
//! This is the strawman the paper argues against: a single large
//! open-addressed hash table whose slots live on the device. Every insert
//! hashes to a random page, reads it, modifies it in place and writes it
//! back — small random writes and in-place updates, exactly the access
//! pattern flash handles worst (design principles P1–P3). It exists as the
//! "BufferHash without buffering" ablation baseline (§7.3.1).

use flashsim::{Device, SimDuration};

use crate::error::{BaselineError, Result};

/// Number of (key, value) slot pairs per page.
fn slots_per_page(page_size: usize) -> usize {
    page_size / 16
}

/// A conventional open-addressed hash table living directly on a device.
///
/// Empty slots are encoded as all-zero (key 0 is reserved; callers use
/// hashed fingerprints, for which 0 is vanishingly unlikely and rejected).
pub struct ConventionalFlashHash<D: Device> {
    device: D,
    num_pages: u64,
    page_size: usize,
    entries: u64,
    insert_latency: flashsim::LatencyRecorder,
    lookup_latency: flashsim::LatencyRecorder,
}

impl<D: Device> ConventionalFlashHash<D> {
    /// Creates a table spanning the whole device.
    pub fn new(device: D) -> Result<Self> {
        let geom = device.geometry();
        let page_size = geom.page_size as usize;
        if slots_per_page(page_size) == 0 {
            return Err(BaselineError::InvalidConfig("page too small for 16-byte entries".into()));
        }
        Ok(ConventionalFlashHash {
            num_pages: geom.pages(),
            page_size,
            device,
            entries: 0,
            insert_latency: flashsim::LatencyRecorder::new(),
            lookup_latency: flashsim::LatencyRecorder::new(),
        })
    }

    /// Number of entries stored.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Returns `true` if the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Access to the underlying device.
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Insert latency recorder.
    pub fn insert_latencies(&mut self) -> &mut flashsim::LatencyRecorder {
        &mut self.insert_latency
    }

    /// Lookup latency recorder.
    pub fn lookup_latencies(&mut self) -> &mut flashsim::LatencyRecorder {
        &mut self.lookup_latency
    }

    fn home_page(&self, key: u64) -> u64 {
        // Mix the key so sequential fingerprints spread across the table.
        let mut x = key;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x % self.num_pages
    }

    /// Inserts or updates `key` (non-zero) with `value`.
    ///
    /// Returns the simulated latency of the operation.
    pub fn insert(&mut self, key: u64, value: u64) -> Result<SimDuration> {
        if key == 0 {
            return Err(BaselineError::InvalidConfig("key 0 is reserved".into()));
        }
        let mut latency = SimDuration::ZERO;
        let mut page_idx = self.home_page(key);
        for _probe in 0..self.num_pages {
            let offset = page_idx * self.page_size as u64;
            let mut page = vec![0u8; self.page_size];
            latency += self.device.read_at(offset, &mut page)?;
            // Probe the slots within this page.
            let slots = slots_per_page(self.page_size);
            for s in 0..slots {
                let at = s * 16;
                let k = u64::from_le_bytes(page[at..at + 8].try_into().unwrap());
                if k == key || k == 0 {
                    page[at..at + 8].copy_from_slice(&key.to_le_bytes());
                    page[at + 8..at + 16].copy_from_slice(&value.to_le_bytes());
                    latency += self.device.write_at(offset, &page)?;
                    if k == 0 {
                        self.entries += 1;
                    }
                    self.insert_latency.record(latency);
                    return Ok(latency);
                }
            }
            page_idx = (page_idx + 1) % self.num_pages;
        }
        Err(BaselineError::Full)
    }

    /// Looks up `key`, returning its value if present along with the
    /// simulated latency.
    pub fn lookup(&mut self, key: u64) -> Result<(Option<u64>, SimDuration)> {
        let mut latency = SimDuration::ZERO;
        let mut page_idx = self.home_page(key);
        for _probe in 0..self.num_pages {
            let offset = page_idx * self.page_size as u64;
            let mut page = vec![0u8; self.page_size];
            latency += self.device.read_at(offset, &mut page)?;
            let slots = slots_per_page(self.page_size);
            let mut page_full = true;
            for s in 0..slots {
                let at = s * 16;
                let k = u64::from_le_bytes(page[at..at + 8].try_into().unwrap());
                if k == key {
                    let v = u64::from_le_bytes(page[at + 8..at + 16].try_into().unwrap());
                    self.lookup_latency.record(latency);
                    return Ok((Some(v), latency));
                }
                if k == 0 {
                    page_full = false;
                    break;
                }
            }
            if !page_full {
                break;
            }
            page_idx = (page_idx + 1) % self.num_pages;
        }
        self.lookup_latency.record(latency);
        Ok((None, latency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashsim::Ssd;

    fn table() -> ConventionalFlashHash<Ssd> {
        ConventionalFlashHash::new(Ssd::intel(2 << 20).unwrap()).unwrap()
    }

    fn key(i: u64) -> u64 {
        i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1
    }

    #[test]
    fn insert_lookup_round_trip() {
        let mut t = table();
        for i in 0..500u64 {
            t.insert(key(i), i).unwrap();
        }
        for i in 0..500u64 {
            assert_eq!(t.lookup(key(i)).unwrap().0, Some(i));
        }
        assert_eq!(t.lookup(key(10_000)).unwrap().0, None);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn update_in_place_does_not_grow_the_table() {
        let mut t = table();
        t.insert(key(1), 10).unwrap();
        t.insert(key(1), 20).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(key(1)).unwrap().0, Some(20));
    }

    #[test]
    fn zero_key_is_rejected() {
        let mut t = table();
        assert!(t.insert(0, 1).is_err());
    }

    #[test]
    fn every_insert_performs_flash_io() {
        let mut t = table();
        for i in 0..200u64 {
            t.insert(key(i), i).unwrap();
        }
        let stats = t.device().stats();
        assert!(stats.writes >= 200, "each insert should write a page");
        assert!(stats.reads >= 200, "each insert should read its page first");
    }

    #[test]
    fn inserts_are_much_slower_than_bufferhash_style_buffered_inserts() {
        let mut t = table();
        for i in 0..300u64 {
            t.insert(key(i), i).unwrap();
        }
        // Every insert costs at least a page read + page write on flash.
        let mean = t.insert_latencies().mean();
        assert!(mean > SimDuration::from_micros(100), "conventional insert mean {mean}");
    }
}
