//! A Berkeley-DB-style page hash index on disk or SSD.
//!
//! This is the comparison point the paper uses throughout §7–§8: a classic
//! database hash index that keeps its buckets on the storage device and
//! caches a small number of pages in DRAM. Buckets are static-hashed pages
//! with overflow chains; the cache is write-back with LRU replacement.
//! Because hash keys have no locality, almost every operation on a large
//! index misses the cache and performs at least one random device I/O —
//! which is precisely why it struggles at high operation rates.

use std::collections::HashMap;

use flashsim::{Device, LatencyRecorder, SimDuration};

use crate::error::{BaselineError, Result};

const PAGE_MAGIC: u32 = 0x4244_4250; // "BDBP"
const PAGE_HEADER: usize = 16;
const ENTRY_SIZE: usize = 16;
/// Sentinel meaning "no overflow page".
const NO_OVERFLOW: u32 = u32::MAX;

/// Configuration of the BDB-like index.
#[derive(Debug, Clone)]
pub struct BdbConfig {
    /// Fraction of the device dedicated to primary bucket pages (the rest
    /// is the overflow area).
    pub primary_fraction: f64,
    /// DRAM page-cache budget in bytes.
    pub cache_bytes: usize,
}

impl Default for BdbConfig {
    fn default() -> Self {
        BdbConfig { primary_fraction: 0.8, cache_bytes: 8 << 20 }
    }
}

struct CachedPage {
    data: Vec<u8>,
    dirty: bool,
    last_used: u64,
}

/// A page-based hash index with overflow chains and an LRU page cache.
pub struct BdbHashIndex<D: Device> {
    device: D,
    page_size: usize,
    num_buckets: u64,
    overflow_start: u64,
    overflow_pages: u64,
    next_overflow: u64,
    cache: HashMap<u64, CachedPage>,
    cache_capacity_pages: usize,
    clock: u64,
    entries: u64,
    /// Latency of insert operations.
    pub insert_latency: LatencyRecorder,
    /// Latency of lookup operations.
    pub lookup_latency: LatencyRecorder,
    /// Latency of delete operations.
    pub delete_latency: LatencyRecorder,
}

impl<D: Device> BdbHashIndex<D> {
    /// Creates an index spanning the whole device.
    pub fn new(device: D, config: BdbConfig) -> Result<Self> {
        let geom = device.geometry();
        let page_size = geom.page_size as usize;
        if page_size <= PAGE_HEADER + ENTRY_SIZE {
            return Err(BaselineError::InvalidConfig("page size too small".into()));
        }
        let total_pages = geom.pages();
        let num_buckets =
            ((total_pages as f64 * config.primary_fraction.clamp(0.1, 0.95)) as u64).max(1);
        let overflow_pages = total_pages - num_buckets;
        let cache_capacity_pages = (config.cache_bytes / page_size).max(4);
        Ok(BdbHashIndex {
            device,
            page_size,
            num_buckets,
            overflow_start: num_buckets,
            overflow_pages,
            next_overflow: 0,
            cache: HashMap::new(),
            cache_capacity_pages,
            clock: 0,
            entries: 0,
            insert_latency: LatencyRecorder::new(),
            lookup_latency: LatencyRecorder::new(),
            delete_latency: LatencyRecorder::new(),
        })
    }

    /// Number of entries stored.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Returns `true` if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Access to the underlying device.
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Mutable access to the underlying device.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    fn bucket_of(&self, key: u64) -> u64 {
        let mut x = key;
        x ^= x >> 31;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 29;
        x % self.num_buckets
    }

    // ---------------- page cache ----------------

    fn load_page(&mut self, page_no: u64) -> Result<SimDuration> {
        self.clock += 1;
        if let Some(p) = self.cache.get_mut(&page_no) {
            p.last_used = self.clock;
            return Ok(SimDuration::ZERO);
        }
        let mut latency = SimDuration::ZERO;
        // Evict if needed.
        if self.cache.len() >= self.cache_capacity_pages {
            latency += self.evict_one()?;
        }
        let mut data = vec![0u8; self.page_size];
        latency += self.device.read_at(page_no * self.page_size as u64, &mut data)?;
        let clock = self.clock;
        self.cache.insert(page_no, CachedPage { data, dirty: false, last_used: clock });
        Ok(latency)
    }

    fn evict_one(&mut self) -> Result<SimDuration> {
        let Some((&victim, _)) = self.cache.iter().min_by_key(|(_, p)| p.last_used) else {
            return Ok(SimDuration::ZERO);
        };
        let page = self.cache.remove(&victim).expect("victim exists");
        if page.dirty {
            Ok(self.device.write_at(victim * self.page_size as u64, &page.data)?)
        } else {
            Ok(SimDuration::ZERO)
        }
    }

    fn page_header(data: &[u8]) -> (usize, u32) {
        let count = u16::from_le_bytes(data[4..6].try_into().unwrap()) as usize;
        let next = u32::from_le_bytes(data[8..12].try_into().unwrap());
        (count, next)
    }

    fn init_page_if_needed(data: &mut [u8]) {
        let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
        if magic != PAGE_MAGIC {
            data[..PAGE_HEADER].fill(0);
            data[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
            data[8..12].copy_from_slice(&NO_OVERFLOW.to_le_bytes());
        }
    }

    fn entries_per_page(&self) -> usize {
        (self.page_size - PAGE_HEADER) / ENTRY_SIZE
    }

    /// Writes back every dirty cached page.
    pub fn flush(&mut self) -> Result<SimDuration> {
        let mut latency = SimDuration::ZERO;
        let dirty: Vec<u64> = self.cache.iter().filter(|(_, p)| p.dirty).map(|(&n, _)| n).collect();
        for page_no in dirty {
            let data = self.cache.get(&page_no).expect("page cached").data.clone();
            latency += self.device.write_at(page_no * self.page_size as u64, &data)?;
            self.cache.get_mut(&page_no).expect("page cached").dirty = false;
        }
        Ok(latency)
    }

    // ---------------- operations ----------------

    /// Inserts or updates `key` with `value`, returning the simulated latency.
    pub fn insert(&mut self, key: u64, value: u64) -> Result<SimDuration> {
        let mut latency = SimDuration::ZERO;
        let mut page_no = self.bucket_of(key);
        let per_page = self.entries_per_page();
        loop {
            latency += self.load_page(page_no)?;
            let page = self.cache.get_mut(&page_no).expect("page cached");
            Self::init_page_if_needed(&mut page.data);
            let (count, next) = Self::page_header(&page.data);
            // Update in place if present.
            for s in 0..count {
                let at = PAGE_HEADER + s * ENTRY_SIZE;
                let k = u64::from_le_bytes(page.data[at..at + 8].try_into().unwrap());
                if k == key {
                    page.data[at + 8..at + 16].copy_from_slice(&value.to_le_bytes());
                    page.dirty = true;
                    self.insert_latency.record(latency);
                    return Ok(latency);
                }
            }
            if count < per_page {
                let at = PAGE_HEADER + count * ENTRY_SIZE;
                page.data[at..at + 8].copy_from_slice(&key.to_le_bytes());
                page.data[at + 8..at + 16].copy_from_slice(&value.to_le_bytes());
                page.data[4..6].copy_from_slice(&((count + 1) as u16).to_le_bytes());
                page.dirty = true;
                self.entries += 1;
                self.insert_latency.record(latency);
                return Ok(latency);
            }
            // Follow (or create) the overflow chain.
            if next != NO_OVERFLOW {
                page_no = self.overflow_start + next as u64;
                continue;
            }
            if self.next_overflow >= self.overflow_pages {
                return Err(BaselineError::Full);
            }
            let new_overflow = self.next_overflow as u32;
            self.next_overflow += 1;
            page.data[8..12].copy_from_slice(&new_overflow.to_le_bytes());
            page.dirty = true;
            page_no = self.overflow_start + new_overflow as u64;
        }
    }

    /// Looks up `key`, returning the value (if any) and the simulated latency.
    pub fn lookup(&mut self, key: u64) -> Result<(Option<u64>, SimDuration)> {
        let mut latency = SimDuration::ZERO;
        let mut page_no = self.bucket_of(key);
        loop {
            latency += self.load_page(page_no)?;
            let page = self.cache.get_mut(&page_no).expect("page cached");
            Self::init_page_if_needed(&mut page.data);
            let (count, next) = Self::page_header(&page.data);
            for s in 0..count {
                let at = PAGE_HEADER + s * ENTRY_SIZE;
                let k = u64::from_le_bytes(page.data[at..at + 8].try_into().unwrap());
                if k == key {
                    let v = u64::from_le_bytes(page.data[at + 8..at + 16].try_into().unwrap());
                    self.lookup_latency.record(latency);
                    return Ok((Some(v), latency));
                }
            }
            if next == NO_OVERFLOW {
                self.lookup_latency.record(latency);
                return Ok((None, latency));
            }
            page_no = self.overflow_start + next as u64;
        }
    }

    /// Deletes `key`, returning whether it was present and the latency.
    pub fn delete(&mut self, key: u64) -> Result<(bool, SimDuration)> {
        let mut latency = SimDuration::ZERO;
        let mut page_no = self.bucket_of(key);
        loop {
            latency += self.load_page(page_no)?;
            let page = self.cache.get_mut(&page_no).expect("page cached");
            Self::init_page_if_needed(&mut page.data);
            let (count, next) = Self::page_header(&page.data);
            for s in 0..count {
                let at = PAGE_HEADER + s * ENTRY_SIZE;
                let k = u64::from_le_bytes(page.data[at..at + 8].try_into().unwrap());
                if k == key {
                    // Swap the last entry into this slot and shrink.
                    let last_at = PAGE_HEADER + (count - 1) * ENTRY_SIZE;
                    if last_at != at {
                        let last: Vec<u8> = page.data[last_at..last_at + ENTRY_SIZE].to_vec();
                        page.data[at..at + ENTRY_SIZE].copy_from_slice(&last);
                    }
                    page.data[last_at..last_at + ENTRY_SIZE].fill(0);
                    page.data[4..6].copy_from_slice(&((count - 1) as u16).to_le_bytes());
                    page.dirty = true;
                    self.entries -= 1;
                    self.delete_latency.record(latency);
                    return Ok((true, latency));
                }
            }
            if next == NO_OVERFLOW {
                self.delete_latency.record(latency);
                return Ok((false, latency));
            }
            page_no = self.overflow_start + next as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashsim::{MagneticDisk, Ssd};

    fn index() -> BdbHashIndex<Ssd> {
        BdbHashIndex::new(
            Ssd::intel(4 << 20).unwrap(),
            BdbConfig { primary_fraction: 0.8, cache_bytes: 64 * 1024 },
        )
        .unwrap()
    }

    fn key(i: u64) -> u64 {
        i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1
    }

    #[test]
    fn insert_lookup_delete_round_trip() {
        let mut idx = index();
        for i in 0..2_000u64 {
            idx.insert(key(i), i).unwrap();
        }
        assert_eq!(idx.len(), 2_000);
        for i in 0..2_000u64 {
            assert_eq!(idx.lookup(key(i)).unwrap().0, Some(i), "key {i}");
        }
        assert_eq!(idx.lookup(key(99_999)).unwrap().0, None);
        let (removed, _) = idx.delete(key(5)).unwrap();
        assert!(removed);
        assert_eq!(idx.lookup(key(5)).unwrap().0, None);
        assert_eq!(idx.len(), 1_999);
        assert!(!idx.delete(key(5)).unwrap().0);
    }

    #[test]
    fn updates_do_not_duplicate() {
        let mut idx = index();
        idx.insert(key(1), 1).unwrap();
        idx.insert(key(1), 2).unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.lookup(key(1)).unwrap().0, Some(2));
    }

    #[test]
    fn overflow_chains_work_when_buckets_fill() {
        // A tiny device forces long overflow chains.
        let mut idx = BdbHashIndex::new(
            Ssd::intel(1 << 20).unwrap(),
            BdbConfig { primary_fraction: 0.3, cache_bytes: 32 * 1024 },
        )
        .unwrap();
        for i in 0..10_000u64 {
            idx.insert(key(i), i).unwrap();
        }
        for i in (0..10_000u64).step_by(97) {
            assert_eq!(idx.lookup(key(i)).unwrap().0, Some(i));
        }
    }

    #[test]
    fn random_operations_miss_the_small_cache_and_hit_the_device() {
        let mut idx = index();
        for i in 0..20_000u64 {
            idx.insert(key(i), i).unwrap();
        }
        idx.device_mut().reset_stats();
        for i in 0..1_000u64 {
            idx.lookup(key(i * 13)).unwrap();
        }
        let stats = idx.device().stats();
        assert!(
            stats.reads > 800,
            "random lookups over a large index should mostly miss the cache ({} reads)",
            stats.reads
        );
    }

    #[test]
    fn flush_writes_back_dirty_pages() {
        let mut idx = index();
        for i in 0..100u64 {
            idx.insert(key(i), i).unwrap();
        }
        let writes_before = idx.device().stats().writes;
        idx.flush().unwrap();
        assert!(idx.device().stats().writes > writes_before);
        // A second flush has nothing left to write.
        let writes_after = idx.device().stats().writes;
        idx.flush().unwrap();
        assert_eq!(idx.device().stats().writes, writes_after);
    }

    #[test]
    fn works_on_magnetic_disk_with_millisecond_latencies() {
        let mut idx = BdbHashIndex::new(
            MagneticDisk::new(4 << 20).unwrap(),
            BdbConfig { primary_fraction: 0.8, cache_bytes: 32 * 1024 },
        )
        .unwrap();
        for i in 0..3_000u64 {
            idx.insert(key(i), i).unwrap();
        }
        let mean = idx.insert_latency.mean();
        assert!(
            mean > SimDuration::from_millis(1),
            "BDB-on-disk inserts should cost milliseconds, got {mean}"
        );
    }

    #[test]
    fn tiny_cache_is_clamped() {
        let idx = BdbHashIndex::new(
            Ssd::intel(1 << 20).unwrap(),
            BdbConfig { primary_fraction: 0.5, cache_bytes: 0 },
        )
        .unwrap();
        assert!(idx.cache_capacity_pages >= 4);
    }
}
