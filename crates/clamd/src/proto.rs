//! The `clamd` wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — is one **frame**: a fixed
//! 20-byte header followed by an opcode-specific payload.
//!
//! ```text
//!  byte  0               4      5      6        8              16        20
//!        +---------------+------+------+--------+--------------+---------+----------+
//!        | magic "CLMD"  | ver  | op   | rsvd=0 | request id   | payload | payload… |
//!        | u32 LE        | u8   | u8   | u16 LE | u64 LE       | len u32 |          |
//!        +---------------+------+------+--------+--------------+---------+----------+
//! ```
//!
//! * The **request id** is chosen by the client and echoed verbatim in the
//!   response, so pipelined connections can match completions to
//!   submissions (the server additionally preserves per-connection
//!   arrival order).
//! * **All integers are little-endian.** Keys and values are the 8-byte
//!   fingerprint entries of [`bufferhash`](bufferhash::ENTRY_SIZE).
//! * Decoding is **strict**: wrong magic, unknown version, non-zero
//!   reserved bytes, an oversized payload, a payload whose length
//!   disagrees with its opcode, or an over-long batch all produce a
//!   structured [`WireError`] — never a panic. Incomplete frames are not
//!   errors; streaming decoders return `Ok(None)` until enough bytes
//!   arrive.
//!
//! The op set mirrors the CLAM surface: INSERT / LOOKUP / DELETE /
//! FLUSH / STATS plus the batch frames INSERT_BATCH / LOOKUP_BATCH that
//! let one client-side frame carry many operations (server-side group
//! commit batches *across* frames and connections either way — see
//! [`crate::batcher`]).

use std::fmt;

use bufferhash::{Key, Value};

/// Frame magic: `"CLMD"` in ASCII.
pub const MAGIC: u32 = 0x444D_4C43; // b"CLMD" read little-endian
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed frame-header length in bytes.
pub const HEADER_LEN: usize = 20;
/// Largest payload a peer may send; larger length fields are rejected as
/// [`WireError::Oversized`] before any allocation.
pub const MAX_PAYLOAD: usize = 1 << 20;
/// Largest operation count in one batch frame.
pub const MAX_BATCH_OPS: usize = 64 * 1024;

/// Request opcodes (client → server).
mod opcode {
    pub const INSERT: u8 = 0x01;
    pub const LOOKUP: u8 = 0x02;
    pub const DELETE: u8 = 0x03;
    pub const FLUSH: u8 = 0x04;
    pub const STATS: u8 = 0x05;
    pub const INSERT_BATCH: u8 = 0x06;
    pub const LOOKUP_BATCH: u8 = 0x07;

    pub const R_INSERTED: u8 = 0x81;
    pub const R_VALUE: u8 = 0x82;
    pub const R_DELETED: u8 = 0x83;
    pub const R_FLUSHED: u8 = 0x84;
    pub const R_STATS: u8 = 0x85;
    pub const R_INSERTED_BATCH: u8 = 0x86;
    pub const R_VALUES: u8 = 0x87;
    pub const R_ERROR: u8 = 0xFF;
}

/// One client operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert (or update) one fingerprint.
    Insert {
        /// The fingerprint key.
        key: Key,
        /// The value to store.
        value: Value,
    },
    /// Look up one fingerprint.
    Lookup {
        /// The fingerprint key.
        key: Key,
    },
    /// Delete one fingerprint.
    Delete {
        /// The fingerprint key.
        key: Key,
    },
    /// Flush every buffered entry to flash (durability barrier).
    Flush,
    /// Fetch the server's statistics ledgers.
    Stats,
    /// Insert many fingerprints in one frame.
    InsertBatch(Vec<(Key, Value)>),
    /// Look up many fingerprints in one frame.
    LookupBatch(Vec<Key>),
}

impl Op {
    /// The opcode byte this operation encodes to.
    pub fn opcode(&self) -> u8 {
        match self {
            Op::Insert { .. } => opcode::INSERT,
            Op::Lookup { .. } => opcode::LOOKUP,
            Op::Delete { .. } => opcode::DELETE,
            Op::Flush => opcode::FLUSH,
            Op::Stats => opcode::STATS,
            Op::InsertBatch(_) => opcode::INSERT_BATCH,
            Op::LookupBatch(_) => opcode::LOOKUP_BATCH,
        }
    }

    /// Number of CLAM operations this frame carries (1 for the scalar
    /// ops, the batch length for batch frames).
    pub fn ops(&self) -> usize {
        match self {
            Op::InsertBatch(v) => v.len(),
            Op::LookupBatch(v) => v.len(),
            _ => 1,
        }
    }
}

/// Structured error codes carried by [`RespBody::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Frame magic was not `"CLMD"`.
    BadMagic,
    /// Version byte newer than this server speaks.
    BadVersion,
    /// Opcode not defined in this direction of the protocol.
    UnknownOp,
    /// Payload length field exceeded [`MAX_PAYLOAD`].
    Oversized,
    /// Payload disagreed with its opcode (length mismatch, bad count,
    /// non-zero reserved bytes, malformed fields).
    Corrupt,
    /// A batch frame carried more than [`MAX_BATCH_OPS`] operations.
    TooManyOps,
    /// The store itself failed the operation.
    Internal,
}

impl ErrorCode {
    /// Wire representation.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::BadMagic => 1,
            ErrorCode::BadVersion => 2,
            ErrorCode::UnknownOp => 3,
            ErrorCode::Oversized => 4,
            ErrorCode::Corrupt => 5,
            ErrorCode::TooManyOps => 6,
            ErrorCode::Internal => 7,
        }
    }

    /// Parses a wire code; unknown codes are a corrupt payload.
    pub fn from_u16(code: u16) -> Result<Self, WireError> {
        Ok(match code {
            1 => ErrorCode::BadMagic,
            2 => ErrorCode::BadVersion,
            3 => ErrorCode::UnknownOp,
            4 => ErrorCode::Oversized,
            5 => ErrorCode::Corrupt,
            6 => ErrorCode::TooManyOps,
            7 => ErrorCode::Internal,
            _ => return Err(WireError::Corrupt("unknown error code")),
        })
    }
}

/// A decode-side protocol violation. Connection-fatal: the server answers
/// with one [`RespBody::Error`] frame (request id 0 when the offending
/// header could not be parsed) and closes the connection, because a
/// misframed stream has no trustworthy resynchronization point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame magic mismatch (the observed value).
    BadMagic(u32),
    /// Unsupported protocol version (the observed value).
    BadVersion(u8),
    /// Opcode not valid in this direction (the observed value).
    UnknownOpcode(u8),
    /// Declared payload length beyond [`MAX_PAYLOAD`].
    Oversized(usize),
    /// Structurally invalid frame contents.
    Corrupt(&'static str),
    /// A batch frame declared more than [`MAX_BATCH_OPS`] operations.
    TooManyOps(usize),
}

impl WireError {
    /// The structured code a server reports for this violation.
    pub fn code(&self) -> ErrorCode {
        match self {
            WireError::BadMagic(_) => ErrorCode::BadMagic,
            WireError::BadVersion(_) => ErrorCode::BadVersion,
            WireError::UnknownOpcode(_) => ErrorCode::UnknownOp,
            WireError::Oversized(_) => ErrorCode::Oversized,
            WireError::Corrupt(_) => ErrorCode::Corrupt,
            WireError::TooManyOps(_) => ErrorCode::TooManyOps,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownOpcode(o) => write!(f, "unknown opcode {o:#04x}"),
            WireError::Oversized(n) => {
                write!(f, "payload of {n} bytes exceeds the {MAX_PAYLOAD}-byte limit")
            }
            WireError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
            WireError::TooManyOps(n) => {
                write!(f, "batch of {n} ops exceeds the {MAX_BATCH_OPS}-op limit")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// The numeric half of a STATS response: a fixed field vector the load
/// generator can diff across snapshots (the human-readable ledger text
/// follows it in the same payload). Field meanings are defined by the
/// [`ServerStats`](crate::ServerStats) ledger they are copied from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsFields {
    /// Inserts served (acknowledged after their group-commit flush).
    pub inserts: u64,
    /// Lookups served.
    pub lookups: u64,
    /// Deletes served.
    pub deletes: u64,
    /// FLUSH barriers served.
    pub flushes: u64,
    /// STATS requests served (including the one reporting this).
    pub stats_calls: u64,
    /// Lookups that found a value.
    pub lookup_hits: u64,
    /// Lookups that found nothing.
    pub lookup_misses: u64,
    /// Group-commit gathers executed by the batcher.
    pub batches: u64,
    /// Requests drained across all gathers.
    pub batched_requests: u64,
    /// Gathers that lingered waiting for concurrent arrivals.
    pub group_commit_waits: u64,
    /// Largest gather (in requests) observed.
    pub batch_high_water: u64,
    /// Coalesced `insert_batch` ring admissions.
    pub insert_admissions: u64,
    /// Coalesced `lookup_batch` ring admissions.
    pub lookup_admissions: u64,
    /// Per-key delete admissions.
    pub delete_admissions: u64,
    /// Connections rejected or dropped on protocol violations.
    pub wire_errors: u64,
    /// Lookups answered on the lock-free fast path, bypassing the
    /// batcher queue entirely (v2 field).
    pub bypass_hits: u64,
    /// Number of batcher shards serving the store (v2 field; a gauge,
    /// not a counter).
    pub shards: u64,
    /// Requests admitted to shard gathers but not yet completed, summed
    /// across shards (v2 field; a gauge, not a counter).
    pub shard_inflight: u64,
    /// Per-super-table write-lock acquisitions across the store's
    /// stripes (v3 field).
    pub table_write_acquisitions: u64,
    /// Table write acquisitions that had to wait for another fine-grained
    /// writer on the same table (v3 field).
    pub table_write_contended: u64,
    /// High-water mark of concurrently write-locked super tables within
    /// any single stripe (v3 field; a gauge, not a counter).
    pub table_lock_high_water: u64,
}

impl StatsFields {
    /// Number of `u64` fields on the wire (protocol minor version 3).
    pub const COUNT: usize = 21;

    /// Field count written by minor-version-2 servers (before the
    /// table-write-lock ledger). The count word in the STATS payload
    /// doubles as the field-vector version: decoders accept
    /// [`Self::V1_COUNT`], [`Self::V2_COUNT`] (zero-filling the newer
    /// fields) or [`Self::COUNT`].
    pub const V2_COUNT: usize = 18;

    /// Field count written by minor-version-1 servers.
    pub const V1_COUNT: usize = 15;

    fn to_words(self) -> [u64; Self::COUNT] {
        [
            self.inserts,
            self.lookups,
            self.deletes,
            self.flushes,
            self.stats_calls,
            self.lookup_hits,
            self.lookup_misses,
            self.batches,
            self.batched_requests,
            self.group_commit_waits,
            self.batch_high_water,
            self.insert_admissions,
            self.lookup_admissions,
            self.delete_admissions,
            self.wire_errors,
            self.bypass_hits,
            self.shards,
            self.shard_inflight,
            self.table_write_acquisitions,
            self.table_write_contended,
            self.table_lock_high_water,
        ]
    }

    /// `w` must hold at least [`Self::V1_COUNT`] words; fields beyond the
    /// slice's length (a v1 snapshot) are zero-filled.
    fn from_words(w: &[u64]) -> Self {
        let at = |i: usize| w.get(i).copied().unwrap_or(0);
        StatsFields {
            inserts: w[0],
            lookups: w[1],
            deletes: w[2],
            flushes: w[3],
            stats_calls: w[4],
            lookup_hits: w[5],
            lookup_misses: w[6],
            batches: w[7],
            batched_requests: w[8],
            group_commit_waits: w[9],
            batch_high_water: w[10],
            insert_admissions: w[11],
            lookup_admissions: w[12],
            delete_admissions: w[13],
            wire_errors: w[14],
            bypass_hits: at(15),
            shards: at(16),
            shard_inflight: at(17),
            table_write_acquisitions: at(18),
            table_write_contended: at(19),
            table_lock_high_water: at(20),
        }
    }

    /// Field-wise difference (`self - earlier`, saturating), for
    /// per-load-level deltas between two snapshots.
    pub fn delta(&self, earlier: &StatsFields) -> StatsFields {
        let a = self.to_words();
        let b = earlier.to_words();
        let mut out = [0u64; Self::COUNT];
        for i in 0..Self::COUNT {
            out[i] = a[i].saturating_sub(b[i]);
        }
        // High-water marks and gauges are not differences; keep the
        // later value.
        let mut fields = StatsFields::from_words(&out);
        fields.batch_high_water = self.batch_high_water;
        fields.shards = self.shards;
        fields.shard_inflight = self.shard_inflight;
        fields.table_lock_high_water = self.table_lock_high_water;
        fields
    }

    /// Mean requests per group-commit gather.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

/// A server response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespBody {
    /// The insert is durable in the store's acknowledgment sense (its
    /// group-commit flush writes, if any, were reaped before this was
    /// sent).
    Inserted,
    /// Lookup result.
    Value {
        /// Whether the key was found.
        found: bool,
        /// The value (0 when not found).
        value: Value,
    },
    /// The delete was applied.
    Deleted,
    /// Every buffer was flushed to flash.
    Flushed,
    /// Statistics ledgers: the numeric fields plus the rendered text.
    Stats {
        /// Machine-readable counters.
        fields: StatsFields,
        /// Human-readable ledger (server + store + recovery).
        text: String,
    },
    /// A batch of inserts is durable; `count` echoes the batch size.
    InsertedBatch {
        /// Operations acknowledged.
        count: u32,
    },
    /// Batch lookup results, in request order.
    Values(Vec<(bool, Value)>),
    /// The request failed; see the code and message.
    Error {
        /// Structured error code.
        code: ErrorCode,
        /// Human-readable explanation.
        message: String,
    },
}

impl RespBody {
    /// The opcode byte this response encodes to.
    pub fn opcode(&self) -> u8 {
        match self {
            RespBody::Inserted => opcode::R_INSERTED,
            RespBody::Value { .. } => opcode::R_VALUE,
            RespBody::Deleted => opcode::R_DELETED,
            RespBody::Flushed => opcode::R_FLUSHED,
            RespBody::Stats { .. } => opcode::R_STATS,
            RespBody::InsertedBatch { .. } => opcode::R_INSERTED_BATCH,
            RespBody::Values(_) => opcode::R_VALUES,
            RespBody::Error { .. } => opcode::R_ERROR,
        }
    }
}

/// One request frame: client-chosen id plus the operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
}

/// One response frame: the echoed request id plus the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The id of the request this answers (0 for connection-level
    /// protocol errors whose request header could not be parsed).
    pub id: u64,
    /// The response body.
    pub body: RespBody,
}

fn put_header(buf: &mut Vec<u8>, op: u8, id: u64, payload_len: usize) {
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.push(VERSION);
    buf.push(op);
    buf.extend_from_slice(&0u16.to_le_bytes());
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Appends the encoded frame for `request` to `buf`.
pub fn encode_request(request: &Request, buf: &mut Vec<u8>) {
    let payload_len = match &request.op {
        Op::Insert { .. } => 16,
        Op::Lookup { .. } | Op::Delete { .. } => 8,
        Op::Flush | Op::Stats => 0,
        Op::InsertBatch(v) => 4 + 16 * v.len(),
        Op::LookupBatch(v) => 4 + 8 * v.len(),
    };
    put_header(buf, request.op.opcode(), request.id, payload_len);
    match &request.op {
        Op::Insert { key, value } => {
            buf.extend_from_slice(&key.to_le_bytes());
            buf.extend_from_slice(&value.to_le_bytes());
        }
        Op::Lookup { key } | Op::Delete { key } => buf.extend_from_slice(&key.to_le_bytes()),
        Op::Flush | Op::Stats => {}
        Op::InsertBatch(v) => {
            buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
            for (key, value) in v {
                buf.extend_from_slice(&key.to_le_bytes());
                buf.extend_from_slice(&value.to_le_bytes());
            }
        }
        Op::LookupBatch(v) => {
            buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
            for key in v {
                buf.extend_from_slice(&key.to_le_bytes());
            }
        }
    }
}

/// Appends the encoded frame for `response` to `buf`.
pub fn encode_response(response: &Response, buf: &mut Vec<u8>) {
    let payload_len = match &response.body {
        RespBody::Inserted | RespBody::Deleted | RespBody::Flushed => 0,
        RespBody::Value { .. } => 9,
        RespBody::Stats { text, .. } => 4 + 8 * StatsFields::COUNT + text.len(),
        RespBody::InsertedBatch { .. } => 4,
        RespBody::Values(v) => 4 + 9 * v.len(),
        RespBody::Error { message, .. } => 2 + message.len(),
    };
    put_header(buf, response.body.opcode(), response.id, payload_len);
    match &response.body {
        RespBody::Inserted | RespBody::Deleted | RespBody::Flushed => {}
        RespBody::Value { found, value } => {
            buf.push(u8::from(*found));
            buf.extend_from_slice(&value.to_le_bytes());
        }
        RespBody::Stats { fields, text } => {
            buf.extend_from_slice(&(StatsFields::COUNT as u32).to_le_bytes());
            for word in fields.to_words() {
                buf.extend_from_slice(&word.to_le_bytes());
            }
            buf.extend_from_slice(text.as_bytes());
        }
        RespBody::InsertedBatch { count } => buf.extend_from_slice(&count.to_le_bytes()),
        RespBody::Values(v) => {
            buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
            for (found, value) in v {
                buf.push(u8::from(*found));
                buf.extend_from_slice(&value.to_le_bytes());
            }
        }
        RespBody::Error { code, message } => {
            buf.extend_from_slice(&code.as_u16().to_le_bytes());
            buf.extend_from_slice(message.as_bytes());
        }
    }
}

/// A parsed header: opcode, request id, payload length.
struct Header {
    opcode: u8,
    id: u64,
    payload_len: usize,
}

/// Parses the fixed header. `Ok(None)` means more bytes are needed.
fn parse_header(buf: &[u8]) -> Result<Option<Header>, WireError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if buf[4] != VERSION {
        return Err(WireError::BadVersion(buf[4]));
    }
    let reserved = u16::from_le_bytes(buf[6..8].try_into().expect("2 bytes"));
    if reserved != 0 {
        return Err(WireError::Corrupt("non-zero reserved header bytes"));
    }
    let id = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversized(payload_len));
    }
    Ok(Some(Header { opcode: buf[5], id, payload_len }))
}

/// Best-effort extraction of the request id from the front of `buf`, for
/// correlating an error reply with the frame that caused it.
///
/// Returns `Some(id)` only when a full header is present and its magic
/// and version match — i.e. the peer was speaking this protocol and the
/// id field is trustworthy even if the rest of the frame is invalid.
pub fn peek_request_id(buf: &[u8]) -> Option<u64> {
    if buf.len() < HEADER_LEN || buf[0..4] != MAGIC.to_le_bytes() || buf[4] != VERSION {
        return None;
    }
    Some(u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")))
}

fn u64_at(p: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(p[at..at + 8].try_into().expect("8 bytes"))
}

/// Reads a batch count and checks it against the remaining payload.
fn batch_count(p: &[u8], elem_size: usize) -> Result<usize, WireError> {
    if p.len() < 4 {
        return Err(WireError::Corrupt("batch frame shorter than its count field"));
    }
    let count = u32::from_le_bytes(p[0..4].try_into().expect("4 bytes")) as usize;
    if count > MAX_BATCH_OPS {
        return Err(WireError::TooManyOps(count));
    }
    if p.len() != 4 + count * elem_size {
        return Err(WireError::Corrupt("batch payload length disagrees with its count"));
    }
    Ok(count)
}

/// Decodes one request frame from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` for a complete frame,
/// `Ok(None)` when `buf` holds only a prefix (read more and retry), and
/// a [`WireError`] for a structurally invalid frame. Never panics on
/// arbitrary input.
pub fn decode_request(buf: &[u8]) -> Result<Option<(Request, usize)>, WireError> {
    let Some(header) = parse_header(buf)? else { return Ok(None) };
    if buf.len() < HEADER_LEN + header.payload_len {
        return Ok(None);
    }
    let p = &buf[HEADER_LEN..HEADER_LEN + header.payload_len];
    let exact = |want: usize, what: &'static str| -> Result<(), WireError> {
        if p.len() == want {
            Ok(())
        } else {
            Err(WireError::Corrupt(what))
        }
    };
    let op = match header.opcode {
        opcode::INSERT => {
            exact(16, "INSERT payload must be exactly 16 bytes")?;
            Op::Insert { key: u64_at(p, 0), value: u64_at(p, 8) }
        }
        opcode::LOOKUP => {
            exact(8, "LOOKUP payload must be exactly 8 bytes")?;
            Op::Lookup { key: u64_at(p, 0) }
        }
        opcode::DELETE => {
            exact(8, "DELETE payload must be exactly 8 bytes")?;
            Op::Delete { key: u64_at(p, 0) }
        }
        opcode::FLUSH => {
            exact(0, "FLUSH carries no payload")?;
            Op::Flush
        }
        opcode::STATS => {
            exact(0, "STATS carries no payload")?;
            Op::Stats
        }
        opcode::INSERT_BATCH => {
            let count = batch_count(p, 16)?;
            Op::InsertBatch(
                (0..count).map(|i| (u64_at(p, 4 + 16 * i), u64_at(p, 12 + 16 * i))).collect(),
            )
        }
        opcode::LOOKUP_BATCH => {
            let count = batch_count(p, 8)?;
            Op::LookupBatch((0..count).map(|i| u64_at(p, 4 + 8 * i)).collect())
        }
        other => return Err(WireError::UnknownOpcode(other)),
    };
    Ok(Some((Request { id: header.id, op }, HEADER_LEN + header.payload_len)))
}

/// Decodes one response frame from the front of `buf`; same contract as
/// [`decode_request`].
pub fn decode_response(buf: &[u8]) -> Result<Option<(Response, usize)>, WireError> {
    let Some(header) = parse_header(buf)? else { return Ok(None) };
    if buf.len() < HEADER_LEN + header.payload_len {
        return Ok(None);
    }
    let p = &buf[HEADER_LEN..HEADER_LEN + header.payload_len];
    let exact = |want: usize, what: &'static str| -> Result<(), WireError> {
        if p.len() == want {
            Ok(())
        } else {
            Err(WireError::Corrupt(what))
        }
    };
    let body = match header.opcode {
        opcode::R_INSERTED => {
            exact(0, "INSERTED carries no payload")?;
            RespBody::Inserted
        }
        opcode::R_DELETED => {
            exact(0, "DELETED carries no payload")?;
            RespBody::Deleted
        }
        opcode::R_FLUSHED => {
            exact(0, "FLUSHED carries no payload")?;
            RespBody::Flushed
        }
        opcode::R_VALUE => {
            exact(9, "VALUE payload must be exactly 9 bytes")?;
            if p[0] > 1 {
                return Err(WireError::Corrupt("VALUE found flag must be 0 or 1"));
            }
            RespBody::Value { found: p[0] == 1, value: u64_at(p, 1) }
        }
        opcode::R_STATS => {
            if p.len() < 4 {
                return Err(WireError::Corrupt("STATS frame shorter than its field count"));
            }
            let count = u32::from_le_bytes(p[0..4].try_into().expect("4 bytes")) as usize;
            // The count word is the field-vector minor version: accept
            // the current layout plus the 18-field v2 and 15-field v1
            // layouts (older servers), zero-filling the missing fields.
            if count != StatsFields::COUNT
                && count != StatsFields::V2_COUNT
                && count != StatsFields::V1_COUNT
            {
                return Err(WireError::Corrupt("STATS field count mismatch for this version"));
            }
            let words_end = 4 + 8 * count;
            if p.len() < words_end {
                return Err(WireError::Corrupt("STATS frame truncates its field vector"));
            }
            let words: Vec<u64> = (0..count).map(|i| u64_at(p, 4 + 8 * i)).collect();
            let text = std::str::from_utf8(&p[words_end..])
                .map_err(|_| WireError::Corrupt("STATS ledger text is not UTF-8"))?
                .to_string();
            RespBody::Stats { fields: StatsFields::from_words(&words), text }
        }
        opcode::R_INSERTED_BATCH => {
            exact(4, "INSERTED_BATCH payload must be exactly 4 bytes")?;
            RespBody::InsertedBatch {
                count: u32::from_le_bytes(p[0..4].try_into().expect("4 bytes")),
            }
        }
        opcode::R_VALUES => {
            if p.len() < 4 {
                return Err(WireError::Corrupt("VALUES frame shorter than its count field"));
            }
            let count = u32::from_le_bytes(p[0..4].try_into().expect("4 bytes")) as usize;
            if count > MAX_BATCH_OPS {
                return Err(WireError::TooManyOps(count));
            }
            if p.len() != 4 + 9 * count {
                return Err(WireError::Corrupt("VALUES payload length disagrees with its count"));
            }
            let mut values = Vec::with_capacity(count);
            for i in 0..count {
                let at = 4 + 9 * i;
                if p[at] > 1 {
                    return Err(WireError::Corrupt("VALUES found flag must be 0 or 1"));
                }
                values.push((p[at] == 1, u64_at(p, at + 1)));
            }
            RespBody::Values(values)
        }
        opcode::R_ERROR => {
            if p.len() < 2 {
                return Err(WireError::Corrupt("ERROR frame shorter than its code field"));
            }
            let code = ErrorCode::from_u16(u16::from_le_bytes(p[0..2].try_into().expect("2")))?;
            let message = std::str::from_utf8(&p[2..])
                .map_err(|_| WireError::Corrupt("ERROR message is not UTF-8"))?
                .to_string();
            RespBody::Error { code, message }
        }
        other => return Err(WireError::UnknownOpcode(other)),
    };
    Ok(Some((Response { id: header.id, body }, HEADER_LEN + header.payload_len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_spells_clmd() {
        assert_eq!(&MAGIC.to_le_bytes(), b"CLMD");
    }

    #[test]
    fn request_round_trip_all_ops() {
        let ops = vec![
            Op::Insert { key: 1, value: 2 },
            Op::Lookup { key: u64::MAX },
            Op::Delete { key: 0 },
            Op::Flush,
            Op::Stats,
            Op::InsertBatch(vec![(1, 2), (3, 4)]),
            Op::InsertBatch(Vec::new()),
            Op::LookupBatch(vec![9, 8, 7]),
        ];
        for (i, op) in ops.into_iter().enumerate() {
            let req = Request { id: i as u64 * 77 + 1, op };
            let mut buf = Vec::new();
            encode_request(&req, &mut buf);
            let (decoded, consumed) = decode_request(&buf).unwrap().unwrap();
            assert_eq!(consumed, buf.len());
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn response_round_trip_all_bodies() {
        let bodies = vec![
            RespBody::Inserted,
            RespBody::Value { found: true, value: 42 },
            RespBody::Value { found: false, value: 0 },
            RespBody::Deleted,
            RespBody::Flushed,
            RespBody::Stats {
                fields: StatsFields {
                    inserts: 5,
                    lookup_hits: 3,
                    bypass_hits: 7,
                    shards: 4,
                    shard_inflight: 2,
                    table_write_acquisitions: 11,
                    table_write_contended: 1,
                    table_lock_high_water: 3,
                    ..Default::default()
                },
                text: "served: …".to_string(),
            },
            RespBody::InsertedBatch { count: 1000 },
            RespBody::Values(vec![(true, 1), (false, 0)]),
            RespBody::Error { code: ErrorCode::Corrupt, message: "nope".to_string() },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let resp = Response { id: i as u64, body };
            let mut buf = Vec::new();
            encode_response(&resp, &mut buf);
            let (decoded, consumed) = decode_response(&buf).unwrap().unwrap();
            assert_eq!(consumed, buf.len());
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn truncated_frames_ask_for_more_bytes() {
        let mut buf = Vec::new();
        encode_request(&Request { id: 7, op: Op::InsertBatch(vec![(1, 2), (3, 4)]) }, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(decode_request(&buf[..cut]).unwrap(), None, "prefix of {cut} bytes");
        }
    }

    #[test]
    fn corrupt_headers_are_structured_errors() {
        let mut buf = Vec::new();
        encode_request(&Request { id: 1, op: Op::Flush }, &mut buf);
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_request(&bad), Err(WireError::BadMagic(_))));
        // Future version.
        let mut bad = buf.clone();
        bad[4] = 9;
        assert_eq!(decode_request(&bad), Err(WireError::BadVersion(9)));
        // Reserved bytes must be zero.
        let mut bad = buf.clone();
        bad[6] = 1;
        assert!(matches!(decode_request(&bad), Err(WireError::Corrupt(_))));
        // Unknown opcode (a response opcode in the request direction).
        let mut bad = buf.clone();
        bad[5] = 0x81;
        assert_eq!(decode_request(&bad), Err(WireError::UnknownOpcode(0x81)));
        // Oversized payload length field.
        let mut bad = buf;
        bad[16..20].copy_from_slice(&((MAX_PAYLOAD + 1) as u32).to_le_bytes());
        assert_eq!(decode_request(&bad), Err(WireError::Oversized(MAX_PAYLOAD + 1)));
    }

    #[test]
    fn payload_length_must_match_opcode() {
        // An INSERT whose payload claims 8 bytes is corrupt, not a panic.
        let mut buf = Vec::new();
        encode_request(&Request { id: 1, op: Op::Lookup { key: 5 } }, &mut buf);
        buf[5] = 0x01; // relabel LOOKUP as INSERT, payload stays 8 bytes
        assert!(matches!(decode_request(&buf), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn batch_count_must_match_payload() {
        let mut buf = Vec::new();
        encode_request(&Request { id: 1, op: Op::LookupBatch(vec![1, 2, 3]) }, &mut buf);
        // Claim one extra element without supplying its bytes.
        buf[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&4u32.to_le_bytes());
        assert!(matches!(decode_request(&buf), Err(WireError::Corrupt(_))));
        // Claim an absurd count: structured TooManyOps.
        let mut absurd = Vec::new();
        encode_request(&Request { id: 1, op: Op::LookupBatch(vec![1]) }, &mut absurd);
        absurd[HEADER_LEN..HEADER_LEN + 4]
            .copy_from_slice(&((MAX_BATCH_OPS + 1) as u32).to_le_bytes());
        assert!(matches!(decode_request(&absurd), Err(WireError::TooManyOps(_))));
    }

    #[test]
    fn stats_fields_delta_and_mean() {
        let early =
            StatsFields { lookups: 10, batches: 2, batched_requests: 10, ..Default::default() };
        let late = StatsFields {
            lookups: 110,
            batches: 12,
            batched_requests: 110,
            batch_high_water: 40,
            bypass_hits: 25,
            shards: 4,
            shard_inflight: 3,
            table_write_acquisitions: 60,
            table_write_contended: 5,
            table_lock_high_water: 6,
            ..Default::default()
        };
        let d = late.delta(&early);
        assert_eq!(d.lookups, 100);
        assert_eq!(d.batches, 10);
        assert_eq!(d.batched_requests, 100);
        assert_eq!(d.batch_high_water, 40, "high-water keeps the later value");
        assert_eq!(d.bypass_hits, 25, "bypass hits diff like any counter");
        assert_eq!(d.shards, 4, "shard count is a gauge: keep the later value");
        assert_eq!(d.shard_inflight, 3, "in-flight depth is a gauge: keep the later value");
        assert_eq!(d.table_write_acquisitions, 60, "lock acquisitions diff like counters");
        assert_eq!(d.table_write_contended, 5);
        assert_eq!(d.table_lock_high_water, 6, "lock hwm is a gauge: keep the later value");
        assert!((d.mean_batch() - 10.0).abs() < 1e-9);
        assert_eq!(StatsFields::default().mean_batch(), 0.0);
    }

    #[test]
    fn stats_decoder_accepts_the_v1_field_count() {
        // A v1 server writes 15 words; the 3 v2 fields zero-fill.
        let fields = StatsFields { inserts: 9, wire_errors: 2, ..Default::default() };
        let words = fields.to_words();
        let text = "legacy ledger";
        let payload_len = 4 + 8 * StatsFields::V1_COUNT + text.len();
        let mut buf = Vec::new();
        put_header(&mut buf, opcode::R_STATS, 3, payload_len);
        buf.extend_from_slice(&(StatsFields::V1_COUNT as u32).to_le_bytes());
        for word in &words[..StatsFields::V1_COUNT] {
            buf.extend_from_slice(&word.to_le_bytes());
        }
        buf.extend_from_slice(text.as_bytes());

        let (decoded, consumed) = decode_response(&buf).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        let RespBody::Stats { fields: got, text: got_text } = decoded.body else {
            panic!("expected a STATS body");
        };
        assert_eq!(got, fields);
        assert_eq!(got_text, text);

        // Any other count is still a structured corruption error.
        let mut bad = buf;
        bad[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&16u32.to_le_bytes());
        assert!(matches!(decode_response(&bad), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn stats_decoder_accepts_the_v2_field_count() {
        // A v2 server writes 18 words; the 3 v3 table-lock fields
        // zero-fill on decode.
        let fields = StatsFields {
            inserts: 4,
            bypass_hits: 6,
            shards: 2,
            shard_inflight: 1,
            ..Default::default()
        };
        let words = fields.to_words();
        let text = "v2 ledger";
        let payload_len = 4 + 8 * StatsFields::V2_COUNT + text.len();
        let mut buf = Vec::new();
        put_header(&mut buf, opcode::R_STATS, 3, payload_len);
        buf.extend_from_slice(&(StatsFields::V2_COUNT as u32).to_le_bytes());
        for word in &words[..StatsFields::V2_COUNT] {
            buf.extend_from_slice(&word.to_le_bytes());
        }
        buf.extend_from_slice(text.as_bytes());

        let (decoded, consumed) = decode_response(&buf).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        let RespBody::Stats { fields: got, text: got_text } = decoded.body else {
            panic!("expected a STATS body");
        };
        assert_eq!(got, fields);
        assert_eq!(got_text, text);
        assert_eq!(got.table_write_acquisitions, 0, "v3 fields zero-fill");
        assert_eq!(got.table_lock_high_water, 0);
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::BadMagic,
            ErrorCode::BadVersion,
            ErrorCode::UnknownOp,
            ErrorCode::Oversized,
            ErrorCode::Corrupt,
            ErrorCode::TooManyOps,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u16(code.as_u16()).unwrap(), code);
        }
        assert!(ErrorCode::from_u16(999).is_err());
    }
}
