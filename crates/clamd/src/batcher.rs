//! The sharded group-commit batcher: per-stripe-shard gather threads
//! that turn concurrent request arrivals into coalesced ring admissions.
//!
//! Every connection's reader thread routes decoded requests to a
//! **batcher shard** keyed by the key's stripe
//! (`stripe_index(key) % shards`), so the same key always lands on the
//! same shard. Each shard owns its own FIFO queue, linger window and
//! gather thread: the thread gathers its queue — lingering up to
//! [`BatcherConfig::linger`] for concurrent arrivals when the queue is
//! shallower than [`BatcherConfig::max_batch`] — then partitions the
//! gather into **maximal same-kind runs in arrival order** and executes
//! each run as one store call:
//!
//! * a run of inserts (scalar frames and `INSERT_BATCH` shard-parts
//!   alike) flattens into a single [`StripedClam::insert_batch`] — one
//!   group-commit flush admission for the whole run;
//! * a run of lookups flattens into a single
//!   [`StripedClam::lookup_batch`], whose streaming ring pipeline
//!   overlaps every key's flash probes;
//! * deletes, flushes and stats execute per request.
//!
//! Because shards own disjoint stripe sets, concurrent shard admissions
//! never contend on a stripe lock — independent stripes commit
//! concurrently.
//!
//! **Ordering.** Run boundaries follow arrival order within a shard, so
//! per-connection, per-key semantics are those of a serial server: a
//! lookup that arrives after an insert of the same key observes it (same
//! key, same shard). Cross-shard completions can finish out of
//! submission order, so each connection carries a sequencer: every
//! submission takes a per-connection sequence number and responses are
//! delivered strictly in that order, parking early completions until
//! their turn.
//!
//! **Batch frames** (`INSERT_BATCH` / `LOOKUP_BATCH`) and `FLUSH`
//! split into one *part* per touched shard plus a shared assembly; the
//! response is built when the last part lands, so the client still sees
//! exactly one response per request.
//!
//! **FLUSH is a per-connection barrier, not a global one.** Each shard's
//! flush part queues behind that connection's earlier writes *in that
//! shard*, so a connection's own writes are always flushed. Writes
//! submitted concurrently by *other* connections while the FLUSH is in
//! flight may land in some shards before the flush part and after it in
//! others — cross-connection, cross-shard flush ordering is unspecified.
//!
//! **Batcher bypass.** A scalar `LOOKUP` whose shard is completely idle
//! (empty queue, nothing in flight) skips the queue entirely and is
//! answered on the store's epoch-validated read fast path
//! ([`StripedClam::try_fast_lookup`]) — no gather, no ring admission, no
//! linger latency. The idle check is what makes this safe: any earlier
//! same-key write is in the same shard, so an idle shard means the write
//! already committed. Responses still flow through the sequencer, so
//! per-connection order holds.
//!
//! **Acknowledgment invariant:** a response is sent only after its run's
//! store call has *returned*. [`Clam::insert_batch`] returns only once
//! the write ring has been fully reaped (flush writes durable in the
//! simulated-device sense), so an acknowledged insert is never lost to a
//! ring still in flight — "ack only after the group-commit flush reaps".
//! Each shard enforces this independently.
//!
//! [`StripedClam::insert_batch`]: bufferhash::StripedClam::insert_batch
//! [`StripedClam::lookup_batch`]: bufferhash::StripedClam::lookup_batch
//! [`StripedClam::try_fast_lookup`]: bufferhash::StripedClam::try_fast_lookup
//! [`Clam::insert_batch`]: bufferhash::Clam::insert_batch

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bufferhash::{Key, RecoveryReport, StripedClam, Value};
use flashsim::Device;

use crate::proto::{ErrorCode, Op, Request, RespBody, Response};
use crate::stats::ServerStats;

/// Tuning knobs for the group-commit batcher.
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Largest gather, in requests; a full queue fires immediately.
    pub max_batch: usize,
    /// How long a non-full gather lingers for concurrent arrivals.
    pub linger: Duration,
    /// Number of batcher shards (gather threads). Clamped to
    /// `[1, num_stripes]` at start; `1` reproduces the single-gather
    /// baseline exactly.
    pub shards: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig { max_batch: 512, linger: Duration::from_micros(100), shards: 1 }
    }
}

/// What remains of a multi-shard request (batch frame or FLUSH) — the
/// response is built when the last shard part lands.
struct Pending {
    conn: u64,
    seq: u64,
    id: u64,
    state: Mutex<AssemblyState>,
}

struct AssemblyState {
    /// Shard parts still outstanding.
    remaining: usize,
    kind: AssemblyKind,
    /// First error across parts wins; the response becomes an Error.
    error: Option<String>,
}

enum AssemblyKind {
    /// `INSERT_BATCH`: the acknowledged op count.
    Insert { count: u32 },
    /// `LOOKUP_BATCH`: one slot per requested key, in request order.
    Lookup { slots: Vec<Option<(bool, Value)>> },
    /// `FLUSH` barrier across every shard.
    Flush,
}

/// One queued shard-local unit of work.
enum Part {
    Insert { key: Key, value: Value },
    Lookup { key: Key },
    Delete { key: Key },
    Flush { assembly: Arc<Pending> },
    Stats,
    InsertSlice { assembly: Arc<Pending>, pairs: Vec<(Key, Value)> },
    LookupSlice { assembly: Arc<Pending>, keys: Vec<Key>, slots: Vec<usize> },
}

/// One queued submission: origin connection, its per-connection sequence
/// number, the request id to answer under, and the work itself.
struct Submission {
    conn: u64,
    seq: u64,
    id: u64,
    part: Part,
}

/// Per-connection response sequencer state.
#[derive(Default)]
struct ConnSeq {
    /// Next sequence number to hand out at submit time.
    next_submit: u64,
    /// Next sequence number the writer may be sent.
    next_deliver: u64,
    /// Completions that arrived ahead of their turn.
    parked: BTreeMap<u64, Response>,
}

struct ConnEntry {
    tx: mpsc::Sender<Response>,
    seq: Mutex<ConnSeq>,
}

/// One batcher shard: a queue, its gather condvar, the count of drained
/// but unfinished submissions, and the shard's own gather ledger.
struct Shard {
    queue: Mutex<VecDeque<Submission>>,
    arrivals: Condvar,
    /// Submissions drained from the queue whose store effects are not
    /// yet final. `queue.len() + inflight` is the shard's depth; the
    /// bypass requires both to be zero.
    inflight: AtomicU64,
    stats: Mutex<ServerStats>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            queue: Mutex::new(VecDeque::new()),
            arrivals: Condvar::new(),
            inflight: AtomicU64::new(0),
            stats: Mutex::new(ServerStats::new()),
        }
    }

    fn depth(&self) -> u64 {
        self.queue.lock().expect("shard queue lock").len() as u64
            + self.inflight.load(Ordering::SeqCst)
    }
}

/// State shared between connection threads and the shard gather threads.
struct Shared<D: Device + 'static> {
    store: StripedClam<D>,
    recovery: Vec<RecoveryReport>,
    config: BatcherConfig,
    shards: Vec<Shard>,
    conns: Mutex<HashMap<u64, Arc<ConnEntry>>>,
    /// Process-wide counters (connections, wire errors, flush barriers,
    /// stats calls) plus the shutdown-time depth snapshot; everything
    /// request-scoped lives in the per-shard ledgers.
    stats: Mutex<ServerStats>,
    shutdown: AtomicBool,
}

/// A cloneable handle to the batcher engine.
pub struct Engine<D: Device + 'static> {
    shared: Arc<Shared<D>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl<D: Device + 'static> Clone for Engine<D> {
    fn clone(&self) -> Self {
        Engine { shared: Arc::clone(&self.shared), workers: Arc::clone(&self.workers) }
    }
}

impl<D: Device + 'static> Engine<D> {
    /// Starts one gather thread per shard over `store`. `recovery`
    /// carries the per-stripe reports when the store was recovered from
    /// an existing flash image (empty for a fresh boot); STATS responses
    /// include them.
    pub fn start(
        store: StripedClam<D>,
        recovery: Vec<RecoveryReport>,
        config: BatcherConfig,
    ) -> Self {
        let shards = config.shards.clamp(1, store.num_stripes());
        let shared = Arc::new(Shared {
            store,
            recovery,
            config,
            shards: (0..shards).map(|_| Shard::new()).collect(),
            conns: Mutex::new(HashMap::new()),
            stats: Mutex::new(ServerStats::new()),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..shards)
            .map(|i| {
                let worker_shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("clamd-batcher-{i}"))
                    .spawn(move || shard_loop(&worker_shared, i))
                    .expect("spawn batcher shard thread")
            })
            .collect();
        Engine { shared, workers: Arc::new(Mutex::new(workers)) }
    }

    /// Number of batcher shards actually running (the configured count
    /// clamped to the stripe count).
    pub fn num_shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Registers a connection and returns the receiver its writer thread
    /// drains. Responses for requests submitted under `conn` arrive on it
    /// in per-connection request order, whichever shard finishes first.
    pub fn register_conn(&self, conn: u64) -> mpsc::Receiver<Response> {
        let (tx, rx) = mpsc::channel();
        let entry = Arc::new(ConnEntry { tx, seq: Mutex::new(ConnSeq::default()) });
        self.shared.conns.lock().expect("conns lock").insert(conn, entry);
        self.shared.stats.lock().expect("stats lock").connections_opened += 1;
        rx
    }

    /// Unregisters a connection; its pending responses are dropped and its
    /// writer's receiver disconnects.
    pub fn unregister_conn(&self, conn: u64) {
        if self.shared.conns.lock().expect("conns lock").remove(&conn).is_some() {
            self.shared.stats.lock().expect("stats lock").connections_closed += 1;
        }
    }

    /// Unregisters every connection (server teardown): their writers'
    /// receivers disconnect once buffered responses are drained.
    pub fn unregister_all(&self) {
        let mut conns = self.shared.conns.lock().expect("conns lock");
        let dropped = conns.len() as u64;
        conns.clear();
        drop(conns);
        self.shared.stats.lock().expect("stats lock").connections_closed += dropped;
    }

    /// Routes one decoded request to its shard(s) for group commit — or
    /// answers an idle-shard scalar lookup on the bypass immediately.
    pub fn submit(&self, conn: u64, request: Request) {
        self.shared.submit(conn, request);
    }

    /// Sends a response directly to a connection's writer, bypassing the
    /// queues and the sequencer (used for protocol-error frames before
    /// closing).
    pub fn respond(&self, conn: u64, response: Response) {
        let entry = self.shared.conns.lock().expect("conns lock").get(&conn).cloned();
        if let Some(entry) = entry {
            // A disconnected writer just means the connection died first.
            let _ = entry.tx.send(response);
        }
    }

    /// Counts one protocol violation.
    pub fn record_wire_error(&self) {
        self.shared.stats.lock().expect("stats lock").wire_errors += 1;
    }

    /// Snapshot of the server ledger: the process-wide counters with
    /// every shard's gather ledger folded in.
    pub fn stats(&self) -> ServerStats {
        self.shared.merged_stats()
    }

    /// Each shard's own gather ledger, in shard order — the unmerged
    /// view the smoke harness sums and cross-checks.
    pub fn per_shard_stats(&self) -> Vec<ServerStats> {
        self.shared
            .shards
            .iter()
            .map(|s| s.stats.lock().expect("shard stats lock").clone())
            .collect()
    }

    /// Aggregated store statistics across all stripes.
    pub fn clam_stats(&self) -> bufferhash::ClamStats {
        self.shared.store.stats()
    }

    /// Per-stripe recovery reports from boot (empty for a fresh image).
    pub fn recovery_reports(&self) -> &[RecoveryReport] {
        &self.shared.recovery
    }

    /// Stops the batcher: each shard's queue is drained fully (every
    /// submitted request still gets its response) before its thread
    /// exits. The per-shard depth at shutdown entry is captured into the
    /// ledger's `shard_depths` gauge, so a post-shutdown STATS shows how
    /// much work the drain absorbed.
    pub fn shutdown(&self) {
        let mut workers = self.workers.lock().expect("workers lock");
        if workers.is_empty() {
            return;
        }
        self.shared.stats.lock().expect("stats lock").shard_depths =
            self.shared.shards.iter().map(Shard::depth).collect();
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shared.shards {
            shard.arrivals.notify_all();
        }
        for worker in workers.drain(..) {
            worker.join().expect("batcher shard thread panicked");
        }
    }
}

impl<D: Device + 'static> Shared<D> {
    /// The shard a key's operations are pinned to: same key, same
    /// stripe, same shard.
    fn shard_of(&self, key: Key) -> usize {
        self.store.stripe_index(key) % self.shards.len()
    }

    /// Allocates the next per-connection sequence number (0 for
    /// unregistered connections, which have no delivery order to keep).
    fn next_seq(&self, conn: u64) -> u64 {
        let entry = self.conns.lock().expect("conns lock").get(&conn).cloned();
        match entry {
            Some(entry) => {
                let mut seq = entry.seq.lock().expect("conn seq lock");
                let out = seq.next_submit;
                seq.next_submit += 1;
                out
            }
            None => 0,
        }
    }

    /// Delivers `response` as completion `seq` of `conn`: sent
    /// immediately if it is the connection's next expected response,
    /// parked until its turn otherwise. Looks the connection up at
    /// completion time, so responses for unregistered connections are
    /// dropped quietly.
    fn complete(&self, conn: u64, seq: u64, response: Response) {
        let entry = self.conns.lock().expect("conns lock").get(&conn).cloned();
        let Some(entry) = entry else { return };
        let mut state = entry.seq.lock().expect("conn seq lock");
        if seq != state.next_deliver {
            state.parked.insert(seq, response);
            return;
        }
        // A disconnected writer just means the connection died first.
        let _ = entry.tx.send(response);
        state.next_deliver += 1;
        loop {
            let turn = state.next_deliver;
            let Some(next) = state.parked.remove(&turn) else { break };
            let _ = entry.tx.send(next);
            state.next_deliver += 1;
        }
    }

    fn enqueue(&self, shard_idx: usize, submission: Submission) {
        let shard = &self.shards[shard_idx];
        shard.queue.lock().expect("shard queue lock").push_back(submission);
        shard.arrivals.notify_all();
    }

    /// Answers a scalar lookup on the read fast path iff its shard is
    /// completely idle **and** no writer is active on the key's super
    /// table. An idle shard means every earlier write of this key
    /// (necessarily in this shard) has committed, so skipping the queue
    /// cannot reorder same-key operations; cross-connection races remain
    /// as concurrent as they were. The table-writer check closes the
    /// gap the queue depth alone cannot see since per-super-table write
    /// locks landed: a writer outside this shard's queue accounting — a
    /// direct store user embedding the engine, or an exclusive stripe
    /// section — may hold the key's table op lock mid-mutation, and a
    /// bypassed probe must not race that half-applied op. Returns
    /// `None` when the shard is busy, a table writer is active, or the
    /// store needs the locked/flash path.
    fn try_bypass(&self, shard_idx: usize, key: Key) -> Option<RespBody> {
        let shard = &self.shards[shard_idx];
        {
            let queue = shard.queue.lock().expect("shard queue lock");
            if !queue.is_empty() || shard.inflight.load(Ordering::SeqCst) != 0 {
                return None;
            }
        }
        if self.store.table_writer_active(key) {
            return None;
        }
        let outcome = self.store.try_fast_lookup(key)?;
        let found = outcome.value.is_some();
        let mut stats = shard.stats.lock().expect("shard stats lock");
        stats.lookups += 1;
        if found {
            stats.lookup_hits += 1;
        } else {
            stats.lookup_misses += 1;
        }
        stats.bypass_hits += 1;
        Some(RespBody::Value { found, value: outcome.value.unwrap_or(0) })
    }

    fn submit(&self, conn: u64, request: Request) {
        let Request { id, op } = request;
        match op {
            Op::Insert { key, value } => {
                let seq = self.next_seq(conn);
                let shard = self.shard_of(key);
                self.enqueue(
                    shard,
                    Submission { conn, seq, id, part: Part::Insert { key, value } },
                );
            }
            Op::Lookup { key } => {
                let shard = self.shard_of(key);
                if let Some(body) = self.try_bypass(shard, key) {
                    let seq = self.next_seq(conn);
                    self.complete(conn, seq, Response { id, body });
                    return;
                }
                let seq = self.next_seq(conn);
                self.enqueue(shard, Submission { conn, seq, id, part: Part::Lookup { key } });
            }
            Op::Delete { key } => {
                let seq = self.next_seq(conn);
                let shard = self.shard_of(key);
                self.enqueue(shard, Submission { conn, seq, id, part: Part::Delete { key } });
            }
            Op::Flush => {
                let seq = self.next_seq(conn);
                let assembly = Arc::new(Pending {
                    conn,
                    seq,
                    id,
                    state: Mutex::new(AssemblyState {
                        remaining: self.shards.len(),
                        kind: AssemblyKind::Flush,
                        error: None,
                    }),
                });
                for shard in 0..self.shards.len() {
                    let part = Part::Flush { assembly: Arc::clone(&assembly) };
                    self.enqueue(shard, Submission { conn, seq, id, part });
                }
            }
            Op::Stats => {
                let seq = self.next_seq(conn);
                self.enqueue(0, Submission { conn, seq, id, part: Part::Stats });
            }
            Op::InsertBatch(pairs) => {
                let seq = self.next_seq(conn);
                if pairs.is_empty() {
                    self.complete(
                        conn,
                        seq,
                        Response { id, body: RespBody::InsertedBatch { count: 0 } },
                    );
                    return;
                }
                let count = pairs.len() as u32;
                let mut groups: Vec<Vec<(Key, Value)>> = vec![Vec::new(); self.shards.len()];
                for (key, value) in pairs {
                    groups[self.shard_of(key)].push((key, value));
                }
                let touched: Vec<usize> =
                    (0..groups.len()).filter(|&i| !groups[i].is_empty()).collect();
                let assembly = Arc::new(Pending {
                    conn,
                    seq,
                    id,
                    state: Mutex::new(AssemblyState {
                        remaining: touched.len(),
                        kind: AssemblyKind::Insert { count },
                        error: None,
                    }),
                });
                for shard in touched {
                    let part = Part::InsertSlice {
                        assembly: Arc::clone(&assembly),
                        pairs: std::mem::take(&mut groups[shard]),
                    };
                    self.enqueue(shard, Submission { conn, seq, id, part });
                }
            }
            Op::LookupBatch(keys) => {
                let seq = self.next_seq(conn);
                if keys.is_empty() {
                    self.complete(conn, seq, Response { id, body: RespBody::Values(Vec::new()) });
                    return;
                }
                let mut group_keys: Vec<Vec<Key>> = vec![Vec::new(); self.shards.len()];
                let mut group_slots: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
                for (slot, &key) in keys.iter().enumerate() {
                    let shard = self.shard_of(key);
                    group_keys[shard].push(key);
                    group_slots[shard].push(slot);
                }
                let touched: Vec<usize> =
                    (0..group_keys.len()).filter(|&i| !group_keys[i].is_empty()).collect();
                let assembly = Arc::new(Pending {
                    conn,
                    seq,
                    id,
                    state: Mutex::new(AssemblyState {
                        remaining: touched.len(),
                        kind: AssemblyKind::Lookup { slots: vec![None; keys.len()] },
                        error: None,
                    }),
                });
                for shard in touched {
                    let part = Part::LookupSlice {
                        assembly: Arc::clone(&assembly),
                        keys: std::mem::take(&mut group_keys[shard]),
                        slots: std::mem::take(&mut group_slots[shard]),
                    };
                    self.enqueue(shard, Submission { conn, seq, id, part });
                }
            }
        }
    }

    /// Counts one finished part on `assembly`; when it was the last one,
    /// builds the response (first recorded error wins) and hands it to
    /// the sequencer. A completed FLUSH barrier counts on the
    /// process-wide ledger here, so it is counted exactly once however
    /// many shards it crossed.
    fn finish_part(&self, assembly: &Arc<Pending>, error: Option<String>) {
        let body = {
            let mut state = assembly.state.lock().expect("assembly lock");
            if let Some(error) = error {
                state.error.get_or_insert(error);
            }
            state.remaining -= 1;
            if state.remaining > 0 {
                return;
            }
            match state.error.take() {
                Some(message) => internal_error(message),
                None => match &mut state.kind {
                    AssemblyKind::Insert { count } => RespBody::InsertedBatch { count: *count },
                    AssemblyKind::Lookup { slots } => RespBody::Values(
                        slots.iter().map(|slot| slot.unwrap_or((false, 0))).collect(),
                    ),
                    AssemblyKind::Flush => RespBody::Flushed,
                },
            }
        };
        if matches!(body, RespBody::Flushed) {
            self.stats.lock().expect("stats lock").flushes += 1;
        }
        self.complete(assembly.conn, assembly.seq, Response { id: assembly.id, body });
    }

    /// The merged ledger a STATS request reports: process-wide counters
    /// plus every shard's gather ledger, with a live per-shard depth
    /// snapshot unless shutdown already captured one. The store's
    /// table-write-lock ledger is copied in at snapshot time (shard
    /// ledgers never carry it — the store counts those itself).
    fn merged_stats(&self) -> ServerStats {
        let mut merged = self.stats.lock().expect("stats lock").clone();
        for shard in &self.shards {
            merged.absorb(&shard.stats.lock().expect("shard stats lock"));
        }
        if merged.shard_depths.is_empty() {
            merged.shard_depths = self.shards.iter().map(Shard::depth).collect();
        }
        let store = self.store.stats();
        merged.table_write_acquisitions = store.table_write_acquisitions;
        merged.table_write_contended = store.table_write_contended;
        merged.table_lock_high_water = store.table_lock_high_water;
        merged
    }
}

/// The request kinds a shard coalesces runs over.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RunKind {
    Insert,
    Lookup,
    Delete,
    Flush,
    Stats,
}

fn kind_of(part: &Part) -> RunKind {
    match part {
        Part::Insert { .. } | Part::InsertSlice { .. } => RunKind::Insert,
        Part::Lookup { .. } | Part::LookupSlice { .. } => RunKind::Lookup,
        Part::Delete { .. } => RunKind::Delete,
        Part::Flush { .. } => RunKind::Flush,
        Part::Stats => RunKind::Stats,
    }
}

fn shard_loop<D: Device + 'static>(shared: &Shared<D>, idx: usize) {
    loop {
        let Some((gathered, waited)) = gather(shared, idx) else { return };
        shared.shards[idx]
            .stats
            .lock()
            .expect("shard stats lock")
            .record_batch(gathered.len(), waited);
        let mut i = 0;
        while i < gathered.len() {
            let kind = kind_of(&gathered[i].part);
            let mut j = i + 1;
            while j < gathered.len() && kind_of(&gathered[j].part) == kind {
                j += 1;
            }
            execute_run(shared, idx, &gathered[i..j], kind);
            i = j;
        }
    }
}

/// Blocks until the shard's queue is non-empty, lingers for concurrent
/// arrivals, and drains up to `max_batch` submissions. The drained count
/// moves onto the shard's in-flight gauge *under the queue lock*, so the
/// bypass can never observe the gap between "left the queue" and
/// "started executing". Returns `None` when the engine is shut down
/// *and* the queue is fully drained.
fn gather<D: Device + 'static>(shared: &Shared<D>, idx: usize) -> Option<(Vec<Submission>, bool)> {
    let shard = &shared.shards[idx];
    let mut queue = shard.queue.lock().expect("shard queue lock");
    while queue.is_empty() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        queue = shard.arrivals.wait(queue).expect("shard queue lock");
    }
    let mut waited = false;
    if !shared.shutdown.load(Ordering::SeqCst) {
        let deadline = Instant::now() + shared.config.linger;
        while queue.len() < shared.config.max_batch && !shared.shutdown.load(Ordering::SeqCst) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            waited = true;
            let (guard, _) =
                shard.arrivals.wait_timeout(queue, deadline - now).expect("shard queue lock");
            queue = guard;
        }
    }
    let take = queue.len().min(shared.config.max_batch);
    shard.inflight.fetch_add(take as u64, Ordering::SeqCst);
    Some((queue.drain(..take).collect(), waited))
}

fn internal_error(message: String) -> RespBody {
    RespBody::Error { code: ErrorCode::Internal, message }
}

/// Retires `n` submissions from the shard's in-flight gauge. Called
/// after the store call returns (effects visible) and before responses
/// go out, so a client that has its ack can immediately take the bypass.
fn retire<D: Device + 'static>(shared: &Shared<D>, shard_idx: usize, n: usize) {
    shared.shards[shard_idx].inflight.fetch_sub(n as u64, Ordering::SeqCst);
}

fn execute_run<D: Device + 'static>(
    shared: &Shared<D>,
    shard_idx: usize,
    run: &[Submission],
    kind: RunKind,
) {
    match kind {
        RunKind::Insert => execute_insert_run(shared, shard_idx, run),
        RunKind::Lookup => execute_lookup_run(shared, shard_idx, run),
        RunKind::Delete => {
            for sub in run {
                let Part::Delete { key } = &sub.part else { unreachable!("delete run") };
                let result = shared.store.delete(*key);
                retire(shared, shard_idx, 1);
                let body = match result {
                    Ok(()) => {
                        let mut stats =
                            shared.shards[shard_idx].stats.lock().expect("shard stats lock");
                        stats.deletes += 1;
                        stats.delete_admissions += 1;
                        RespBody::Deleted
                    }
                    Err(e) => internal_error(format!("delete failed: {e}")),
                };
                shared.complete(sub.conn, sub.seq, Response { id: sub.id, body });
            }
        }
        RunKind::Flush => {
            for sub in run {
                let Part::Flush { assembly } = &sub.part else { unreachable!("flush run") };
                // Flush the stripes this shard owns; the other shards'
                // parts cover the rest of the store.
                let mut error = None;
                let step = shared.shards.len();
                for stripe in (shard_idx..shared.store.num_stripes()).step_by(step) {
                    let stripe = shared.store.stripe(stripe).expect("stripe index in range");
                    if let Err(e) = stripe.flush_all() {
                        error = Some(format!("flush failed: {e}"));
                        break;
                    }
                }
                retire(shared, shard_idx, 1);
                shared.finish_part(assembly, error);
            }
        }
        RunKind::Stats => {
            for sub in run {
                retire(shared, shard_idx, 1);
                shared.stats.lock().expect("stats lock").stats_calls += 1;
                let merged = shared.merged_stats();
                let fields = merged.to_fields();
                let mut text = format!("{merged}\nstore: {}", shared.store.stats());
                for (i, report) in shared.recovery.iter().enumerate() {
                    text.push_str(&format!("\nstripe {i} recovery: {report}"));
                }
                shared.complete(
                    sub.conn,
                    sub.seq,
                    Response { id: sub.id, body: RespBody::Stats { fields, text } },
                );
            }
        }
    }
}

/// Flattens a run of insert submissions into one `insert_batch`
/// admission and acknowledges each after the call returns (write ring
/// reaped). The batch only touches this shard's stripes, so concurrent
/// shards' admissions proceed without contending.
fn execute_insert_run<D: Device + 'static>(
    shared: &Shared<D>,
    shard_idx: usize,
    run: &[Submission],
) {
    let mut pairs: Vec<(Key, Value)> = Vec::new();
    for sub in run {
        match &sub.part {
            Part::Insert { key, value } => pairs.push((*key, *value)),
            Part::InsertSlice { pairs: shard_pairs, .. } => pairs.extend_from_slice(shard_pairs),
            _ => unreachable!("insert run"),
        }
    }
    let result = shared.store.insert_batch(&pairs);
    retire(shared, shard_idx, run.len());
    match result {
        Ok(_) => {
            {
                let mut stats = shared.shards[shard_idx].stats.lock().expect("shard stats lock");
                stats.inserts += pairs.len() as u64;
                stats.insert_admissions += 1;
            }
            for sub in run {
                match &sub.part {
                    Part::Insert { .. } => shared.complete(
                        sub.conn,
                        sub.seq,
                        Response { id: sub.id, body: RespBody::Inserted },
                    ),
                    Part::InsertSlice { assembly, .. } => shared.finish_part(assembly, None),
                    _ => unreachable!("insert run"),
                }
            }
        }
        Err(e) => {
            let message = format!("insert batch failed: {e}");
            for sub in run {
                match &sub.part {
                    Part::Insert { .. } => shared.complete(
                        sub.conn,
                        sub.seq,
                        Response { id: sub.id, body: internal_error(message.clone()) },
                    ),
                    Part::InsertSlice { assembly, .. } => {
                        shared.finish_part(assembly, Some(message.clone()));
                    }
                    _ => unreachable!("insert run"),
                }
            }
        }
    }
}

/// Flattens a run of lookup submissions into one `lookup_batch`
/// admission and splits the in-order outcomes back out — scalar lookups
/// answer directly, batch parts fill their assembly's slots.
fn execute_lookup_run<D: Device + 'static>(
    shared: &Shared<D>,
    shard_idx: usize,
    run: &[Submission],
) {
    let mut keys: Vec<Key> = Vec::new();
    for sub in run {
        match &sub.part {
            Part::Lookup { key } => keys.push(*key),
            Part::LookupSlice { keys: shard_keys, .. } => keys.extend_from_slice(shard_keys),
            _ => unreachable!("lookup run"),
        }
    }
    let result = shared.store.lookup_batch(&keys);
    retire(shared, shard_idx, run.len());
    match result {
        Ok(batch) => {
            let hits = batch.outcomes.iter().filter(|o| o.value.is_some()).count() as u64;
            {
                let mut stats = shared.shards[shard_idx].stats.lock().expect("shard stats lock");
                stats.lookups += keys.len() as u64;
                stats.lookup_hits += hits;
                stats.lookup_misses += keys.len() as u64 - hits;
                stats.lookup_admissions += 1;
            }
            let mut outcomes = batch.outcomes.into_iter();
            for sub in run {
                match &sub.part {
                    Part::Lookup { .. } => {
                        let outcome = outcomes.next().expect("one outcome per key");
                        let body = RespBody::Value {
                            found: outcome.value.is_some(),
                            value: outcome.value.unwrap_or(0),
                        };
                        shared.complete(sub.conn, sub.seq, Response { id: sub.id, body });
                    }
                    Part::LookupSlice { assembly, keys: shard_keys, slots } => {
                        {
                            let mut state = assembly.state.lock().expect("assembly lock");
                            let AssemblyKind::Lookup { slots: out } = &mut state.kind else {
                                unreachable!("lookup assembly")
                            };
                            for (&slot, outcome) in
                                slots.iter().zip(outcomes.by_ref().take(shard_keys.len()))
                            {
                                out[slot] =
                                    Some((outcome.value.is_some(), outcome.value.unwrap_or(0)));
                            }
                        }
                        shared.finish_part(assembly, None);
                    }
                    _ => unreachable!("lookup run"),
                }
            }
        }
        Err(e) => {
            let message = format!("lookup batch failed: {e}");
            for sub in run {
                match &sub.part {
                    Part::Lookup { .. } => shared.complete(
                        sub.conn,
                        sub.seq,
                        Response { id: sub.id, body: internal_error(message.clone()) },
                    ),
                    Part::LookupSlice { assembly, .. } => {
                        shared.finish_part(assembly, Some(message.clone()));
                    }
                    _ => unreachable!("lookup run"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferhash::{Clam, ClamConfig};
    use flashsim::Ssd;

    fn engine_with(stripes: usize, shards: usize, linger: Duration) -> Engine<Ssd> {
        let clam = |_| {
            let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
            Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap()
        };
        let store = StripedClam::new((0..stripes).map(clam).collect());
        Engine::start(store, Vec::new(), BatcherConfig { max_batch: 512, linger, shards })
    }

    fn engine(linger: Duration) -> Engine<Ssd> {
        engine_with(2, 1, linger)
    }

    #[test]
    fn responses_preserve_per_connection_order() {
        let engine = engine(Duration::from_micros(200));
        let rx = engine.register_conn(1);
        for i in 0..100u64 {
            engine.submit(1, Request { id: i, op: Op::Insert { key: i + 1, value: i * 2 } });
        }
        for i in 0..100u64 {
            engine.submit(1, Request { id: 100 + i, op: Op::Lookup { key: i + 1 } });
        }
        for i in 0..100u64 {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.id, i, "in-order acks");
            assert_eq!(resp.body, RespBody::Inserted);
        }
        for i in 0..100u64 {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.id, 100 + i);
            assert_eq!(resp.body, RespBody::Value { found: true, value: i * 2 });
        }
        let stats = engine.stats();
        assert_eq!(stats.inserts, 100);
        assert_eq!(stats.lookups, 100);
        assert_eq!(stats.lookup_hits, 100);
        assert!(stats.batches >= 1);
        // The whole insert burst coalesced into far fewer admissions than
        // requests — that is the group commit working.
        assert!(
            stats.insert_admissions < 100,
            "100 inserts should not need 100 admissions: {stats}"
        );
        engine.shutdown();
    }

    #[test]
    fn batch_frames_flatten_and_split_back() {
        let engine = engine(Duration::from_micros(100));
        let rx = engine.register_conn(7);
        engine.submit(7, Request { id: 1, op: Op::InsertBatch(vec![(1, 10), (2, 20), (3, 30)]) });
        engine.submit(7, Request { id: 2, op: Op::Insert { key: 4, value: 40 } });
        engine.submit(7, Request { id: 3, op: Op::LookupBatch(vec![1, 2, 99]) });
        engine.submit(7, Request { id: 4, op: Op::Lookup { key: 4 } });
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            RespBody::InsertedBatch { count: 3 }
        );
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().body, RespBody::Inserted);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            RespBody::Values(vec![(true, 10), (true, 20), (false, 0)])
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            RespBody::Value { found: true, value: 40 }
        );
        let stats = engine.stats();
        assert_eq!(stats.inserts, 4);
        assert_eq!(stats.lookups, 4);
        assert_eq!(stats.lookup_hits, 3);
        assert_eq!(stats.lookup_misses, 1);
        engine.shutdown();
    }

    #[test]
    fn flush_stats_and_delete_execute_in_order() {
        let engine = engine(Duration::from_micros(100));
        let rx = engine.register_conn(1);
        engine.submit(1, Request { id: 1, op: Op::Insert { key: 5, value: 50 } });
        engine.submit(1, Request { id: 2, op: Op::Flush });
        engine.submit(1, Request { id: 3, op: Op::Delete { key: 5 } });
        engine.submit(1, Request { id: 4, op: Op::Lookup { key: 5 } });
        engine.submit(1, Request { id: 5, op: Op::Stats });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().body, RespBody::Inserted);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().body, RespBody::Flushed);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().body, RespBody::Deleted);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            RespBody::Value { found: false, value: 0 }
        );
        let stats_resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let RespBody::Stats { fields, text } = stats_resp.body else {
            panic!("expected stats body")
        };
        assert_eq!(fields.flushes, 1);
        assert_eq!(fields.deletes, 1);
        assert!(text.contains("served:") && text.contains("store:"), "{text}");
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let engine = engine(Duration::from_millis(10));
        let rx = engine.register_conn(1);
        for i in 0..64u64 {
            engine.submit(1, Request { id: i, op: Op::Insert { key: i + 1, value: i } });
        }
        engine.shutdown();
        for i in 0..64u64 {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.id, i);
            assert_eq!(resp.body, RespBody::Inserted);
        }
    }

    #[test]
    fn unregistered_connections_drop_responses_quietly() {
        let engine = engine(Duration::from_micros(100));
        let rx = engine.register_conn(1);
        engine.unregister_conn(1);
        engine.submit(1, Request { id: 1, op: Op::Flush });
        // The batcher must not wedge on the missing connection.
        engine.submit(1, Request { id: 2, op: Op::Flush });
        assert!(rx.recv_timeout(Duration::from_millis(200)).is_err());
        engine.shutdown();
        let stats = engine.stats();
        assert_eq!(stats.connections_opened, 1);
        assert_eq!(stats.connections_closed, 1);
        assert_eq!(stats.flushes, 2, "requests for dead conns still execute");
    }

    #[test]
    fn sharded_responses_stay_in_per_connection_order() {
        let engine = engine_with(4, 4, Duration::from_micros(200));
        assert_eq!(engine.num_shards(), 4);
        let rx = engine.register_conn(1);
        // Interleave writes and reads across every stripe; four shards
        // complete them out of order, the sequencer restores order.
        for i in 0..200u64 {
            engine.submit(1, Request { id: i, op: Op::Insert { key: i + 1, value: i * 3 } });
        }
        for i in 0..200u64 {
            engine.submit(1, Request { id: 200 + i, op: Op::Lookup { key: i + 1 } });
        }
        for i in 0..200u64 {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.id, i, "in-order acks across shards");
            assert_eq!(resp.body, RespBody::Inserted);
        }
        for i in 0..200u64 {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.id, 200 + i);
            assert_eq!(resp.body, RespBody::Value { found: true, value: i * 3 });
        }
        let stats = engine.stats();
        assert_eq!(stats.inserts, 200);
        assert_eq!(stats.lookups, 200);
        assert_eq!(stats.lookup_hits, 200);
        // Per-shard ledgers sum to the merged totals.
        let per_shard = engine.per_shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard.iter().map(|s| s.inserts).sum::<u64>(), 200);
        assert_eq!(per_shard.iter().map(|s| s.lookups).sum::<u64>(), 200);
        assert!(
            per_shard.iter().filter(|s| s.inserts > 0).count() > 1,
            "keys should spread across shards"
        );
        engine.shutdown();
    }

    #[test]
    fn batch_frames_split_across_shards_and_reassemble() {
        let engine = engine_with(4, 4, Duration::from_micros(100));
        let rx = engine.register_conn(3);
        let pairs: Vec<(Key, Value)> = (0..64u64).map(|i| (i * 7 + 1, i + 100)).collect();
        let keys: Vec<Key> = pairs.iter().map(|(k, _)| *k).chain([999_999_999]).collect();
        engine.submit(3, Request { id: 1, op: Op::InsertBatch(pairs.clone()) });
        engine.submit(3, Request { id: 2, op: Op::LookupBatch(keys) });
        engine.submit(3, Request { id: 3, op: Op::Flush });
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            RespBody::InsertedBatch { count: 64 }
        );
        let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let RespBody::Values(values) = resp.body else { panic!("expected VALUES") };
        assert_eq!(values.len(), 65);
        for (i, (_, value)) in pairs.iter().enumerate() {
            assert_eq!(values[i], (true, *value), "slot {i} out of place");
        }
        assert_eq!(*values.last().unwrap(), (false, 0));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().body, RespBody::Flushed);
        let stats = engine.stats();
        assert_eq!(stats.inserts, 64);
        assert_eq!(stats.lookups, 65);
        assert_eq!(stats.flushes, 1, "a FLUSH barrier counts once across its shard parts");
        engine.shutdown();
    }

    #[test]
    fn idle_shard_lookups_take_the_bypass() {
        let engine = engine_with(2, 2, Duration::from_micros(50));
        let rx = engine.register_conn(1);
        engine.submit(1, Request { id: 0, op: Op::Insert { key: 42, value: 4242 } });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().body, RespBody::Inserted);
        // The ack precedes the in-flight gauge only on the store call's
        // return path, so poll a few lookups until one finds the shard
        // fully idle.
        let mut bypassed = false;
        for attempt in 0..200u64 {
            engine.submit(1, Request { id: attempt + 1, op: Op::Lookup { key: 42 } });
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.body, RespBody::Value { found: true, value: 4242 });
            if engine.stats().bypass_hits > 0 {
                bypassed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(bypassed, "an idle shard should serve scalar lookups on the bypass");
        engine.shutdown();
    }

    #[test]
    fn shutdown_snapshot_reports_per_shard_depth() {
        // A long linger keeps the submissions queued (or in flight) when
        // shutdown entry takes its snapshot; the drain still answers all.
        let engine = engine_with(4, 4, Duration::from_millis(500));
        let rx = engine.register_conn(1);
        for i in 0..64u64 {
            engine.submit(1, Request { id: i, op: Op::Insert { key: i + 1, value: i } });
        }
        engine.shutdown();
        for i in 0..64u64 {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.id, i);
            assert_eq!(resp.body, RespBody::Inserted);
        }
        let stats = engine.stats();
        assert_eq!(stats.shard_depths.len(), 4);
        assert_eq!(
            stats.shard_depths.iter().sum::<u64>(),
            64,
            "shutdown snapshot counts queued + in-flight work: {stats}"
        );
        assert_eq!(stats.inserts, 64, "the drain still executed everything");
    }

    #[test]
    fn flush_barrier_is_per_connection() {
        // conn 1 relies on FLUSH ordering; conn 2 hammers concurrently.
        // The barrier is only promised per connection — conn 1's own
        // writes are flushed and its responses stay in order regardless
        // of where conn 2's traffic lands.
        let engine = engine_with(4, 4, Duration::from_micros(100));
        let rx1 = engine.register_conn(1);
        let rx2 = engine.register_conn(2);
        for i in 0..32u64 {
            engine.submit(2, Request { id: i, op: Op::Insert { key: 1000 + i, value: i } });
        }
        engine.submit(1, Request { id: 100, op: Op::Insert { key: 7, value: 77 } });
        engine.submit(1, Request { id: 101, op: Op::Flush });
        engine.submit(1, Request { id: 102, op: Op::Lookup { key: 7 } });
        assert_eq!(rx1.recv_timeout(Duration::from_secs(5)).unwrap().body, RespBody::Inserted);
        assert_eq!(rx1.recv_timeout(Duration::from_secs(5)).unwrap().body, RespBody::Flushed);
        assert_eq!(
            rx1.recv_timeout(Duration::from_secs(5)).unwrap().body,
            RespBody::Value { found: true, value: 77 }
        );
        for _ in 0..32 {
            assert_eq!(rx2.recv_timeout(Duration::from_secs(5)).unwrap().body, RespBody::Inserted);
        }
        engine.shutdown();
    }
}
