//! The group-commit batcher: one thread that turns concurrent request
//! arrivals into coalesced ring admissions.
//!
//! Every connection's reader thread pushes decoded requests into one
//! FIFO queue. The batcher thread gathers the queue — lingering up to
//! [`BatcherConfig::linger`] for concurrent arrivals when the queue is
//! shallower than [`BatcherConfig::max_batch`] — then partitions the
//! gather into **maximal same-kind runs in arrival order** and executes
//! each run as one store call:
//!
//! * a run of inserts (scalar frames and `INSERT_BATCH` frames alike)
//!   flattens into a single [`StripedClam::insert_batch`] — one
//!   group-commit flush admission for the whole run;
//! * a run of lookups flattens into a single
//!   [`StripedClam::lookup_batch`], whose streaming ring pipeline
//!   overlaps every key's flash probes;
//! * deletes, flushes and stats execute per request.
//!
//! Run boundaries follow arrival order, so per-connection semantics are
//! those of a serial server: a lookup that arrives after an insert of the
//! same key observes it.
//!
//! **Acknowledgment invariant:** a response is sent only after its run's
//! store call has *returned*. [`Clam::insert_batch`] returns only once
//! the write ring has been fully reaped (flush writes durable in the
//! simulated-device sense), so an acknowledged insert is never lost to a
//! ring still in flight — "ack only after the group-commit flush reaps".
//!
//! [`StripedClam::insert_batch`]: bufferhash::StripedClam::insert_batch
//! [`StripedClam::lookup_batch`]: bufferhash::StripedClam::lookup_batch
//! [`Clam::insert_batch`]: bufferhash::Clam::insert_batch

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bufferhash::{Key, RecoveryReport, StripedClam, Value};
use flashsim::Device;

use crate::proto::{ErrorCode, Op, Request, RespBody, Response};
use crate::stats::ServerStats;

/// Tuning knobs for the group-commit batcher.
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Largest gather, in requests; a full queue fires immediately.
    pub max_batch: usize,
    /// How long a non-full gather lingers for concurrent arrivals.
    pub linger: Duration,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig { max_batch: 512, linger: Duration::from_micros(100) }
    }
}

/// One queued request: which connection it came from plus the frame.
struct Submission {
    conn: u64,
    request: Request,
}

/// State shared between connection threads and the batcher thread.
struct Shared<D: Device + 'static> {
    store: StripedClam<D>,
    recovery: Vec<RecoveryReport>,
    config: BatcherConfig,
    queue: Mutex<VecDeque<Submission>>,
    arrivals: Condvar,
    conns: Mutex<HashMap<u64, mpsc::Sender<Response>>>,
    stats: Mutex<ServerStats>,
    shutdown: AtomicBool,
}

/// A cloneable handle to the batcher engine.
pub struct Engine<D: Device + 'static> {
    shared: Arc<Shared<D>>,
    worker: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl<D: Device + 'static> Clone for Engine<D> {
    fn clone(&self) -> Self {
        Engine { shared: Arc::clone(&self.shared), worker: Arc::clone(&self.worker) }
    }
}

impl<D: Device + 'static> Engine<D> {
    /// Starts the batcher thread over `store`. `recovery` carries the
    /// per-stripe reports when the store was recovered from an existing
    /// flash image (empty for a fresh boot); STATS responses include them.
    pub fn start(
        store: StripedClam<D>,
        recovery: Vec<RecoveryReport>,
        config: BatcherConfig,
    ) -> Self {
        let shared = Arc::new(Shared {
            store,
            recovery,
            config,
            queue: Mutex::new(VecDeque::new()),
            arrivals: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
            stats: Mutex::new(ServerStats::new()),
            shutdown: AtomicBool::new(false),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("clamd-batcher".to_string())
            .spawn(move || batcher_loop(&worker_shared))
            .expect("spawn batcher thread");
        Engine { shared, worker: Arc::new(Mutex::new(Some(worker))) }
    }

    /// Registers a connection and returns the receiver its writer thread
    /// drains. Responses for requests submitted under `conn` arrive on it
    /// in per-connection request order.
    pub fn register_conn(&self, conn: u64) -> mpsc::Receiver<Response> {
        let (tx, rx) = mpsc::channel();
        self.shared.conns.lock().expect("conns lock").insert(conn, tx);
        self.shared.stats.lock().expect("stats lock").connections_opened += 1;
        rx
    }

    /// Unregisters a connection; its pending responses are dropped and its
    /// writer's receiver disconnects.
    pub fn unregister_conn(&self, conn: u64) {
        if self.shared.conns.lock().expect("conns lock").remove(&conn).is_some() {
            self.shared.stats.lock().expect("stats lock").connections_closed += 1;
        }
    }

    /// Unregisters every connection (server teardown): their writers'
    /// receivers disconnect once buffered responses are drained.
    pub fn unregister_all(&self) {
        let mut conns = self.shared.conns.lock().expect("conns lock");
        let dropped = conns.len() as u64;
        conns.clear();
        drop(conns);
        self.shared.stats.lock().expect("stats lock").connections_closed += dropped;
    }

    /// Enqueues one decoded request for group commit.
    pub fn submit(&self, conn: u64, request: Request) {
        let mut queue = self.shared.queue.lock().expect("queue lock");
        queue.push_back(Submission { conn, request });
        drop(queue);
        self.shared.arrivals.notify_all();
    }

    /// Sends a response directly to a connection's writer, bypassing the
    /// queue (used for protocol-error frames before closing).
    pub fn respond(&self, conn: u64, response: Response) {
        self.shared.send(conn, response);
    }

    /// Counts one protocol violation.
    pub fn record_wire_error(&self) {
        self.shared.stats.lock().expect("stats lock").wire_errors += 1;
    }

    /// Snapshot of the server ledger.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.lock().expect("stats lock").clone()
    }

    /// Aggregated store statistics across all stripes.
    pub fn clam_stats(&self) -> bufferhash::ClamStats {
        self.shared.store.stats()
    }

    /// Per-stripe recovery reports from boot (empty for a fresh image).
    pub fn recovery_reports(&self) -> &[RecoveryReport] {
        &self.shared.recovery
    }

    /// Stops the batcher: the queue is drained fully (every submitted
    /// request still gets its response) before the thread exits.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.arrivals.notify_all();
        if let Some(worker) = self.worker.lock().expect("worker lock").take() {
            worker.join().expect("batcher thread panicked");
        }
    }
}

impl<D: Device + 'static> Shared<D> {
    fn send(&self, conn: u64, response: Response) {
        let sender = self.conns.lock().expect("conns lock").get(&conn).cloned();
        if let Some(sender) = sender {
            // A disconnected writer just means the connection died first.
            let _ = sender.send(response);
        }
    }
}

/// The request kinds the batcher coalesces runs over.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RunKind {
    Insert,
    Lookup,
    Delete,
    Flush,
    Stats,
}

fn kind_of(op: &Op) -> RunKind {
    match op {
        Op::Insert { .. } | Op::InsertBatch(_) => RunKind::Insert,
        Op::Lookup { .. } | Op::LookupBatch(_) => RunKind::Lookup,
        Op::Delete { .. } => RunKind::Delete,
        Op::Flush => RunKind::Flush,
        Op::Stats => RunKind::Stats,
    }
}

fn batcher_loop<D: Device + 'static>(shared: &Shared<D>) {
    loop {
        let Some((gather, waited)) = gather(shared) else { return };
        shared.stats.lock().expect("stats lock").record_batch(gather.len(), waited);
        let mut i = 0;
        while i < gather.len() {
            let kind = kind_of(&gather[i].request.op);
            let mut j = i + 1;
            while j < gather.len() && kind_of(&gather[j].request.op) == kind {
                j += 1;
            }
            execute_run(shared, &gather[i..j], kind);
            i = j;
        }
    }
}

/// Blocks until the queue is non-empty, lingers for concurrent arrivals,
/// and drains up to `max_batch` requests. Returns `None` when the engine
/// is shut down *and* the queue is fully drained.
fn gather<D: Device + 'static>(shared: &Shared<D>) -> Option<(Vec<Submission>, bool)> {
    let mut queue = shared.queue.lock().expect("queue lock");
    while queue.is_empty() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        queue = shared.arrivals.wait(queue).expect("queue lock");
    }
    let mut waited = false;
    if !shared.shutdown.load(Ordering::SeqCst) {
        let deadline = Instant::now() + shared.config.linger;
        while queue.len() < shared.config.max_batch && !shared.shutdown.load(Ordering::SeqCst) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            waited = true;
            let (guard, _) =
                shared.arrivals.wait_timeout(queue, deadline - now).expect("queue lock");
            queue = guard;
        }
    }
    let take = queue.len().min(shared.config.max_batch);
    Some((queue.drain(..take).collect(), waited))
}

fn internal_error(message: String) -> RespBody {
    RespBody::Error { code: ErrorCode::Internal, message }
}

fn execute_run<D: Device + 'static>(shared: &Shared<D>, run: &[Submission], kind: RunKind) {
    match kind {
        RunKind::Insert => execute_insert_run(shared, run),
        RunKind::Lookup => execute_lookup_run(shared, run),
        RunKind::Delete => {
            for sub in run {
                let Op::Delete { key } = sub.request.op else { unreachable!("delete run") };
                let body = match shared.store.delete(key) {
                    Ok(()) => {
                        let mut stats = shared.stats.lock().expect("stats lock");
                        stats.deletes += 1;
                        stats.delete_admissions += 1;
                        RespBody::Deleted
                    }
                    Err(e) => internal_error(format!("delete failed: {e}")),
                };
                shared.send(sub.conn, Response { id: sub.request.id, body });
            }
        }
        RunKind::Flush => {
            for sub in run {
                let body = match shared.store.flush_all() {
                    Ok(_) => {
                        shared.stats.lock().expect("stats lock").flushes += 1;
                        RespBody::Flushed
                    }
                    Err(e) => internal_error(format!("flush failed: {e}")),
                };
                shared.send(sub.conn, Response { id: sub.request.id, body });
            }
        }
        RunKind::Stats => {
            for sub in run {
                let fields = {
                    let mut stats = shared.stats.lock().expect("stats lock");
                    stats.stats_calls += 1;
                    stats.to_fields()
                };
                let server_text = shared.stats.lock().expect("stats lock").to_string();
                let mut text = format!("{server_text}\nstore: {}", shared.store.stats());
                for (i, report) in shared.recovery.iter().enumerate() {
                    text.push_str(&format!("\nstripe {i} recovery: {report}"));
                }
                shared.send(
                    sub.conn,
                    Response { id: sub.request.id, body: RespBody::Stats { fields, text } },
                );
            }
        }
    }
}

/// Flattens a run of insert requests into one `insert_batch` admission and
/// acknowledges each request after the call returns (write ring reaped).
fn execute_insert_run<D: Device + 'static>(shared: &Shared<D>, run: &[Submission]) {
    let mut pairs: Vec<(Key, Value)> = Vec::new();
    for sub in run {
        match &sub.request.op {
            Op::Insert { key, value } => pairs.push((*key, *value)),
            Op::InsertBatch(ops) => pairs.extend_from_slice(ops),
            _ => unreachable!("insert run"),
        }
    }
    match shared.store.insert_batch(&pairs) {
        Ok(_) => {
            {
                let mut stats = shared.stats.lock().expect("stats lock");
                stats.inserts += pairs.len() as u64;
                stats.insert_admissions += 1;
            }
            for sub in run {
                let body = match &sub.request.op {
                    Op::Insert { .. } => RespBody::Inserted,
                    Op::InsertBatch(ops) => RespBody::InsertedBatch { count: ops.len() as u32 },
                    _ => unreachable!("insert run"),
                };
                shared.send(sub.conn, Response { id: sub.request.id, body });
            }
        }
        Err(e) => {
            let message = format!("insert batch failed: {e}");
            for sub in run {
                shared.send(
                    sub.conn,
                    Response { id: sub.request.id, body: internal_error(message.clone()) },
                );
            }
        }
    }
}

/// Flattens a run of lookup requests into one `lookup_batch` admission and
/// splits the in-order outcomes back out per request.
fn execute_lookup_run<D: Device + 'static>(shared: &Shared<D>, run: &[Submission]) {
    let mut keys: Vec<Key> = Vec::new();
    for sub in run {
        match &sub.request.op {
            Op::Lookup { key } => keys.push(*key),
            Op::LookupBatch(batch) => keys.extend_from_slice(batch),
            _ => unreachable!("lookup run"),
        }
    }
    match shared.store.lookup_batch(&keys) {
        Ok(batch) => {
            let hits = batch.outcomes.iter().filter(|o| o.value.is_some()).count() as u64;
            {
                let mut stats = shared.stats.lock().expect("stats lock");
                stats.lookups += keys.len() as u64;
                stats.lookup_hits += hits;
                stats.lookup_misses += keys.len() as u64 - hits;
                stats.lookup_admissions += 1;
            }
            let mut outcomes = batch.outcomes.into_iter();
            for sub in run {
                let body = match &sub.request.op {
                    Op::Lookup { .. } => {
                        let outcome = outcomes.next().expect("one outcome per key");
                        RespBody::Value {
                            found: outcome.value.is_some(),
                            value: outcome.value.unwrap_or(0),
                        }
                    }
                    Op::LookupBatch(batch_keys) => RespBody::Values(
                        outcomes
                            .by_ref()
                            .take(batch_keys.len())
                            .map(|o| (o.value.is_some(), o.value.unwrap_or(0)))
                            .collect(),
                    ),
                    _ => unreachable!("lookup run"),
                };
                shared.send(sub.conn, Response { id: sub.request.id, body });
            }
        }
        Err(e) => {
            let message = format!("lookup batch failed: {e}");
            for sub in run {
                shared.send(
                    sub.conn,
                    Response { id: sub.request.id, body: internal_error(message.clone()) },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufferhash::{Clam, ClamConfig};
    use flashsim::Ssd;

    fn engine(linger: Duration) -> Engine<Ssd> {
        let clam = |_| {
            let cfg = ClamConfig::small_test(4 << 20, 1 << 20).unwrap();
            Clam::new(Ssd::intel(4 << 20).unwrap(), cfg).unwrap()
        };
        let store = StripedClam::new((0..2).map(clam).collect());
        Engine::start(store, Vec::new(), BatcherConfig { max_batch: 512, linger })
    }

    #[test]
    fn responses_preserve_per_connection_order() {
        let engine = engine(Duration::from_micros(200));
        let rx = engine.register_conn(1);
        for i in 0..100u64 {
            engine.submit(1, Request { id: i, op: Op::Insert { key: i + 1, value: i * 2 } });
        }
        for i in 0..100u64 {
            engine.submit(1, Request { id: 100 + i, op: Op::Lookup { key: i + 1 } });
        }
        for i in 0..100u64 {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.id, i, "in-order acks");
            assert_eq!(resp.body, RespBody::Inserted);
        }
        for i in 0..100u64 {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.id, 100 + i);
            assert_eq!(resp.body, RespBody::Value { found: true, value: i * 2 });
        }
        let stats = engine.stats();
        assert_eq!(stats.inserts, 100);
        assert_eq!(stats.lookups, 100);
        assert_eq!(stats.lookup_hits, 100);
        assert!(stats.batches >= 1);
        // The whole insert burst coalesced into far fewer admissions than
        // requests — that is the group commit working.
        assert!(
            stats.insert_admissions < 100,
            "100 inserts should not need 100 admissions: {stats}"
        );
        engine.shutdown();
    }

    #[test]
    fn batch_frames_flatten_and_split_back() {
        let engine = engine(Duration::from_micros(100));
        let rx = engine.register_conn(7);
        engine.submit(7, Request { id: 1, op: Op::InsertBatch(vec![(1, 10), (2, 20), (3, 30)]) });
        engine.submit(7, Request { id: 2, op: Op::Insert { key: 4, value: 40 } });
        engine.submit(7, Request { id: 3, op: Op::LookupBatch(vec![1, 2, 99]) });
        engine.submit(7, Request { id: 4, op: Op::Lookup { key: 4 } });
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            RespBody::InsertedBatch { count: 3 }
        );
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().body, RespBody::Inserted);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            RespBody::Values(vec![(true, 10), (true, 20), (false, 0)])
        );
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            RespBody::Value { found: true, value: 40 }
        );
        let stats = engine.stats();
        assert_eq!(stats.inserts, 4);
        assert_eq!(stats.lookups, 4);
        assert_eq!(stats.lookup_hits, 3);
        assert_eq!(stats.lookup_misses, 1);
        engine.shutdown();
    }

    #[test]
    fn flush_stats_and_delete_execute_in_order() {
        let engine = engine(Duration::from_micros(100));
        let rx = engine.register_conn(1);
        engine.submit(1, Request { id: 1, op: Op::Insert { key: 5, value: 50 } });
        engine.submit(1, Request { id: 2, op: Op::Flush });
        engine.submit(1, Request { id: 3, op: Op::Delete { key: 5 } });
        engine.submit(1, Request { id: 4, op: Op::Lookup { key: 5 } });
        engine.submit(1, Request { id: 5, op: Op::Stats });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().body, RespBody::Inserted);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().body, RespBody::Flushed);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().body, RespBody::Deleted);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap().body,
            RespBody::Value { found: false, value: 0 }
        );
        let stats_resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let RespBody::Stats { fields, text } = stats_resp.body else {
            panic!("expected stats body")
        };
        assert_eq!(fields.flushes, 1);
        assert_eq!(fields.deletes, 1);
        assert!(text.contains("served:") && text.contains("store:"), "{text}");
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let engine = engine(Duration::from_millis(10));
        let rx = engine.register_conn(1);
        for i in 0..64u64 {
            engine.submit(1, Request { id: i, op: Op::Insert { key: i + 1, value: i } });
        }
        engine.shutdown();
        for i in 0..64u64 {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.id, i);
            assert_eq!(resp.body, RespBody::Inserted);
        }
    }

    #[test]
    fn unregistered_connections_drop_responses_quietly() {
        let engine = engine(Duration::from_micros(100));
        let rx = engine.register_conn(1);
        engine.unregister_conn(1);
        engine.submit(1, Request { id: 1, op: Op::Flush });
        // The batcher must not wedge on the missing connection.
        engine.submit(1, Request { id: 2, op: Op::Flush });
        assert!(rx.recv_timeout(Duration::from_millis(200)).is_err());
        engine.shutdown();
        let stats = engine.stats();
        assert_eq!(stats.connections_opened, 1);
        assert_eq!(stats.connections_closed, 1);
        assert_eq!(stats.flushes, 2, "requests for dead conns still execute");
    }
}
