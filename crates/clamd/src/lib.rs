//! `clamd` — a network fingerprint-lookup service over a CLAM.
//!
//! The paper's CLAMs live inside WAN optimizers and dedup servers, where
//! a whole fleet of workers funnels fingerprint lookups and inserts into
//! one index. This crate is that serving front-end:
//!
//! * [`proto`] — a versioned, length-prefixed binary wire protocol
//!   (INSERT / LOOKUP / DELETE / FLUSH / STATS, plus batch frames) with
//!   structured error codes and strict, panic-free decoding;
//! * [`batcher`] — the sharded group-commit engine: concurrent arrivals
//!   from all connections gather into per-stripe-shard [`StripedClam`]
//!   ring admissions (inserts coalesce into one `insert_batch` flush
//!   admission per shard, lookups stream through `lookup_batch`),
//!   independent stripes commit concurrently, idle-shard scalar lookups
//!   bypass the queue onto the store's epoch-validated read fast path,
//!   and a response is acknowledged only after its admission's
//!   completion ring has been reaped;
//! * [`server`] — the TCP front: per-connection reader/writer threads
//!   feeding the shared batcher queue, plus boot paths for a fresh
//!   simulated SSD ([`boot_sim`]) and a file-backed image that is
//!   **recovered in place** with per-stripe [`RecoveryReport`]s
//!   ([`boot_file`]);
//! * [`client`] — a blocking client with pipelining;
//! * [`loadgen`] — an open-loop load generator (Zipfian or uniform key
//!   popularity, exact hit/miss mix) that measures sustained throughput
//!   and client-observed p50/p99/p999 latency, honest past saturation.
//!
//! [`StripedClam`]: bufferhash::StripedClam
//! [`RecoveryReport`]: bufferhash::RecoveryReport

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batcher;
pub mod client;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod stats;

pub use batcher::{BatcherConfig, Engine};
pub use client::{ClamdClient, ClientError};
pub use loadgen::{LoadReport, LoadgenConfig, SweepLevel};
pub use proto::{ErrorCode, Op, Request, RespBody, Response, StatsFields, WireError};
pub use server::{boot_file, boot_sim, ClamdServer, ServerConfig};
pub use stats::ServerStats;
