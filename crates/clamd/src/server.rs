//! The `clamd` TCP server: connection handling over the group-commit
//! [`Engine`].
//!
//! Each accepted connection gets a **reader** thread (decode frames,
//! submit to the batcher) and a **writer** thread (drain that
//! connection's response channel, encode, flush). Requests from all
//! connections funnel into the batcher's per-stripe shard queues
//! ([`BatcherConfig::shards`]), so concurrent arrivals — whether
//! pipelined on one connection or spread across many — coalesce into
//! per-shard group-commit gathers that commit independent stripes
//! concurrently. `shards: 1` (the default) is the single-gather
//! baseline.
//!
//! A protocol violation ([`WireError`](crate::proto::WireError)) is
//! connection-fatal: the server counts it, answers with one structured
//! `ERROR` frame — echoing the offending request id when the header's
//! magic and version checked out, id 0 otherwise — and closes that
//! connection. Other connections are unaffected.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bufferhash::{Clam, ClamConfig, ClamStats, RecoveryReport, StripedClam};
use flashsim::{Device, FileDevice, SharedDevice, Ssd};

use crate::batcher::{BatcherConfig, Engine};
use crate::proto::{self, RespBody, Response};
use crate::stats::ServerStats;

/// How often blocked reader/accept loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);
/// Read chunk size for connection readers.
const READ_CHUNK: usize = 64 * 1024;

/// Configuration for a `clamd` server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Number of CLAM stripes the key space is hashed over.
    pub stripes: usize,
    /// Total flash capacity across all stripes, in bytes.
    pub flash_bytes: u64,
    /// Total DRAM budget across all stripes, in bytes.
    pub dram_bytes: u64,
    /// Group-commit batcher tuning.
    pub batcher: BatcherConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            stripes: 4,
            flash_bytes: 64 << 20,
            dram_bytes: 8 << 20,
            batcher: BatcherConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Per-stripe CLAM configuration derived from the totals.
    fn stripe_config(&self) -> bufferhash::Result<ClamConfig> {
        ClamConfig::small_test(
            self.flash_bytes / self.stripes as u64,
            self.dram_bytes / self.stripes as u64,
        )
    }
}

/// Boot errors: device, store or socket failures while bringing a server
/// up. Boxed because three subsystems' error types meet here.
pub type BootError = Box<dyn std::error::Error + Send + Sync>;

/// Builds a fresh in-memory store: one simulated Intel-class SSD
/// partitioned into `config.stripes` stripes sharing the device's
/// completion ring.
pub fn boot_sim(config: &ServerConfig) -> Result<StripedClam<SharedDevice<Ssd>>, BootError> {
    let device = SharedDevice::new(Ssd::intel(config.flash_bytes)?);
    let stripe_config = config.stripe_config()?;
    let mut stripes = Vec::with_capacity(config.stripes);
    for partition in device.split(config.stripes)? {
        stripes.push(Clam::new(partition, stripe_config.clone())?);
    }
    Ok(StripedClam::new(stripes))
}

/// Builds (or recovers) a file-backed store at `path`.
///
/// When `path` already exists the file is opened in place, partitioned
/// into stripes, and every stripe is **recovered** from its flash
/// contents ([`StripedClam::recover`]); the per-stripe
/// [`RecoveryReport`]s come back alongside the store. A missing file is
/// created at `config.flash_bytes` and booted empty.
pub fn boot_file(
    path: &std::path::Path,
    config: &ServerConfig,
    queue_depth: usize,
) -> Result<(StripedClam<SharedDevice<FileDevice>>, Vec<RecoveryReport>), BootError> {
    let stripe_config = config.stripe_config()?;
    if path.exists() {
        let device = SharedDevice::new(FileDevice::open_existing(path, queue_depth)?);
        let pairs = device
            .split(config.stripes)?
            .into_iter()
            .map(|partition| (partition, stripe_config.clone()))
            .collect();
        let (store, reports) = StripedClam::recover(pairs)?;
        Ok((store, reports))
    } else {
        let device =
            SharedDevice::new(FileDevice::with_queue_depth(path, config.flash_bytes, queue_depth)?);
        let mut stripes = Vec::with_capacity(config.stripes);
        for partition in device.split(config.stripes)? {
            stripes.push(Clam::new(partition, stripe_config.clone())?);
        }
        Ok((StripedClam::new(stripes), Vec::new()))
    }
}

/// A running `clamd` server.
pub struct ClamdServer<D: Device + 'static> {
    engine: Engine<D>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ClamdServer<SharedDevice<Ssd>> {
    /// Starts a server over a fresh simulated-SSD store.
    pub fn start_sim(config: ServerConfig) -> Result<Self, BootError> {
        let store = boot_sim(&config)?;
        Self::start(store, Vec::new(), config)
    }
}

impl<D: Device + 'static> ClamdServer<D> {
    /// Starts serving `store` on `config.addr`. `recovery` carries the
    /// boot-time recovery reports (empty for a fresh store).
    pub fn start(
        store: StripedClam<D>,
        recovery: Vec<RecoveryReport>,
        config: ServerConfig,
    ) -> Result<Self, BootError> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let engine = Engine::start(store, recovery, config.batcher.clone());
        let shutdown = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));

        let accept_engine = engine.clone();
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_conns = Arc::clone(&conn_threads);
        let accept_thread = std::thread::Builder::new()
            .name("clamd-accept".to_string())
            .spawn(move || {
                let next_conn = AtomicU64::new(1);
                while !accept_shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let conn = next_conn.fetch_add(1, Ordering::SeqCst);
                            spawn_connection(
                                stream,
                                conn,
                                &accept_engine,
                                &accept_shutdown,
                                &accept_conns,
                            );
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn accept thread");

        Ok(ClamdServer {
            engine,
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the server ledger (per-shard gather ledgers merged).
    pub fn stats(&self) -> ServerStats {
        self.engine.stats()
    }

    /// Each batcher shard's own gather ledger, in shard order.
    pub fn per_shard_stats(&self) -> Vec<ServerStats> {
        self.engine.per_shard_stats()
    }

    /// Number of batcher shards actually running.
    pub fn num_shards(&self) -> usize {
        self.engine.num_shards()
    }

    /// Aggregated store statistics across all stripes.
    pub fn clam_stats(&self) -> ClamStats {
        self.engine.clam_stats()
    }

    /// Per-stripe boot recovery reports (empty for a fresh store).
    pub fn recovery_reports(&self) -> Vec<RecoveryReport> {
        self.engine.recovery_reports().to_vec()
    }

    /// Stops accepting, drains every queued request (their responses are
    /// still delivered), closes all connections and joins every thread.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(handle) = self.accept_thread.take() {
            handle.join().expect("accept thread panicked");
        }
        // Drain the batcher first so in-flight requests reach their
        // connection channels, then drop the senders so writers flush the
        // buffered responses and exit.
        self.engine.shutdown();
        self.engine.unregister_all();
        let handles = std::mem::take(&mut *self.conn_threads.lock().expect("conn threads lock"));
        for handle in handles {
            handle.join().expect("connection thread panicked");
        }
    }
}

impl<D: Device + 'static> Drop for ClamdServer<D> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns the reader/writer thread pair for one accepted connection.
fn spawn_connection<D: Device + 'static>(
    stream: TcpStream,
    conn: u64,
    engine: &Engine<D>,
    shutdown: &Arc<AtomicBool>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let _ = stream.set_nodelay(true);
    let responses = engine.register_conn(conn);
    let Ok(write_half) = stream.try_clone() else {
        engine.unregister_conn(conn);
        return;
    };

    let reader_engine = engine.clone();
    let reader_shutdown = Arc::clone(shutdown);
    let reader = std::thread::Builder::new()
        .name(format!("clamd-read-{conn}"))
        .spawn(move || read_loop(stream, conn, &reader_engine, &reader_shutdown))
        .expect("spawn reader thread");

    let writer = std::thread::Builder::new()
        .name(format!("clamd-write-{conn}"))
        .spawn(move || write_loop(write_half, &responses))
        .expect("spawn writer thread");

    let mut threads = conn_threads.lock().expect("conn threads lock");
    threads.push(reader);
    threads.push(writer);
}

/// Decodes frames off one connection and submits them for group commit.
fn read_loop<D: Device + 'static>(
    mut stream: TcpStream,
    conn: u64,
    engine: &Engine<D>,
    shutdown: &Arc<AtomicBool>,
) {
    // A finite read timeout keeps the reader responsive to shutdown even
    // on an idle connection.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut buf: Vec<u8> = Vec::new();
    let mut start = 0usize;
    let mut chunk = [0u8; READ_CHUNK];
    'conn: while !shutdown.load(Ordering::SeqCst) {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(_) => break,
        }
        loop {
            match proto::decode_request(&buf[start..]) {
                Ok(Some((request, consumed))) => {
                    start += consumed;
                    engine.submit(conn, request);
                }
                Ok(None) => break,
                Err(wire) => {
                    engine.record_wire_error();
                    engine.respond(
                        conn,
                        Response {
                            id: proto::peek_request_id(&buf[start..]).unwrap_or(0),
                            body: RespBody::Error { code: wire.code(), message: wire.to_string() },
                        },
                    );
                    break 'conn;
                }
            }
        }
        // Compact the buffer once the parsed prefix dominates it.
        if start > 0 && start >= buf.len() / 2 {
            buf.drain(..start);
            start = 0;
        }
    }
    // Give the writer a moment to flush any error frame, then detach. On
    // server-wide shutdown the engine drains first and unregisters
    // centrally, so this per-connection unregister only fires for
    // client-initiated closes and protocol errors.
    if !shutdown.load(Ordering::SeqCst) {
        engine.unregister_conn(conn);
    }
}

/// Drains one connection's response channel onto the socket.
fn write_loop(stream: TcpStream, responses: &mpsc::Receiver<Response>) {
    let mut out = std::io::BufWriter::new(stream);
    let mut buf = Vec::new();
    while let Ok(response) = responses.recv() {
        buf.clear();
        proto::encode_response(&response, &mut buf);
        // Batch further ready responses into the same flush.
        while let Ok(next) = responses.try_recv() {
            proto::encode_response(&next, &mut buf);
        }
        if out.write_all(&buf).is_err() || out.flush().is_err() {
            break;
        }
    }
    // The channel disconnected (connection unregistered) or the socket
    // died; either way the responses that mattered were flushed.
    let _ = out.flush();
}

/// Convenience constructor used by tests and the smoke harness: a fresh
/// sim-backed server on an ephemeral loopback port.
pub fn ephemeral_sim_server(
    stripes: usize,
    flash_bytes: u64,
    dram_bytes: u64,
) -> Result<ClamdServer<SharedDevice<Ssd>>, BootError> {
    ephemeral_sim_server_sharded(stripes, 1, flash_bytes, dram_bytes)
}

/// Like [`ephemeral_sim_server`] but with an explicit batcher shard
/// count (clamped to `[1, stripes]` by the engine).
pub fn ephemeral_sim_server_sharded(
    stripes: usize,
    shards: usize,
    flash_bytes: u64,
    dram_bytes: u64,
) -> Result<ClamdServer<SharedDevice<Ssd>>, BootError> {
    ClamdServer::start_sim(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        stripes,
        flash_bytes,
        dram_bytes,
        batcher: BatcherConfig { shards, ..BatcherConfig::default() },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ErrorCode;

    #[test]
    fn server_binds_ephemeral_port_and_shuts_down() {
        let mut server = ephemeral_sim_server(2, 16 << 20, 4 << 20).unwrap();
        assert_ne!(server.local_addr().port(), 0);
        server.shutdown();
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn config_derives_per_stripe_share() {
        let config = ServerConfig { stripes: 4, ..Default::default() };
        let stripe = config.stripe_config().unwrap();
        assert_eq!(stripe.flash_capacity, config.flash_bytes / 4);
    }

    #[test]
    fn raw_garbage_gets_a_structured_error_frame() {
        let server = ephemeral_sim_server(2, 16 << 20, 4 << 20).unwrap();
        let mut sock = TcpStream::connect(server.local_addr()).unwrap();
        sock.write_all(b"GET / HTTP/1.1\r\n\r\n....................").unwrap();
        sock.flush().unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        loop {
            match sock.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    if let Ok(Some(_)) = proto::decode_response(&buf) {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        let (response, _) = proto::decode_response(&buf).unwrap().expect("one error frame");
        assert_eq!(response.id, 0);
        let RespBody::Error { code, .. } = response.body else { panic!("expected error") };
        assert_eq!(code, ErrorCode::BadMagic);
        assert_eq!(server.stats().wire_errors, 1);
    }
}
