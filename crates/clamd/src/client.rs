//! A blocking `clamd` client with optional pipelining.
//!
//! [`ClamdClient`] offers two usage styles:
//!
//! * **call/response** — [`call`](ClamdClient::call) and the typed
//!   conveniences ([`insert`](ClamdClient::insert),
//!   [`lookup`](ClamdClient::lookup), …) send one request and block for
//!   its response;
//! * **pipelined** — [`send`](ClamdClient::send) queues requests without
//!   waiting and [`recv`](ClamdClient::recv) pulls responses in
//!   submission order, which is what the open-loop load generator uses to
//!   keep many requests in flight per connection.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use bufferhash::{Key, Value};

use crate::proto::{
    self, decode_response, encode_request, ErrorCode, Op, Request, RespBody, Response, WireError,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's bytes did not decode as a valid frame.
    Wire(WireError),
    /// The server answered with an `ERROR` frame.
    Server {
        /// Structured error code.
        code: ErrorCode,
        /// Server-provided message.
        message: String,
    },
    /// The server answered with an unexpected body (protocol confusion).
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {:?}: {message}", code)
            }
            ClientError::Protocol(what) => write!(f, "protocol confusion: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Client-side result alias.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A blocking connection to a `clamd` server.
pub struct ClamdClient {
    stream: TcpStream,
    /// Undecoded bytes received so far.
    buf: Vec<u8>,
    /// Parsed-prefix offset into `buf`.
    start: usize,
    next_id: u64,
}

impl ClamdClient {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ClamdClient { stream, buf: Vec::new(), start: 0, next_id: 1 })
    }

    /// Sends `op` without waiting and returns the request id it was
    /// assigned. Responses arrive in submission order via
    /// [`recv`](Self::recv).
    pub fn send(&mut self, op: Op) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let mut frame = Vec::new();
        encode_request(&Request { id, op }, &mut frame);
        self.stream.write_all(&frame)?;
        Ok(id)
    }

    /// Blocks for the next response frame.
    pub fn recv(&mut self) -> Result<Response> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some((response, consumed)) = decode_response(&self.buf[self.start..])? {
                self.start += consumed;
                if self.start >= self.buf.len() / 2 {
                    self.buf.drain(..self.start);
                    self.start = 0;
                }
                return Ok(response);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Sends `op` and blocks for its response body, surfacing server
    /// `ERROR` frames as [`ClientError::Server`].
    pub fn call(&mut self, op: Op) -> Result<RespBody> {
        let id = self.send(op)?;
        let response = self.recv()?;
        if response.id != id {
            return Err(ClientError::Protocol("response id does not match the request"));
        }
        match response.body {
            RespBody::Error { code, message } => Err(ClientError::Server { code, message }),
            body => Ok(body),
        }
    }

    /// Inserts one fingerprint; returns once the server has acknowledged
    /// it (group-commit flush reaped).
    pub fn insert(&mut self, key: Key, value: Value) -> Result<()> {
        match self.call(Op::Insert { key, value })? {
            RespBody::Inserted => Ok(()),
            _ => Err(ClientError::Protocol("expected INSERTED")),
        }
    }

    /// Looks up one fingerprint.
    pub fn lookup(&mut self, key: Key) -> Result<Option<Value>> {
        match self.call(Op::Lookup { key })? {
            RespBody::Value { found: true, value } => Ok(Some(value)),
            RespBody::Value { found: false, .. } => Ok(None),
            _ => Err(ClientError::Protocol("expected VALUE")),
        }
    }

    /// Deletes one fingerprint.
    pub fn delete(&mut self, key: Key) -> Result<()> {
        match self.call(Op::Delete { key })? {
            RespBody::Deleted => Ok(()),
            _ => Err(ClientError::Protocol("expected DELETED")),
        }
    }

    /// Flushes every server-side buffer to flash.
    pub fn flush(&mut self) -> Result<()> {
        match self.call(Op::Flush)? {
            RespBody::Flushed => Ok(()),
            _ => Err(ClientError::Protocol("expected FLUSHED")),
        }
    }

    /// Fetches both statistics ledgers (numeric fields + rendered text).
    pub fn stats(&mut self) -> Result<(proto::StatsFields, String)> {
        match self.call(Op::Stats)? {
            RespBody::Stats { fields, text } => Ok((fields, text)),
            _ => Err(ClientError::Protocol("expected STATS")),
        }
    }

    /// Inserts a batch in one frame; returns once all of it is
    /// acknowledged.
    pub fn insert_batch(&mut self, ops: Vec<(Key, Value)>) -> Result<u32> {
        let len = ops.len() as u32;
        match self.call(Op::InsertBatch(ops))? {
            RespBody::InsertedBatch { count } if count == len => Ok(count),
            RespBody::InsertedBatch { .. } => {
                Err(ClientError::Protocol("INSERTED_BATCH count mismatch"))
            }
            _ => Err(ClientError::Protocol("expected INSERTED_BATCH")),
        }
    }

    /// Looks up a batch of keys in one frame, results in key order.
    pub fn lookup_batch(&mut self, keys: Vec<Key>) -> Result<Vec<Option<Value>>> {
        let len = keys.len();
        match self.call(Op::LookupBatch(keys))? {
            RespBody::Values(values) if values.len() == len => Ok(values
                .into_iter()
                .map(|(found, value)| if found { Some(value) } else { None })
                .collect()),
            RespBody::Values(_) => Err(ClientError::Protocol("VALUES count mismatch")),
            _ => Err(ClientError::Protocol("expected VALUES")),
        }
    }
}
