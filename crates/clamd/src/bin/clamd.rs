//! The `clamd` server binary.
//!
//! Serves a striped CLAM over TCP with group-commit batching. By default
//! the store is a fresh simulated Intel-class SSD; with `--flash-file`
//! the store is file-backed, and an existing image is **recovered in
//! place** (the per-stripe recovery reports print at startup).
//!
//! ```text
//! clamd [--addr 127.0.0.1:7979] [--stripes 4] [--shards N]
//!       [--flash-bytes 67108864] [--dram-bytes 8388608]
//!       [--flash-file PATH] [--queue-depth N]
//!       [--linger-us 100] [--max-batch 512]
//! ```

use std::time::Duration;

use clamd::batcher::BatcherConfig;
use clamd::server::{boot_file, ClamdServer, ServerConfig};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("clamd: invalid value {raw:?} for {name}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "clamd: fingerprint-lookup service over a CLAM\n\
             \n\
             --addr ADDR         listen address (default 127.0.0.1:7979; port 0 = ephemeral)\n\
             --stripes N         CLAM stripes over the device (default 4)\n\
             --shards N          batcher shards / gather threads (default: stripes)\n\
             --flash-bytes N     total flash capacity (default 64 MiB)\n\
             --dram-bytes N      total DRAM budget (default 8 MiB)\n\
             --flash-file PATH   file-backed store; existing images are recovered\n\
             --queue-depth N     file-device worker depth (default {})\n\
             --linger-us N       group-commit linger window (default 100)\n\
             --max-batch N       largest group-commit gather (default 512)",
            flashsim::DEFAULT_FILE_QUEUE_DEPTH
        );
        return;
    }
    let stripes = parse(&args, "--stripes", 4);
    let config = ServerConfig {
        addr: flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7979".to_string()),
        stripes,
        flash_bytes: parse(&args, "--flash-bytes", 64 << 20),
        dram_bytes: parse(&args, "--dram-bytes", 8 << 20),
        batcher: BatcherConfig {
            max_batch: parse(&args, "--max-batch", 512),
            linger: Duration::from_micros(parse(&args, "--linger-us", 100)),
            shards: parse(&args, "--shards", stripes),
        },
    };

    match flag_value(&args, "--flash-file") {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            let existed = path.exists();
            let queue_depth = parse(&args, "--queue-depth", flashsim::DEFAULT_FILE_QUEUE_DEPTH);
            let (store, reports) = boot_file(&path, &config, queue_depth).unwrap_or_else(|e| {
                eprintln!("clamd: cannot boot from {}: {e}", path.display());
                std::process::exit(1);
            });
            if existed {
                println!("clamd: recovered {} stripes from {}", reports.len(), path.display());
                for (i, report) in reports.iter().enumerate() {
                    println!("  stripe {i}: {report}");
                }
            } else {
                println!("clamd: created fresh store at {}", path.display());
            }
            serve(ClamdServer::start(store, reports, config));
        }
        None => serve(ClamdServer::start_sim(config)),
    }
}

/// Prints the bound address and serves until killed; connection and
/// batcher threads do all the work.
fn serve<D: flashsim::Device + 'static>(
    server: Result<ClamdServer<D>, clamd::server::BootError>,
) -> ! {
    let server = server.unwrap_or_else(|e| {
        eprintln!("clamd: cannot start: {e}");
        std::process::exit(1);
    });
    println!("clamd listening on {}", server.local_addr());
    loop {
        std::thread::park();
    }
}
