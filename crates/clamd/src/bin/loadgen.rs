//! `clamd-loadgen` — open-loop load generator and smoke harness for
//! `clamd`.
//!
//! Default mode runs a **load sweep**: calibrate the server's saturation
//! throughput with a closed-loop flood, then offer open-loop arrival
//! rates at several multiples of it (under-load through past-saturation)
//! and report, per level, the sustained throughput, the client-observed
//! p50/p99/p999 latency and the server's group-commit shape over that
//! window. Unless `--addr` points at a running server, an in-process
//! sim-backed server is spawned on an ephemeral loopback port.
//!
//! The in-process server can be sharded (`--shards`) and file-backed
//! (`--flash-file`; an existing image is recovered in place before the
//! run). `--connect HOST:PORT` (alias: `--addr`) skips the in-process
//! server entirely and drives an already-running `clamd` — start one
//! `clamd` process and point several `clamd-loadgen --connect` processes
//! at it for a multi-process load test.
//!
//! `--smoke` runs the CI loopback check instead: a deterministic
//! preload / mixed-pipeline / verify sequence with **exact** count
//! assertions against the server's ledger — once over the single-shard
//! baseline, once over a four-shard batcher (whose per-shard ledgers
//! must sum to the baseline's totals and whose read-heavy verify phase
//! must take the batcher bypass) — and, when this host has at least 4
//! cores, two saturation bars: the sharded server must sustain >= 1.2x
//! the single-shard flood throughput, and a single-stripe store's
//! per-super-table write locks must sustain >= 1.2x the
//! `set_coarse_locks(true)` insert-heavy flood.
//!
//! ```text
//! clamd-loadgen [--connect HOST:PORT] [--connections 4] [--ops 20000]
//!               [--key-space 20000] [--zipf-s 0.99]
//!               [--lookup-fraction 0.8] [--hit-fraction 0.5]
//!               [--stripes 4] [--shards N] [--flash-bytes 67108864]
//!               [--dram-bytes 8388608] [--flash-file PATH] [--queue-depth N]
//!               [--multiples 0.5,0.9,1.5] [--seed N] [--smoke]
//! ```

use std::net::SocketAddr;

use bench::{ms, print_cdf, print_header, print_row, TailSummary};
use bufferhash::{hash_with_seed, Clam, ClamConfig, StripedClam};
use clamd::batcher::BatcherConfig;
use clamd::client::ClamdClient;
use clamd::loadgen::{self, key_for, value_for, LoadgenConfig};
use clamd::proto::{Op, RespBody, StatsFields};
use clamd::server::{
    boot_file, ephemeral_sim_server_sharded, BootError, ClamdServer, ServerConfig,
};
use clamd::stats::ServerStats;
use flashsim::{FileDevice, LatencyRecorder, SharedDevice, SimDuration, Ssd};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("clamd-loadgen: invalid value {raw:?} for {name}");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// An in-process server of either backing, kept alive for the run.
enum SpawnedServer {
    Sim(ClamdServer<SharedDevice<Ssd>>),
    File(ClamdServer<SharedDevice<FileDevice>>),
}

impl SpawnedServer {
    fn local_addr(&self) -> SocketAddr {
        match self {
            SpawnedServer::Sim(s) => s.local_addr(),
            SpawnedServer::File(s) => s.local_addr(),
        }
    }

    fn num_shards(&self) -> usize {
        match self {
            SpawnedServer::Sim(s) => s.num_shards(),
            SpawnedServer::File(s) => s.num_shards(),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        match smoke() {
            Ok(()) => println!("SMOKE PASS"),
            Err(e) => {
                eprintln!("SMOKE FAIL: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Err(e) = sweep_main(&args) {
        eprintln!("clamd-loadgen: {e}");
        std::process::exit(1);
    }
}

fn sweep_main(args: &[String]) -> Result<(), BootError> {
    let config = LoadgenConfig {
        connections: parse(args, "--connections", 4),
        ops: parse(args, "--ops", 20_000),
        rate: f64::INFINITY,
        lookup_fraction: parse(args, "--lookup-fraction", 0.8),
        hit_fraction: parse(args, "--hit-fraction", 0.5),
        key_space: parse(args, "--key-space", 20_000),
        zipf_s: parse(args, "--zipf-s", 0.99),
        seed: parse(args, "--seed", 0x10ad),
    };
    let multiples: Vec<f64> = flag_value(args, "--multiples")
        .unwrap_or_else(|| "0.5,0.9,1.5".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("--multiples takes comma-separated floats"))
        .collect();
    assert!(multiples.len() >= 3, "a sweep needs at least 3 load levels to span saturation");

    // Either aim at a running server (multi-process client mode) or
    // spawn one in-process — sim-backed by default, file-backed (with
    // in-place recovery of an existing image) under --flash-file.
    let connect = flag_value(args, "--connect").or_else(|| flag_value(args, "--addr"));
    let (addr, server): (SocketAddr, Option<SpawnedServer>) = match connect {
        Some(addr) => (addr.parse()?, None),
        None => {
            let stripes = parse(args, "--stripes", 4);
            let server_config = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                stripes,
                flash_bytes: parse(args, "--flash-bytes", 64u64 << 20),
                dram_bytes: parse(args, "--dram-bytes", 8u64 << 20),
                batcher: BatcherConfig {
                    shards: parse(args, "--shards", stripes),
                    ..BatcherConfig::default()
                },
            };
            let server = match flag_value(args, "--flash-file") {
                Some(path) => {
                    let path = std::path::PathBuf::from(path);
                    let existed = path.exists();
                    let queue_depth =
                        parse(args, "--queue-depth", flashsim::DEFAULT_FILE_QUEUE_DEPTH);
                    let (store, reports) = boot_file(&path, &server_config, queue_depth)?;
                    if existed {
                        println!("recovered {} stripes from {}", reports.len(), path.display());
                        for (i, report) in reports.iter().enumerate() {
                            println!("  stripe {i}: {report}");
                        }
                    } else {
                        println!("created fresh store at {}", path.display());
                    }
                    SpawnedServer::File(ClamdServer::start(store, reports, server_config)?)
                }
                None => SpawnedServer::Sim(ClamdServer::start_sim(server_config)?),
            };
            println!(
                "spawned in-process clamd on {} ({} batcher shards)",
                server.local_addr(),
                server.num_shards()
            );
            (server.local_addr(), Some(server))
        }
    };

    println!(
        "preloading {} keys ({} connections, zipf s={}, {:.0}% lookups / {:.0}% hits)…",
        config.key_space,
        config.connections,
        config.zipf_s,
        config.lookup_fraction * 100.0,
        config.hit_fraction * 100.0
    );
    let preloaded = loadgen::preload(addr, config.key_space)?;
    assert_eq!(preloaded, config.key_space, "every preload insert must be acknowledged");

    let (flood, levels) = loadgen::sweep(addr, &config, &multiples)?;
    println!(
        "\ncalibration (closed-loop flood): {:.0} ops/s sustained over {} ops\n",
        flood.achieved, flood.completed
    );

    let widths = [12usize, 12, 12, 11, 11, 11, 11, 12];
    print_header(
        &[
            "offered/s",
            "achieved/s",
            "completed",
            "p50 ms",
            "p99 ms",
            "p999 ms",
            "mean batch",
            "lingered",
        ],
        &widths,
    );
    for level in &levels {
        let r = &level.report;
        print_row(
            &[
                format!("{:.0}", r.offered),
                format!("{:.0}", r.achieved),
                format!("{}", r.completed),
                ms(r.tail.p50),
                ms(r.tail.p99),
                ms(r.tail.p999),
                format!("{:.1}", level.server.mean_batch()),
                format!("{}", level.server.group_commit_waits),
            ],
            &widths,
        );
    }
    println!();
    for level in &mut levels.into_iter() {
        let label = format!("client-observed latency @ {:.0} ops/s offered", level.report.offered);
        let mut latencies = level.report.latencies;
        print_cdf(&label, &mut latencies, 16);
        println!(
            "  tail: {}   (hits {} / misses {} / inserts {} / errors {})",
            level.report.tail,
            level.report.hits,
            level.report.misses,
            level.report.inserts,
            level.report.errors
        );
        println!(
            "  server window: {} gathers (hwm {}), {} insert + {} lookup admissions\n",
            level.server.batches,
            level.server.batch_high_water,
            level.server.insert_admissions,
            level.server.lookup_admissions
        );
    }
    println!(
        "Reading the sweep: below saturation the offered and achieved rates agree and\n\
         the tail tracks device latency; past saturation the achieved rate pins at the\n\
         calibrated capacity while open-loop queueing delay blows up p99/p999 — and the\n\
         mean group-commit gather grows with load, coalescing more requests per ring\n\
         admission exactly when admissions are the scarce resource."
    );
    drop(server);
    Ok(())
}

/// Smoke workload shape, shared by both arms.
const PRELOAD: u64 = 2_000;
const CONNS: u64 = 4;
const PER_CONN: u64 = 500;
/// Key-id base for smoke-phase misses (disjoint from every other range).
const SMOKE_MISS_BASE: u64 = 1 << 50;
/// Key-id base for smoke-phase inserts.
const SMOKE_INSERT_BASE: u64 = 1 << 51;
/// Stripes both smoke arms run over (so `--shards 4` is not clamped).
const SMOKE_STRIPES: usize = 4;

/// The CI loopback smoke check: the full deterministic sequence over the
/// single-shard baseline, the same sequence over a four-shard batcher
/// (per-shard ledgers must sum to the baseline's totals and the serial
/// verify phase must take the bypass), then — on hosts with enough
/// cores — the sharded-vs-single saturation bar.
fn smoke() -> Result<(), BootError> {
    let baseline = smoke_arm(1)?;
    let sharded = smoke_arm(4)?;

    // Both arms served the identical op sequence, so the merged service
    // counts must agree exactly — sharding changes who commits, not what.
    assert_eq!(sharded.fields.inserts, baseline.fields.inserts, "arm insert totals");
    assert_eq!(sharded.fields.lookups, baseline.fields.lookups, "arm lookup totals");
    assert_eq!(sharded.fields.lookup_hits, baseline.fields.lookup_hits, "arm hit totals");
    assert_eq!(sharded.fields.lookup_misses, baseline.fields.lookup_misses, "arm miss totals");

    // The sharded arm's per-shard gather ledgers must sum back to its
    // merged totals (which equal the single-shard arm's).
    assert_eq!(sharded.per_shard.len(), 4, "four shard ledgers");
    let shard_inserts: u64 = sharded.per_shard.iter().map(|s| s.inserts).sum();
    let shard_lookups: u64 = sharded.per_shard.iter().map(|s| s.lookups).sum();
    assert_eq!(shard_inserts, baseline.fields.inserts, "shard insert ledgers sum to baseline");
    assert_eq!(shard_lookups, baseline.fields.lookups, "shard lookup ledgers sum to baseline");
    assert!(
        sharded.per_shard.iter().filter(|s| s.inserts > 0).count() > 1,
        "the key space must spread over more than one shard"
    );

    // The serial verify phase is read-heavy over an idle server: the
    // four-shard arm must have answered some of it on the bypass.
    assert!(
        sharded.fields.bypass_hits > 0,
        "read-heavy phase should take the batcher bypass: {:?}",
        sharded.fields
    );

    saturation_bar()?;
    write_concurrency_bar()
}

/// What one smoke arm observed.
struct SmokeArm {
    fields: StatsFields,
    per_shard: Vec<ServerStats>,
}

/// One full preload / mixed-pipeline / verify sequence against a fresh
/// server with `shards` batcher shards. Every count asserted here is
/// exact: the key-id ranges are disjoint by construction, so hits,
/// misses and inserts are fully determined.
fn smoke_arm(shards: usize) -> Result<SmokeArm, BootError> {
    let server = ephemeral_sim_server_sharded(SMOKE_STRIPES, shards, 16 << 20, 4 << 20)?;
    let addr = server.local_addr();

    // Preload over the wire, in batch frames.
    let acked = loadgen::preload(addr, PRELOAD)?;
    assert_eq!(acked, PRELOAD, "preload acknowledgments");

    // Mixed pipelined phase: each connection interleaves guaranteed hits,
    // guaranteed misses and fresh inserts, pipelined in chunks so group
    // commit sees concurrent arrivals from all connections.
    let mut recorder = LatencyRecorder::new();
    let tallies: Vec<Result<LatencyRecorder, BootError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONNS)
            .map(|c| {
                scope.spawn(move || -> Result<LatencyRecorder, BootError> {
                    let mut client = ClamdClient::connect(addr)?;
                    let mut recorder = LatencyRecorder::new();
                    let mut pending: Vec<std::time::Instant> = Vec::new();
                    for i in 0..PER_CONN {
                        let hit_id = 1 + (c * PER_CONN + i) % PRELOAD;
                        let miss_id = SMOKE_MISS_BASE + c * PER_CONN + i;
                        let insert_id = SMOKE_INSERT_BASE + c * PER_CONN + i;
                        let ops = [
                            Op::Lookup { key: key_for(hit_id) },
                            Op::Lookup { key: key_for(miss_id) },
                            Op::Insert { key: key_for(insert_id), value: value_for(insert_id) },
                        ];
                        let _ = hit_id;
                        for op in ops {
                            client.send(op)?;
                            pending.push(std::time::Instant::now());
                        }
                        // Drain in chunks to keep ~30 requests in flight.
                        if pending.len() >= 30 {
                            for sent in pending.drain(..15) {
                                let response = client.recv()?;
                                recorder.record(SimDuration::from_nanos(
                                    sent.elapsed().as_nanos() as u64
                                ));
                                if let RespBody::Error { code, message } = response.body {
                                    return Err(format!("server error {code:?}: {message}").into());
                                }
                            }
                        }
                    }
                    for sent in pending.drain(..) {
                        let response = client.recv()?;
                        recorder.record(SimDuration::from_nanos(sent.elapsed().as_nanos() as u64));
                        if let RespBody::Error { code, message } = response.body {
                            return Err(format!("server error {code:?}: {message}").into());
                        }
                    }
                    Ok(recorder)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("smoke conn panicked")).collect()
    });
    for tally in tallies {
        recorder.merge(&tally?);
    }

    // Every acknowledged insert must now be served, with the right value,
    // over the wire — preloaded and smoke-phase keys alike.
    let mut verifier = ClamdClient::connect(addr)?;
    let mut verify_lookups = 0u64;
    for id in 1..=PRELOAD {
        let got = verifier.lookup(key_for(id))?;
        verify_lookups += 1;
        if got != Some(value_for(id)) {
            return Err(format!("preloaded id {id}: got {got:?}").into());
        }
    }
    for c in 0..CONNS {
        for i in 0..PER_CONN {
            let id = SMOKE_INSERT_BASE + c * PER_CONN + i;
            let got = verifier.lookup(key_for(id))?;
            verify_lookups += 1;
            if got != Some(value_for(id)) {
                return Err(format!("acked insert id {id:#x} not served: got {got:?}").into());
            }
        }
    }

    // Exact ledger check.
    let (fields, text) = verifier.stats()?;
    let expected_inserts = PRELOAD + CONNS * PER_CONN;
    let expected_phase_lookups = CONNS * PER_CONN * 2; // one hit + one miss per step
    let expected_hits = CONNS * PER_CONN + verify_lookups;
    let expected_misses = CONNS * PER_CONN;
    assert_eq!(fields.inserts, expected_inserts, "ledger inserts\n{text}");
    assert_eq!(fields.lookups, expected_phase_lookups + verify_lookups, "ledger lookups\n{text}");
    assert_eq!(fields.lookup_hits, expected_hits, "ledger hits\n{text}");
    assert_eq!(fields.lookup_misses, expected_misses, "ledger misses\n{text}");
    assert_eq!(fields.wire_errors, 0, "ledger wire errors\n{text}");
    assert!(fields.batches > 0, "group commit must have gathered\n{text}");
    assert!(
        fields.insert_admissions < fields.inserts,
        "inserts must coalesce into fewer ring admissions\n{text}"
    );

    // Non-degenerate latency tail from the pipelined phase.
    let tail = TailSummary::from_recorder(&mut recorder);
    assert!(tail.is_nondegenerate(), "degenerate latency tail: {tail}");
    assert_eq!(tail.samples as u64, CONNS * PER_CONN * 3, "every pipelined op measured");

    println!(
        "smoke [{} shard{}]: {} inserts, {} lookups ({} hits / {} misses), {} gathers \
         (mean {:.1}), {} bypassed, tail {}",
        shards,
        if shards == 1 { "" } else { "s" },
        fields.inserts,
        fields.lookups,
        fields.lookup_hits,
        fields.lookup_misses,
        fields.batches,
        fields.mean_batch(),
        fields.bypass_hits,
        tail
    );
    let per_shard = server.per_shard_stats();
    drop(server);
    Ok(SmokeArm { fields, per_shard })
}

/// Floods a fresh server at the given shard count with a read-heavy
/// closed-loop workload and returns the sustained throughput.
fn flood_throughput(shards: usize) -> Result<f64, BootError> {
    let server = ephemeral_sim_server_sharded(SMOKE_STRIPES, shards, 64 << 20, 8 << 20)?;
    let addr = server.local_addr();
    let config = LoadgenConfig {
        connections: 4,
        ops: 24_000,
        rate: f64::INFINITY,
        lookup_fraction: 0.9,
        hit_fraction: 0.8,
        key_space: 8_000,
        zipf_s: 0.99,
        seed: 0x5a7b,
    };
    let preloaded = loadgen::preload(addr, config.key_space)?;
    assert_eq!(preloaded, config.key_space, "saturation-bar preload");
    // Warm-up flood absorbs thread spin-up and first-touch costs, then
    // the measured flood.
    let _ = loadgen::run(addr, &LoadgenConfig { ops: 4_000, ..config.clone() })?;
    let report = loadgen::run(addr, &config)?;
    assert_eq!(report.errors, 0, "flood must not provoke server errors");
    drop(server);
    Ok(report.achieved)
}

/// The sharded-vs-single saturation bar: on hosts with at least 4 cores
/// (one per shard, so the gather threads can actually run concurrently),
/// a 4-shard server must sustain >= 1.2x the single-shard flood
/// throughput. Fewer cores cannot express the concurrency, so the bar
/// is skipped there rather than asserting a number the host cannot hit.
fn saturation_bar() -> Result<(), BootError> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        println!(
            "saturation bar: skipped ({cores} core(s); needs >= 4 to run shards concurrently)"
        );
        return Ok(());
    }
    let single = flood_throughput(1)?;
    let sharded = flood_throughput(4)?;
    let speedup = sharded / single.max(1e-9);
    println!("saturation: 1 shard {single:.0} ops/s, 4 shards {sharded:.0} ops/s ({speedup:.2}x)");
    if speedup >= 1.2 {
        println!("PASS: sharded group commit sustains {speedup:.2}x the single-shard flood (target >= 1.2x)");
        Ok(())
    } else {
        Err(format!(
            "FAIL: 4-shard flood only {speedup:.2}x the single-shard flood (target >= 1.2x)"
        )
        .into())
    }
}

/// Key space of the write-concurrency flood: ~750 keys per super table
/// of the single stripe, comfortably under the per-table flush
/// threshold, so the measured passes are buffer-resident. That isolates
/// exactly the work the per-table locks parallelize (cuckoo + Bloom
/// commits) — flushes deliberately replay coarse order through the
/// batch gate, and flush-churn identity is what `tests/equivalence.rs`
/// covers.
const WRITE_BAR_KEYS: u64 = 100_000;
/// Measured update passes over the key space, per arm.
const WRITE_BAR_PASSES: u64 = 3;
/// Insert-batch size of the write flood: big enough that the per-table
/// scoped-thread dispatch amortizes its spawn cost.
const WRITE_BAR_CHUNK: usize = 20_000;

/// Floods one single-stripe store with an insert-heavy batch workload
/// (a scalar delete sprinkled in every 512th op, re-inserted by the
/// next pass) and returns the sustained write throughput. `coarse`
/// selects the stripe-global baseline via
/// [`StripedClam::set_coarse_locks`]; otherwise batches commit through
/// the per-super-table write locks.
fn write_flood(coarse: bool) -> f64 {
    let cfg = ClamConfig::small_test(64 << 20, 16 << 20).expect("write-bar config");
    let device = Ssd::intel(64 << 20).expect("write-bar ssd");
    let store = StripedClam::new(vec![Clam::new(device, cfg).expect("write-bar clam")]);
    store.set_coarse_locks(coarse);
    let ops: Vec<(u64, u64)> =
        (0..WRITE_BAR_KEYS).map(|i| (hash_with_seed(i, 0x10ad), i)).collect();
    // Warm-up pass populates the buffers and absorbs thread spin-up and
    // first-touch costs; the measured passes update the same keys in
    // place.
    for chunk in ops.chunks(WRITE_BAR_CHUNK) {
        store.insert_batch(chunk).expect("write-bar warmup");
    }
    let mut deletes = 0u64;
    let start = std::time::Instant::now();
    for _ in 0..WRITE_BAR_PASSES {
        for chunk in ops.chunks(WRITE_BAR_CHUNK) {
            store.insert_batch(chunk).expect("write-bar insert");
            for (key, _) in chunk.iter().step_by(512) {
                store.delete(*key).expect("write-bar delete");
                deletes += 1;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = store.stats();
    if coarse {
        assert_eq!(stats.table_write_acquisitions, 0, "coarse arm must not take table locks");
    } else {
        assert!(stats.table_write_acquisitions > 0, "fine arm must take table locks");
        assert!(stats.table_lock_high_water >= 2, "fine arm commits must overlap: {stats}");
    }
    (WRITE_BAR_KEYS * WRITE_BAR_PASSES + deletes) as f64 / elapsed
}

/// The fine-vs-coarse write-concurrency bar: on hosts with at least 4
/// cores (so the per-table batch chunks can actually run concurrently),
/// the per-super-table write locks must sustain >= 1.2x the
/// `set_coarse_locks(true)` insert-heavy throughput over one stripe.
/// Fewer cores cannot express the concurrency, so the bar is skipped
/// there rather than asserting a number the host cannot hit.
fn write_concurrency_bar() -> Result<(), BootError> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        println!(
            "write-concurrency bar: skipped ({cores} core(s); needs >= 4 to overlap table commits)"
        );
        return Ok(());
    }
    let coarse = write_flood(true);
    let fine = write_flood(false);
    let speedup = fine / coarse.max(1e-9);
    println!(
        "write concurrency: coarse locks {coarse:.0} ops/s, per-table locks {fine:.0} ops/s \
         ({speedup:.2}x)"
    );
    if speedup >= 1.2 {
        println!(
            "PASS: per-table write locks sustain {speedup:.2}x the coarse-lock insert flood \
             (target >= 1.2x)"
        );
        Ok(())
    } else {
        Err(format!(
            "FAIL: per-table write locks only {speedup:.2}x the coarse-lock insert flood \
             (target >= 1.2x)"
        )
        .into())
    }
}
